//! A second-order wave equation on a periodic 2-D domain: a
//! multi-statement, multi-array kernel (two time levels plus a Laplacian
//! temporary) that stresses context partitioning — the Laplacian stencil,
//! the leapfrog update, and the time-level rotation all fuse into tight
//! subgrid loops with four overlap shifts per step.
//!
//! The time loop is driven through the persistent-schedule Plan API: one
//! leapfrog step is compiled, its communication schedules are built once,
//! and `iterate(steps)` replays them with pooled buffers — warm state stays
//! resident on the machine between steps.
//!
//! ```text
//! cargo run --release --example wave2d
//! ```

use hpf_stencil::passes::Stage;
use hpf_stencil::{max_abs_diff, CompileOptions, Engine, Kernel, MachineConfig};

fn main() {
    let n = 128;
    let steps = 60;
    // A single leapfrog step; the Plan supplies the time loop.
    let source = hpf_stencil::presets::wave2d(n, 1);
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");

    println!("2-D wave equation, {n}x{n} periodic domain, {steps} leapfrog steps");
    println!(
        "per step: {} comm ops, {} fused loop nests",
        kernel.stats().comm_ops,
        kernel.stats().nests
    );

    // Gaussian pulse in the centre; both time levels start identical
    // (zero initial velocity).
    let pulse = move |p: &[i64]| {
        let mid = n as f64 / 2.0;
        let dx = p[0] as f64 - mid;
        let dy = p[1] as f64 - mid;
        (-(dx * dx + dy * dy) / 40.0).exp()
    };

    let mut plan = kernel
        .plan(MachineConfig::sp2_2x2())
        .init("U", pulse)
        .init("UPREV", pulse)
        .engine(Engine::Threaded)
        .build()
        .expect("schedules compile");
    println!(
        "schedules: {} compiled at build, {} pooled buffer bytes",
        plan.comm_count(),
        plan.pooled_bytes()
    );

    plan.iterate(steps);

    let u = plan.gather("U").expect("U is allocated");
    let stats = plan.stats();
    let peak = u.iter().cloned().fold(f64::MIN, f64::max);
    let trough = u.iter().cloned().fold(f64::MAX, f64::min);
    let mid = n / 2;
    println!("after {} steps:", plan.steps());
    println!("  centre displacement : {:+.5}", u[(mid - 1) * n + (mid - 1)]);
    println!("  field range         : [{trough:+.5}, {peak:+.5}]");
    println!("  messages            : {}", stats.total_messages());
    println!(
        "  schedule reuse      : built {} — reused {} times",
        stats.schedules_built, stats.schedule_reuses
    );
    println!("  modeled SP-2 time   : {:.2} ms", plan.modeled_ms());
    println!("  wall clock          : {:.2} ms", plan.wall().as_secs_f64() * 1e3);

    // Cross-check against the reference interpreter running the whole time
    // loop in one program.
    let full = Kernel::compile(&hpf_stencil::presets::wave2d(n, steps), CompileOptions::full())
        .expect("compiles");
    let oracle = full.oracle().init("U", pulse).init("UPREV", pulse).run();
    let want = &oracle.arrays[&full.array_id("U").unwrap()].data;
    assert_eq!(max_abs_diff(&u, want), 0.0, "plan must match the reference bit for bit");
    println!("  verified            : bitwise equal to the reference interpreter");

    // How much the staged pipeline matters for this kernel (one-shot runs).
    println!("\nstage comparison (modeled ms, {steps}-step source):");
    let full_src = hpf_stencil::presets::wave2d(n, steps);
    for stage in Stage::all() {
        let k = Kernel::compile(&full_src, CompileOptions::upto(stage)).unwrap();
        let r = k
            .runner(MachineConfig::sp2_2x2())
            .init("U", pulse)
            .init("UPREV", pulse)
            .engine(Engine::Sequential)
            .run()
            .unwrap();
        println!("  {:<24} {:>10.2}", stage.label(), r.modeled_ms());
    }
}
