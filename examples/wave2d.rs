//! A second-order wave equation on a periodic 2-D domain: a
//! multi-statement, multi-array kernel (two time levels plus a Laplacian
//! temporary) that stresses context partitioning — the Laplacian stencil,
//! the leapfrog update, and the time-level rotation all fuse into tight
//! subgrid loops with four overlap shifts per step.
//!
//! ```text
//! cargo run --release --example wave2d
//! ```

use hpf_stencil::passes::Stage;
use hpf_stencil::{CompileOptions, Engine, Kernel, MachineConfig};

fn main() {
    let n = 128;
    let steps = 60;
    let source = hpf_stencil::presets::wave2d(n, steps);
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");

    println!("2-D wave equation, {n}x{n} periodic domain, {steps} leapfrog steps");
    println!(
        "per step: {} comm ops, {} fused loop nests",
        kernel.stats().comm_ops,
        kernel.stats().nests
    );

    // Gaussian pulse in the centre; both time levels start identical
    // (zero initial velocity).
    let pulse = move |p: &[i64]| {
        let mid = n as f64 / 2.0;
        let dx = p[0] as f64 - mid;
        let dy = p[1] as f64 - mid;
        (-(dx * dx + dy * dy) / 40.0).exp()
    };

    let run = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", pulse)
        .init("UPREV", pulse)
        .engine(Engine::Threaded)
        .run_verified(&["U", "UPREV"], 0.0)
        .expect("verified against the reference interpreter");

    let u = run.gather(&kernel, "U");
    let peak = u.iter().cloned().fold(f64::MIN, f64::max);
    let trough = u.iter().cloned().fold(f64::MAX, f64::min);
    let mid = n / 2;
    println!("after {steps} steps:");
    println!("  centre displacement : {:+.5}", u[(mid - 1) * n + (mid - 1)]);
    println!("  field range         : [{trough:+.5}, {peak:+.5}]");
    println!("  messages            : {}", run.stats().total_messages());
    println!("  modeled SP-2 time   : {:.2} ms", run.modeled_ms());
    println!("  wall clock          : {:.2} ms", run.wall.as_secs_f64() * 1e3);

    // How much the staged pipeline matters for this kernel.
    println!("\nstage comparison (modeled ms):");
    for stage in Stage::all() {
        let k = Kernel::compile(&source, CompileOptions::upto(stage)).unwrap();
        let r = k
            .runner(MachineConfig::sp2_2x2())
            .init("U", pulse)
            .init("UPREV", pulse)
            .engine(Engine::Sequential)
            .run()
            .unwrap();
        println!("  {:<24} {:>10.2}", stage.label(), r.modeled_ms());
    }
}
