//! The paper's extended example (§4): Problem 9 of the Purdue Set, traced
//! through every stage of the compilation strategy — reproducing the IR of
//! Figures 12 through 15 and the staged measurements of Figure 17.
//!
//! ```text
//! cargo run --release --example problem9_walkthrough
//! ```

use hpf_stencil::passes::{CompileOptions, Stage};
use hpf_stencil::{Engine, Kernel, MachineConfig};

fn main() {
    let n = 256;
    let source = hpf_stencil::presets::problem9(n);
    println!("=== Problem 9 (paper Figure 3), N = {n} ===\n{}", source.trim());

    // Show the array-level IR after each cumulative stage — these listings
    // correspond to the paper's Figures 12 (normal form), 13 (offset
    // arrays), 14 (context partitioning) and 15 (communication unioning).
    let figures = [
        (Stage::Original, "Figure 12 — normalized intermediate form"),
        (Stage::OffsetArrays, "Figure 13 — after offset array optimization"),
        (Stage::Partition, "Figure 14 — after context partitioning"),
        (Stage::Unioning, "Figure 15 — after communication unioning"),
    ];
    for (stage, caption) in figures {
        let kernel = Kernel::compile(&source, CompileOptions::upto(stage)).unwrap();
        println!("\n=== {caption} ===");
        print!("{}", kernel.listing());
    }

    // Figure 16: the scalarized node program (communication + the single
    // fused subgrid loop nest).
    let full = Kernel::compile(&source, CompileOptions::upto(Stage::Unioning)).unwrap();
    println!("\n=== Figure 16 — after scalarization (node program) ===");
    print!("{}", hpf_stencil::passes::nodepretty::node_program(&full.compiled.node));

    // Staged execution: Figure 17.
    println!("\n=== Figure 17 — step-wise execution (2x2 PEs) ===");
    println!(
        "{:<24} {:>12} {:>10} {:>9} {:>6}",
        "stage", "modeled[ms]", "wall[ms]", "speedup", "msgs"
    );
    let mut base = None;
    for stage in Stage::all() {
        let kernel = Kernel::compile(&source, CompileOptions::upto(stage)).unwrap();
        let run = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", |p| ((p[0] + 3 * p[1]) as f64 * 0.01).cos())
            .engine(Engine::Sequential)
            .run_verified(&["T"], 0.0)
            .expect("every stage matches the reference");
        let modeled = run.modeled_ms();
        let b = *base.get_or_insert(modeled);
        println!(
            "{:<24} {:>12.3} {:>10.3} {:>8.2}x {:>6}",
            stage.label(),
            modeled,
            run.wall.as_secs_f64() * 1e3,
            b / modeled,
            run.stats().total_messages()
        );
    }
    println!("\nevery stage verified against the reference interpreter ✓");
}
