//! Quickstart: compile a 5-point stencil, run it on the simulated
//! 4-processor machine, and look at what the compiler did.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use hpf_stencil::{CompileOptions, Engine, ExecConfig, Kernel, MachineConfig};

fn main() {
    // The paper's Figure 1: a 5-point stencil in Fortran90 array syntax.
    let n = 64;
    let source = hpf_stencil::presets::five_point(n);
    println!("--- source ---------------------------------------------------");
    println!("{}", source.trim());

    // Compile with the full SC'97 strategy: offset arrays, context
    // partitioning, communication unioning, memory optimizations.
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");

    println!("\n--- optimized array-level IR (paper notation) ------------------");
    print!("{}", kernel.listing());

    let s = kernel.stats();
    println!("--- pipeline statistics ----------------------------------------");
    println!("shift intrinsics normalized : {}", s.normalize.shifts);
    println!("shifts -> overlap shifts    : {}", s.offset.converted);
    println!("communication operations    : {}", s.comm_ops);
    println!("fused subgrid loop nests    : {}", s.nests);
    println!("arrays allocated            : {}", s.arrays_allocated);

    // Run on a 2x2 PE grid (the paper's 4-processor SP-2), verified against
    // the sequential reference interpreter, with per-PE event tracing on.
    let cfg = ExecConfig::new().engine(Engine::Threaded).trace(true);
    let run = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("SRC", |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.01).sin())
        .config(cfg)
        .run_verified(&["DST"], 0.0)
        .expect("runs and matches the reference interpreter");

    let dst = run.gather(&kernel, "DST");
    println!("\n--- execution ---------------------------------------------------");
    println!("DST(2,2)            = {:.6}", dst[n + (2 - 1)]);
    println!("messages            = {}", run.stats().total_messages());
    println!("intraprocessor bytes= {}", run.stats().total_intra_bytes());
    println!("modeled SP-2 time   = {:.3} ms", run.modeled_ms());
    println!("wall clock          = {:.3} ms", run.wall.as_secs_f64() * 1e3);

    // The trace records every pass, schedule build, pack, send, and drain;
    // `hpfsc --trace=FILE` exports the same data as Chrome trace JSON.
    println!("\n--- per-PE span summary (from the event trace) -----------------");
    print!("{}", run.trace.as_ref().expect("tracing was on").summary().render_table(1));
    println!("\nverified bit-for-bit against the reference interpreter ✓");
}
