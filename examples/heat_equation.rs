//! Heat diffusion: an iterated Jacobi relaxation — the PDE workload the
//! paper's introduction motivates. A hot square diffuses over a plate; the
//! time loop exercises the pipeline's handling of stencils inside loops
//! (overlap shifts re-executed per sweep, copy-back statements fused).
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use hpf_stencil::{CompileOptions, Engine, Kernel, MachineConfig};

fn main() {
    let n = 128;
    let steps = 50;
    let source = hpf_stencil::presets::jacobi(n, steps);
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");

    println!("Jacobi heat diffusion, {n}x{n} plate, {steps} sweeps, 2x2 PEs");
    println!("communication per sweep: {} overlap shifts", kernel.stats().comm_ops);

    // Hot square in the middle of the plate.
    let hot = move |p: &[i64]| {
        let mid = n as i64 / 2;
        if (p[0] - mid).abs() < n as i64 / 8 && (p[1] - mid).abs() < n as i64 / 8 {
            100.0
        } else {
            0.0
        }
    };

    let run = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", hot)
        .engine(Engine::Threaded)
        .run_verified(&["U"], 0.0)
        .expect("verified against the reference interpreter");

    let u = run.gather(&kernel, "U");
    let total: f64 = u.iter().sum();
    let peak = u.iter().cloned().fold(f64::MIN, f64::max);
    let mid = n / 2;
    println!("after {steps} sweeps:");
    println!("  centre temperature : {:.4}", u[(mid - 1) * n + (mid - 1)]);
    println!("  peak temperature   : {peak:.4}");
    println!("  total heat         : {total:.2} (conserved by the circular boundary)");
    println!("  messages           : {}", run.stats().total_messages());
    println!("  modeled SP-2 time  : {:.2} ms", run.modeled_ms());
    println!("  wall clock         : {:.2} ms", run.wall.as_secs_f64() * 1e3);

    // A coarse ASCII rendering of the temperature field.
    println!("\ntemperature field (16x16 downsample):");
    let shades = [' ', '.', ':', '+', '*', '#'];
    for bi in 0..16 {
        let mut line = String::new();
        for bj in 0..16 {
            let i = bi * n / 16 + n / 32;
            let j = bj * n / 16 + n / 32;
            let v = u[i * n + j];
            let shade = ((v / peak) * (shades.len() - 1) as f64).round() as usize;
            line.push(shades[shade.min(shades.len() - 1)]);
            line.push(shades[shade.min(shades.len() - 1)]);
        }
        println!("  {line}");
    }
}
