//! Heat diffusion: an iterated Jacobi relaxation — the PDE workload the
//! paper's introduction motivates. A hot square diffuses over a plate.
//!
//! This example drives the time loop through the *persistent-schedule* Plan
//! API: the kernel is compiled as a single sweep, the communication
//! schedules are compiled once at `build()`, and every call to `step()` is
//! just pack/send/unpack through pooled buffers plus the fused subgrid
//! loops — no per-step machine setup, allocation, or subgrid math.
//!
//! ```text
//! cargo run --release --example heat_equation
//! ```

use hpf_stencil::{max_abs_diff, CompileOptions, Engine, Kernel, MachineConfig};

fn main() {
    let n = 128;
    let steps = 50;
    // One Jacobi sweep; the time loop lives in the Plan, not the source.
    let source = hpf_stencil::presets::jacobi(n, 1);
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");

    println!("Jacobi heat diffusion, {n}x{n} plate, {steps} sweeps, 2x2 PEs");
    println!("communication per sweep: {} overlap shifts", kernel.stats().comm_ops);

    // Hot square in the middle of the plate.
    let hot = move |p: &[i64]| {
        let mid = n as i64 / 2;
        if (p[0] - mid).abs() < n as i64 / 8 && (p[1] - mid).abs() < n as i64 / 8 {
            100.0
        } else {
            0.0
        }
    };

    let mut plan = kernel
        .plan(MachineConfig::sp2_2x2())
        .init("U", hot)
        .engine(Engine::Threaded)
        .build()
        .expect("schedules compile");
    println!(
        "schedules: {} compiled at build, {} pooled buffer bytes",
        plan.comm_count(),
        plan.pooled_bytes()
    );

    plan.iterate(steps);

    let u = plan.gather("U").expect("U is allocated");
    let stats = plan.stats();
    let total: f64 = u.iter().sum();
    let peak = u.iter().cloned().fold(f64::MIN, f64::max);
    let mid = n / 2;
    println!("after {} sweeps:", plan.steps());
    println!("  centre temperature : {:.4}", u[(mid - 1) * n + (mid - 1)]);
    println!("  peak temperature   : {peak:.4}");
    println!("  total heat         : {total:.2} (conserved by the circular boundary)");
    println!("  messages           : {}", stats.total_messages());
    println!(
        "  schedule reuse     : built {} — reused {} times",
        stats.schedules_built, stats.schedule_reuses
    );
    println!("  modeled SP-2 time  : {:.2} ms", plan.modeled_ms());
    println!("  wall clock         : {:.2} ms", plan.wall().as_secs_f64() * 1e3);

    // Cross-check the stepped plan against the reference interpreter
    // running the whole time loop in one program.
    let full = Kernel::compile(&hpf_stencil::presets::jacobi(n, steps), CompileOptions::full())
        .expect("compiles");
    let oracle = full.oracle().init("U", hot).run();
    let want = &oracle.arrays[&full.array_id("U").unwrap()].data;
    let diff = max_abs_diff(&u, want);
    assert_eq!(diff, 0.0, "plan must match the reference bit for bit");
    println!("  verified           : bitwise equal to the reference interpreter");

    // A coarse ASCII rendering of the temperature field.
    println!("\ntemperature field (16x16 downsample):");
    let shades = [' ', '.', ':', '+', '*', '#'];
    for bi in 0..16 {
        let mut line = String::new();
        for bj in 0..16 {
            let i = bi * n / 16 + n / 32;
            let j = bj * n / 16 + n / 32;
            let v = u[i * n + j];
            let shade = ((v / peak) * (shades.len() - 1) as f64).round() as usize;
            line.push(shades[shade.min(shades.len() - 1)]);
            line.push(shades[shade.min(shades.len() - 1)]);
        }
        println!("  {line}");
    }
}
