//! Masked relaxation: solve a heat problem on an irregular domain using
//! `WHERE` — Fortran90's masked array assignment. The paper's §7 argues its
//! optimizations "benefit those computations that only slightly resemble
//! stencils"; a masked stencil is exactly that: the CM-2-style pattern
//! matcher rejects it, while this pipeline still reaches minimal
//! communication (the mask lowers to a `MERGE` select in the fused subgrid
//! loop).
//!
//! ```text
//! cargo run --release --example masked_relaxation
//! ```

use hpf_stencil::baselines::cm2;
use hpf_stencil::{CompileOptions, Engine, Kernel, MachineConfig};

fn main() {
    let n = 64;
    let sweeps = 40;
    // M marks the fluid region (an annulus); U relaxes only inside it.
    let source = format!(
        r#"
PROGRAM masked
PARAM N = {n}
REAL U(N,N), T(N,N), M(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ DISTRIBUTE M(BLOCK,BLOCK)
DO {sweeps} TIMES
T = 0.25 * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
WHERE (M > 0) U = T
ENDDO
END
"#
    );

    // The CM-2-style recognizer cannot touch this kernel…
    let checked = hpf_stencil::frontend::compile_source(&source).unwrap();
    println!(
        "CM-2-style pattern matcher: {}",
        match cm2::recognize(&checked) {
            Ok(_) => "recognized".to_string(),
            Err(e) => format!("FAILS ({e})"),
        }
    );

    // …while the normalization-based pipeline compiles it fully.
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");
    println!(
        "this pipeline: {} comm ops/sweep, {} fused nests/sweep\n",
        kernel.stats().comm_ops,
        kernel.stats().nests
    );

    let mid = n as i64 / 2;
    let annulus = move |p: &[i64]| {
        let dx = (p[0] - mid) as f64;
        let dy = (p[1] - mid) as f64;
        let r = (dx * dx + dy * dy).sqrt();
        if r > 8.0 && r < 26.0 {
            1.0
        } else {
            0.0
        }
    };
    let hot_ring = move |p: &[i64]| {
        let dx = (p[0] - mid) as f64;
        let dy = (p[1] - mid) as f64;
        let r = (dx * dx + dy * dy).sqrt();
        if (r - 17.0).abs() < 2.0 {
            100.0
        } else {
            0.0
        }
    };

    let run = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("U", hot_ring)
        .init("M", annulus)
        .engine(Engine::Threaded)
        .run_verified(&["U"], 0.0)
        .expect("verified against the reference interpreter");

    let u = run.gather(&kernel, "U");
    let peak = u.iter().cloned().fold(f64::MIN, f64::max);
    println!("after {sweeps} sweeps: peak {peak:.2}");
    println!("outside the domain stays frozen: corner = {}", u[0]);
    println!("messages: {}", run.stats().total_messages());
    println!("modeled SP-2 time: {:.2} ms", run.modeled_ms());

    // ASCII view of the annulus temperature.
    println!("\ntemperature (16x16 downsample, '#' hot, '.' domain, ' ' wall):");
    let shades = ['.', ':', '+', '*', '#'];
    for bi in 0..16 {
        let mut line = String::new();
        for bj in 0..16 {
            let i = bi * n / 16 + n / 32;
            let j = bj * n / 16 + n / 32;
            let inside = annulus(&[(i + 1) as i64, (j + 1) as i64]) > 0.0;
            let v = u[i * n + j];
            let ch = if !inside {
                ' '
            } else {
                let s = ((v / peak.max(1e-9)) * (shades.len() - 1) as f64).round() as usize;
                shades[s.min(shades.len() - 1)]
            };
            line.push(ch);
            line.push(ch);
        }
        println!("  {line}");
    }
}
