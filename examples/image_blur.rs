//! Image smoothing: a 9-point box blur written with `EOSHIFT` (zero
//! boundary — pixels outside the image contribute nothing), the
//! image-processing workload of the paper's introduction. Demonstrates that
//! the whole pipeline (offset arrays through unioning with RSD corners)
//! applies to end-off shifts as well as circular ones.
//!
//! ```text
//! cargo run --release --example image_blur
//! ```

use hpf_stencil::{CompileOptions, Engine, Kernel, MachineConfig};

fn main() {
    let n = 96;
    let passes = 8;
    let source = hpf_stencil::presets::image_blur(n, passes);
    let kernel = Kernel::compile(&source, CompileOptions::full()).expect("compiles");

    println!("9-point EOSHIFT box blur, {n}x{n} image, {passes} passes");
    println!(
        "communication per pass: {} overlap shifts ({} with RSD corners)",
        kernel.stats().comm_ops,
        kernel.stats().unioning.with_rsd
    );

    // Synthetic image: two bright diagonal stripes on a dark background.
    let stripes = |p: &[i64]| {
        let d = (p[0] + p[1]) % 24;
        if d < 4 {
            255.0
        } else if (p[0] - p[1]).rem_euclid(32) < 3 {
            180.0
        } else {
            16.0
        }
    };

    let run = kernel
        .runner(MachineConfig::sp2_2x2())
        .init("IMG", stripes)
        .engine(Engine::Threaded)
        .run_verified(&["IMG"], 0.0)
        .expect("verified against the reference interpreter");

    let img = run.gather(&kernel, "IMG");
    let mean = img.iter().sum::<f64>() / img.len() as f64;
    let max = img.iter().cloned().fold(f64::MIN, f64::max);
    let min = img.iter().cloned().fold(f64::MAX, f64::min);
    println!("after blurring: min {min:.1}, mean {mean:.1}, max {max:.1}");
    println!(
        "edges darken (zero boundary): corner {:.2} vs centre {:.2}",
        img[0],
        img[(n / 2) * n + n / 2]
    );
    println!("messages          : {}", run.stats().total_messages());
    println!("modeled SP-2 time : {:.2} ms", run.modeled_ms());
    println!("wall clock        : {:.2} ms", run.wall.as_secs_f64() * 1e3);
}
