PROGRAM five_point
PARAM N = 64
REAL SRC(N,N), DST(N,N)
REAL C1 = 0.15, C2 = 0.2, C3 = 0.3, C4 = 0.2, C5 = 0.15
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) &
                 + C2 * SRC(2:N-1,1:N-2) &
                 + C3 * SRC(2:N-1,2:N-1) &
                 + C4 * SRC(3:N ,2:N-1) &
                 + C5 * SRC(2:N-1,3:N )
END
