//! The kernel bytecode and the body compiler.
//!
//! A loop-nest body ([`Instr`] list) is lowered once per (nest, PE-layout)
//! into a flat [`Op`] sequence:
//!
//! - array offsets become precomputed flat-index deltas (like the
//!   interpreter, but resolved to a dense array-slot table);
//! - literal constants and scalar coefficients are constant-folded: an
//!   operation whose operands are all known folds away entirely, and an
//!   operation with one known operand becomes an immediate form
//!   (`BinImm*`/`CmpImm*`) that skips a register read;
//! - single-definition constants are hoisted out of the per-point code into
//!   a *preload* list applied once per nest execution;
//! - `Select` feeding a `Store` fuses into a predicated store
//!   ([`Op::SelStore`]) — the WHERE-mask lowering executes without
//!   materializing the selected value in a register;
//! - multiply-then-accumulate pairs fuse into `MulAcc*` ops that keep the
//!   two roundings (no FMA), so results stay bitwise identical to the
//!   interpreter.
//!
//! Every rewrite preserves the interpreter's evaluation order and rounding
//! exactly; the differential proptests in the workspace root enforce this.

use hpf_ir::expr::CmpOp;
use hpf_ir::BinOp;
use hpf_passes::loopir::Instr;
use std::collections::HashMap;

/// Register index in the VM's register file.
pub type Reg = u16;
/// Dense index into a compiled nest's array-slot table.
pub type Slot = u16;

/// One bytecode operation. Memory operands are flat-index deltas added to
/// the current point's base index; register and slot indices are validated
/// at compile time so the VM may index unchecked.
#[derive(Clone, Copy, Debug, PartialEq)]
#[allow(missing_docs)] // the per-variant doc comments give each field's role
pub enum Op {
    /// `r[dst] = v` (a constant that could not be hoisted to a preload).
    Const { dst: Reg, v: f64 },
    /// `r[dst] = arr[base + delta]`
    Load { dst: Reg, arr: Slot, delta: i32 },
    /// `arr[base + delta] = r[src]`
    Store { arr: Slot, delta: i32, src: Reg },
    /// `r[dst] = r[a] op r[b]`
    Bin { op: BinOp, dst: Reg, a: Reg, b: Reg },
    /// `r[dst] = r[a] op v`
    BinImmR { op: BinOp, dst: Reg, a: Reg, v: f64 },
    /// `r[dst] = v op r[b]`
    BinImmL { op: BinOp, dst: Reg, v: f64, b: Reg },
    /// `r[dst] = r[acc] + r[a] * r[b]` (mul and add rounded separately).
    MulAcc { dst: Reg, acc: Reg, a: Reg, b: Reg },
    /// `r[dst] = r[acc] + v * r[b]`
    MulAccImmL { dst: Reg, acc: Reg, v: f64, b: Reg },
    /// `r[dst] = r[acc] + r[a] * v`
    MulAccImmR { dst: Reg, acc: Reg, a: Reg, v: f64 },
    /// `r[dst] = -r[src]`
    Neg { dst: Reg, src: Reg },
    /// `r[dst] = r[src]`
    Copy { dst: Reg, src: Reg },
    /// `r[dst] = r[a] cmp r[b] ? 1.0 : 0.0`
    Cmp { op: CmpOp, dst: Reg, a: Reg, b: Reg },
    /// `r[dst] = r[a] cmp v ? 1.0 : 0.0`
    CmpImmR { op: CmpOp, dst: Reg, a: Reg, v: f64 },
    /// `r[dst] = v cmp r[b] ? 1.0 : 0.0`
    CmpImmL { op: CmpOp, dst: Reg, v: f64, b: Reg },
    /// `r[dst] = r[c] != 0 ? r[t] : r[e]`
    Select { dst: Reg, c: Reg, t: Reg, e: Reg },
    /// `arr[base + delta] = r[c] != 0 ? r[t] : r[e]` — the predicated store
    /// a WHERE-masked assignment compiles to.
    SelStore { arr: Slot, delta: i32, c: Reg, t: Reg, e: Reg },
}

/// A compiled body: the op sequence plus everything the VM hoists out of
/// the per-point loop.
#[derive(Clone, Debug, Default)]
pub struct KernelCode {
    /// Per-point operations.
    pub ops: Vec<Op>,
    /// Most negative flat-index delta any memory op applies.
    pub min_delta: i64,
    /// Most positive flat-index delta any memory op applies.
    pub max_delta: i64,
    /// Loads per point of the *source* body (counter accounting matches the
    /// interpreter even when folding removed ops).
    pub loads: u64,
    /// Stores per point of the source body.
    pub stores: u64,
    /// Flops per point of the source body (`Bin` + `Neg`, the interpreter's
    /// counting rule).
    pub flops: u64,
}

/// Shared state while compiling the bodies of one nest: the dense array
/// table and the constant preloads, merged across the jammed and unit body.
#[derive(Debug, Default)]
pub struct BodyCx {
    /// Slot table: `arrays[slot]` is the `ArrayId` raw index.
    pub arrays: Vec<u32>,
    slot_of: HashMap<u32, Slot>,
    /// `(reg, value)` pairs written once per nest execution.
    pub preloads: Vec<(Reg, f64)>,
    /// Highest register index used (preloads included), for sizing the file.
    pub max_reg: usize,
}

impl BodyCx {
    /// Context whose register file is at least `regs` wide (strict mode
    /// sizes the file like the interpreter even if some registers never
    /// appear in the emitted ops).
    pub fn with_min_regs(regs: usize) -> BodyCx {
        BodyCx { max_reg: regs.saturating_sub(1), ..Default::default() }
    }

    fn slot(&mut self, array: u32) -> Option<Slot> {
        if let Some(&s) = self.slot_of.get(&array) {
            return Some(s);
        }
        let s = Slot::try_from(self.arrays.len()).ok()?;
        self.arrays.push(array);
        self.slot_of.insert(array, s);
        Some(s)
    }

    fn touch(&mut self, r: Reg) -> Reg {
        self.max_reg = self.max_reg.max(r as usize);
        r
    }
}

/// Does the body read any register before defining it? Such a body observes
/// register state left over from previous iteration points (or the other
/// body sharing the file), so the compiler falls back to a strict
/// translation with no hoisting.
pub fn reads_before_def(body: &[Instr]) -> bool {
    let mut defined = std::collections::HashSet::new();
    for i in body {
        if i.sources().iter().any(|s| !defined.contains(s)) {
            return true;
        }
        if let Some(d) = i.dst() {
            defined.insert(d);
        }
    }
    false
}

/// Per-register single-def / first-read facts used to decide preloading.
struct RegFacts {
    defs: HashMap<Reg, usize>,
    first_read: HashMap<Reg, usize>,
}

impl RegFacts {
    fn of(body: &[Instr]) -> RegFacts {
        let mut defs: HashMap<Reg, usize> = HashMap::new();
        let mut first_read = HashMap::new();
        for (p, i) in body.iter().enumerate() {
            for s in i.sources() {
                first_read.entry(s).or_insert(p);
            }
            if let Some(d) = i.dst() {
                *defs.entry(d).or_insert(0) += 1;
            }
        }
        RegFacts { defs, first_read }
    }

    /// A constant defined at `pos` may move to the preload list iff it is
    /// the register's only definition and nothing reads the register at or
    /// before `pos` — then every iteration point (including the first, where
    /// the interpreter's register file still holds zeros) observes the same
    /// value the interpreter would.
    fn hoistable(&self, r: Reg, pos: usize) -> bool {
        self.defs.get(&r) == Some(&1) && self.first_read.get(&r).is_none_or(|&fr| fr > pos)
    }
}

/// Compile one body. `reg_base` shifts every register index (the unit body
/// gets a disjoint register range so its preloads cannot clash with the
/// jammed body's); `strict` disables hoisting and fusion and must be set
/// when either body reads registers it did not define.
///
/// Returns `None` when the body exceeds the bytecode's index ranges
/// (callers fall back to the interpreter).
pub fn compile_body(
    body: &[Instr],
    strides: &[usize],
    scalars: &[f64],
    reg_base: usize,
    strict: bool,
    cx: &mut BodyCx,
) -> Option<KernelCode> {
    let facts = RegFacts::of(body);
    // Flow-sensitive known-constant values per register.
    let mut konst: HashMap<Reg, f64> = HashMap::new();
    let mut ops: Vec<Op> = Vec::with_capacity(body.len());

    let rb = |r: Reg| -> Option<Reg> { Reg::try_from(r as usize + reg_base).ok() };
    let delta = |offsets: &[i64]| -> Option<i32> {
        let d: i64 = offsets.iter().zip(strides).map(|(&o, &s)| o * s as i64).sum();
        i32::try_from(d).ok()
    };

    for (pos, instr) in body.iter().enumerate() {
        // A definition whose value is known at compile time: hoist it to a
        // preload when legal, otherwise keep an inline Const. Either way the
        // register *does* hold the value at run time, so later ops may keep
        // referencing it.
        let const_def = |dst: Reg,
                         v: f64,
                         konst: &mut HashMap<Reg, f64>,
                         ops: &mut Vec<Op>,
                         cx: &mut BodyCx|
         -> Option<()> {
            konst.insert(dst, v);
            let d = cx.touch(rb(dst)?);
            if !strict && facts.hoistable(dst, pos) {
                cx.preloads.push((d, v));
            } else {
                ops.push(Op::Const { dst: d, v });
            }
            Some(())
        };

        match instr {
            Instr::Const { dst, value } => const_def(*dst, *value, &mut konst, &mut ops, cx)?,
            Instr::LoadScalar { dst, id } => {
                const_def(*dst, scalars[id.0 as usize], &mut konst, &mut ops, cx)?
            }
            Instr::Load { dst, array, offsets } => {
                konst.remove(dst);
                let d = cx.touch(rb(*dst)?);
                ops.push(Op::Load { dst: d, arr: cx.slot(array.0)?, delta: delta(offsets)? });
            }
            Instr::Store { array, offsets, src } => {
                let s = cx.touch(rb(*src)?);
                ops.push(Op::Store { arr: cx.slot(array.0)?, delta: delta(offsets)?, src: s });
            }
            Instr::Bin { op, dst, a, b } => match (konst.get(a).copied(), konst.get(b).copied()) {
                (Some(x), Some(y)) => const_def(*dst, op.apply(x, y), &mut konst, &mut ops, cx)?,
                (Some(x), None) => {
                    konst.remove(dst);
                    let (d, rb_) = (cx.touch(rb(*dst)?), cx.touch(rb(*b)?));
                    ops.push(Op::BinImmL { op: *op, dst: d, v: x, b: rb_ });
                }
                (None, Some(y)) => {
                    konst.remove(dst);
                    let (d, ra) = (cx.touch(rb(*dst)?), cx.touch(rb(*a)?));
                    ops.push(Op::BinImmR { op: *op, dst: d, a: ra, v: y });
                }
                (None, None) => {
                    konst.remove(dst);
                    let (d, ra, rb_) = (cx.touch(rb(*dst)?), cx.touch(rb(*a)?), cx.touch(rb(*b)?));
                    ops.push(Op::Bin { op: *op, dst: d, a: ra, b: rb_ });
                }
            },
            Instr::Neg { dst, src } => match konst.get(src).copied() {
                Some(x) => const_def(*dst, -x, &mut konst, &mut ops, cx)?,
                None => {
                    konst.remove(dst);
                    let (d, s) = (cx.touch(rb(*dst)?), cx.touch(rb(*src)?));
                    ops.push(Op::Neg { dst: d, src: s });
                }
            },
            Instr::Copy { dst, src } => match konst.get(src).copied() {
                Some(x) => const_def(*dst, x, &mut konst, &mut ops, cx)?,
                None => {
                    konst.remove(dst);
                    let (d, s) = (cx.touch(rb(*dst)?), cx.touch(rb(*src)?));
                    ops.push(Op::Copy { dst: d, src: s });
                }
            },
            Instr::Cmp { op, dst, a, b } => match (konst.get(a).copied(), konst.get(b).copied()) {
                (Some(x), Some(y)) => const_def(*dst, op.apply(x, y), &mut konst, &mut ops, cx)?,
                (Some(x), None) => {
                    konst.remove(dst);
                    let (d, rb_) = (cx.touch(rb(*dst)?), cx.touch(rb(*b)?));
                    ops.push(Op::CmpImmL { op: *op, dst: d, v: x, b: rb_ });
                }
                (None, Some(y)) => {
                    konst.remove(dst);
                    let (d, ra) = (cx.touch(rb(*dst)?), cx.touch(rb(*a)?));
                    ops.push(Op::CmpImmR { op: *op, dst: d, a: ra, v: y });
                }
                (None, None) => {
                    konst.remove(dst);
                    let (d, ra, rb_) = (cx.touch(rb(*dst)?), cx.touch(rb(*a)?), cx.touch(rb(*b)?));
                    ops.push(Op::Cmp { op: *op, dst: d, a: ra, b: rb_ });
                }
            },
            Instr::Select { dst, c, t, e } => match konst.get(c).copied() {
                // Mask known at compile time: the select is a copy of the
                // chosen side.
                Some(cv) => {
                    let chosen = if cv != 0.0 { *t } else { *e };
                    match konst.get(&chosen).copied() {
                        Some(x) => const_def(*dst, x, &mut konst, &mut ops, cx)?,
                        None => {
                            konst.remove(dst);
                            let (d, s) = (cx.touch(rb(*dst)?), cx.touch(rb(chosen)?));
                            ops.push(Op::Copy { dst: d, src: s });
                        }
                    }
                }
                None => {
                    konst.remove(dst);
                    let (d, rc, rt, re) = (
                        cx.touch(rb(*dst)?),
                        cx.touch(rb(*c)?),
                        cx.touch(rb(*t)?),
                        cx.touch(rb(*e)?),
                    );
                    ops.push(Op::Select { dst: d, c: rc, t: rt, e: re });
                }
            },
        }
    }

    if !strict {
        ops = fuse(ops);
    }

    let (mut min_delta, mut max_delta) = (0i64, 0i64);
    for op in &ops {
        if let Op::Load { delta, .. } | Op::Store { delta, .. } | Op::SelStore { delta, .. } = op {
            min_delta = min_delta.min(*delta as i64);
            max_delta = max_delta.max(*delta as i64);
        }
    }
    let loads = body.iter().filter(|i| matches!(i, Instr::Load { .. })).count() as u64;
    let stores = body.iter().filter(|i| matches!(i, Instr::Store { .. })).count() as u64;
    let flops =
        body.iter().filter(|i| matches!(i, Instr::Bin { .. } | Instr::Neg { .. })).count() as u64;
    Some(KernelCode { ops, min_delta, max_delta, loads, stores, flops })
}

/// Is `r` read by any op in `ops`?
fn reads(ops: &[Op], r: Reg) -> bool {
    ops.iter().any(|op| match *op {
        Op::Const { .. } | Op::Load { .. } => false,
        Op::Store { src, .. } => src == r,
        Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } | Op::MulAcc { a, b, .. } => a == r || b == r,
        Op::BinImmR { a, .. } | Op::CmpImmR { a, .. } => a == r,
        Op::BinImmL { b, .. } | Op::CmpImmL { b, .. } => b == r,
        Op::MulAccImmL { acc, b, .. } => acc == r || b == r,
        Op::MulAccImmR { acc, a, .. } => acc == r || a == r,
        Op::Neg { src, .. } | Op::Copy { src, .. } => src == r,
        Op::Select { c, t, e, .. } | Op::SelStore { c, t, e, .. } => c == r || t == r || e == r,
    })
}

/// Adjacent-pair peephole fusion. The intermediate register's write is
/// dropped, which is only legal because the caller established that no body
/// reads a register it did not define first (so a dead write can never be
/// observed by a later iteration point).
fn fuse(ops: Vec<Op>) -> Vec<Op> {
    let mut out: Vec<Op> = Vec::with_capacity(ops.len());
    let mut i = 0;
    while i < ops.len() {
        if i + 1 < ops.len() {
            let rest = &ops[i + 2..];
            // `t = a*b ; d = acc + t` => `d = acc + a*b` (two roundings kept).
            if let Op::Bin { op: BinOp::Add, dst, a: acc, b: t2 } = ops[i + 1] {
                let dead = |t: Reg| t2 == t && acc != t && !reads(rest, t);
                match ops[i] {
                    Op::Bin { op: BinOp::Mul, dst: t, a, b } if dead(t) => {
                        out.push(Op::MulAcc { dst, acc, a, b });
                        i += 2;
                        continue;
                    }
                    Op::BinImmL { op: BinOp::Mul, dst: t, v, b } if dead(t) => {
                        out.push(Op::MulAccImmL { dst, acc, v, b });
                        i += 2;
                        continue;
                    }
                    Op::BinImmR { op: BinOp::Mul, dst: t, a, v } if dead(t) => {
                        out.push(Op::MulAccImmR { dst, acc, a, v });
                        i += 2;
                        continue;
                    }
                    _ => {}
                }
            }
            // `d = select(c, t, e) ; arr[..] = d` => predicated store.
            if let (Op::Select { dst, c, t, e }, Op::Store { arr, delta, src }) =
                (ops[i], ops[i + 1])
            {
                if src == dst && !reads(rest, dst) {
                    out.push(Op::SelStore { arr, delta, c, t, e });
                    i += 2;
                    continue;
                }
            }
        }
        out.push(ops[i]);
        i += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::ArrayId;

    const A: ArrayId = ArrayId(0);

    #[test]
    fn constants_hoist_to_preloads() {
        // r0 = 2.5 (single def, read later): preloaded, not re-written per point.
        let body = vec![
            Instr::Const { dst: 0, value: 2.5 },
            Instr::Load { dst: 1, array: A, offsets: vec![0, 0] },
            Instr::Bin { op: BinOp::Mul, dst: 2, a: 0, b: 1 },
            Instr::Store { array: A, offsets: vec![0, 0], src: 2 },
        ];
        let mut cx = BodyCx::default();
        let k = compile_body(&body, &[10, 1], &[], 0, false, &mut cx).unwrap();
        assert_eq!(cx.preloads, vec![(0, 2.5)]);
        // Mul folds to an immediate form: 2.5 * r1.
        assert!(k
            .ops
            .iter()
            .any(|o| matches!(o, Op::BinImmL { op: BinOp::Mul, v, .. } if *v == 2.5)));
        assert!(!k.ops.iter().any(|o| matches!(o, Op::Const { .. })));
    }

    #[test]
    fn both_const_operands_fold_away() {
        let body = vec![
            Instr::Const { dst: 0, value: 2.0 },
            Instr::Const { dst: 1, value: 3.0 },
            Instr::Bin { op: BinOp::Mul, dst: 2, a: 0, b: 1 },
            Instr::Store { array: A, offsets: vec![0], src: 2 },
        ];
        let mut cx = BodyCx::default();
        let k = compile_body(&body, &[1], &[], 0, false, &mut cx).unwrap();
        // Everything hoists: the per-point code is a single store.
        assert_eq!(k.ops.len(), 1);
        assert!(matches!(k.ops[0], Op::Store { .. }));
        assert!(cx.preloads.contains(&(2, 6.0)));
    }

    #[test]
    fn select_store_fuses_to_predicated_store() {
        let body = vec![
            Instr::Load { dst: 0, array: A, offsets: vec![0] },
            Instr::Cmp { op: CmpOp::Gt, dst: 1, a: 0, b: 0 },
            Instr::Select { dst: 2, c: 1, t: 0, e: 0 },
            Instr::Store { array: A, offsets: vec![0], src: 2 },
        ];
        let mut cx = BodyCx::default();
        let k = compile_body(&body, &[1], &[], 0, false, &mut cx).unwrap();
        assert!(k.ops.iter().any(|o| matches!(o, Op::SelStore { .. })));
        assert!(!k.ops.iter().any(|o| matches!(o, Op::Select { .. } | Op::Store { .. })));
    }

    #[test]
    fn mul_add_fuses_without_fma() {
        let body = vec![
            Instr::Load { dst: 0, array: A, offsets: vec![0] },
            Instr::Load { dst: 1, array: A, offsets: vec![1] },
            Instr::Bin { op: BinOp::Mul, dst: 2, a: 0, b: 1 },
            Instr::Bin { op: BinOp::Add, dst: 3, a: 0, b: 2 },
            Instr::Store { array: A, offsets: vec![0], src: 3 },
        ];
        let mut cx = BodyCx::default();
        let k = compile_body(&body, &[1], &[], 0, false, &mut cx).unwrap();
        assert!(k.ops.iter().any(|o| matches!(o, Op::MulAcc { .. })));
    }

    #[test]
    fn multi_def_const_stays_inline() {
        // r0 is written twice: hoisting either write would corrupt the other.
        let body = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::Store { array: A, offsets: vec![0], src: 0 },
            Instr::Const { dst: 0, value: 2.0 },
            Instr::Store { array: A, offsets: vec![1], src: 0 },
        ];
        let mut cx = BodyCx::default();
        let k = compile_body(&body, &[1], &[], 0, false, &mut cx).unwrap();
        assert!(cx.preloads.is_empty());
        assert_eq!(k.ops.iter().filter(|o| matches!(o, Op::Const { .. })).count(), 2);
    }

    #[test]
    fn read_before_def_detected() {
        let carried = vec![
            Instr::Bin { op: BinOp::Add, dst: 0, a: 0, b: 0 },
            Instr::Store { array: A, offsets: vec![0], src: 0 },
        ];
        assert!(reads_before_def(&carried));
        let clean = vec![
            Instr::Load { dst: 0, array: A, offsets: vec![0] },
            Instr::Store { array: A, offsets: vec![0], src: 0 },
        ];
        assert!(!reads_before_def(&clean));
    }

    #[test]
    fn deltas_cover_all_memory_ops() {
        let body = vec![
            Instr::Load { dst: 0, array: A, offsets: vec![-1, 0] },
            Instr::Load { dst: 1, array: A, offsets: vec![1, 1] },
            Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 1 },
            Instr::Store { array: A, offsets: vec![0, 0], src: 2 },
        ];
        let mut cx = BodyCx::default();
        let k = compile_body(&body, &[10, 1], &[], 0, false, &mut cx).unwrap();
        assert_eq!(k.min_delta, -10);
        assert_eq!(k.max_delta, 11);
        assert_eq!((k.loads, k.stores, k.flops), (2, 1, 1));
    }
}
