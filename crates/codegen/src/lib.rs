//! Compiled stencil kernels: bytecode code generation for fused loop nests.
//!
//! The SC'97 pipeline's memory optimizations (scalar replacement,
//! unroll-and-jam, loop permutation) leave each statement as a fused
//! `LoopNest` that the executors in `hpf-exec` walk with a tree
//! interpreter. This crate adds the compiled alternative — the "backend"
//! half of a stencil-DSL compilation stack:
//!
//! 1. [`compile_nest`] lowers a nest once per (nest, PE layout) into a
//!    [`CompiledNest`]: a compact register bytecode ([`Op`]) with offsets
//!    flattened to index deltas, coefficients constant-folded into
//!    immediates, single-definition constants hoisted to per-execution
//!    preloads, WHERE masks fused into predicated stores, and
//!    multiply-accumulate chains fused (two roundings — never FMA).
//! 2. [`exec_compiled`] runs the bytecode over `Subgrid` storage row by
//!    row: one hoisted bounds check per row proves every access of the row
//!    in range, and the interior then executes over the flat slice with
//!    unchecked indexing. The jammed body covers interior (multiple-of-
//!    factor) iterations; remainder/boundary iterations run the unit body.
//!
//! Results are bitwise identical to the interpreter, and the `PeStats`
//! counters match exactly: the interpreter stays the oracle, enforced by
//! differential tests in `hpf-exec` and differential proptests at the
//! workspace root.
//!
//! Nests the compiler cannot prove safe to specialize (mixed subgrid
//! layouts, index-range overflow) report `None` from [`compile_nest`] and
//! stay on the interpreter — per (nest, PE), not per program.
//!
//! Every invariant the unchecked executors rely on is machine-checked by
//! the [`verify`] module's abstract interpreter (`BV001`–`BV004`), run in
//! debug/checked builds and by `hpfsc --verify`.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
#![warn(clippy::undocumented_unsafe_blocks)]

mod bytecode;
pub mod verify;
mod vm;

pub use bytecode::{reads_before_def, KernelCode, Op, Reg, Slot};
pub use verify::{verify_nest, Fault, BV001, BV002, BV003, BV004};
pub use vm::{compile_nest, exec_compiled, exec_compiled_over, exec_compiled_range, CompiledNest};

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::expr::CmpOp;
    use hpf_ir::{ArrayDecl, ArrayId, BinOp, Distribution, Section, Shape, ShiftKind};
    use hpf_passes::loopir::{Instr, LoopNest, Unroll};
    use hpf_runtime::{Machine, MachineConfig, PeStats};

    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        m.alloc(U, &ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2))).unwrap();
        m.alloc(T, &ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2))).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m
    }

    fn copy_nest(space: Section, offsets: Vec<i64>) -> LoopNest {
        LoopNest {
            space,
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: U, offsets },
                Instr::Store { array: T, offsets: vec![0, 0], src: 0 },
            ],
            regs: 1,
            unroll: None,
        }
    }

    fn run_all(m: &mut Machine, nest: &LoopNest, scalars: &[f64]) {
        for pe in 0..m.num_pes() {
            let cn = compile_nest(nest, &m.pes[pe], scalars).expect("compilable");
            exec_compiled(&mut m.pes[pe], &cn);
        }
    }

    #[test]
    fn interior_copy_respects_spmd_bounds() {
        let mut m = machine();
        let nest = copy_nest(Section::new([(2, 7), (2, 7)]), vec![0, 0]);
        run_all(&mut m, &nest, &[]);
        assert_eq!(m.get(T, &[2, 2]), 202.0);
        assert_eq!(m.get(T, &[7, 7]), 707.0);
        assert_eq!(m.get(T, &[1, 1]), 0.0, "outside the space untouched");
        let agg = m.stats();
        assert_eq!(agg.total().loads, 36);
        assert_eq!(agg.total().stores, 36);
        assert_eq!(agg.total().iters, 36);
    }

    #[test]
    fn offset_load_reads_halo() {
        let mut m = machine();
        m.overlap_shift(U, 1, 0, None, ShiftKind::Circular).unwrap();
        m.reset_stats();
        let nest = copy_nest(Section::new([(1, 8), (1, 8)]), vec![1, 0]);
        run_all(&mut m, &nest, &[]);
        assert_eq!(m.get(T, &[4, 2]), 502.0, "cross-PE row via halo");
        assert_eq!(m.get(T, &[8, 3]), 103.0, "global wrap via halo");
    }

    #[test]
    fn scalar_coefficient_resolves_and_hoists() {
        let nest = LoopNest {
            space: Section::new([(1, 8), (1, 8)]),
            order: vec![0, 1],
            body: vec![
                Instr::LoadScalar { dst: 0, id: hpf_ir::ScalarId(0) },
                Instr::Load { dst: 1, array: U, offsets: vec![0, 0] },
                Instr::Bin { op: BinOp::Mul, dst: 2, a: 0, b: 1 },
                Instr::Store { array: T, offsets: vec![0, 0], src: 2 },
            ],
            regs: 3,
            unroll: None,
        };
        let mut m = machine();
        let cn = compile_nest(&nest, &m.pes[0], &[2.5]).unwrap();
        // The coefficient folds into an immediate multiply: per-point code
        // is load, mul-imm, store.
        assert_eq!(cn.ops().0.len(), 3);
        run_all(&mut m, &nest, &[2.5]);
        assert_eq!(m.get(T, &[3, 4]), 2.5 * 304.0);
        assert_eq!(m.stats().total().flops, 64, "flops counted from the source body");
    }

    #[test]
    fn where_mask_executes_as_predicated_store() {
        // WHERE (U - 450 > 0) T = 2*U (T was zero-filled at alloc).
        let nest = LoopNest {
            space: Section::new([(1, 8), (1, 8)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: U, offsets: vec![0, 0] },
                Instr::Const { dst: 1, value: 450.0 },
                Instr::Bin { op: BinOp::Sub, dst: 2, a: 0, b: 1 },
                Instr::Const { dst: 3, value: 0.0 },
                Instr::Cmp { op: CmpOp::Gt, dst: 4, a: 2, b: 3 },
                Instr::Const { dst: 5, value: 2.0 },
                Instr::Bin { op: BinOp::Mul, dst: 6, a: 5, b: 0 },
                Instr::Load { dst: 7, array: T, offsets: vec![0, 0] },
                Instr::Select { dst: 8, c: 4, t: 6, e: 7 },
                Instr::Store { array: T, offsets: vec![0, 0], src: 8 },
            ],
            regs: 9,
            unroll: None,
        };
        let mut m = machine();
        let cn = compile_nest(&nest, &m.pes[0], &[]).unwrap();
        assert!(cn.ops().0.iter().any(|o| matches!(o, Op::SelStore { .. })));
        run_all(&mut m, &nest, &[]);
        for i in 1..=8i64 {
            for j in 1..=8i64 {
                let u = (i * 100 + j) as f64;
                let want = if u > 450.0 { 2.0 * u } else { 0.0 };
                assert_eq!(m.get(T, &[i, j]), want, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn unrolled_nest_covers_all_points_with_remainder() {
        let unit = vec![
            Instr::Load { dst: 0, array: U, offsets: vec![0, 0] },
            Instr::Store { array: T, offsets: vec![0, 0], src: 0 },
        ];
        let mut jammed = unit.clone();
        let mut second = unit.clone();
        for i in &mut second {
            i.remap(&mut |r| r + 1);
            i.shift_dim(0, 1);
        }
        jammed.extend(second);
        let nest = LoopNest {
            space: Section::new([(1, 7), (1, 8)]),
            order: vec![0, 1],
            body: jammed,
            regs: 2,
            unroll: Some(Unroll { dim: 0, factor: 2, unit_body: unit, unit_regs: 1 }),
        };
        let mut m = machine();
        run_all(&mut m, &nest, &[]);
        for i in 1..=7i64 {
            for j in 1..=8i64 {
                assert_eq!(m.get(T, &[i, j]), (i * 100 + j) as f64, "at ({i},{j})");
            }
        }
        assert_eq!(m.get(T, &[8, 1]), 0.0);
        assert_eq!(m.stats().total().loads, 56);
    }

    #[test]
    fn loop_carried_register_uses_strict_mode() {
        // r0 accumulates across iteration points (read before def). The
        // interpreter's register file persists across points and starts at
        // zero; strict mode must reproduce the same running sums.
        let nest = LoopNest {
            space: Section::new([(1, 8), (1, 8)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 1, array: U, offsets: vec![0, 0] },
                Instr::Bin { op: BinOp::Add, dst: 0, a: 0, b: 1 },
                Instr::Store { array: T, offsets: vec![0, 0], src: 0 },
            ],
            regs: 2,
            unroll: None,
        };
        let mut m = machine();
        run_all(&mut m, &nest, &[]);
        // PE 0 owns (1:4,1:4); its running sum over row-major local order.
        let mut acc = 0.0;
        for i in 1..=4i64 {
            for j in 1..=4i64 {
                acc += (i * 100 + j) as f64;
                assert_eq!(m.get(T, &[i, j]), acc, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn strided_order_counts_penalty() {
        let mut m = machine();
        let mut nest = copy_nest(Section::new([(1, 8), (1, 8)]), vec![0, 0]);
        nest.order = vec![1, 0];
        run_all(&mut m, &nest, &[]);
        let s = m.stats().total();
        assert_eq!(s.strided_loads, s.loads);
        assert_eq!(m.get(T, &[5, 6]), 506.0);
    }

    #[test]
    fn empty_intersection_is_noop() {
        let m_probe = machine();
        let nest = copy_nest(Section::new([(1, 2), (1, 2)]), vec![0, 0]);
        // PE 3 owns (5:8,5:8): no intersection.
        let mut m = m_probe;
        m.reset_stats();
        let cn = compile_nest(&nest, &m.pes[3], &[]).unwrap();
        exec_compiled(&mut m.pes[3], &cn);
        assert_eq!(m.pes[3].stats, PeStats::default());
    }

    #[test]
    fn chunked_rows_match_scalar_across_chunk_boundaries() {
        // Local rows of 40 points span two chunks of the vectorized row
        // executor (32 lanes + an 8-point tail); every point must still see
        // the exact scalar result.
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        m.alloc(U, &ArrayDecl::user("U", Shape::new([80, 80]), Distribution::block(2))).unwrap();
        m.alloc(T, &ArrayDecl::user("T", Shape::new([80, 80]), Distribution::block(2))).unwrap();
        m.fill(U, |p| ((p[0] * 37 + p[1] * 11) % 101) as f64);
        let nest = LoopNest {
            space: Section::new([(1, 80), (1, 80)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: U, offsets: vec![0, 0] },
                Instr::Const { dst: 1, value: 2.0 },
                Instr::Bin { op: BinOp::Mul, dst: 2, a: 1, b: 0 },
                Instr::Bin { op: BinOp::Mul, dst: 3, a: 0, b: 0 },
                Instr::Bin { op: BinOp::Add, dst: 4, a: 2, b: 3 },
                Instr::Store { array: T, offsets: vec![0, 0], src: 4 },
            ],
            regs: 5,
            unroll: None,
        };
        let cn = compile_nest(&nest, &m.pes[0], &[]).unwrap();
        assert_eq!(cn.vectorized(), (true, true), "plain stencil rows must vectorize");
        run_all(&mut m, &nest, &[]);
        for i in 1..=80i64 {
            for j in 1..=80i64 {
                let u = ((i * 37 + j * 11) % 101) as f64;
                assert_eq!(m.get(T, &[i, j]), 2.0 * u + u * u, "at ({i},{j})");
            }
        }
    }

    #[test]
    fn aliasing_and_loop_carried_bodies_stay_on_scalar_rows() {
        // A store one lane ahead of a load on the same array: chunked
        // execution would reorder the two, so the row stays point-at-a-time.
        let m = machine();
        let nest = LoopNest {
            space: Section::new([(1, 8), (1, 8)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: T, offsets: vec![0, 1] },
                Instr::Store { array: T, offsets: vec![0, 0], src: 0 },
            ],
            regs: 1,
            unroll: None,
        };
        let cn = compile_nest(&nest, &m.pes[0], &[]).unwrap();
        assert_eq!(cn.vectorized(), (false, false));
        // Loop-carried register state (strict mode) likewise stays scalar.
        let carried = LoopNest {
            space: Section::new([(1, 8), (1, 8)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 1, array: U, offsets: vec![0, 0] },
                Instr::Bin { op: BinOp::Add, dst: 0, a: 0, b: 1 },
                Instr::Store { array: T, offsets: vec![0, 0], src: 0 },
            ],
            regs: 2,
            unroll: None,
        };
        let cn = compile_nest(&carried, &m.pes[0], &[]).unwrap();
        assert_eq!(cn.vectorized(), (false, false));
    }

    #[test]
    fn folding_shrinks_a_coefficient_stencil() {
        // 0.1*U(i-1,j) + 0.2*U(i,j-1) + 0.4*U + 0.2*U(i+1,j) + 0.1*U(i,j+1):
        // 20 source instructions; constants hoist and mul-accs fuse.
        let mut body = Vec::new();
        let mut acc = None;
        for (k, (c, off)) in
            [(0.1, [-1i64, 0i64]), (0.2, [0, -1]), (0.4, [0, 0]), (0.2, [1, 0]), (0.1, [0, 1])]
                .into_iter()
                .enumerate()
        {
            let r = 4 * k as u16;
            body.push(Instr::Const { dst: r, value: c });
            body.push(Instr::Load { dst: r + 1, array: U, offsets: off.to_vec() });
            body.push(Instr::Bin { op: BinOp::Mul, dst: r + 2, a: r, b: r + 1 });
            if let Some(prev) = acc {
                body.push(Instr::Bin { op: BinOp::Add, dst: r + 3, a: prev, b: r + 2 });
                acc = Some(r + 3);
            } else {
                acc = Some(r + 2);
            }
        }
        body.push(Instr::Store { array: T, offsets: vec![0, 0], src: acc.unwrap() });
        let nest = LoopNest {
            space: Section::new([(2, 7), (2, 7)]),
            order: vec![0, 1],
            body,
            regs: 20,
            unroll: None,
        };
        let m = machine();
        let cn = compile_nest(&nest, &m.pes[0], &[]).unwrap();
        let n_ops = cn.ops().0.len();
        // 20 source instructions should compile to ~11 ops (5 loads, one
        // immediate mul, 4 fused mul-accs, one store).
        assert!(
            n_ops * 3 <= nest.body.len() * 2,
            "expected folding to shrink the body: {n_ops} ops from {} instrs",
            nest.body.len()
        );
        assert!(cn.preload_count() >= 1, "constants should hoist to preloads");
    }
}
