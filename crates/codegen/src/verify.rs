//! The bytecode verifier: an abstract interpreter over compiled kernels
//! that machine-checks every invariant the unchecked row executors rely on.
//!
//! [`compile_nest`](crate::compile_nest) emits kernels whose execution is
//! *trusted*: `run_row::<false>` indexes registers, array slots and subgrid
//! storage unchecked, justified by compile-time validation plus one hoisted
//! bounds proof per row. This module re-derives each of those obligations
//! from the finished [`CompiledNest`] alone — independently of how the
//! compiler established them — and reports violations as standard
//! [`Diagnostic`]s:
//!
//! - **BV001 — register and slot discipline.** Every register operand is
//!   inside the register file, every slot operand inside the array table,
//!   no op overwrites a preloaded register (the chunked executor broadcasts
//!   preloads once and assumes they survive), and in fast (non-strict) mode
//!   every register read is preceded by a definition — the property that
//!   makes dropping dead writes and reordering lanes sound.
//! - **BV002 — strict-mode discipline.** A kernel whose body observes
//!   loop-carried register state must take the interpreter-faithful
//!   translation: no preloads, no fused ops (`MulAcc*`/`SelStore`), and no
//!   chunked execution. Any of those appearing in a strict kernel would
//!   change observable results.
//! - **BV003 — bounds. (a)** Every memory op's flat delta lies inside the
//!   kernel's declared `[min_delta, max_delta]` envelope — the soundness
//!   precondition of the hoisted per-row proof (`first = base + min_delta`,
//!   `last = last_base + max_delta`). **(b)** Interval analysis over the
//!   kernel's own base/step/count geometry: the extreme flat indices any
//!   row can touch stay inside `[0, len)` of the PE's subgrid (owned cells
//!   plus ghost layer).
//! - **BV004 — chunk safety.** For bodies flagged for the 32-lane chunked
//!   executor, re-derive store/load aliasing disjointness from scratch: no
//!   store in one lane may touch another lane's memory operand (a flat-
//!   delta difference of `k * step`, `0 < k <` [`LANES`]). This repeats the
//!   compiler's `vector_safe` conclusion without sharing its code.
//!
//! The verifier is *sound but intentionally not minimal*: it flags anything
//! it cannot prove safe. Compiler-emitted kernels always verify clean (a
//! property the workspace-root proptests enforce); the mutation-kill suite
//! injects [`Fault`]s and asserts each one is rejected.
//!
//! Note what BV003 does **not** check: ghost-cell *freshness*. A kernel
//! reading a halo cell no communication filled is memory-safe (the cell
//! exists) but numerically stale — that is the halo-safety lints' job
//! (HS001/HS002 in `hpf-analysis`), not the verifier's.

use crate::bytecode::{KernelCode, Op, Reg, Slot};
use crate::vm::{CompiledNest, LANES};
use hpf_ir::diag::Diagnostic;

/// Register/slot discipline violation (out-of-range operand, read before
/// definition in fast mode, write to a preloaded register).
pub const BV001: &str = "BV001";
/// Strict-mode discipline violation (preloads, fused ops, or chunked
/// execution in a loop-carried kernel).
pub const BV002: &str = "BV002";
/// Bounds violation (delta outside the declared envelope, or the interval
/// analysis cannot keep every row access inside `[0, len)`).
pub const BV003: &str = "BV003";
/// Chunk-safety violation (a store may alias another lane's memory op in a
/// body flagged for the chunked executor).
pub const BV004: &str = "BV004";

/// Verify one compiled kernel. Returns every violated obligation as an
/// error diagnostic (empty = the kernel is proven safe for the unchecked
/// executors). Empty nests are trivially clean: execution is a no-op.
pub fn verify_nest(cn: &CompiledNest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if cn.empty {
        return out;
    }
    if !structure_ok(cn, &mut out) {
        return out;
    }

    let geom = Geometry::of(cn);
    for body in geom.bodies(cn) {
        check_registers(cn, &body, &mut out);
        check_bounds(cn, &geom, &body, &mut out);
        if body.vec {
            check_chunk_safety(&body, &mut out);
        }
    }
    check_strict_discipline(cn, &mut out);
    out
}

impl CompiledNest {
    /// Run the bytecode verifier on this kernel; see [`verify_nest`].
    pub fn verify(&self) -> Vec<Diagnostic> {
        verify_nest(self)
    }
}

/// Dimension tables must agree on rank and the loop order must be a
/// permutation — everything later indexes through them.
fn structure_ok(cn: &CompiledNest, out: &mut Vec<Diagnostic>) -> bool {
    let rank = cn.lo.len();
    if cn.hi.len() != rank || cn.strides.len() != rank || cn.order.len() != rank || rank == 0 {
        out.push(Diagnostic::error(
            BV001,
            format!(
                "malformed kernel: dimension tables disagree on rank \
                 (lo {}, hi {}, strides {}, order {})",
                cn.lo.len(),
                cn.hi.len(),
                cn.strides.len(),
                cn.order.len()
            ),
        ));
        return false;
    }
    let mut seen = vec![false; rank];
    for &d in &cn.order {
        if d >= rank || std::mem::replace(&mut seen[d], true) {
            out.push(Diagnostic::error(
                BV001,
                format!("malformed kernel: loop order {:?} is not a permutation", cn.order),
            ));
            return false;
        }
    }
    if cn.factor < 1 {
        out.push(Diagnostic::error(
            BV001,
            format!("malformed kernel: unroll factor {} < 1", cn.factor),
        ));
        return false;
    }
    true
}

/// The executor's grouping geometry, re-derived from the kernel alone: how
/// many outermost iterations run the jammed body, where the unit remainder
/// starts, and what step each body's rows advance by.
struct Geometry {
    /// Outermost loop dimension.
    d0: usize,
    /// Jammed group starts along `d0`: `lo, lo+f, ..` (`groups` of them).
    groups: i64,
    /// Remainder iterations along `d0` after the last full group.
    rem: i64,
    /// Flat-index step of a chunked jammed row.
    jam_step: i64,
    /// Flat-index step of a chunked unit row.
    unit_step: i64,
}

impl Geometry {
    fn of(cn: &CompiledNest) -> Geometry {
        let d0 = cn.order[0];
        let n0 = (cn.hi[d0] - cn.lo[d0] + 1).max(0);
        let groups = n0 / cn.factor;
        let rem = n0 - groups * cn.factor;
        let inner = *cn.order.last().unwrap();
        let (jam_step, unit_step) = if cn.order.len() == 1 {
            (cn.factor * cn.strides[d0], cn.strides[d0])
        } else {
            (cn.strides[inner], cn.strides[inner])
        };
        Geometry { d0, groups, rem, jam_step, unit_step }
    }

    /// The bodies the executor can actually reach, with each one's
    /// outermost-index range (group starts for the jammed body, remainder
    /// points for the unit body).
    fn bodies<'a>(&self, cn: &'a CompiledNest) -> Vec<BodyView<'a>> {
        let mut v = Vec::new();
        if self.groups > 0 {
            v.push(BodyView {
                name: "jammed",
                code: &cn.jammed,
                vec: cn.jam_vec,
                step: self.jam_step,
                outer: (cn.lo[self.d0], cn.lo[self.d0] + (self.groups - 1) * cn.factor),
            });
        }
        if self.rem > 0 {
            v.push(BodyView {
                name: "unit",
                code: cn.unit.as_ref().unwrap_or(&cn.jammed),
                vec: cn.unit_vec,
                step: self.unit_step,
                outer: (cn.lo[self.d0] + self.groups * cn.factor, cn.hi[self.d0]),
            });
        }
        v
    }
}

/// One reachable body plus the geometry its rows execute under.
struct BodyView<'a> {
    name: &'static str,
    code: &'a KernelCode,
    /// Flagged for the chunked (vectorized) executor.
    vec: bool,
    /// Flat-index step between consecutive chunk lanes.
    step: i64,
    /// Inclusive range of the outermost loop index this body covers.
    outer: (i64, i64),
}

/// Registers an op reads, in op order.
fn op_reads(op: &Op) -> Vec<Reg> {
    match *op {
        Op::Const { .. } | Op::Load { .. } => vec![],
        Op::Store { src, .. } => vec![src],
        Op::Bin { a, b, .. } | Op::Cmp { a, b, .. } => vec![a, b],
        Op::BinImmR { a, .. } | Op::CmpImmR { a, .. } => vec![a],
        Op::BinImmL { b, .. } | Op::CmpImmL { b, .. } => vec![b],
        Op::MulAcc { acc, a, b, .. } => vec![acc, a, b],
        Op::MulAccImmL { acc, b, .. } => vec![acc, b],
        Op::MulAccImmR { acc, a, .. } => vec![acc, a],
        Op::Neg { src, .. } | Op::Copy { src, .. } => vec![src],
        Op::Select { c, t, e, .. } => vec![c, t, e],
        Op::SelStore { c, t, e, .. } => vec![c, t, e],
    }
}

/// The register an op defines, if any.
fn op_dst(op: &Op) -> Option<Reg> {
    match *op {
        Op::Store { .. } | Op::SelStore { .. } => None,
        Op::Const { dst, .. }
        | Op::Load { dst, .. }
        | Op::Bin { dst, .. }
        | Op::BinImmR { dst, .. }
        | Op::BinImmL { dst, .. }
        | Op::MulAcc { dst, .. }
        | Op::MulAccImmL { dst, .. }
        | Op::MulAccImmR { dst, .. }
        | Op::Neg { dst, .. }
        | Op::Copy { dst, .. }
        | Op::Cmp { dst, .. }
        | Op::CmpImmR { dst, .. }
        | Op::CmpImmL { dst, .. }
        | Op::Select { dst, .. } => Some(dst),
    }
}

/// The array slot and flat delta of a memory op, if any.
fn op_mem(op: &Op) -> Option<(Slot, i32, bool)> {
    match *op {
        Op::Load { arr, delta, .. } => Some((arr, delta, false)),
        Op::Store { arr, delta, .. } | Op::SelStore { arr, delta, .. } => Some((arr, delta, true)),
        _ => None,
    }
}

/// BV001: abstract interpretation of the register file. The abstract state
/// is the set of defined registers, seeded with the preloads; each op must
/// read only defined registers (fast mode), stay inside the register file
/// and slot table, and never define a preloaded register.
fn check_registers(cn: &CompiledNest, body: &BodyView, out: &mut Vec<Diagnostic>) {
    let regs = cn.regs;
    let mut defined = vec![false; regs];
    for &(r, _) in &cn.preloads {
        if (r as usize) < regs {
            defined[r as usize] = true;
        } else {
            out.push(Diagnostic::error(
                BV001,
                format!("preload register r{r} outside the register file (size {regs})"),
            ));
        }
    }
    let preloaded: Vec<bool> = {
        let mut p = vec![false; regs];
        for &(r, _) in &cn.preloads {
            if (r as usize) < regs {
                p[r as usize] = true;
            }
        }
        p
    };
    for (i, op) in body.code.ops.iter().enumerate() {
        for r in op_reads(op) {
            if r as usize >= regs {
                out.push(Diagnostic::error(
                    BV001,
                    format!(
                        "{} op {i} reads register r{r} outside the register file (size {regs})",
                        body.name
                    ),
                ));
            } else if !cn.strict && !defined[r as usize] {
                out.push(Diagnostic::error(
                    BV001,
                    format!(
                        "{} op {i} reads register r{r} before any definition — fast-mode \
                         kernels must define every register they read",
                        body.name
                    ),
                ));
            }
        }
        if let Some((slot, _, _)) = op_mem(op) {
            if slot as usize >= cn.arrays.len() {
                out.push(Diagnostic::error(
                    BV001,
                    format!(
                        "{} op {i} addresses array slot {slot} outside the slot table \
                         (size {})",
                        body.name,
                        cn.arrays.len()
                    ),
                ));
            }
        }
        if let Some(d) = op_dst(op) {
            if d as usize >= regs {
                out.push(Diagnostic::error(
                    BV001,
                    format!(
                        "{} op {i} defines register r{d} outside the register file (size {regs})",
                        body.name
                    ),
                ));
            } else {
                if preloaded[d as usize] {
                    out.push(Diagnostic::error(
                        BV001,
                        format!(
                            "{} op {i} overwrites preloaded register r{d} — the chunked \
                             executor broadcasts preloads once and assumes they survive",
                            body.name
                        ),
                    ));
                }
                defined[d as usize] = true;
            }
        }
    }
}

/// BV002: a strict (loop-carried) kernel must be the interpreter-faithful
/// translation — no preloads, no fused ops, no chunked execution.
fn check_strict_discipline(cn: &CompiledNest, out: &mut Vec<Diagnostic>) {
    if !cn.strict {
        return;
    }
    if !cn.preloads.is_empty() {
        out.push(Diagnostic::error(
            BV002,
            format!(
                "strict kernel hoists {} constant preload(s) — loop-carried register \
                 state must start at zero like the interpreter's file",
                cn.preloads.len()
            ),
        ));
    }
    for (name, code) in [("jammed", &cn.jammed), ("unit", cn.unit.as_ref().unwrap_or(&cn.jammed))] {
        if let Some(i) = code.ops.iter().position(|op| {
            matches!(
                op,
                Op::MulAcc { .. }
                    | Op::MulAccImmL { .. }
                    | Op::MulAccImmR { .. }
                    | Op::SelStore { .. }
            )
        }) {
            out.push(Diagnostic::error(
                BV002,
                format!(
                    "strict kernel contains fused op at {name} position {i} — fusion drops \
                     intermediate register writes that loop-carried bodies may observe"
                ),
            ));
        }
    }
    if cn.jam_vec || cn.unit_vec {
        out.push(Diagnostic::error(
            BV002,
            "strict kernel flagged for chunked execution — lanes would not observe \
             the previous point's register state"
                .to_string(),
        ));
    }
}

/// BV003: (a) every memory delta inside the declared envelope; (b) interval
/// analysis proving the extreme flat indices of every reachable row stay
/// inside `[0, len)`.
fn check_bounds(cn: &CompiledNest, geom: &Geometry, body: &BodyView, out: &mut Vec<Diagnostic>) {
    let (dmin, dmax) = (body.code.min_delta, body.code.max_delta);
    for (i, op) in body.code.ops.iter().enumerate() {
        if let Some((_, delta, _)) = op_mem(op) {
            let d = delta as i64;
            if d < dmin || d > dmax {
                out.push(Diagnostic::error(
                    BV003,
                    format!(
                        "{} op {i} delta {d} escapes the declared envelope [{dmin}, {dmax}] \
                         the hoisted row bounds proof covers",
                        body.name
                    ),
                ));
            }
        }
    }

    // Extreme base indices over the body's reachable iteration points:
    // per-dimension contribution intervals of `(point + halo - 1) * stride`,
    // with the outermost dimension restricted to this body's range. Rows
    // advance along the innermost dimension, whose full range is already
    // part of the interval, so `base + delta` bounds every row access —
    // including the column-major thin-strip walk, which visits the same
    // point set in a different order.
    let (mut min_base, mut max_base) = (0i64, 0i64);
    for d in 0..cn.lo.len() {
        let (dlo, dhi) = if d == geom.d0 { body.outer } else { (cn.lo[d], cn.hi[d]) };
        let a = (dlo + cn.halo - 1) * cn.strides[d];
        let b = (dhi + cn.halo - 1) * cn.strides[d];
        min_base += a.min(b);
        max_base += a.max(b);
    }
    let (first, last) = (min_base + dmin, max_base + dmax);
    if first < 0 || last >= cn.len as i64 {
        out.push(Diagnostic::error(
            BV003,
            format!(
                "{} body can touch flat indices [{first}, {last}] outside the subgrid \
                 [0, {}) — the unchecked row executor would read or write out of bounds",
                body.name, cn.len
            ),
        ));
    }
}

/// BV004: independent re-derivation of chunk safety. A store at delta `sd`
/// and a memory op at delta `md` on the same array collide across lanes iff
/// `sd - md = k * step` for some `0 < k < LANES` (lane `i`'s store hits
/// lane `i+k`'s location, or vice versa); `diff == 0` is the same lane and
/// per-lane op order is preserved. Derived by enumerating `k` directly —
/// not by the compiler's divisibility test — so a bug in one cannot hide in
/// the other.
fn check_chunk_safety(body: &BodyView, out: &mut Vec<Diagnostic>) {
    if body.step == 0 {
        out.push(Diagnostic::error(
            BV004,
            format!("{} body chunked with step 0 — every lane would alias", body.name),
        ));
        return;
    }
    let mems: Vec<(Slot, i64, bool)> = body
        .code
        .ops
        .iter()
        .filter_map(op_mem)
        .map(|(a, d, is_store)| (a, d as i64, is_store))
        .collect();
    for &(sa, sd, s_store) in &mems {
        if !s_store {
            continue;
        }
        for &(ma, md, _) in &mems {
            if sa != ma || sd == md {
                continue;
            }
            let diff = sd - md;
            for k in 1..LANES as i64 {
                if diff == k * body.step || diff == -k * body.step {
                    out.push(Diagnostic::error(
                        BV004,
                        format!(
                            "{} body chunked with step {}: store at delta {sd} aliases a \
                             memory op at delta {md} {k} lane(s) away (chunk width {LANES})",
                            body.name, body.step
                        ),
                    ));
                    break;
                }
            }
        }
    }
}

/// A deliberate kernel corruption for the mutation-kill suite: each variant
/// violates one invariant the verifier proves, so `verify()` must reject
/// the mutated kernel with a `BV*` diagnostic. [`CompiledNest::inject`]
/// returns `false` when the fault does not apply to this kernel (no such
/// op, nothing to corrupt), letting drivers skip inapplicable mutations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Fault {
    /// Swap ops `i` and `j` of the jammed (`unit == false`) or unit body —
    /// reorders a definition after its use (BV001).
    SwapOps {
        /// Corrupt the unit body instead of the jammed body.
        unit: bool,
        /// First op position.
        i: usize,
        /// Second op position.
        j: usize,
    },
    /// Add `by` to the delta of the `i`-th *memory* op of the body without
    /// updating the declared envelope (BV003).
    PerturbDelta {
        /// Corrupt the unit body instead of the jammed body.
        unit: bool,
        /// Index among the body's memory ops (loads, stores, sel-stores).
        i: usize,
        /// Delta perturbation.
        by: i32,
    },
    /// Widen the declared upper loop bound of dimension `dim` by `by` —
    /// rows then walk past the subgrid (BV003).
    WidenBounds {
        /// Dimension whose upper bound grows.
        dim: usize,
        /// Extra iterations.
        by: i64,
    },
    /// Shrink the body's declared `[min_delta, max_delta]` envelope to
    /// `[0, 0]` — the hoisted row proof then covers nothing (BV003).
    ShrinkDeclaredDeltas {
        /// Corrupt the unit body instead of the jammed body.
        unit: bool,
    },
    /// Retarget the first register operand of op `i` to `reg` (out-of-range
    /// or undefined registers trip BV001).
    RetargetReg {
        /// Corrupt the unit body instead of the jammed body.
        unit: bool,
        /// Op position.
        i: usize,
        /// New register for the op's first source operand.
        reg: Reg,
    },
    /// Claim chunk safety for both bodies regardless of the aliasing test
    /// (BV004, or BV002 for strict kernels).
    ForceVectorized,
}

impl CompiledNest {
    /// Apply a [`Fault`] to this kernel in place, for the mutation-kill
    /// suite. Returns `true` when the corruption was applied; `false` when
    /// it does not apply (out-of-range positions, no matching op, or the
    /// fault would change nothing).
    pub fn inject(&mut self, fault: Fault) -> bool {
        fn body_mut(cn: &mut CompiledNest, unit: bool) -> &mut KernelCode {
            if unit {
                cn.unit.as_mut().unwrap_or(&mut cn.jammed)
            } else {
                &mut cn.jammed
            }
        }
        /// Is the `KernelCode` the fault would mutate reachable by the
        /// executor? Faults on dead code (an empty kernel, a remainder
        /// body that never runs, a jammed body with zero groups) change
        /// nothing observable, so they do not apply. Note the shared-code
        /// cases: when `unit` is `None` both body views execute the
        /// jammed `KernelCode`.
        fn body_live(cn: &CompiledNest, unit: bool) -> bool {
            if cn.empty || cn.order.is_empty() {
                return false;
            }
            let g = Geometry::of(cn);
            if unit && cn.unit.is_some() {
                g.rem > 0
            } else if unit {
                g.groups > 0 || g.rem > 0
            } else {
                g.groups > 0 || (cn.unit.is_none() && g.rem > 0)
            }
        }
        if self.empty || self.order.is_empty() {
            return false;
        }
        match fault {
            Fault::SwapOps { unit, i, j } => {
                if !body_live(self, unit) {
                    return false;
                }
                let code = body_mut(self, unit);
                if i == j || i >= code.ops.len() || j >= code.ops.len() {
                    return false;
                }
                code.ops.swap(i, j);
                true
            }
            Fault::PerturbDelta { unit, i, by } => {
                if by == 0 || !body_live(self, unit) {
                    return false;
                }
                let code = body_mut(self, unit);
                let mem_positions: Vec<usize> = code
                    .ops
                    .iter()
                    .enumerate()
                    .filter(|(_, op)| op_mem(op).is_some())
                    .map(|(p, _)| p)
                    .collect();
                let Some(&p) = mem_positions.get(i) else { return false };
                match &mut code.ops[p] {
                    Op::Load { delta, .. }
                    | Op::Store { delta, .. }
                    | Op::SelStore { delta, .. } => *delta = delta.wrapping_add(by),
                    _ => unreachable!("op_mem selected a memory op"),
                }
                true
            }
            Fault::WidenBounds { dim, by } => {
                if by <= 0 || dim >= self.hi.len() {
                    return false;
                }
                self.hi[dim] += by;
                true
            }
            Fault::ShrinkDeclaredDeltas { unit } => {
                if !body_live(self, unit) {
                    return false;
                }
                let code = body_mut(self, unit);
                if code.min_delta == 0 && code.max_delta == 0 {
                    return false;
                }
                code.min_delta = 0;
                code.max_delta = 0;
                true
            }
            Fault::RetargetReg { unit, i, reg } => {
                if !body_live(self, unit) {
                    return false;
                }
                let code = body_mut(self, unit);
                let Some(op) = code.ops.get_mut(i) else { return false };
                match op {
                    Op::Store { src, .. } => *src = reg,
                    Op::Bin { a, .. }
                    | Op::BinImmR { a, .. }
                    | Op::Cmp { a, .. }
                    | Op::CmpImmR { a, .. } => *a = reg,
                    Op::BinImmL { b, .. } | Op::CmpImmL { b, .. } => *b = reg,
                    Op::MulAcc { acc, .. }
                    | Op::MulAccImmL { acc, .. }
                    | Op::MulAccImmR { acc, .. } => *acc = reg,
                    Op::Neg { src, .. } | Op::Copy { src, .. } => *src = reg,
                    Op::Select { c, .. } | Op::SelStore { c, .. } => *c = reg,
                    Op::Const { .. } | Op::Load { .. } => return false,
                }
                true
            }
            Fault::ForceVectorized => {
                if self.jam_vec && self.unit_vec {
                    return false;
                }
                self.jam_vec = true;
                self.unit_vec = true;
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A hand-built 1-D kernel over a 16-cell subgrid with halo 1: bounds
    /// `lo..=hi` in local coordinates, flat length 18.
    fn kernel_1d(ops: Vec<Op>, regs: usize, lo: i64, hi: i64) -> CompiledNest {
        let (mut min_delta, mut max_delta) = (0i64, 0i64);
        for op in &ops {
            if let Some((_, d, _)) = op_mem(op) {
                min_delta = min_delta.min(d as i64);
                max_delta = max_delta.max(d as i64);
            }
        }
        CompiledNest {
            empty: false,
            lo: vec![lo],
            hi: vec![hi],
            strides: vec![1],
            halo: 1,
            order: vec![0],
            factor: 1,
            jammed: KernelCode { ops, min_delta, max_delta, loads: 1, stores: 1, flops: 0 },
            unit: None,
            arrays: vec![0, 1],
            regs,
            preloads: vec![],
            strided: false,
            len: 18,
            jam_vec: false,
            unit_vec: false,
            strict: false,
            compile_ns: 0,
        }
    }

    fn copy_ops() -> Vec<Op> {
        vec![Op::Load { dst: 0, arr: 0, delta: 0 }, Op::Store { arr: 1, delta: 0, src: 0 }]
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_kernel_verifies_clean() {
        let cn = kernel_1d(copy_ops(), 1, 1, 16);
        assert!(cn.verify().is_empty(), "{:?}", cn.verify());
    }

    #[test]
    fn empty_kernel_is_trivially_clean() {
        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        cn.empty = true;
        cn.regs = 0; // even nonsense fields are unreachable
        assert!(cn.verify().is_empty());
    }

    #[test]
    fn bv001_flags_out_of_range_register_and_slot() {
        let cn = kernel_1d(
            vec![Op::Load { dst: 7, arr: 0, delta: 0 }, Op::Store { arr: 5, delta: 0, src: 7 }],
            1,
            1,
            16,
        );
        let d = cn.verify();
        assert!(codes(&d).iter().all(|&c| c == BV001), "{d:?}");
        assert!(d.len() >= 3, "dst, slot and src violations: {d:?}");
    }

    #[test]
    fn bv001_flags_read_before_def_in_fast_mode() {
        let cn = kernel_1d(vec![Op::Store { arr: 0, delta: 0, src: 0 }], 1, 1, 16);
        let d = cn.verify();
        assert_eq!(codes(&d), vec![BV001], "{d:?}");
        assert!(d[0].message.contains("before any definition"));
    }

    #[test]
    fn bv001_allows_read_before_def_in_strict_mode() {
        let mut cn = kernel_1d(vec![Op::Store { arr: 0, delta: 0, src: 0 }], 1, 1, 16);
        cn.strict = true;
        assert!(cn.verify().is_empty());
    }

    #[test]
    fn bv001_flags_preload_overwrite() {
        let mut cn = kernel_1d(
            vec![Op::Const { dst: 0, v: 1.0 }, Op::Store { arr: 0, delta: 0, src: 0 }],
            1,
            1,
            16,
        );
        cn.preloads = vec![(0, 2.0)];
        let d = cn.verify();
        assert_eq!(codes(&d), vec![BV001], "{d:?}");
        assert!(d[0].message.contains("preloaded"));
    }

    #[test]
    fn bv002_flags_fused_ops_and_preloads_in_strict_kernels() {
        let mut cn = kernel_1d(
            vec![
                Op::Load { dst: 0, arr: 0, delta: 0 },
                Op::MulAcc { dst: 1, acc: 1, a: 0, b: 0 },
                Op::Store { arr: 1, delta: 0, src: 1 },
            ],
            2,
            1,
            16,
        );
        cn.strict = true;
        cn.preloads = vec![(0, 3.0)];
        let d = cn.verify();
        assert!(codes(&d).contains(&BV002), "{d:?}");
        assert!(d.iter().any(|x| x.message.contains("fused")));
        assert!(d.iter().any(|x| x.message.contains("preload")));
    }

    #[test]
    fn bv003_flags_delta_escaping_declared_envelope() {
        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        assert!(cn.inject(Fault::PerturbDelta { unit: false, i: 0, by: 3 }));
        let d = cn.verify();
        assert_eq!(codes(&d), vec![BV003], "{d:?}");
        assert!(d[0].message.contains("envelope"));
    }

    #[test]
    fn bv003_flags_rows_escaping_the_subgrid() {
        // lo..=hi touches flat indices up to (17+1-1)+0 = 17 < 18: clean.
        let cn = kernel_1d(copy_ops(), 1, 1, 17);
        assert!(cn.verify().is_empty());
        // One wider and the last row escapes.
        let mut wide = kernel_1d(copy_ops(), 1, 1, 17);
        assert!(wide.inject(Fault::WidenBounds { dim: 0, by: 1 }));
        let d = wide.verify();
        assert_eq!(codes(&d), vec![BV003], "{d:?}");
    }

    #[test]
    fn bv003_flags_shrunk_declared_envelope() {
        let ops =
            vec![Op::Load { dst: 0, arr: 0, delta: -1 }, Op::Store { arr: 1, delta: 0, src: 0 }];
        let mut cn = kernel_1d(ops, 1, 2, 16);
        assert!(cn.verify().is_empty());
        assert!(cn.inject(Fault::ShrinkDeclaredDeltas { unit: false }));
        let d = cn.verify();
        assert_eq!(codes(&d), vec![BV003], "{d:?}");
    }

    #[test]
    fn bv004_flags_cross_lane_aliasing() {
        // Store one step ahead of the load on the same array: lane i's
        // store hits lane i+1's load.
        let ops =
            vec![Op::Load { dst: 0, arr: 0, delta: 0 }, Op::Store { arr: 0, delta: 1, src: 0 }];
        let mut cn = kernel_1d(ops, 1, 1, 15);
        assert!(cn.verify().is_empty(), "scalar rows are fine");
        assert!(cn.inject(Fault::ForceVectorized));
        let d = cn.verify();
        assert_eq!(codes(&d), vec![BV004], "{d:?}");
        assert!(d[0].message.contains("lane"));
    }

    #[test]
    fn bv004_accepts_disjoint_arrays_and_same_location() {
        // Distinct arrays and same-delta store/load chunk safely.
        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        assert!(cn.inject(Fault::ForceVectorized));
        assert!(cn.verify().is_empty(), "{:?}", cn.verify());
    }

    #[test]
    fn bv002_flags_forced_vectorization_of_strict_kernels() {
        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        cn.strict = true;
        assert!(cn.inject(Fault::ForceVectorized));
        let d = cn.verify();
        assert_eq!(codes(&d), vec![BV002], "{d:?}");
    }

    #[test]
    fn swap_and_retarget_faults_trip_bv001() {
        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        assert!(cn.inject(Fault::SwapOps { unit: false, i: 0, j: 1 }));
        assert_eq!(codes(&cn.verify()), vec![BV001]);

        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        assert!(cn.inject(Fault::RetargetReg { unit: false, i: 1, reg: 9 }));
        assert!(codes(&cn.verify()).contains(&BV001));
    }

    #[test]
    fn inapplicable_faults_report_false() {
        let mut cn = kernel_1d(copy_ops(), 1, 1, 16);
        assert!(!cn.inject(Fault::SwapOps { unit: false, i: 0, j: 0 }));
        assert!(!cn.inject(Fault::SwapOps { unit: false, i: 0, j: 9 }));
        assert!(!cn.inject(Fault::PerturbDelta { unit: false, i: 5, by: 1 }));
        assert!(!cn.inject(Fault::PerturbDelta { unit: false, i: 0, by: 0 }));
        assert!(!cn.inject(Fault::WidenBounds { dim: 3, by: 1 }));
        assert!(!cn.inject(Fault::WidenBounds { dim: 0, by: 0 }));
        assert!(!cn.inject(Fault::ShrinkDeclaredDeltas { unit: false }));
        assert!(!cn.inject(Fault::RetargetReg { unit: false, i: 0, reg: 3 }), "Load has no src");
    }

    #[test]
    fn unrolled_geometry_covers_group_starts_and_remainder() {
        // factor 2 over lo=1..hi=16 with a jammed body reaching delta +1:
        // group starts 1,3,..,15; last jammed access 15+1+... within len.
        let ops = vec![
            Op::Load { dst: 0, arr: 0, delta: 0 },
            Op::Store { arr: 1, delta: 0, src: 0 },
            Op::Load { dst: 1, arr: 0, delta: 1 },
            Op::Store { arr: 1, delta: 1, src: 1 },
        ];
        let mut cn = kernel_1d(ops, 2, 1, 16);
        cn.factor = 2;
        cn.unit = Some(KernelCode {
            ops: copy_ops()
                .iter()
                .map(|op| match *op {
                    Op::Load { arr, delta, .. } => Op::Load { dst: 2, arr, delta },
                    Op::Store { arr, delta, .. } => Op::Store { arr, delta, src: 2 },
                    other => other,
                })
                .collect(),
            min_delta: 0,
            max_delta: 0,
            loads: 1,
            stores: 1,
            flops: 0,
        });
        cn.regs = 3;
        assert!(cn.verify().is_empty(), "{:?}", cn.verify());
        // Widening the bound pushes the remainder row out of the subgrid.
        assert!(cn.inject(Fault::WidenBounds { dim: 0, by: 2 }));
        assert!(codes(&cn.verify()).contains(&BV003));
    }
}
