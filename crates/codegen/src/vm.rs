//! The kernel VM: per-PE compiled nests and their execution over subgrid
//! storage.
//!
//! [`compile_nest`] specializes one loop nest against one PE's subgrid
//! layout: SPMD bounds reduction, flat-index deltas, constant preloads, and
//! the jammed/unit (interior/boundary) body split are all resolved at
//! compile time. [`exec_compiled`] then walks the iteration space *by rows*
//! (maximal runs of the innermost loop): each row performs **one** bounds
//! check — `base + min_delta` and `last_base + max_delta` against the flat
//! slice — and when it passes, the whole row executes with unchecked
//! indexing. Register and array-slot indices are validated at compile time,
//! so the only runtime obligation is that row check; rows that fail it
//! (impossible for halo-lint-clean programs, see DESIGN.md §5c) take a
//! checked fallback that panics exactly where the interpreter would.
//!
//! Rows the compiler proves chunk-safe ([`vector_safe`]: no store in one
//! lane can alias another lane's memory op, and no register state carries
//! between points) run through a *chunked* executor: each op executes over
//! up to [`LANES`] consecutive points before the next op dispatches, which
//! amortizes dispatch cost over the chunk and turns every op into a
//! straight-line lane loop the optimizer vectorizes. Contiguous rows load
//! and store via `memcpy`-style block moves.
//!
//! Execution order, operation order, and rounding are identical to the tree
//! interpreter (`hpf-exec`'s `exec_nest`): results are bitwise equal and the
//! `PeStats` counters match, because they are derived from the *source*
//! body with the interpreter's own counting rules.

use crate::bytecode::{compile_body, reads_before_def, BodyCx, KernelCode, Op};
use hpf_ir::expr::CmpOp;
use hpf_ir::BinOp;
use hpf_passes::loopir::{Instr, LoopNest};
use hpf_runtime::PeState;

/// Chunk width of the vectorized row executor: each op runs over this many
/// consecutive row points before the VM dispatches the next op, amortizing
/// dispatch cost and exposing straight-line lane loops the optimizer
/// auto-vectorizes.
pub(crate) const LANES: usize = 32;

/// One loop nest compiled for one PE's subgrid layout. Build with
/// [`compile_nest`]; execute (many times) with [`exec_compiled`]. Fields are
/// crate-visible so the static verifier (`crate::verify`) can re-derive the
/// executor's safety obligations from the same data the executor runs on.
#[derive(Clone, Debug)]
pub struct CompiledNest {
    /// This PE owns no part of the iteration space: execution is a no-op.
    pub(crate) empty: bool,
    /// Local loop bounds (inclusive), per dimension.
    pub(crate) lo: Vec<i64>,
    pub(crate) hi: Vec<i64>,
    /// Row-major strides of every referenced subgrid (layouts verified equal).
    pub(crate) strides: Vec<i64>,
    /// Ghost-layer width of the shared layout.
    pub(crate) halo: i64,
    /// Loop order, outermost first.
    pub(crate) order: Vec<usize>,
    /// Unroll factor of the outermost loop (1 when not unrolled).
    pub(crate) factor: i64,
    /// Jammed (interior) body.
    pub(crate) jammed: KernelCode,
    /// Unit body for remainder (boundary) iterations of the unrolled loop.
    pub(crate) unit: Option<KernelCode>,
    /// Array table: `arrays[slot]` is the raw `ArrayId` index.
    pub(crate) arrays: Vec<u32>,
    /// Register-file size (jammed + unit + preloads).
    pub(crate) regs: usize,
    /// Constants written once per execution.
    pub(crate) preloads: Vec<(u16, f64)>,
    /// Innermost loop is not over the storage-contiguous dimension.
    pub(crate) strided: bool,
    /// Flat length of every referenced subgrid.
    pub(crate) len: usize,
    /// Jammed rows may run through the chunked (vectorized) executor.
    pub(crate) jam_vec: bool,
    /// Unit/remainder rows may run through the chunked executor.
    pub(crate) unit_vec: bool,
    /// Bodies share one register file with the interpreter's persistent
    /// numbering (loop-carried state): no hoisting, fusion or chunking.
    pub(crate) strict: bool,
    /// Wall nanoseconds [`compile_nest`] spent producing this kernel.
    pub(crate) compile_ns: u64,
}

impl CompiledNest {
    /// Wall nanoseconds spent compiling this kernel (one nest on one PE) —
    /// the per-kernel term behind the driver track's kernel-compile spans.
    pub fn compile_ns(&self) -> u64 {
        self.compile_ns
    }
}

/// Compile `nest` for the layout `pe` holds. Arrays referenced by the body
/// must already be allocated. Returns `None` when the nest cannot be
/// compiled — referenced subgrids disagree on layout, index ranges overflow
/// the bytecode, or the unroll annotation is malformed — in which case the
/// caller falls back to the interpreter for this (nest, PE) pair.
pub fn compile_nest(nest: &LoopNest, pe: &PeState, scalars: &[f64]) -> Option<CompiledNest> {
    let t0 = std::time::Instant::now();
    let probe = nest.body.iter().find_map(|i| match i {
        Instr::Load { array, .. } | Instr::Store { array, .. } => Some(*array),
        _ => None,
    })?;
    let sub = pe.subgrids.get(probe.0 as usize)?.as_ref()?;
    let (owned, ext, strides, halo, len) =
        (sub.owned.clone(), sub.ext.clone(), sub.strides().to_vec(), sub.halo, sub.raw().len());

    // Every referenced array must share the probe's layout: the VM reuses
    // one base index and one flat length for all of them.
    let bodies: [&[Instr]; 2] =
        [&nest.body, nest.unroll.as_ref().map_or(&[][..], |u| &u.unit_body)];
    for i in bodies.iter().flat_map(|b| b.iter()) {
        if let Instr::Load { array, .. } | Instr::Store { array, .. } = i {
            let s = pe.subgrids.get(array.0 as usize)?.as_ref()?;
            if s.strides() != strides.as_slice() || s.halo != halo || s.raw().len() != len {
                return None;
            }
        }
    }

    let rank = ext.len();
    if nest.order.len() != rank {
        return None;
    }
    let factor = match &nest.unroll {
        Some(u) => {
            if u.dim != nest.order[0] || u.factor < 2 {
                return None;
            }
            u.factor as i64
        }
        None => 1,
    };

    let mut empty = ext.contains(&0);
    let mut lo = vec![0i64; rank];
    let mut hi = vec![0i64; rank];
    for d in 0..rank {
        let (olo, _) = owned.dim(d);
        let (slo, shi) = nest.space.dim(d);
        lo[d] = (slo - olo + 1).max(1);
        hi[d] = (shi - olo + 1).min(ext[d] as i64);
        if hi[d] < lo[d] {
            empty = true;
        }
    }

    // Hoisting constants out of the per-point code is only sound when no
    // body observes register state it did not write itself; otherwise fall
    // back to a strict translation sharing one register numbering, exactly
    // like the interpreter's persistent register file.
    let strict = bodies.iter().any(|b| reads_before_def(b));
    let jr = nest.regs;
    let ur = nest.unroll.as_ref().map_or(0, |u| u.unit_regs);
    let unit_base = if strict { 0 } else { jr };

    let mut cx = BodyCx::with_min_regs(if strict { jr.max(ur) } else { 0 });
    let jammed = compile_body(&nest.body, &strides, scalars, 0, strict, &mut cx)?;
    let unit = match &nest.unroll {
        Some(u) => Some(compile_body(&u.unit_body, &strides, scalars, unit_base, strict, &mut cx)?),
        None => None,
    };

    // Chunked (vectorized) execution runs a row op-at-a-time over up to
    // LANES points, reordering memory ops across lanes. That is observable
    // only when a store in one lane can alias a load or store in a *different*
    // lane of the same chunk, or when register state carries between points
    // (strict mode). Both are decidable here because each body's row step is
    // fixed at compile time; rows failing the test run point-at-a-time.
    let istrides: Vec<i64> = strides.iter().map(|&s| s as i64).collect();
    let inner_step = istrides[*nest.order.last()?];
    let (jam_step, unit_step) = if rank == 1 {
        (factor * istrides[nest.order[0]], istrides[nest.order[0]])
    } else {
        (inner_step, inner_step)
    };
    let jam_vec = !strict && vector_safe(&jammed.ops, jam_step);
    let unit_vec = !strict && vector_safe(&unit.as_ref().unwrap_or(&jammed).ops, unit_step);

    Some(CompiledNest {
        empty,
        lo,
        hi,
        strides: istrides,
        halo: halo as i64,
        order: nest.order.clone(),
        factor,
        jammed,
        unit,
        arrays: cx.arrays,
        regs: cx.max_reg + 1,
        preloads: cx.preloads,
        strided: *nest.order.last()? != rank - 1 && rank > 1,
        len,
        jam_vec,
        unit_vec,
        strict,
        compile_ns: t0.elapsed().as_nanos() as u64,
    })
}

/// May `ops` execute op-at-a-time over a `LANES`-wide chunk of a row with
/// step `step` and still produce the interpreter's point-at-a-time results?
/// Only memory can carry state across lanes (fast-mode bodies define every
/// register they read), so the test is purely about aliasing: a store and
/// another memory op on the same array whose flat-delta difference is a
/// multiple of the step smaller than the chunk width would make one lane
/// touch another lane's location, and the chunk interleaving would become
/// observable.
fn vector_safe(ops: &[Op], step: i64) -> bool {
    if step == 0 {
        return false;
    }
    let mut stores: Vec<(u16, i64)> = Vec::new();
    let mut mems: Vec<(u16, i64)> = Vec::new();
    for op in ops {
        match *op {
            Op::Store { arr, delta, .. } | Op::SelStore { arr, delta, .. } => {
                stores.push((arr, delta as i64));
                mems.push((arr, delta as i64));
            }
            Op::Load { dst: _, arr, delta } => mems.push((arr, delta as i64)),
            _ => {}
        }
    }
    stores.iter().all(|&(sa, sd)| {
        mems.iter().all(|&(ma, md)| {
            let diff = sd - md;
            sa != ma
                || diff == 0
                || diff % step != 0
                || (diff / step).unsigned_abs() >= LANES as u64
        })
    })
}

impl CompiledNest {
    /// Bytecode listing (for tests and debugging).
    pub fn ops(&self) -> (&[Op], Option<&[Op]>) {
        (&self.jammed.ops, self.unit.as_ref().map(|u| u.ops.as_slice()))
    }

    /// Constants hoisted out of the per-point code.
    pub fn preload_count(&self) -> usize {
        self.preloads.len()
    }

    /// May the (jammed, unit) bodies use the chunked row executor? (For
    /// tests and debugging.)
    pub fn vectorized(&self) -> (bool, bool) {
        (self.jam_vec, self.unit_vec)
    }

    /// Was this nest compiled in strict mode (a body reads registers it did
    /// not define, so state carries across iteration points)? Strict kernels
    /// take no hoisting, fusion or chunking — the discipline BV002 checks.
    pub fn strict(&self) -> bool {
        self.strict
    }

    /// The declared `[min_delta, max_delta]` flat-index envelope of the
    /// jammed (`unit == false`) or unit body — the envelope the per-row
    /// bounds proof hoists, and the soundness precondition BV003 re-checks
    /// against the actual memory ops.
    pub fn declared_deltas(&self, unit: bool) -> (i64, i64) {
        let k = if unit { self.unit.as_ref().unwrap_or(&self.jammed) } else { &self.jammed };
        (k.min_delta, k.max_delta)
    }

    /// Local loop bounds (inclusive, per dimension) this nest was compiled
    /// for — the PE's intersection of the iteration space with its owned
    /// block. Empty nests report `None`. Callers slicing the space for
    /// split-phase execution ([`exec_compiled_range`]) derive their
    /// sub-ranges from these.
    pub fn local_bounds(&self) -> Option<(&[i64], &[i64])> {
        if self.empty {
            None
        } else {
            Some((&self.lo, &self.hi))
        }
    }
}

/// Execute a compiled nest on the PE it was compiled for. May be called any
/// number of times (plans reuse compiled nests across time steps).
pub fn exec_compiled(pe: &mut PeState, cn: &CompiledNest) {
    if cn.empty {
        return;
    }
    exec_over(pe, cn, &cn.lo, &cn.hi, false);
}

/// Execute a compiled nest over a sub-range of its local iteration space:
/// `region[d]` is an inclusive local index range, clipped against the
/// compiled bounds. The split-phase engine uses this to run a nest's
/// interior while halo messages are in flight and its boundary strips
/// afterwards. Counter accounting matches [`exec_compiled`] piecewise —
/// callers that tile the space with factor-aligned pieces (see
/// `hpf_analysis::overlap`) observe the exact full-sweep counters.
///
/// The caller asserts the nest is iteration-local over the region (the
/// split-phase eligibility conditions), so the walk order inside the box is
/// unobservable: thin-row boxes — a split boundary's column strips — run
/// column-major, which computes identical per-point values and identical
/// counters (see `exec_over`).
pub fn exec_compiled_range(pe: &mut PeState, cn: &CompiledNest, region: &[(i64, i64)]) {
    if cn.empty {
        return;
    }
    debug_assert_eq!(region.len(), cn.lo.len());
    let mut lo = cn.lo.clone();
    let mut hi = cn.hi.clone();
    for (d, &(rlo, rhi)) in region.iter().enumerate() {
        lo[d] = lo[d].max(rlo);
        hi[d] = hi[d].min(rhi);
        if hi[d] < lo[d] {
            return;
        }
    }
    exec_over(pe, cn, &lo, &hi, true);
}

/// Execute a compiled nest over an explicit local box `lo..=hi` that may
/// *extend beyond* the compiled owned bounds into the ghost layers — the
/// trapezoid sub-step sweeps of the superstep schedule, which redundantly
/// recompute neighbor-owned cells from deep-halo data. The caller
/// guarantees that, per dimension, the box stays within subgrid storage
/// (`1 - halo ..= ext + halo`) and that every read offset from a box point
/// also lands in storage (expansion + read radius ≤ halo — the superstep
/// legality conditions); rows violating that fall back to the checked
/// executor and panic exactly like the interpreter would. Iteration order
/// is the compiled row-major order (no thin-box transposition): ghost
/// points overlap neighbor-owned points, so order stays observable-safe
/// only by matching the interpreter walk exactly.
pub fn exec_compiled_over(pe: &mut PeState, cn: &CompiledNest, lo: &[i64], hi: &[i64]) {
    if cn.empty {
        return;
    }
    debug_assert_eq!(lo.len(), cn.lo.len());
    if lo.iter().zip(hi).any(|(l, h)| h < l) {
        return;
    }
    exec_over(pe, cn, lo, hi, false);
}

/// Below this many points per row, a `reorder_ok` box runs column-major:
/// the per-row dispatch (bounds proof + op loop set-up) would otherwise
/// dominate rows of a handful of points.
const TRANSPOSE_MAX_ROW: i64 = 8;

/// The executor body behind [`exec_compiled`] / [`exec_compiled_range`]:
/// runs the bytecode over the box `lo..=hi` (local, inclusive). Jammed/unit
/// grouping is decided against these bounds, so a factor-aligned sub-box
/// reproduces the full sweep's grouping restricted to it. `reorder_ok`
/// means the caller proved iteration order inside the box unobservable
/// (iteration-local body), letting thin-row boxes run column-major.
fn exec_over(pe: &mut PeState, cn: &CompiledNest, lo: &[i64], hi: &[i64], reorder_ok: bool) {
    let mut regs = vec![0.0f64; cn.regs.max(1)];
    for &(r, v) in &cn.preloads {
        regs[r as usize] = v;
    }
    // Strip register file for the chunked executor: LANES lanes per register,
    // preloads broadcast once. Ops never write preload registers (their defs
    // were hoisted), so the broadcast survives the whole execution.
    let mut strips = if cn.jam_vec || cn.unit_vec {
        let mut s = vec![0.0f64; cn.regs.max(1) * LANES];
        for &(r, v) in &cn.preloads {
            s[r as usize * LANES..(r as usize + 1) * LANES].fill(v);
        }
        s
    } else {
        Vec::new()
    };

    // Raw slice table. Distinct `ArrayId`s own distinct allocations, so the
    // pointers never alias each other; ops execute strictly in order, so
    // same-array load/store ordering is preserved.
    let mut arrs: Vec<(*mut f64, usize)> = Vec::with_capacity(cn.arrays.len());
    for &a in &cn.arrays {
        let sub = pe.subgrids[a as usize].as_mut().expect("allocated");
        let raw = sub.raw_mut();
        arrs.push((raw.as_mut_ptr(), raw.len()));
    }

    let rank = cn.order.len();
    let d0 = cn.order[0];
    let inner = *cn.order.last().unwrap();
    let base_of = |point: &[i64]| -> i64 {
        point.iter().zip(&cn.strides).map(|(&l, &s)| (l + cn.halo - 1) * s).sum()
    };

    let mut jammed_execs = 0u64;
    let mut unit_execs = 0u64;
    {
        let mut row = |kernel: &KernelCode,
                       vec_ok: bool,
                       base: i64,
                       count: i64,
                       step: i64,
                       execs: &mut u64| {
            if count <= 0 {
                return;
            }
            *execs += count as u64;
            let first = base + kernel.min_delta;
            let last = base + (count - 1) * step + kernel.max_delta;
            if first >= 0 && (last as u64) < cn.len as u64 {
                // SAFETY: every flat index this row touches lies in
                // [first, last] ⊆ [0, len); register and slot indices were
                // validated at compile time. The chunked executor is only
                // entered when `vector_safe` proved the op-at-a-time
                // interleaving unobservable.
                unsafe {
                    if vec_ok {
                        run_row_vec(&kernel.ops, &arrs, &mut strips, base, count, step)
                    } else {
                        run_row::<false>(&kernel.ops, &arrs, &mut regs, base, count, step)
                    }
                }
            } else {
                // Out-of-layout access (a halo violation the lints would
                // flag): run checked, panicking like the interpreter.
                // SAFETY: register and slot indices were validated at
                // compile time; CHECKED = true asserts every memory index
                // before touching it, so no out-of-bounds access occurs.
                unsafe { run_row::<true>(&kernel.ops, &arrs, &mut regs, base, count, step) }
            }
        };

        if rank == 1 {
            let n = hi[d0] - lo[d0] + 1;
            let jam_steps = n / cn.factor;
            let rest = n - jam_steps * cn.factor;
            let base = base_of(&[lo[d0]]);
            let stride = cn.strides[d0];
            row(&cn.jammed, cn.jam_vec, base, jam_steps, cn.factor * stride, &mut jammed_execs);
            let ubase = base + jam_steps * cn.factor * stride;
            let unit = cn.unit.as_ref().unwrap_or(&cn.jammed);
            row(unit, cn.unit_vec, ubase, rest, stride, &mut unit_execs);
        } else if reorder_ok
            && hi[inner] - lo[inner] + 1 < TRANSPOSE_MAX_ROW
            && hi[d0] - lo[d0] > hi[inner] - lo[inner]
        {
            // Thin-row box (a split boundary's column strip): walk it
            // column-major — per (middle, inner) point one long run along
            // the outermost dimension, reusing the row-major walk's exact
            // jammed/unit decomposition. Same kernels, same execution
            // counts, same per-point values; only the (unobservable) order
            // changes, and the per-op dispatch amortizes over the long run
            // instead of being paid per 2-3-point row.
            let mids: Vec<usize> = cn.order[1..rank - 1].to_vec();
            let n0 = hi[d0] - lo[d0] + 1;
            let jam_steps = n0 / cn.factor;
            let rest = n0 - jam_steps * cn.factor;
            let stride0 = cn.strides[d0];
            let unit = cn.unit.as_ref().unwrap_or(&cn.jammed);
            let mut point = lo.to_vec();
            'cols: loop {
                for j in lo[inner]..=hi[inner] {
                    point[inner] = j;
                    point[d0] = lo[d0];
                    let base = base_of(&point);
                    row(
                        &cn.jammed,
                        cn.jam_vec,
                        base,
                        jam_steps,
                        cn.factor * stride0,
                        &mut jammed_execs,
                    );
                    let ubase = base + jam_steps * cn.factor * stride0;
                    row(unit, cn.unit_vec, ubase, rest, stride0, &mut unit_execs);
                }
                for idx in (0..mids.len()).rev() {
                    let d = mids[idx];
                    point[d] += 1;
                    if point[d] <= hi[d] {
                        continue 'cols;
                    }
                    point[d] = lo[d];
                }
                break;
            }
        } else {
            // Middle dims: everything between the (possibly unrolled)
            // outermost loop and the innermost row dimension.
            let mids: Vec<usize> = cn.order[1..rank - 1].to_vec();
            let row_len = hi[inner] - lo[inner] + 1;
            let row_step = cn.strides[inner];
            let mut point = lo.to_vec();
            let mut i = lo[d0];
            while i <= hi[d0] {
                let use_jammed = i + cn.factor - 1 <= hi[d0];
                let (kernel, vec_ok, execs) = if use_jammed {
                    (&cn.jammed, cn.jam_vec, &mut jammed_execs)
                } else {
                    (cn.unit.as_ref().unwrap_or(&cn.jammed), cn.unit_vec, &mut unit_execs)
                };
                point[d0] = i;
                for &d in &mids {
                    point[d] = lo[d];
                }
                'mids: loop {
                    point[inner] = lo[inner];
                    row(kernel, vec_ok, base_of(&point), row_len, row_step, execs);
                    for idx in (0..mids.len()).rev() {
                        let d = mids[idx];
                        point[d] += 1;
                        if point[d] <= hi[d] {
                            continue 'mids;
                        }
                        point[d] = lo[d];
                    }
                    break;
                }
                i += if use_jammed { cn.factor } else { 1 };
            }
        }
    }

    // Bulk counters, the interpreter's accounting exactly.
    let unit_counts = cn.unit.as_ref().unwrap_or(&cn.jammed);
    let s = &mut pe.stats;
    s.loads += jammed_execs * cn.jammed.loads + unit_execs * unit_counts.loads;
    s.stores += jammed_execs * cn.jammed.stores + unit_execs * unit_counts.stores;
    s.flops += jammed_execs * cn.jammed.flops + unit_execs * unit_counts.flops;
    s.iters += jammed_execs + unit_execs;
    if cn.strided {
        s.strided_loads += jammed_execs * cn.jammed.loads + unit_execs * unit_counts.loads;
    }
}

/// Execute `ops` over one row of `count` points, advancing the base index
/// by `step` per point. With `CHECKED = false`, all indexing is unchecked —
/// the caller has proven every index in range; with `CHECKED = true`, every
/// memory access is asserted in range first.
///
/// # Safety
/// Register indices must be `< regs.len()` and slot indices `< arrs.len()`
/// (guaranteed by `compile_body`; machine-checked by the bytecode verifier,
/// BV001). With `CHECKED = false`, the caller must guarantee
/// `base + delta ∈ [0, len)` for every memory op at every point of the row
/// — the obligation the hoisted row proof discharges and BV003 re-derives
/// by interval analysis.
unsafe fn run_row<const CHECKED: bool>(
    ops: &[Op],
    arrs: &[(*mut f64, usize)],
    regs: &mut [f64],
    mut base: i64,
    count: i64,
    step: i64,
) {
    macro_rules! r {
        ($i:expr) => {
            // SAFETY: every register operand is < `cn.regs`, which sized
            // `regs` — validated by `compile_body` and machine-checked by
            // the bytecode verifier (BV001).
            unsafe { *regs.get_unchecked($i as usize) }
        };
    }
    macro_rules! w {
        ($i:expr, $v:expr) => {{
            let v = $v;
            // SAFETY: destination registers are < `regs.len()` (BV001).
            unsafe { *regs.get_unchecked_mut($i as usize) = v }
        }};
    }
    macro_rules! ld {
        ($arr:expr, $delta:expr) => {{
            // SAFETY: array-slot operands index the kernel's slot table,
            // which `arrs` mirrors entry for entry (BV001).
            let (ptr, len) = unsafe { *arrs.get_unchecked($arr as usize) };
            let idx = (base + $delta as i64) as usize;
            if CHECKED {
                assert!(idx < len, "subgrid access out of bounds: {idx} >= {len}");
            }
            // SAFETY: `idx < len` — asserted just above under CHECKED;
            // in fast mode the caller's hoisted row proof guarantees
            // `base + delta ∈ [0, len)` for every memory op of the row,
            // because every delta lies inside the kernel's declared
            // `[min_delta, max_delta]` envelope (BV003).
            unsafe { *ptr.add(idx) }
        }};
    }
    macro_rules! st {
        ($arr:expr, $delta:expr, $v:expr) => {{
            let v = $v;
            // SAFETY: slot < `arrs.len()` (BV001), as in `ld!`.
            let (ptr, len) = unsafe { *arrs.get_unchecked($arr as usize) };
            let idx = (base + $delta as i64) as usize;
            if CHECKED {
                assert!(idx < len, "subgrid access out of bounds: {idx} >= {len}");
            }
            // SAFETY: `idx < len` — by the CHECKED assert or the hoisted
            // row bounds proof over the declared delta envelope (BV003).
            unsafe { *ptr.add(idx) = v }
        }};
    }
    for _ in 0..count {
        for op in ops {
            match *op {
                Op::Const { dst, v } => w!(dst, v),
                Op::Load { dst, arr, delta } => w!(dst, ld!(arr, delta)),
                Op::Store { arr, delta, src } => st!(arr, delta, r!(src)),
                Op::Bin { op, dst, a, b } => w!(dst, op.apply(r!(a), r!(b))),
                Op::BinImmR { op, dst, a, v } => w!(dst, op.apply(r!(a), v)),
                Op::BinImmL { op, dst, v, b } => w!(dst, op.apply(v, r!(b))),
                Op::MulAcc { dst, acc, a, b } => w!(dst, r!(acc) + r!(a) * r!(b)),
                Op::MulAccImmL { dst, acc, v, b } => w!(dst, r!(acc) + v * r!(b)),
                Op::MulAccImmR { dst, acc, a, v } => w!(dst, r!(acc) + r!(a) * v),
                Op::Neg { dst, src } => w!(dst, -r!(src)),
                Op::Copy { dst, src } => w!(dst, r!(src)),
                Op::Cmp { op, dst, a, b } => w!(dst, op.apply(r!(a), r!(b))),
                Op::CmpImmR { op, dst, a, v } => w!(dst, op.apply(r!(a), v)),
                Op::CmpImmL { op, dst, v, b } => w!(dst, op.apply(v, r!(b))),
                Op::Select { dst, c, t, e } => {
                    w!(dst, if r!(c) != 0.0 { r!(t) } else { r!(e) })
                }
                Op::SelStore { arr, delta, c, t, e } => {
                    st!(arr, delta, if r!(c) != 0.0 { r!(t) } else { r!(e) })
                }
            }
        }
        base += step;
    }
}

/// Execute `ops` over one row through the chunked executor: the row is cut
/// into chunks of up to [`LANES`] points and each op runs across the whole
/// chunk before the next op dispatches. Per-lane results are bitwise
/// identical to the scalar executor — each lane performs the same operation
/// sequence on the same operands — and `vector_safe` proved no lane's store
/// aliases another lane's memory op, so the interleaving is unobservable.
///
/// # Safety
/// Same contract as `run_row::<false>` (every `base + i*step + delta` in
/// range, register/slot indices compile-time validated), plus: `strips` has
/// `LANES` lanes per register with preloads broadcast, and the kernel was
/// admitted by `vector_safe` for this `step` (re-derived independently by
/// the bytecode verifier, BV004).
unsafe fn run_row_vec(
    ops: &[Op],
    arrs: &[(*mut f64, usize)],
    strips: &mut [f64],
    mut base: i64,
    count: i64,
    step: i64,
) {
    let sp = strips.as_mut_ptr();
    let mut left = count;
    while left > 0 {
        let n = (left as usize).min(LANES);
        // SAFETY: `n <= LANES` points starting at `base` lie inside this
        // row, so the caller's row bounds proof covers every lane access;
        // `sp` points at the caller's `regs * LANES` strip buffer with
        // preloads broadcast, and the kernel was admitted by the chunk-
        // safety test for this step (independently re-derived by BV004).
        unsafe { run_chunk(ops, arrs, sp, base, n, step) };
        base += n as i64 * step;
        left -= n as i64;
    }
}

/// One chunk of up to `n <= LANES` row points, op-at-a-time. Register ops
/// compute all `LANES` lanes (straight-line loops the optimizer vectorizes);
/// lanes beyond `n` hold stale values whose results never reach memory —
/// only the memory ops honor `n`.
///
/// # Safety
/// See `run_row_vec`; `sp` must point at `regs * LANES` initialized `f64`s.
unsafe fn run_chunk(
    ops: &[Op],
    arrs: &[(*mut f64, usize)],
    sp: *mut f64,
    base: i64,
    n: usize,
    step: i64,
) {
    // Lane pointer of register `r`.
    macro_rules! strip {
        ($r:expr) => {
            // SAFETY: register operands are < the kernel's register-file
            // size (BV001) and `sp` spans `regs * LANES` elements.
            unsafe { sp.add($r as usize * LANES) }
        };
    }
    // Whole-register reads/writes as fixed-size arrays: value semantics keep
    // the lane loops free of aliasing, so they compile to vector code.
    macro_rules! rd {
        ($r:expr) => {{
            let p = strip!($r) as *const [f64; LANES];
            // SAFETY: `strip!` points at `LANES` initialized `f64`s inside
            // the strip buffer (zero-filled at allocation, preloads
            // broadcast), properly aligned for `[f64; LANES]`.
            unsafe { *p }
        }};
    }
    macro_rules! lanes {
        ($dst:expr, |$i:ident| $e:expr) => {{
            let mut out = [0.0f64; LANES];
            for $i in 0..LANES {
                out[$i] = $e;
            }
            let p = strip!($dst) as *mut [f64; LANES];
            // SAFETY: as in `rd!` — the destination strip holds `LANES`
            // `f64`s owned exclusively by this call (registers and subgrid
            // storage are distinct allocations).
            unsafe { *p = out };
        }};
    }
    macro_rules! mem_at {
        ($ptr:expr, $delta:expr, $i:expr) => {
            // SAFETY: lane `i < n` lies in this row, so the caller's row
            // bounds proof over the declared delta envelope (BV003) puts
            // `base + i*step + delta` inside `[0, len)` of the subgrid.
            unsafe { $ptr.add((base + $i as i64 * step + $delta as i64) as usize) }
        };
    }
    // Comparison with the predicate match hoisted out of the lane loop.
    macro_rules! cmp_lanes {
        ($op:expr, $dst:expr, |$i:ident| ($a:expr, $b:expr)) => {
            match $op {
                CmpOp::Gt => lanes!($dst, |$i| if $a > $b { 1.0 } else { 0.0 }),
                CmpOp::Lt => lanes!($dst, |$i| if $a < $b { 1.0 } else { 0.0 }),
                CmpOp::Ge => lanes!($dst, |$i| if $a >= $b { 1.0 } else { 0.0 }),
                CmpOp::Le => lanes!($dst, |$i| if $a <= $b { 1.0 } else { 0.0 }),
                CmpOp::Eq => lanes!($dst, |$i| if $a == $b { 1.0 } else { 0.0 }),
                CmpOp::Ne => lanes!($dst, |$i| if $a != $b { 1.0 } else { 0.0 }),
            }
        };
    }
    for op in ops {
        match *op {
            Op::Const { dst, v } => lanes!(dst, |_i| v),
            Op::Load { dst, arr, delta } => {
                // SAFETY: slot < `arrs.len()` (BV001).
                let (ptr, _) = unsafe { *arrs.get_unchecked(arr as usize) };
                let d = strip!(dst);
                if step == 1 {
                    // SAFETY: the `n` contiguous source elements lie in the
                    // row (bounds proof, BV003); the destination strip is a
                    // separate allocation, so the copies never overlap.
                    unsafe {
                        std::ptr::copy_nonoverlapping(ptr.add((base + delta as i64) as usize), d, n)
                    };
                } else {
                    for i in 0..n {
                        let m = mem_at!(ptr, delta, i);
                        // SAFETY: lane `i < n <= LANES` of the strip; the
                        // subgrid read is covered by the row bounds proof.
                        unsafe { *d.add(i) = *m };
                    }
                }
            }
            Op::Store { arr, delta, src } => {
                // SAFETY: slot < `arrs.len()` (BV001).
                let (ptr, _) = unsafe { *arrs.get_unchecked(arr as usize) };
                let s = strip!(src);
                if step == 1 {
                    // SAFETY: mirror of the Load block-move — `n` in-row
                    // destination elements, disjoint strip source.
                    unsafe {
                        std::ptr::copy_nonoverlapping(s, ptr.add((base + delta as i64) as usize), n)
                    };
                } else {
                    for i in 0..n {
                        let m = mem_at!(ptr, delta, i);
                        // SAFETY: lane `i < n` strip read; in-row subgrid
                        // write covered by the row bounds proof (BV003).
                        unsafe { *m = *s.add(i) };
                    }
                }
            }
            Op::Bin { op, dst, a, b } => {
                let (x, y) = (rd!(a), rd!(b));
                match op {
                    BinOp::Add => lanes!(dst, |i| x[i] + y[i]),
                    BinOp::Sub => lanes!(dst, |i| x[i] - y[i]),
                    BinOp::Mul => lanes!(dst, |i| x[i] * y[i]),
                    BinOp::Div => lanes!(dst, |i| x[i] / y[i]),
                }
            }
            Op::BinImmR { op, dst, a, v } => {
                let x = rd!(a);
                match op {
                    BinOp::Add => lanes!(dst, |i| x[i] + v),
                    BinOp::Sub => lanes!(dst, |i| x[i] - v),
                    BinOp::Mul => lanes!(dst, |i| x[i] * v),
                    BinOp::Div => lanes!(dst, |i| x[i] / v),
                }
            }
            Op::BinImmL { op, dst, v, b } => {
                let y = rd!(b);
                match op {
                    BinOp::Add => lanes!(dst, |i| v + y[i]),
                    BinOp::Sub => lanes!(dst, |i| v - y[i]),
                    BinOp::Mul => lanes!(dst, |i| v * y[i]),
                    BinOp::Div => lanes!(dst, |i| v / y[i]),
                }
            }
            Op::MulAcc { dst, acc, a, b } => {
                let (c, x, y) = (rd!(acc), rd!(a), rd!(b));
                lanes!(dst, |i| c[i] + x[i] * y[i]);
            }
            Op::MulAccImmL { dst, acc, v, b } => {
                let (c, y) = (rd!(acc), rd!(b));
                lanes!(dst, |i| c[i] + v * y[i]);
            }
            Op::MulAccImmR { dst, acc, a, v } => {
                let (c, x) = (rd!(acc), rd!(a));
                lanes!(dst, |i| c[i] + x[i] * v);
            }
            Op::Neg { dst, src } => {
                let x = rd!(src);
                lanes!(dst, |i| -x[i]);
            }
            Op::Copy { dst, src } => {
                let x = rd!(src);
                lanes!(dst, |i| x[i]);
            }
            Op::Cmp { op, dst, a, b } => {
                let (x, y) = (rd!(a), rd!(b));
                cmp_lanes!(op, dst, |i| (x[i], y[i]));
            }
            Op::CmpImmR { op, dst, a, v } => {
                let x = rd!(a);
                cmp_lanes!(op, dst, |i| (x[i], v));
            }
            Op::CmpImmL { op, dst, v, b } => {
                let y = rd!(b);
                cmp_lanes!(op, dst, |i| (v, y[i]));
            }
            Op::Select { dst, c, t, e } => {
                let (cv, tv, ev) = (rd!(c), rd!(t), rd!(e));
                lanes!(dst, |i| if cv[i] != 0.0 { tv[i] } else { ev[i] });
            }
            Op::SelStore { arr, delta, c, t, e } => {
                // SAFETY: slot < `arrs.len()` (BV001).
                let (ptr, _) = unsafe { *arrs.get_unchecked(arr as usize) };
                let (cv, tv, ev) = (rd!(c), rd!(t), rd!(e));
                for i in 0..n {
                    let m = mem_at!(ptr, delta, i);
                    // SAFETY: in-row subgrid write, covered by the row
                    // bounds proof over the declared deltas (BV003).
                    unsafe { *m = if cv[i] != 0.0 { tv[i] } else { ev[i] } };
                }
            }
        }
    }
}

/// Unit tests that drive the unsafe row executors directly on hand-built
/// buffers — the `miri_` prefix is what CI's Miri pass filters on, backing
/// the SAFETY comments above with an actual aliasing/UB check of every
/// raw-pointer path (scalar unchecked, scalar checked, chunked block-move,
/// chunked strided, predicated store).
#[cfg(test)]
mod unsafe_row_tests {
    use super::*;
    use hpf_ir::expr::CmpOp;

    fn arrs_of(bufs: &mut [Vec<f64>]) -> Vec<(*mut f64, usize)> {
        bufs.iter_mut().map(|b| (b.as_mut_ptr(), b.len())).collect()
    }

    #[test]
    fn miri_run_row_unchecked_and_checked_match() {
        let mut bufs = vec![vec![0.0f64; 16], (0..16).map(|i| i as f64).collect::<Vec<_>>()];
        let ops = [
            Op::Load { dst: 0, arr: 1, delta: -1 },
            Op::BinImmR { op: BinOp::Add, dst: 1, a: 0, v: 10.0 },
            Op::Store { arr: 0, delta: 0, src: 1 },
        ];
        let mut regs = [0.0f64; 2];
        {
            let arrs = arrs_of(&mut bufs);
            // Points 1..=14: every access (delta -1..0) stays in [0, 16).
            // SAFETY: regs/slots < 2; min index 0, max index 14 < 16.
            unsafe { run_row::<false>(&ops, &arrs, &mut regs, 1, 7, 1) };
            // SAFETY: same contract; the checked variant asserts per access.
            unsafe { run_row::<true>(&ops, &arrs, &mut regs, 8, 7, 1) };
        }
        for (i, &v) in bufs[0].iter().enumerate().take(15).skip(1) {
            assert_eq!(v, (i - 1) as f64 + 10.0, "point {i}");
        }
        assert_eq!(bufs[0][0], 0.0);
        assert_eq!(bufs[0][15], 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn miri_checked_row_panics_like_the_interpreter() {
        let mut bufs = vec![vec![0.0f64; 8]];
        let ops = [Op::Const { dst: 0, v: 1.0 }, Op::Store { arr: 0, delta: 0, src: 0 }];
        let mut regs = [0.0f64; 1];
        let arrs = arrs_of(&mut bufs);
        // SAFETY: regs/slots in range; CHECKED = true asserts every index,
        // so the out-of-range fourth point panics instead of writing.
        unsafe { run_row::<true>(&ops, &arrs, &mut regs, 5, 4, 1) };
    }

    #[test]
    fn miri_chunked_row_contiguous_and_strided() {
        // 40 points: a full 32-lane chunk plus an 8-point tail, once with
        // step 1 (memcpy-style block moves) and once with step 2 (per-lane
        // loops), both against the same scalar recurrence.
        const N: usize = 96;
        let mut bufs =
            vec![vec![0.0f64; N], (0..N).map(|i| ((i * i) % 37) as f64).collect::<Vec<_>>()];
        let ops = [
            Op::Load { dst: 0, arr: 1, delta: 0 },
            Op::BinImmR { op: BinOp::Mul, dst: 1, a: 0, v: 3.0 },
            Op::Store { arr: 0, delta: 0, src: 1 },
        ];
        let mut strips = vec![0.0f64; 2 * LANES];
        {
            let arrs = arrs_of(&mut bufs);
            // SAFETY: regs/slots < 2; step-1 indices span [0, 40) and
            // step-2 indices span [40, 95), all < 96; `strips` holds
            // 2 registers x LANES lanes; stores and loads hit different
            // arrays, so chunking is alias-free.
            unsafe { run_row_vec(&ops, &arrs, &mut strips, 0, 40, 1) };
            // SAFETY: same contract, step-2 half.
            unsafe { run_row_vec(&ops, &arrs, &mut strips, 40, 28, 2) };
        }
        for (i, &v) in bufs[0].iter().enumerate().take(40) {
            assert_eq!(v, 3.0 * (((i * i) % 37) as f64), "step-1 point {i}");
        }
        for k in 0..28usize {
            let i = 40 + 2 * k;
            assert_eq!(bufs[0][i], 3.0 * (((i * i) % 37) as f64), "step-2 point {k}");
        }
    }

    #[test]
    fn miri_chunked_predicated_store_lanes() {
        // WHERE (x > 20) x = -x through the chunked SelStore path; the
        // store's delta equals the load's, so per-lane locations coincide
        // (diff 0) and chunking is admissible.
        const N: usize = 40;
        let mut bufs = vec![(0..N).map(|i| i as f64).collect::<Vec<f64>>()];
        let ops = [
            Op::Load { dst: 0, arr: 0, delta: 0 },
            Op::CmpImmR { op: CmpOp::Gt, dst: 1, a: 0, v: 20.0 },
            Op::Neg { dst: 2, src: 0 },
            Op::SelStore { arr: 0, delta: 0, c: 1, t: 2, e: 0 },
        ];
        let mut strips = vec![0.0f64; 3 * LANES];
        {
            let arrs = arrs_of(&mut bufs);
            // SAFETY: regs < 3, one slot; indices span [0, N); strips holds
            // 3 registers x LANES lanes.
            unsafe { run_row_vec(&ops, &arrs, &mut strips, 0, N as i64, 1) };
        }
        for (i, &v) in bufs[0].iter().enumerate() {
            let want = if i as f64 > 20.0 { -(i as f64) } else { i as f64 };
            assert_eq!(v, want, "point {i}");
        }
    }
}
