//! End-to-end tests of the `hpfsc` driver binary: exit codes, lint
//! reporting, JSON diagnostics, and argument validation.

use std::path::PathBuf;
use std::process::{Command, Output};

fn hpfsc(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_hpfsc")).args(args).output().expect("spawn hpfsc")
}

fn write_preset(name: &str) -> PathBuf {
    let out = hpfsc(&["--print-input", name]);
    assert!(out.status.success(), "--print-input {name} failed");
    let path = std::env::temp_dir().join(format!("hpfsc-cli-{}-{name}.f90", std::process::id()));
    std::fs::write(&path, &out.stdout).unwrap();
    path
}

const PRESETS: [&str; 7] = [
    "five-point",
    "nine-point-cshift",
    "nine-point-array",
    "problem9",
    "jacobi",
    "image-blur",
    "wave2d",
];

#[test]
fn print_input_needs_no_file_and_prints_source() {
    let out = hpfsc(&["--print-input", "problem9:8"]);
    assert_eq!(out.status.code(), Some(0));
    let src = String::from_utf8(out.stdout).unwrap();
    assert!(src.contains("PROGRAM problem9"), "{src}");
    assert!(src.contains("PARAM N = 8"), "{src}");
}

#[test]
fn unknown_preset_is_a_usage_error() {
    let out = hpfsc(&["--print-input", "nope"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown preset 'nope'"));
}

#[test]
fn unknown_flag_reports_the_flag() {
    let out = hpfsc(&["--frobnicate"]);
    assert_eq!(out.status.code(), Some(2));
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("unrecognized option '--frobnicate'"),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn help_exits_zero_and_documents_every_flag() {
    let out = hpfsc(&["--help"]);
    assert_eq!(out.status.code(), Some(0));
    let text = String::from_utf8(out.stdout).unwrap();
    for flag in [
        "--stage",
        "--emit",
        "--lint",
        "--deny-warnings",
        "--run",
        "--grid",
        "--halo",
        "--engine",
        "--print-input",
        "--naive",
        "--drop-shift",
    ] {
        assert!(text.contains(flag), "usage omits {flag}");
    }
}

#[test]
fn presets_lint_clean_under_deny_warnings() {
    for name in PRESETS {
        let path = write_preset(name);
        let out = hpfsc(&[path.to_str().unwrap(), "--lint", "--deny-warnings"]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "{name} not lint-clean: {}",
            String::from_utf8_lossy(&out.stderr)
        );
        let _ = std::fs::remove_file(path);
    }
}

#[test]
fn planted_uncovered_ghost_read_exits_4_with_span() {
    let path = write_preset("problem9");
    let out = hpfsc(&[path.to_str().unwrap(), "--lint", "--drop-shift", "0"]);
    assert_eq!(out.status.code(), Some(4), "lint errors must exit 4");
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("HS001"), "stderr: {text}");
    assert!(text.contains("uncovered ghost read"), "stderr: {text}");
    // A source span in line:col form anchors the diagnostic.
    assert!(
        text.lines().any(|l| l.contains("error[HS001]") && l.contains(':')),
        "no span on HS001: {text}"
    );
    let _ = std::fs::remove_file(path);
}

#[test]
fn diag_json_is_machine_readable_and_exits_4_on_errors() {
    let path = write_preset("problem9");
    let out = hpfsc(&[path.to_str().unwrap(), "--emit", "diag-json", "--drop-shift", "0"]);
    assert_eq!(out.status.code(), Some(4));
    let json = String::from_utf8(out.stdout).unwrap();
    assert!(json.trim_start().starts_with('['), "{json}");
    assert!(json.contains("\"code\":\"HS001\""), "{json}");
    assert!(json.contains("\"span\":{\"line\":"), "{json}");
    // Clean program: empty array, exit 0.
    let out = hpfsc(&[path.to_str().unwrap(), "--emit", "diag-json"]);
    assert_eq!(out.status.code(), Some(0));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "[]");
    let _ = std::fs::remove_file(path);
}

#[test]
fn dropped_shift_fails_the_verified_run() {
    let path = write_preset("problem9");
    let ok = hpfsc(&[path.to_str().unwrap(), "--run", "--emit", "stats"]);
    assert_eq!(ok.status.code(), Some(0), "{}", String::from_utf8_lossy(&ok.stderr));
    let bad = hpfsc(&[path.to_str().unwrap(), "--run", "--emit", "stats", "--drop-shift", "0"]);
    assert_eq!(bad.status.code(), Some(1), "corrupted kernel must fail verification");
    assert!(String::from_utf8_lossy(&bad.stderr).contains("verification failed"));
    let _ = std::fs::remove_file(path);
}

#[test]
fn bad_engine_names_the_flag_and_lists_choices() {
    let out = hpfsc(&["--engine", "warp9"]);
    assert_eq!(out.status.code(), Some(2));
    let text = String::from_utf8_lossy(&out.stderr);
    assert!(text.contains("--engine"), "stderr must name the flag: {text}");
    assert!(text.contains("'warp9'"), "stderr must echo the bad value: {text}");
    for choice in ["seq", "threaded", "interp", "bytecode"] {
        assert!(text.contains(choice), "stderr must list choice {choice}: {text}");
    }
}

#[test]
fn engine_accepts_backend_and_combined_forms() {
    let path = write_preset("five-point");
    for spec in ["seq", "threaded", "interp", "bytecode", "seq-bytecode", "threaded-bytecode"] {
        let out = hpfsc(&[path.to_str().unwrap(), "--run", "--emit", "stats", "--engine", spec]);
        assert_eq!(
            out.status.code(),
            Some(0),
            "--engine {spec} failed: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
    // The bytecode backend reports its kernel counters in the run summary.
    let out = hpfsc(&[path.to_str().unwrap(), "--run", "--emit", "stats", "--engine", "bytecode"]);
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("kernels compiled"), "{text}");
    assert!(text.contains("kernel execs"), "{text}");
    let _ = std::fs::remove_file(path);
}

#[test]
fn missing_file_is_an_io_error() {
    let out = hpfsc(&["/nonexistent/kernel.f90"]);
    assert_eq!(out.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&out.stderr).contains("cannot read"));
}
