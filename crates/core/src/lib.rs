#![warn(missing_docs)]

//! # hpf-core — public API of the SC'97 stencil-compilation reproduction
//!
//! Reproduces Roth, Mellor-Crummey, Kennedy & Brickner, *Compiling Stencils
//! in High Performance Fortran* (SC'97): a general stencil compilation
//! strategy for Fortran90/HPF built from four orchestrated optimizations —
//! offset arrays, context partitioning, communication unioning, and
//! loop-level memory optimization — over a normal form every stencil
//! specification can be translated into.
//!
//! ```
//! use hpf_core::{Kernel, CompileOptions, MachineConfig, Engine};
//!
//! let source = hpf_core::presets::problem9(64);
//! let kernel = Kernel::compile(&source, CompileOptions::full()).unwrap();
//! let run = kernel
//!     .runner(MachineConfig::sp2_2x2())
//!     .init("U", |p| (p[0] + p[1]) as f64)
//!     .engine(Engine::Sequential)
//!     .run()
//!     .unwrap();
//! let t = run.gather(&kernel, "T");
//! assert_eq!(t.len(), 64 * 64);
//! println!("messages: {}", run.stats().total_messages());
//! println!("modeled:  {:.3} ms", run.modeled_ms());
//! ```
//!
//! The crate re-exports the whole stack: the frontend (`hpf-frontend`), the
//! IR (`hpf-ir`), the pass pipeline (`hpf-passes`), the static analyzer
//! (`hpf-analysis`, see [`Kernel::lint`]), the machine simulator
//! (`hpf-runtime`), the executors and the reference oracle (`hpf-exec`),
//! and the baseline compilers (`hpf-baselines`).

pub mod api;
pub mod presets;

pub use api::{CoreError, Kernel, OracleRunner, Plan, Planner, Run, Runner};

pub use hpf_analysis as analysis;
pub use hpf_baselines as baselines;
pub use hpf_codegen as codegen;
pub use hpf_exec as exec;
pub use hpf_frontend as frontend;
pub use hpf_ir as ir;
pub use hpf_metrics as metrics;
pub use hpf_passes as passes;
pub use hpf_runtime as runtime;
pub use hpf_trace as trace;
pub use hpf_tune as tune;

pub use hpf_analysis::{Diagnostic, Severity};
pub use hpf_exec::{max_abs_diff, Backend, Engine, ExecConfig, Reference};
pub use hpf_ir::pretty;
pub use hpf_metrics::{DriftReport, MetricsConfig, MetricsSnapshot};
pub use hpf_passes::{CompileOptions, PipelineStats, Stage, TempPolicy};
pub use hpf_runtime::{AggStats, CostModel, Machine, MachineConfig, PeGrid, RtError};
pub use hpf_trace::{TraceConfig, TraceSummary};
pub use hpf_tune::{TuneOutcome, Tuner};
