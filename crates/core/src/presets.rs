//! Preset kernel sources — the programs of the paper's figures, with the
//! problem size as a parameter.

/// Figure 1: the 5-point array-syntax stencil.
pub fn five_point(n: usize) -> String {
    format!(
        r#"
PROGRAM five_point
PARAM N = {n}
REAL SRC(N,N), DST(N,N)
REAL C1 = 0.15, C2 = 0.2, C3 = 0.3, C4 = 0.2, C5 = 0.15
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,2:N-1) &
                 + C2 * SRC(2:N-1,1:N-2) &
                 + C3 * SRC(2:N-1,2:N-1) &
                 + C4 * SRC(3:N ,2:N-1) &
                 + C5 * SRC(2:N-1,3:N )
END
"#
    )
}

/// Figure 2: the single-statement 9-point stencil using `CSHIFT` intrinsics
/// — twelve shift intrinsics, the specification that exhausts memory under
/// naive translation (Figure 11).
pub fn nine_point_cshift(n: usize) -> String {
    format!(
        r#"
PROGRAM nine_point_cshift
PARAM N = {n}
REAL SRC(N,N), DST(N,N)
REAL C1 = 0.0625, C2 = 0.125, C3 = 0.0625, C4 = 0.125, C5 = 0.25
REAL C6 = 0.125, C7 = 0.0625, C8 = 0.125, C9 = 0.0625
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
DST = C1 * CSHIFT(CSHIFT(SRC,-1,1),-1,2) &
    + C2 * CSHIFT(SRC,-1,1) &
    + C3 * CSHIFT(CSHIFT(SRC,-1,1),+1,2) &
    + C4 * CSHIFT(SRC,-1,2) &
    + C5 * SRC &
    + C6 * CSHIFT(SRC,+1,2) &
    + C7 * CSHIFT(CSHIFT(SRC,+1,1),-1,2) &
    + C8 * CSHIFT(SRC,+1,1) &
    + C9 * CSHIFT(CSHIFT(SRC,+1,1),+1,2)
END
"#
    )
}

/// The 9-point stencil in array syntax, computing interior elements only
/// (the third specification of Figure 18).
pub fn nine_point_array(n: usize) -> String {
    format!(
        r#"
PROGRAM nine_point_array
PARAM N = {n}
REAL SRC(N,N), DST(N,N)
REAL C1 = 0.0625, C2 = 0.125, C3 = 0.0625, C4 = 0.125, C5 = 0.25
REAL C6 = 0.125, C7 = 0.0625, C8 = 0.125, C9 = 0.0625
!HPF$ DISTRIBUTE SRC(BLOCK,BLOCK)
!HPF$ DISTRIBUTE DST(BLOCK,BLOCK)
DST(2:N-1,2:N-1) = C1 * SRC(1:N-2,1:N-2) + C2 * SRC(1:N-2,2:N-1) &
                 + C3 * SRC(1:N-2,3:N) + C4 * SRC(2:N-1,1:N-2) &
                 + C5 * SRC(2:N-1,2:N-1) + C6 * SRC(2:N-1,3:N) &
                 + C7 * SRC(3:N,1:N-2) + C8 * SRC(3:N,2:N-1) &
                 + C9 * SRC(3:N,3:N)
END
"#
    )
}

/// Figure 3: Problem 9 of the Purdue Set as adapted for Fortran D
/// benchmarking — the multi-statement 9-point stencil of the paper's
/// extended example (§4).
pub fn problem9(n: usize) -> String {
    format!(
        r#"
PROGRAM problem9
PARAM N = {n}
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
!HPF$ DISTRIBUTE RIP(BLOCK,BLOCK)
!HPF$ DISTRIBUTE RIN(BLOCK,BLOCK)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#
    )
}

/// A Jacobi relaxation sweep (5-point, circular boundary) iterated `steps`
/// times — the PDE-solving workload the paper's introduction motivates.
pub fn jacobi(n: usize, steps: usize) -> String {
    format!(
        r#"
PROGRAM jacobi
PARAM N = {n}
REAL U(N,N), T(N,N)
REAL C = 0.25
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
DO {steps} TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
END
"#
    )
}

/// A 9-point box blur with `EOSHIFT` (zero boundary) — the image-processing
/// workload of the introduction; exercises end-off shift handling end to
/// end.
pub fn image_blur(n: usize, passes: usize) -> String {
    format!(
        r#"
PROGRAM image_blur
PARAM N = {n}
REAL IMG(N,N), OUT(N,N)
REAL W = 0.111
!HPF$ DISTRIBUTE IMG(BLOCK,BLOCK)
!HPF$ DISTRIBUTE OUT(BLOCK,BLOCK)
DO {passes} TIMES
OUT = W * (IMG + EOSHIFT(IMG,1,1) + EOSHIFT(IMG,-1,1) &
    + EOSHIFT(IMG,1,2) + EOSHIFT(IMG,-1,2) &
    + EOSHIFT(EOSHIFT(IMG,1,1),1,2) + EOSHIFT(EOSHIFT(IMG,1,1),-1,2) &
    + EOSHIFT(EOSHIFT(IMG,-1,1),1,2) + EOSHIFT(EOSHIFT(IMG,-1,1),-1,2))
IMG = OUT
ENDDO
END
"#
    )
}

/// A second-order wave-equation step on two time levels — a multi-array,
/// multi-statement kernel stressing the partitioner.
pub fn wave2d(n: usize, steps: usize) -> String {
    format!(
        r#"
PROGRAM wave2d
PARAM N = {n}
REAL U(N,N), UPREV(N,N), UNEXT(N,N), LAP(N,N)
REAL C2DT2 = 0.1
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE UPREV(BLOCK,BLOCK)
!HPF$ DISTRIBUTE UNEXT(BLOCK,BLOCK)
!HPF$ DISTRIBUTE LAP(BLOCK,BLOCK)
DO {steps} TIMES
LAP = CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2) - 4 * U
UNEXT = 2 * U - UPREV + C2DT2 * LAP
UPREV = U
U = UNEXT
ENDDO
END
"#
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CompileOptions, Kernel};

    #[test]
    fn all_presets_compile() {
        for src in [
            five_point(16),
            nine_point_cshift(16),
            nine_point_array(16),
            problem9(16),
            jacobi(16, 3),
            image_blur(16, 2),
            wave2d(16, 3),
        ] {
            Kernel::compile(&src, CompileOptions::full()).unwrap();
        }
    }

    #[test]
    fn presets_parameterize_size() {
        let k = Kernel::compile(&five_point(32), CompileOptions::full()).unwrap();
        let id = k.array_id("SRC").unwrap();
        assert_eq!(k.checked.symbols.array(id).shape.extent(0), 32);
    }
}
