//! The compile-and-run API.

use hpf_exec::{plan::apply_swaps, Backend, Engine, ExecConfig, ExecPlan, Reference};
use hpf_frontend::{compile_source, Checked, FrontError};
use hpf_ir::ArrayId;
use hpf_passes::{compile, CompileOptions, Compiled, NUM_PASSES, PASS_NAMES};
use hpf_runtime::{AggStats, Machine, MachineConfig, RtError};
use hpf_trace::{Event, SpanKind, Trace, TraceSummary, Track};
use std::fmt;
use std::time::{Duration, Instant};

/// Any error from compiling or running a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// Lexing / parsing / semantic analysis failed.
    Front(FrontError),
    /// The machine rejected the program (memory budget, bad grid, …).
    Runtime(RtError),
    /// A named array does not exist.
    UnknownArray(String),
    /// Verification against the reference interpreter failed.
    VerificationFailed {
        /// Output array that differed.
        array: String,
        /// Largest element-wise difference.
        max_diff: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Front(e) => write!(f, "frontend error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::UnknownArray(n) => write!(f, "unknown array {n}"),
            CoreError::VerificationFailed { array, max_diff } => {
                write!(f, "verification failed on {array}: max diff {max_diff}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FrontError> for CoreError {
    fn from(e: FrontError) -> Self {
        CoreError::Front(e)
    }
}

impl From<RtError> for CoreError {
    fn from(e: RtError) -> Self {
        CoreError::Runtime(e)
    }
}

/// The synthetic compile track: one [`SpanKind::Pass`] span per enabled
/// pipeline pass, laid end-to-end from 0 on its own timeline (pass timing
/// happens before any machine exists, so the epoch timestamps of the
/// run-time tracks do not apply; a separate track keeps the timelines from
/// colliding in viewers). Per-pass check and diagnostics counts stay on
/// [`hpf_passes::PipelineStats::pass_timings`], keyed by
/// [`hpf_passes::PASS_NAMES`].
fn compile_passes_track(stats: &hpf_passes::PipelineStats) -> Track {
    debug_assert_eq!(PASS_NAMES.len(), NUM_PASSES);
    let mut events = Vec::new();
    let mut t = 0u64;
    for pt in stats.pass_timings.iter() {
        if pt.wall_ns == 0 && pt.checks == 0 {
            continue; // pass disabled at this stage
        }
        events.push(Event {
            kind: SpanKind::Pass,
            start_ns: t,
            dur_ns: pt.wall_ns,
            modeled_ns: 0.0,
            hidden_ns: 0.0,
        });
        t += pt.wall_ns;
    }
    Track { name: "compile-passes".to_string(), events, dropped: 0 }
}

/// A compiled stencil kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// The checked source program (the reference interpreter's input).
    pub checked: Checked,
    /// The compiled pipeline output.
    pub compiled: Compiled,
}

impl Kernel {
    /// Compile HPF/Fortran90 source with the given pipeline options.
    pub fn compile(source: &str, options: CompileOptions) -> Result<Kernel, CoreError> {
        let checked = compile_source(source)?;
        let compiled = compile(&checked, options);
        Ok(Kernel { checked, compiled })
    }

    /// Look up an array by source name.
    pub fn array_id(&self, name: &str) -> Result<ArrayId, CoreError> {
        self.checked
            .symbols
            .lookup_array(name)
            .ok_or_else(|| CoreError::UnknownArray(name.to_string()))
    }

    /// The optimized array-level IR rendered in the paper's notation
    /// (Figures 12–15 style).
    pub fn listing(&self) -> String {
        hpf_ir::pretty::program(&self.compiled.array_ir)
    }

    /// Pipeline statistics (communication counts, temps, per-pass effects).
    pub fn stats(&self) -> &hpf_passes::PipelineStats {
        &self.compiled.stats
    }

    /// The deterministic kernel identity the auto-tuner keys its cache by:
    /// the optimized array-IR listing plus every array's declared shape.
    /// Problem size, statement structure, and distributions all land in
    /// this string, so any change to them re-keys the tuning cache
    /// ([`hpf_tune::fingerprint`] additionally mixes in the machine shape).
    pub fn tune_seed(&self) -> String {
        let mut seed = self.listing();
        for id in self.checked.symbols.array_ids() {
            let a = self.checked.symbols.array(id);
            seed.push_str(&format!("|{}{:?}", a.name, a.shape.0));
        }
        seed
    }

    /// Auto-tune this kernel: run `tuner` ([`hpf_tune::Tuner::best`]) over
    /// the compiled node program, with the split-phase overlap engine
    /// additionally gated on the kernel's halo-safety lints being clean —
    /// exactly the gate a manual [`Engine::ThreadedOverlap`] selection gets.
    pub fn tune(&self, tuner: &hpf_tune::Tuner) -> Result<hpf_tune::TuneOutcome, CoreError> {
        let allow = tuner.overlap_allowed() && !hpf_analysis::has_errors(&self.lint());
        let tuner = tuner.clone().allow_overlap(allow);
        Ok(tuner.best(&self.compiled.node, &self.tune_seed())?)
    }

    /// Start configuring a run of this kernel.
    pub fn runner(&self, config: MachineConfig) -> Runner<'_> {
        Runner { kernel: self, config, inits: Vec::new(), exec_cfg: ExecConfig::new(), tuner: None }
    }

    /// Start configuring a persistent execution plan for this kernel: the
    /// machine is built once, every communication schedule is compiled once,
    /// and the kernel can then be stepped any number of times with zero
    /// per-step setup ([`Plan::step`] / [`Plan::iterate`]).
    pub fn plan(&self, config: MachineConfig) -> Planner<'_> {
        Planner {
            kernel: self,
            config,
            inits: Vec::new(),
            exec_cfg: ExecConfig::new(),
            swaps: Vec::new(),
            tuner: None,
        }
    }

    /// Start configuring the reference interpreter — the correctness oracle.
    /// Initializers are supplied exactly like [`Runner::init`]:
    ///
    /// ```
    /// # use hpf_core::{Kernel, CompileOptions};
    /// # let kernel = Kernel::compile(&hpf_core::presets::five_point(8), CompileOptions::full()).unwrap();
    /// let oracle = kernel.oracle().init("SRC", |p| (p[0] + p[1]) as f64).run();
    /// ```
    pub fn oracle(&self) -> OracleRunner<'_> {
        OracleRunner { kernel: self, inits: Vec::new() }
    }

    /// Run every static lint over the compiled array IR: halo safety
    /// (HS001/HS002), residual subsumed shifts (CU001), temporary dataflow
    /// (DF001/DF002), and fusion legality (FP001). Diagnostics come back
    /// sorted for presentation; [`hpf_analysis::has_errors`] classifies the
    /// result, and `hpf_analysis::render_text` / `render_json` format it.
    pub fn lint(&self) -> Vec<hpf_ir::Diagnostic> {
        hpf_analysis::analyze(&self.compiled.array_ir, self.compiled.options.halo as i64)
    }

    /// Fault injection for the analyzer: delete the `k`-th `OVERLAP_SHIFT`
    /// (in program order) from the compiled array IR and re-lower the node
    /// program, leaving a kernel whose reads are no longer all covered —
    /// the static mirror of the runtime halo-poisoning harness. Returns
    /// `false` (kernel unchanged) when there are fewer than `k + 1` shifts.
    /// Pipeline statistics are not recomputed.
    pub fn drop_overlap_shift(&mut self, k: usize) -> bool {
        fn remove_kth(body: &mut Vec<hpf_ir::Stmt>, k: &mut usize) -> bool {
            let mut i = 0;
            while i < body.len() {
                if matches!(body[i], hpf_ir::Stmt::OverlapShift { .. }) {
                    if *k == 0 {
                        body.remove(i);
                        return true;
                    }
                    *k -= 1;
                } else if let hpf_ir::Stmt::TimeLoop { body: inner, .. } = &mut body[i] {
                    if remove_kth(inner, k) {
                        return true;
                    }
                }
                i += 1;
            }
            false
        }
        let mut k = k;
        if !remove_kth(&mut self.compiled.array_ir.body, &mut k) {
            return false;
        }
        let o = &self.compiled.options;
        let (mut node, _) = hpf_passes::scalarize::run(
            &self.compiled.array_ir,
            hpf_passes::scalarize::ScalarizeOptions {
                fuse: o.fuse,
                fortran_order: o.fortran_order,
            },
        );
        hpf_passes::memopt::run(
            &mut node,
            hpf_passes::memopt::MemOptOptions {
                scalar_replacement: o.scalar_replacement,
                unroll_factor: o.unroll_factor,
                permute: o.permute,
            },
        );
        self.compiled.node = node;
        true
    }
}

/// Builder for the reference interpreter, mirroring [`Runner`]: the oracle
/// and the machine take initializers the same way.
pub struct OracleRunner<'k> {
    kernel: &'k Kernel,
    inits: Vec<(String, InitFn)>,
}

impl OracleRunner<'_> {
    /// Initialize a named input array from a function of its coordinates.
    pub fn init(mut self, name: &str, f: impl Fn(&[i64]) -> f64 + Send + Sync + 'static) -> Self {
        self.inits.push((name.to_string(), std::sync::Arc::new(f)));
        self
    }

    /// Interpret the checked source program on dense global arrays.
    pub fn run(self) -> Reference {
        self.run_steps(1)
    }

    /// Interpret the program `steps` times in sequence on the same state —
    /// the oracle for driver-stepped superstep plans, where one machine
    /// step covers several logical sweeps ([`Run::logical_steps`]).
    pub fn run_steps(self, steps: usize) -> Reference {
        let mut r = Reference::new(&self.kernel.checked);
        for (name, f) in &self.inits {
            r.fill_named(name, |p| f(p));
        }
        for _ in 0..steps.max(1) {
            r.run(&self.kernel.checked);
        }
        r
    }
}

/// Array initializer: a function of the 1-based global coordinates.
pub type InitFn = std::sync::Arc<dyn Fn(&[i64]) -> f64 + Send + Sync>;

/// Builder for executing a kernel on a machine.
pub struct Runner<'k> {
    kernel: &'k Kernel,
    config: MachineConfig,
    inits: Vec<(String, InitFn)>,
    exec_cfg: ExecConfig,
    tuner: Option<hpf_tune::Tuner>,
}

impl Runner<'_> {
    /// Initialize a named input array from a function of its coordinates.
    pub fn init(mut self, name: &str, f: impl Fn(&[i64]) -> f64 + Send + Sync + 'static) -> Self {
        self.inits.push((name.to_string(), std::sync::Arc::new(f)));
        self
    }

    /// Select the executor.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.exec_cfg.engine = engine;
        self
    }

    /// Select how loop nests are evaluated: tree interpreter (default) or
    /// compiled bytecode kernels. Bitwise-identical results either way.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.exec_cfg.backend = backend;
        self
    }

    /// Replace the whole execution configuration (engine, backend, tracing,
    /// checking) in one call — e.g. with a parsed
    /// [`ExecConfig::from_cli_str`] value.
    pub fn config(mut self, cfg: ExecConfig) -> Self {
        self.exec_cfg = cfg;
        self
    }

    /// Toggle per-PE event tracing for the run ([`Run::trace`]).
    pub fn trace(mut self, on: bool) -> Self {
        self.exec_cfg = self.exec_cfg.trace(on);
        self
    }

    /// Toggle metrics collection for the run ([`Run::metrics`],
    /// [`Run::drift`]). Observation-only: results and counters are
    /// bitwise identical with metrics on or off.
    pub fn metrics(mut self, on: bool) -> Self {
        self.exec_cfg = self.exec_cfg.metrics(on);
        self
    }

    /// Replace the tuner used to resolve [`ExecConfig::auto`] (e.g. to
    /// point its cache elsewhere). Without this, auto-tuned runs use
    /// `Tuner::new` over the runner's machine configuration.
    pub fn tuner(mut self, tuner: hpf_tune::Tuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Set the communication-avoiding superstep depth `k` — see
    /// [`Planner::superstep`]. For driver-stepped flat kernels the single
    /// sweep then covers `k` logical steps ([`Run::logical_steps`]), and
    /// [`Runner::run_verified`] steps the oracle the same number of times.
    pub fn superstep(mut self, k: usize) -> Self {
        self.exec_cfg = self.exec_cfg.superstep(k);
        self
    }

    /// Execute one sweep. A thin wrapper over the plan API: builds a
    /// [`Plan`] (allocating input arrays first, then the remaining arrays —
    /// respecting the memory budget, which is how Figure 11's exhaustion
    /// reproduces) and steps it once.
    pub fn run(self) -> Result<Run, CoreError> {
        let mut plan = Planner {
            kernel: self.kernel,
            config: self.config,
            inits: self.inits,
            exec_cfg: self.exec_cfg,
            swaps: Vec::new(),
            tuner: self.tuner,
        }
        .build()?;
        plan.step();
        Ok(plan.into_run())
    }

    /// Execute and verify every initialized-or-assigned array against the
    /// reference interpreter (exact comparison: the executors are
    /// deterministic and operation order matches the oracle for stencil
    /// kernels).
    pub fn run_verified(self, outputs: &[&str], tol: f64) -> Result<Run, CoreError> {
        let inits = self.inits.clone();
        let kernel = self.kernel;
        let run = self.run()?;
        let mut oracle = kernel.oracle();
        for (name, f) in inits {
            oracle.inits.push((name, f));
        }
        // A driver-stepped superstep plan covers k logical sweeps per
        // machine step; the oracle must cover the same number.
        let reference = oracle.run_steps(run.logical_steps);
        for name in outputs {
            let id = kernel.array_id(name)?;
            if !run.machine.is_allocated(id) {
                // The program never references this array; nothing to check.
                continue;
            }
            let got = run.machine.gather(id);
            let want = &reference.arrays[&id].data;
            let diff = hpf_exec::max_abs_diff(&got, want);
            if diff > tol {
                return Err(CoreError::VerificationFailed {
                    array: name.to_string(),
                    max_diff: diff,
                });
            }
        }
        Ok(run)
    }
}

/// Builder for a persistent execution plan ([`Kernel::plan`]).
pub struct Planner<'k> {
    kernel: &'k Kernel,
    config: MachineConfig,
    inits: Vec<(String, InitFn)>,
    exec_cfg: ExecConfig,
    swaps: Vec<(String, String)>,
    tuner: Option<hpf_tune::Tuner>,
}

impl<'k> Planner<'k> {
    /// Initialize a named input array from a function of its coordinates.
    pub fn init(mut self, name: &str, f: impl Fn(&[i64]) -> f64 + Send + Sync + 'static) -> Self {
        self.inits.push((name.to_string(), std::sync::Arc::new(f)));
        self
    }

    /// Select the executor.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.exec_cfg.engine = engine;
        self
    }

    /// Select how loop nests are evaluated: tree interpreter (default) or
    /// compiled bytecode kernels. Under the bytecode backend the plan
    /// compiles every nest once at build time and reuses the kernels on
    /// every step. Bitwise-identical results either way.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.exec_cfg.backend = backend;
        self
    }

    /// Replace the whole execution configuration (engine, backend, tracing,
    /// checking) in one call — e.g. with a parsed
    /// [`ExecConfig::from_cli_str`] value.
    pub fn config(mut self, cfg: ExecConfig) -> Self {
        self.exec_cfg = cfg;
        self
    }

    /// Toggle per-PE event tracing ([`Plan::take_trace`]).
    pub fn trace(mut self, on: bool) -> Self {
        self.exec_cfg = self.exec_cfg.trace(on);
        self
    }

    /// Toggle metrics collection ([`Plan::metrics_snapshot`],
    /// [`Plan::drift_report`]). Observation-only: results and counters
    /// are bitwise identical with metrics on or off.
    pub fn metrics(mut self, on: bool) -> Self {
        self.exec_cfg = self.exec_cfg.metrics(on);
        self
    }

    /// Replace the tuner used to resolve [`ExecConfig::auto`] (e.g. to
    /// point its cache elsewhere). Without this, auto-tuned plans use
    /// `Tuner::new` over the planner's machine configuration.
    pub fn tuner(mut self, tuner: hpf_tune::Tuner) -> Self {
        self.tuner = Some(tuner);
        self
    }

    /// Swap the storage of two identically-distributed arrays after every
    /// step — the zero-copy double-buffer flip for Jacobi-style kernels
    /// whose source computes `b` from `a` without an explicit copy-back.
    pub fn swap(mut self, a: &str, b: &str) -> Self {
        self.swaps.push((a.to_string(), b.to_string()));
        self
    }

    /// Set the communication-avoiding superstep depth `k` (default 1, the
    /// classic exchange-every-step schedule): the machine's overlap area is
    /// deepened to the schedule's deep-fill depth automatically, one deep
    /// exchange then covers `k` sub-steps, and trapezoid boundary cells are
    /// redundantly recomputed instead of received. Results stay bitwise
    /// identical to the classic schedule. An ineligible kernel — or one
    /// whose deep halo would not fit the per-PE subgrids, or a plan with
    /// per-step [`Planner::swap`]s — falls back to `k = 1`;
    /// [`Plan::superstep_diags`] explains any fallback.
    pub fn superstep(mut self, k: usize) -> Self {
        self.exec_cfg = self.exec_cfg.superstep(k);
        self
    }

    /// Build the plan: construct the machine, allocate and fill the input
    /// arrays, allocate every remaining array the kernel references, and
    /// compile every communication op into a persistent schedule. All
    /// per-sweep setup cost is paid here, once.
    pub fn build(self) -> Result<Plan<'k>, CoreError> {
        let mut config = self.config;
        let mut exec_cfg = self.exec_cfg;
        // `ExecConfig::auto`: resolve engine, backend, PE grid, and spawn
        // threshold through the auto-tuner before the machine exists — the
        // grid and threshold are machine parameters, so tuning must happen
        // first. The tuner's cache counters are recorded on the machine
        // after the stats reset below, so they survive into `Plan::stats`.
        let mut tuned: Option<(u64, u64, u64)> = None;
        if exec_cfg.auto {
            let mut tuner =
                self.tuner.clone().unwrap_or_else(|| hpf_tune::Tuner::new(config.clone()));
            if !self.swaps.is_empty() {
                // Per-step buffer swaps are superstep-incompatible at the
                // plan level (see the SS009 gate below); keep the tuner
                // from wasting timings on depths this plan cannot use.
                tuner = tuner.supersteps(vec![1]);
            }
            let outcome = self.kernel.tune(&tuner)?;
            config.grid = hpf_runtime::PeGrid::new(outcome.best.grid.clone());
            config.par_threshold = outcome.best.par_threshold;
            exec_cfg.engine = outcome.best.engine;
            exec_cfg.backend = outcome.best.backend;
            exec_cfg = exec_cfg.superstep(outcome.best.superstep);
            exec_cfg.auto = false;
            tuned =
                Some((outcome.cache_hit as u64, (!outcome.cache_hit) as u64, outcome.search_ns));
        }
        let node = &self.kernel.compiled.node;
        // Superstep gating: the plan applies double-buffer swaps once per
        // plan step, but a depth-k superstep runs k logical steps inside
        // one plan step — per-logical-step swaps cannot interleave with
        // the sub-steps, so swaps force the classic schedule.
        let mut gate_diags = Vec::new();
        if exec_cfg.superstep > 1 && !self.swaps.is_empty() {
            gate_diags.push(hpf_ir::Diagnostic::warning(
                hpf_exec::superstep::SS009,
                "superstep depth > 1 cannot interleave per-step double-buffer swaps with its \
                 sub-steps; falling back to the classic schedule",
            ));
            exec_cfg = exec_cfg.superstep(1);
        }
        // Deep-halo sizing: a depth-k superstep needs the overlap area
        // allocated to the deep-fill depth. An ineligible kernel returns
        // `None` and keeps the base halo — `ExecPlan::build` then records
        // the planner's `SS00x` diagnostics and builds classic.
        let base_halo = config.halo;
        if exec_cfg.superstep > 1 {
            if let Some(h) = hpf_exec::superstep_halo(node, exec_cfg.superstep) {
                config.halo = config.halo.max(h);
            }
        }
        // The pipeline's `check_invariants` option (on by default in debug
        // builds) promotes the plan to a checked build: communication plans
        // are prevalidated and the static verifiers (BV*/PL*) fail hard
        // instead of demoting rejected kernels and windows.
        exec_cfg.check = exec_cfg.check || self.kernel.compiled.options.check_invariants;
        // Split-phase overlap is gated on the static halo-safety lints:
        // only a kernel whose offset reads are all proven covered (HS001)
        // and within the halo (HS002) may compute its interior while halo
        // messages are in flight. Anything unproven takes the
        // fully-blocking threaded engine — same results, no overlap.
        if exec_cfg.engine == Engine::ThreadedOverlap
            && hpf_analysis::has_errors(&self.kernel.lint())
        {
            exec_cfg.engine = Engine::Threaded;
        }
        let attempt = |config: MachineConfig,
                       exec_cfg: &ExecConfig|
         -> Result<(Machine, ExecPlan), CoreError> {
            let mut machine = Machine::new(config);
            for (name, f) in &self.inits {
                let id = self.kernel.array_id(name)?;
                if !machine.is_allocated(id) {
                    machine.alloc(id, self.kernel.checked.symbols.array(id))?;
                }
                machine.fill(id, |p| f(p));
            }
            machine.reset_stats();
            let exec = ExecPlan::build(&mut machine, node, exec_cfg)?;
            Ok((machine, exec))
        };
        let (mut machine, exec) = match attempt(config.clone(), &exec_cfg) {
            Err(CoreError::Runtime(RtError::HaloTooDeep { .. })) if exec_cfg.superstep > 1 => {
                // The deep halo does not fit this machine's per-PE
                // subgrids: too many PEs for the problem size at this
                // depth. Fall back to the classic schedule at the base
                // halo rather than fail the build.
                gate_diags.push(hpf_ir::Diagnostic::warning(
                    hpf_exec::superstep::SS008,
                    format!(
                        "depth-{} deep halo does not fit the per-PE subgrids; falling back to \
                         the classic schedule",
                        exec_cfg.superstep
                    ),
                ));
                exec_cfg = exec_cfg.superstep(1);
                config.halo = base_halo;
                attempt(config, &exec_cfg)?
            }
            other => other?,
        };
        if let Some((hits, misses, search_ns)) = tuned {
            machine.note_tune(hits, misses, search_ns);
        }
        let mut swaps = Vec::with_capacity(self.swaps.len());
        for (a, b) in &self.swaps {
            let (ia, ib) = (self.kernel.array_id(a)?, self.kernel.array_id(b)?);
            if !machine.is_allocated(ia) || !machine.is_allocated(ib) {
                let missing = if machine.is_allocated(ia) { b } else { a };
                return Err(CoreError::UnknownArray(missing.clone()));
            }
            swaps.push((ia, ib));
        }
        Ok(Plan {
            kernel: self.kernel,
            machine,
            exec,
            swaps,
            gate_diags,
            steps: 0,
            wall: Duration::ZERO,
        })
    }
}

/// A kernel bound to one machine with all communication schedules compiled:
/// step it, inspect or overwrite its warm state, step it again. Dropping the
/// plan (or [`Plan::into_run`]) releases nothing until the machine goes too —
/// arrays live on the machine, schedules on the plan.
pub struct Plan<'k> {
    kernel: &'k Kernel,
    /// The machine carrying the arrays and counters (public for direct
    /// access to subgrids and per-PE state).
    pub machine: Machine,
    exec: ExecPlan,
    swaps: Vec<(ArrayId, ArrayId)>,
    /// Core-level superstep fallback diagnostics (swap and halo gates),
    /// reported alongside the exec planner's via [`Plan::superstep_diags`].
    gate_diags: Vec<hpf_ir::Diagnostic>,
    steps: u64,
    wall: Duration,
}

impl Plan<'_> {
    /// Run one sweep of the kernel on the configured engine, reusing every
    /// compiled schedule, then apply the configured double-buffer swaps.
    /// With tracing on, the whole sweep is enveloped by a
    /// [`SpanKind::Step`] span on the driver track.
    pub fn step(&mut self) -> &mut Self {
        let started = Instant::now();
        let t0 = self.machine.driver_tracer().now();
        self.exec.step(&mut self.machine);
        apply_swaps(&mut self.machine, &self.swaps);
        self.machine.driver_tracer().record(SpanKind::Step, t0);
        self.steps += 1;
        self.wall += started.elapsed();
        self
    }

    /// The engine stepping this plan (after any lint-gated fallback from
    /// the overlapped engine to the blocking one).
    pub fn engine(&self) -> Engine {
        self.exec.engine()
    }

    /// Run `n` sweeps.
    pub fn iterate(&mut self, n: usize) -> &mut Self {
        for _ in 0..n {
            self.step();
        }
        self
    }

    /// Gather a named array's current (warm) state into a dense row-major
    /// buffer.
    pub fn gather(&self, name: &str) -> Result<Vec<f64>, CoreError> {
        Ok(self.machine.gather(self.kernel.array_id(name)?))
    }

    /// Overwrite a named array's warm state from a function of the global
    /// coordinates (e.g. to re-seed between sweeps without rebuilding).
    pub fn fill(&mut self, name: &str, f: impl Fn(&[i64]) -> f64) -> Result<(), CoreError> {
        let id = self.kernel.array_id(name)?;
        self.machine.fill(id, f);
        Ok(())
    }

    /// Overwrite a named array's warm state from a dense row-major buffer.
    pub fn scatter(&mut self, name: &str, data: &[f64]) -> Result<(), CoreError> {
        let id = self.kernel.array_id(name)?;
        self.machine.scatter(id, data);
        Ok(())
    }

    /// Steps executed so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Cumulative wall-clock time spent stepping (plan build excluded).
    pub fn wall(&self) -> Duration {
        self.wall
    }

    /// Number of distinct communication schedules compiled at build time.
    pub fn comm_count(&self) -> usize {
        self.exec.comm_count()
    }

    /// Split-phase overlap windows one step executes (zero unless the plan
    /// was built for [`Engine::ThreadedOverlap`] and kept its windows
    /// through lint gating and verification).
    pub fn overlap_windows_per_step(&self) -> u64 {
        self.exec.overlap_windows_per_step()
    }

    /// Logical stencil steps one [`Plan::step`] covers: the superstep depth
    /// `k` for a flat (driver-stepped) kernel tiled in time by
    /// [`Planner::superstep`], else 1. Drivers stepping to a target count
    /// divide by this.
    pub fn logical_steps_per_step(&self) -> usize {
        self.exec.logical_steps_per_step()
    }

    /// Superstep executions one [`Plan::step`] performs (zero on the
    /// classic schedule).
    pub fn supersteps_per_step(&self) -> u64 {
        self.exec.supersteps_per_step()
    }

    /// Exchange executions one step elides relative to the classic
    /// schedule of the same kernel (zero on the classic schedule).
    pub fn exchanges_elided_per_step(&self) -> u64 {
        self.exec.exchanges_elided_per_step()
    }

    /// Why the requested [`Planner::superstep`] depth fell back to the
    /// classic schedule: the exec planner's `SS00x` eligibility
    /// diagnostics plus the core-level swap (SS009) and halo-fit (SS008)
    /// gates. Empty when no fallback happened (or none was requested).
    pub fn superstep_diags(&self) -> Vec<hpf_ir::Diagnostic> {
        let mut out = self.gate_diags.clone();
        out.extend(self.exec.superstep_diags().iter().cloned());
        out
    }

    /// Run the static verifiers over the built plan — the bytecode
    /// verifier's `BV*` obligations on every compiled kernel and the race
    /// checker's `PL*` obligations on every overlap window and superstep
    /// (trapezoid coverage, PL004) — and return
    /// the diagnostics (empty = machine-checked safe). `ExecPlan::build`
    /// already enforces this in debug/checked builds; this re-runs it for
    /// observation, e.g. behind `hpfsc --verify`.
    pub fn verify_static(&self) -> Vec<hpf_ir::Diagnostic> {
        self.exec.verify()
    }

    /// Bytes held by the pooled message buffers (allocated once at build).
    pub fn pooled_bytes(&self) -> usize {
        self.exec.pooled_bytes()
    }

    /// Aggregated execution counters since the plan was built.
    pub fn stats(&self) -> AggStats {
        self.machine.stats()
    }

    /// Modeled execution time under the machine's cost model, milliseconds.
    pub fn modeled_ms(&self) -> f64 {
        self.machine.modeled_time_ms()
    }

    /// Whether the plan was built with event tracing enabled. When only
    /// metrics are enabled the rings run privately to feed the sampler and
    /// this stays `false` — user-facing trace semantics are unchanged.
    pub fn tracing_enabled(&self) -> bool {
        self.machine.tracing_enabled() && !self.exec.metrics_owns_trace()
    }

    /// Snapshot of the collected metrics (histograms, step series, per-PE
    /// registries); `None` unless the plan was built with
    /// [`Planner::metrics`] / [`ExecConfig::metrics`].
    pub fn metrics_snapshot(&self) -> Option<hpf_metrics::MetricsSnapshot> {
        self.exec.metrics_snapshot()
    }

    /// Cost-model drift report joining modeled component costs against
    /// measured span walls; `None` unless the plan was built with metrics.
    /// Its `modeled_time_ns` and `hidden_comm_ns` reconcile exactly with
    /// [`CostModel::modeled_time_ns`](hpf_runtime::CostModel::modeled_time_ns)
    /// and the sum of `AggStats::hidden_comm_ns`.
    pub fn drift_report(&self) -> Option<hpf_metrics::DriftReport> {
        self.exec.drift_report(&self.machine)
    }

    /// Take the trace recorded since the plan was built (or since the last
    /// call): the synthetic `compile-passes` track, the `driver` track
    /// (schedule builds, kernel compiles, step envelopes), and one track
    /// per PE. Recording stays enabled; the rings restart empty. Returns
    /// an empty trace when tracing was not enabled.
    pub fn take_trace(&mut self) -> Trace {
        let mut trace = self.machine.take_trace();
        if self.exec.metrics_owns_trace() {
            // The rings exist only to feed the metrics sampler (which marks
            // its own watermarks each step): drain them, hand back nothing.
            return Trace::default();
        }
        if self.machine.tracing_enabled() {
            trace.tracks.insert(0, compile_passes_track(self.kernel.stats()));
        }
        trace
    }

    /// [`Plan::take_trace`] reduced to per-track per-kind aggregates.
    pub fn trace_summary(&mut self) -> TraceSummary {
        self.take_trace().summary()
    }

    /// Export [`Plan::take_trace`] as Chrome `trace_event` JSON at `path`
    /// (load in `chrome://tracing` or [Perfetto](https://ui.perfetto.dev)).
    pub fn write_chrome_trace(&mut self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.take_trace().to_chrome_json())
    }

    /// Finish: convert into a [`Run`] (machine state, stepping time, and —
    /// when tracing or metrics were enabled — the recorded trace, metrics
    /// snapshot, and drift report).
    pub fn into_run(mut self) -> Run {
        let trace = if self.tracing_enabled() { Some(self.take_trace()) } else { None };
        let metrics = self.metrics_snapshot();
        let drift = self.drift_report();
        let logical_steps = self.logical_steps_per_step();
        let superstep_diags = self.superstep_diags();
        Run {
            machine: self.machine,
            wall: self.wall,
            trace,
            metrics,
            drift,
            logical_steps,
            superstep_diags,
        }
    }
}

/// A finished run.
pub struct Run {
    /// The machine in its final state (arrays, counters).
    pub machine: Machine,
    /// Wall-clock time of the executor.
    pub wall: Duration,
    /// The recorded event trace, when the run was configured with tracing
    /// ([`Runner::trace`] / [`ExecConfig::trace`]); `None` otherwise.
    pub trace: Option<Trace>,
    /// The metrics snapshot, when the run was configured with metrics
    /// ([`Runner::metrics`] / [`ExecConfig::metrics`]); `None` otherwise.
    pub metrics: Option<hpf_metrics::MetricsSnapshot>,
    /// The cost-model drift report, when the run was configured with
    /// metrics; `None` otherwise.
    pub drift: Option<hpf_metrics::DriftReport>,
    /// Logical time steps each machine step covered: the superstep depth
    /// `k` for a driver-stepped flat superstep plan, 1 otherwise.
    pub logical_steps: usize,
    /// Superstep eligibility and fallback diagnostics (SS001-SS009) from
    /// the plan build; empty unless a superstep depth was requested.
    pub superstep_diags: Vec<hpf_ir::Diagnostic>,
}

impl Run {
    /// Gather a named array into a dense row-major buffer.
    pub fn gather(&self, kernel: &Kernel, name: &str) -> Vec<f64> {
        let id = kernel.array_id(name).expect("known array");
        self.machine.gather(id)
    }

    /// Aggregated execution counters.
    pub fn stats(&self) -> AggStats {
        self.machine.stats()
    }

    /// Modeled execution time under the machine's cost model, milliseconds.
    pub fn modeled_ms(&self) -> f64 {
        self.machine.modeled_time_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use hpf_passes::Stage;

    #[test]
    fn compile_run_gather() {
        let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
        let run = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", |p| (p[0] * 3 + p[1]) as f64)
            .run()
            .unwrap();
        let t = run.gather(&kernel, "T");
        assert_eq!(t.len(), 256);
        assert!(run.stats().total_messages() > 0);
        assert!(run.modeled_ms() > 0.0);
    }

    #[test]
    fn verified_run_passes_for_all_stages() {
        for stage in Stage::all() {
            let kernel =
                Kernel::compile(&presets::problem9(12), CompileOptions::upto(stage)).unwrap();
            kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", |p| ((p[0] * 7 + p[1]) as f64).sin())
                .run_verified(&["T"], 0.0)
                .unwrap();
        }
    }

    #[test]
    fn threaded_engine_equals_sequential() {
        let kernel = Kernel::compile(&presets::jacobi(16, 5), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] + 2 * p[1]) as f64).cos();
        let a = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::Sequential)
            .run()
            .unwrap();
        for engine in [Engine::Threaded, Engine::ThreadedOverlap] {
            let b = kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", init)
                .engine(engine)
                .run()
                .unwrap();
            assert_eq!(a.gather(&kernel, "U"), b.gather(&kernel, "U"), "{engine:?}");
        }
    }

    #[test]
    fn overlap_engine_overlaps_clean_kernels_and_falls_back_on_dirty() {
        let kernel = Kernel::compile(&presets::jacobi(16, 3), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 3 + p[1]) as f64).sin();
        let mut plan = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::ThreadedOverlap)
            .build()
            .unwrap();
        plan.iterate(2);
        let st = plan.stats();
        assert!(st.overlapped_steps > 0, "lint-clean kernel overlaps");
        assert!(st.interior_cells > 0 && st.boundary_cells > 0);

        // Dropping an overlap shift makes HS001 fire; the planner must take
        // the conservative fully-blocking path (no windows), yet execution
        // still matches the sequential engine on the (now-broken) kernel.
        let mut dirty = kernel.clone();
        assert!(dirty.drop_overlap_shift(0));
        assert!(hpf_analysis::has_errors(&dirty.lint()));
        let mut p_ovl = dirty
            .plan(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::ThreadedOverlap)
            .build()
            .unwrap();
        let mut p_seq = dirty
            .plan(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::Sequential)
            .build()
            .unwrap();
        p_ovl.iterate(2);
        p_seq.iterate(2);
        assert_eq!(p_ovl.stats().overlapped_steps, 0, "fallback overlaps nothing");
        assert_eq!(p_ovl.gather("U").unwrap(), p_seq.gather("U").unwrap());
    }

    #[test]
    fn traced_run_carries_compile_driver_and_pe_tracks() {
        let kernel = Kernel::compile(&presets::jacobi(16, 3), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 3 + p[1]) as f64).sin();
        let run = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .config(ExecConfig::from_cli_str("threaded-overlap-bytecode").unwrap().trace(true))
            .run()
            .unwrap();
        let trace = run.trace.as_ref().expect("tracing was configured");
        let summary = trace.summary();
        let compile = summary.track("compile-passes").expect("compile track");
        assert!(compile.count(SpanKind::Pass) > 0, "one span per enabled pass");
        let driver = summary.track("driver").expect("driver track");
        assert_eq!(driver.count(SpanKind::Step), 1, "one step envelope");
        assert!(driver.count(SpanKind::ScheduleBuild) > 0);
        assert_eq!(summary.pe_tracks().len(), 4);
        assert_eq!(
            summary.hidden_comm_ns(),
            run.stats().hidden_comm_ns,
            "trace-derived hidden credit reproduces the counter"
        );
        // An untraced run carries no trace and identical results.
        let plain = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::ThreadedOverlap)
            .backend(Backend::Bytecode)
            .run()
            .unwrap();
        assert!(plain.trace.is_none());
        assert_eq!(run.gather(&kernel, "U"), plain.gather(&kernel, "U"));
        assert_eq!(run.stats().per_pe, plain.stats().per_pe);
    }

    #[test]
    fn metrics_run_snapshots_without_exposing_a_trace() {
        let kernel = Kernel::compile(&presets::jacobi(16, 3), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 5 + p[1]) as f64).sin();
        let mut plan = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::ThreadedOverlap)
            .metrics(true)
            .build()
            .unwrap();
        assert!(!plan.tracing_enabled(), "metrics-owned rings stay invisible");
        plan.iterate(3);
        assert!(plan.take_trace().tracks.is_empty(), "no user-facing trace");
        let snap = plan.metrics_snapshot().expect("metrics were configured");
        assert_eq!(snap.pes, 4);
        assert_eq!(snap.steps, 3);
        assert_eq!(snap.series.len(), 3);
        assert!(snap.merged_pe_registry().hists().any(|(_, h)| h.count() > 0));
        let drift = plan.drift_report().expect("metrics were configured");
        // The report's totals reconcile exactly with their sources.
        let agg = plan.stats();
        let cost = &plan.machine.cfg.cost;
        assert_eq!(drift.modeled_time_ns, cost.modeled_time_ns(&agg));
        assert_eq!(drift.hidden_comm_ns, agg.hidden_comm_ns.iter().sum::<f64>());
        let run = plan.into_run();
        assert!(run.trace.is_none(), "metrics alone never surface a trace");
        assert!(run.metrics.is_some() && run.drift.is_some());

        // Metrics + trace together: both surfaces populated.
        let traced = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .trace(true)
            .metrics(true)
            .run()
            .unwrap();
        assert!(traced.trace.is_some());
        assert!(traced.metrics.is_some());
        // Observation-only: identical arrays and counters with metrics off.
        let plain = kernel.runner(MachineConfig::sp2_2x2()).init("U", init).run().unwrap();
        assert_eq!(traced.gather(&kernel, "U"), plain.gather(&kernel, "U"));
        assert_eq!(traced.stats().per_pe, plain.stats().per_pe);
        assert!(plain.metrics.is_none() && plain.drift.is_none());
    }

    #[test]
    fn plan_take_trace_drains_and_keeps_recording() {
        let kernel = Kernel::compile(&presets::jacobi(16, 2), CompileOptions::full()).unwrap();
        let mut plan = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("U", |p| (p[0] - p[1]) as f64)
            .trace(true)
            .build()
            .unwrap();
        assert!(plan.tracing_enabled());
        plan.step();
        let first = plan.take_trace();
        assert!(first.summary().track("driver").unwrap().count(SpanKind::Step) == 1);
        plan.step();
        plan.step();
        let second = plan.take_trace();
        assert_eq!(second.summary().track("driver").unwrap().count(SpanKind::Step), 2);
    }

    #[test]
    fn unknown_array_error() {
        let kernel = Kernel::compile(&presets::five_point(8), CompileOptions::full()).unwrap();
        assert!(matches!(
            kernel.runner(MachineConfig::sp2_2x2()).init("NOPE", |_| 0.0).run(),
            Err(CoreError::UnknownArray(_))
        ));
    }

    #[test]
    fn front_error_propagates() {
        let err = Kernel::compile("REAL A(\n", CompileOptions::full()).unwrap_err();
        assert!(matches!(err, CoreError::Front(_)));
    }

    #[test]
    fn plan_iterate_matches_chained_runs() {
        // Plan::iterate(n) must be bitwise-equal to n one-shot Runner::run()
        // calls whose state is carried forward by hand, on both engines.
        let kernel = Kernel::compile(&presets::jacobi(16, 1), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 5 + p[1] * 3) as f64).sin();
        for engine in [Engine::Sequential, Engine::Threaded, Engine::ThreadedOverlap] {
            let mut plan = kernel
                .plan(MachineConfig::sp2_2x2())
                .init("U", init)
                .engine(engine)
                .build()
                .unwrap();
            plan.iterate(4);
            assert_eq!(plan.steps(), 4);
            // Chained one-shot runs: each run's U output seeds the next.
            let mut state: Vec<f64> = {
                let n = 16 * 16;
                let mut v = vec![0.0; n];
                for (i, slot) in v.iter_mut().enumerate() {
                    let p = [(i / 16 + 1) as i64, (i % 16 + 1) as i64];
                    *slot = init(&p);
                }
                v
            };
            for _ in 0..4 {
                let s = state.clone();
                let run = kernel
                    .runner(MachineConfig::sp2_2x2())
                    .init("U", move |p| s[((p[0] - 1) * 16 + p[1] - 1) as usize])
                    .engine(engine)
                    .run()
                    .unwrap();
                state = run.gather(&kernel, "U");
            }
            assert_eq!(plan.gather("U").unwrap(), state, "engine {engine:?}");
        }
    }

    #[test]
    fn plan_reuses_schedules_across_steps() {
        let kernel = Kernel::compile(&presets::jacobi(16, 1), CompileOptions::full()).unwrap();
        let mut plan = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("U", |p| (p[0] + p[1]) as f64)
            .build()
            .unwrap();
        let pooled = plan.pooled_bytes();
        assert!(pooled > 0, "buffers pooled at build time");
        plan.iterate(10);
        let st = plan.stats();
        // Compiled once, reused on every one of the 10 steps.
        assert_eq!(st.schedules_built as usize, plan.comm_count());
        assert_eq!(st.schedule_reuses, 10 * st.schedules_built);
        assert_eq!(plan.pooled_bytes(), pooled, "no per-step buffer growth");
        // No allocations after build either: allocs counted at build only.
        let allocs_after_10 = plan.stats().total().allocs;
        plan.iterate(5);
        assert_eq!(plan.stats().total().allocs, allocs_after_10);
    }

    #[test]
    fn plan_swap_drives_double_buffer_jacobi() {
        // five_point computes DST from SRC once; swapping them after each
        // step makes it a time-stepped Jacobi without a copy-back statement.
        let kernel = Kernel::compile(&presets::five_point(8), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 3 + p[1]) as f64).cos();
        let mut plan = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("SRC", init)
            .swap("SRC", "DST")
            .build()
            .unwrap();
        plan.step();
        let src_after_1 = plan.gather("SRC").unwrap();
        // One unswapped step gives the same values in DST.
        let run = kernel.runner(MachineConfig::sp2_2x2()).init("SRC", init).run().unwrap();
        assert_eq!(src_after_1, run.gather(&kernel, "DST"));
    }

    #[test]
    fn plan_warm_state_access() {
        let kernel = Kernel::compile(&presets::five_point(8), CompileOptions::full()).unwrap();
        let mut plan = kernel.plan(MachineConfig::sp2_2x2()).init("SRC", |_| 1.0).build().unwrap();
        plan.step();
        let t1 = plan.gather("DST").unwrap();
        // Re-seed SRC and zero DST, then step again: same result.
        plan.fill("SRC", |_| 1.0).unwrap();
        plan.scatter("DST", &vec![0.0; 64]).unwrap();
        plan.step();
        assert_eq!(plan.gather("DST").unwrap(), t1);
        assert!(plan.gather("NOPE").is_err());
    }

    #[test]
    fn plan_propagates_memory_exhaustion() {
        let kernel = Kernel::compile(&presets::problem9(8), CompileOptions::full()).unwrap();
        let err = kernel.plan(MachineConfig::sp2_2x2().budget(300)).init("U", |_| 0.0).build();
        assert!(matches!(err, Err(CoreError::Runtime(_))));
    }

    #[test]
    fn lint_clean_pipeline_flags_dropped_shift() {
        let mut kernel = Kernel::compile(&presets::problem9(8), CompileOptions::full()).unwrap();
        assert!(kernel.lint().is_empty(), "full pipeline output is lint-clean");
        assert!(!kernel.drop_overlap_shift(99), "only 4 shifts to drop");
        assert!(kernel.drop_overlap_shift(0));
        let diags = kernel.lint();
        assert!(hpf_analysis::has_errors(&diags));
        assert!(diags.iter().any(|d| d.code == hpf_analysis::HS001));
        assert!(diags[0].span.is_some(), "HS001 carries the source span");
    }

    #[test]
    fn superstep_plan_matches_classic_and_elides_messages() {
        // Problem 9 is flat, so the superstep plan is driver-stepped: one
        // plan step covers k logical steps on one deep exchange.
        let kernel = Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 7 + p[1] * 3) as f64).sin();
        let mut classic = kernel.plan(MachineConfig::sp2_2x2()).init("U", init).build().unwrap();
        classic.iterate(8);
        let mut ss =
            kernel.plan(MachineConfig::sp2_2x2()).init("U", init).superstep(4).build().unwrap();
        assert!(ss.superstep_diags().is_empty(), "{:?}", ss.superstep_diags());
        assert_eq!(ss.logical_steps_per_step(), 4);
        assert_eq!(ss.supersteps_per_step(), 1);
        assert!(ss.exchanges_elided_per_step() > 0);
        ss.iterate(2); // 2 plan steps × 4 logical steps = 8
        assert_eq!(ss.gather("T").unwrap(), classic.gather("T").unwrap(), "bitwise identical");
        let (a, b) = (ss.stats(), classic.stats());
        assert!(
            a.total_messages() * 2 <= b.total_messages(),
            "superstep must at least halve message count: {} vs {}",
            a.total_messages(),
            b.total_messages()
        );
        assert_eq!(a.exchanges_elided, 2 * ss.exchanges_elided_per_step());

        // The time-looped Jacobi tiles in place: same plan-step count.
        let kernel = Kernel::compile(&presets::jacobi(16, 8), CompileOptions::full()).unwrap();
        let mut classic = kernel.plan(MachineConfig::sp2_2x2()).init("U", init).build().unwrap();
        let mut ss =
            kernel.plan(MachineConfig::sp2_2x2()).init("U", init).superstep(4).build().unwrap();
        assert!(ss.superstep_diags().is_empty(), "{:?}", ss.superstep_diags());
        assert_eq!(ss.logical_steps_per_step(), 1, "the DO loop tiles in place");
        assert!(ss.supersteps_per_step() > 0);
        classic.step();
        ss.step();
        assert_eq!(ss.gather("U").unwrap(), classic.gather("U").unwrap());
        assert!(ss.verify_static().is_empty(), "{:?}", ss.verify_static());
    }

    #[test]
    fn superstep_with_swaps_falls_back_with_ss009() {
        // Per-step double-buffer swaps cannot interleave with sub-steps.
        let kernel = Kernel::compile(&presets::five_point(16), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] + 2 * p[1]) as f64).cos();
        let mut gated = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("SRC", init)
            .swap("SRC", "DST")
            .superstep(4)
            .build()
            .unwrap();
        assert!(gated.superstep_diags().iter().any(|d| d.code == "SS009"));
        assert_eq!(gated.supersteps_per_step(), 0);
        let mut classic = kernel
            .plan(MachineConfig::sp2_2x2())
            .init("SRC", init)
            .swap("SRC", "DST")
            .build()
            .unwrap();
        gated.iterate(3);
        classic.iterate(3);
        assert_eq!(gated.gather("SRC").unwrap(), classic.gather("SRC").unwrap());
    }

    #[test]
    fn superstep_too_deep_for_subgrids_falls_back_with_ss008() {
        // Jacobi over 8×8 on 2×2 PEs leaves 4×4 subgrids; a depth-8
        // superstep needs an 8-deep halo, which cannot fit — the build
        // falls back to the classic schedule instead of failing.
        let kernel = Kernel::compile(&presets::jacobi(8, 16), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] * 3 + p[1]) as f64).sin();
        let mut plan =
            kernel.plan(MachineConfig::sp2_2x2()).init("U", init).superstep(8).build().unwrap();
        assert!(
            plan.superstep_diags().iter().any(|d| d.code == "SS008"),
            "{:?}",
            plan.superstep_diags()
        );
        assert_eq!(plan.supersteps_per_step(), 0);
        let mut classic = kernel.plan(MachineConfig::sp2_2x2()).init("U", init).build().unwrap();
        plan.step();
        classic.step();
        assert_eq!(plan.gather("U").unwrap(), classic.gather("U").unwrap());
    }

    #[test]
    fn listing_shows_paper_notation() {
        let kernel = Kernel::compile(&presets::problem9(8), CompileOptions::full()).unwrap();
        let listing = kernel.listing();
        assert!(listing.contains("CALL OVERLAP_CSHIFT(U,SHIFT=+1,DIM=1)"), "{listing}");
        assert!(listing.contains("U<+1,-1>"), "{listing}");
    }
}
