//! The compile-and-run API.

use hpf_exec::{execute_par, execute_seq, Reference};
use hpf_frontend::{compile_source, Checked, FrontError};
use hpf_ir::ArrayId;
use hpf_passes::{compile, CompileOptions, Compiled};
use hpf_runtime::{AggStats, Machine, MachineConfig, RtError};
use std::fmt;
use std::time::{Duration, Instant};

/// Any error from compiling or running a kernel.
#[derive(Clone, Debug, PartialEq)]
pub enum CoreError {
    /// Lexing / parsing / semantic analysis failed.
    Front(FrontError),
    /// The machine rejected the program (memory budget, bad grid, …).
    Runtime(RtError),
    /// A named array does not exist.
    UnknownArray(String),
    /// Verification against the reference interpreter failed.
    VerificationFailed {
        /// Output array that differed.
        array: String,
        /// Largest element-wise difference.
        max_diff: f64,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::Front(e) => write!(f, "frontend error: {e}"),
            CoreError::Runtime(e) => write!(f, "runtime error: {e}"),
            CoreError::UnknownArray(n) => write!(f, "unknown array {n}"),
            CoreError::VerificationFailed { array, max_diff } => {
                write!(f, "verification failed on {array}: max diff {max_diff}")
            }
        }
    }
}

impl std::error::Error for CoreError {}

impl From<FrontError> for CoreError {
    fn from(e: FrontError) -> Self {
        CoreError::Front(e)
    }
}

impl From<RtError> for CoreError {
    fn from(e: RtError) -> Self {
        CoreError::Runtime(e)
    }
}

/// Which executor to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// One PE at a time (deterministic, lowest overhead for small problems).
    Sequential,
    /// One OS thread per PE with channel-based message passing; results are
    /// bitwise identical to [`Engine::Sequential`].
    Threaded,
}

/// A compiled stencil kernel.
#[derive(Clone, Debug)]
pub struct Kernel {
    /// The checked source program (the reference interpreter's input).
    pub checked: Checked,
    /// The compiled pipeline output.
    pub compiled: Compiled,
}

impl Kernel {
    /// Compile HPF/Fortran90 source with the given pipeline options.
    pub fn compile(source: &str, options: CompileOptions) -> Result<Kernel, CoreError> {
        let checked = compile_source(source)?;
        let compiled = compile(&checked, options);
        Ok(Kernel { checked, compiled })
    }

    /// Look up an array by source name.
    pub fn array_id(&self, name: &str) -> Result<ArrayId, CoreError> {
        self.checked
            .symbols
            .lookup_array(name)
            .ok_or_else(|| CoreError::UnknownArray(name.to_string()))
    }

    /// The optimized array-level IR rendered in the paper's notation
    /// (Figures 12–15 style).
    pub fn listing(&self) -> String {
        hpf_ir::pretty::program(&self.compiled.array_ir)
    }

    /// Pipeline statistics (communication counts, temps, per-pass effects).
    pub fn stats(&self) -> &hpf_passes::PipelineStats {
        &self.compiled.stats
    }

    /// Start configuring a run of this kernel.
    pub fn runner(&self, config: MachineConfig) -> Runner<'_> {
        Runner {
            kernel: self,
            config,
            inits: Vec::new(),
            engine: Engine::Sequential,
        }
    }

    /// Run the reference interpreter with the same initializers — the
    /// correctness oracle.
    pub fn reference(&self, inits: &[(String, InitFn)]) -> Reference {
        let mut r = Reference::new(&self.checked);
        for (name, f) in inits {
            r.fill_named(name, |p| f(p));
        }
        let mut r2 = r;
        r2.run(&self.checked);
        r2
    }
}

/// Array initializer: a function of the 1-based global coordinates.
pub type InitFn = std::sync::Arc<dyn Fn(&[i64]) -> f64 + Send + Sync>;

/// Builder for executing a kernel on a machine.
pub struct Runner<'k> {
    kernel: &'k Kernel,
    config: MachineConfig,
    inits: Vec<(String, InitFn)>,
    engine: Engine,
}

impl Runner<'_> {
    /// Initialize a named input array from a function of its coordinates.
    pub fn init(mut self, name: &str, f: impl Fn(&[i64]) -> f64 + Send + Sync + 'static) -> Self {
        self.inits.push((name.to_string(), std::sync::Arc::new(f)));
        self
    }

    /// Select the executor.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Execute. Input arrays are allocated and filled first; remaining
    /// arrays are allocated by the executor (respecting the memory budget,
    /// which is how Figure 11's exhaustion reproduces).
    pub fn run(self) -> Result<Run, CoreError> {
        let mut machine = Machine::new(self.config);
        for (name, f) in &self.inits {
            let id = self.kernel.array_id(name)?;
            if !machine.is_allocated(id) {
                machine.alloc(id, self.kernel.checked.symbols.array(id))?;
            }
            machine.fill(id, |p| f(p));
        }
        machine.reset_stats();
        let started = Instant::now();
        match self.engine {
            Engine::Sequential => execute_seq(&mut machine, &self.kernel.compiled.node)?,
            Engine::Threaded => execute_par(&mut machine, &self.kernel.compiled.node)?,
        }
        let wall = started.elapsed();
        Ok(Run { machine, wall })
    }

    /// Execute and verify every initialized-or-assigned array against the
    /// reference interpreter (exact comparison: the executors are
    /// deterministic and operation order matches the oracle for stencil
    /// kernels).
    pub fn run_verified(self, outputs: &[&str], tol: f64) -> Result<Run, CoreError> {
        let inits = self.inits.clone();
        let kernel = self.kernel;
        let run = self.run()?;
        let reference = kernel.reference(&inits);
        for name in outputs {
            let id = kernel.array_id(name)?;
            if !run.machine.is_allocated(id) {
                // The program never references this array; nothing to check.
                continue;
            }
            let got = run.machine.gather(id);
            let want = &reference.arrays[&id].data;
            let diff = hpf_exec::max_abs_diff(&got, want);
            if diff > tol {
                return Err(CoreError::VerificationFailed {
                    array: name.to_string(),
                    max_diff: diff,
                });
            }
        }
        Ok(run)
    }
}

/// A finished run.
pub struct Run {
    /// The machine in its final state (arrays, counters).
    pub machine: Machine,
    /// Wall-clock time of the executor.
    pub wall: Duration,
}

impl Run {
    /// Gather a named array into a dense row-major buffer.
    pub fn gather(&self, kernel: &Kernel, name: &str) -> Vec<f64> {
        let id = kernel.array_id(name).expect("known array");
        self.machine.gather(id)
    }

    /// Aggregated execution counters.
    pub fn stats(&self) -> AggStats {
        self.machine.stats()
    }

    /// Modeled execution time under the machine's cost model, milliseconds.
    pub fn modeled_ms(&self) -> f64 {
        self.machine.modeled_time_ms()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;
    use hpf_passes::Stage;

    #[test]
    fn compile_run_gather() {
        let kernel =
            Kernel::compile(&presets::problem9(16), CompileOptions::full()).unwrap();
        let run = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", |p| (p[0] * 3 + p[1]) as f64)
            .run()
            .unwrap();
        let t = run.gather(&kernel, "T");
        assert_eq!(t.len(), 256);
        assert!(run.stats().total_messages() > 0);
        assert!(run.modeled_ms() > 0.0);
    }

    #[test]
    fn verified_run_passes_for_all_stages() {
        for stage in Stage::all() {
            let kernel =
                Kernel::compile(&presets::problem9(12), CompileOptions::upto(stage)).unwrap();
            kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", |p| ((p[0] * 7 + p[1]) as f64).sin())
                .run_verified(&["T"], 0.0)
                .unwrap();
        }
    }

    #[test]
    fn threaded_engine_equals_sequential() {
        let kernel = Kernel::compile(&presets::jacobi(16, 5), CompileOptions::full()).unwrap();
        let init = |p: &[i64]| ((p[0] + 2 * p[1]) as f64).cos();
        let a = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::Sequential)
            .run()
            .unwrap();
        let b = kernel
            .runner(MachineConfig::sp2_2x2())
            .init("U", init)
            .engine(Engine::Threaded)
            .run()
            .unwrap();
        assert_eq!(a.gather(&kernel, "U"), b.gather(&kernel, "U"));
    }

    #[test]
    fn unknown_array_error() {
        let kernel = Kernel::compile(&presets::five_point(8), CompileOptions::full()).unwrap();
        assert!(matches!(
            kernel.runner(MachineConfig::sp2_2x2()).init("NOPE", |_| 0.0).run(),
            Err(CoreError::UnknownArray(_))
        ));
    }

    #[test]
    fn front_error_propagates() {
        let err = Kernel::compile("REAL A(\n", CompileOptions::full()).unwrap_err();
        assert!(matches!(err, CoreError::Front(_)));
    }

    #[test]
    fn listing_shows_paper_notation() {
        let kernel = Kernel::compile(&presets::problem9(8), CompileOptions::full()).unwrap();
        let listing = kernel.listing();
        assert!(listing.contains("CALL OVERLAP_CSHIFT(U,SHIFT=+1,DIM=1)"), "{listing}");
        assert!(listing.contains("U<+1,-1>"), "{listing}");
    }
}
