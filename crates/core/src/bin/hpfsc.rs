//! `hpfsc` — the stencil compiler driver.
//!
//! Compiles a mini-HPF source file through the SC'97 pipeline, shows the
//! optimized IR at any stage, lints it with the static analyzer, and
//! optionally runs it on the simulated machine (verified against the
//! reference interpreter).
//!
//! ```text
//! hpfsc [FILE] [--stage original|offset|partition|unioning|full]
//!              [--emit ir|node|stats|diag-json] [--lint] [--deny-warnings]
//!              [--verify] [--run] [--grid RxC] [--halo W] [--superstep K]
//!              [--engine seq|threaded|threaded-overlap|interp|bytecode|auto|...]
//!              [--trace[=FILE]] [--tune[=FILE]]
//!              [--print-input NAME[:N]] [--naive] [--drop-shift K]
//! ```
//!
//! Exit codes: 0 success; 1 compile, run, or I/O failure; 2 usage error;
//! 3 lint warnings under `--deny-warnings`; 4 lint errors; 5 static
//! verification failure under `--verify`.

use hpf_core::analysis;
use hpf_core::baselines::naive;
use hpf_core::passes::nodepretty;
use hpf_core::passes::PASS_NAMES;
use hpf_core::{presets, Backend, CompileOptions, ExecConfig, Kernel, MachineConfig, Stage};
use std::process::exit;

const USAGE: &str = "\
usage: hpfsc [FILE] [options]

options:
  --stage original|offset|partition|unioning|full
                        stop the pipeline after this stage (default: full)
  --emit ir|node|stats|diag-json
                        what to print, comma-separated (default: ir, or
                        nothing under --lint; diag-json implies linting)
  --lint                run the static analyzer (HS/CU/DF/FP lints) and
                        report diagnostics with source spans
  --deny-warnings       exit 3 when linting reports any warning
  --verify              machine-check the compiled program: run the
                        bytecode verifier (BV001-BV004) over every per-PE
                        kernel and the plan-level race checker
                        (PL001-PL003) over every overlap window of a
                        threaded-overlap-bytecode plan on the --grid
                        machine; print any diagnostics, exit 5 on failure
  --run                 execute on the simulated machine, verified against
                        the reference interpreter
  --grid RxC            PE grid for --run (default: 2x2)
  --halo W              overlap-area width (default: 1)
  --superstep K         communication-avoiding superstep depth for --run
                        and --verify: exchange deep halos once per K time
                        steps and redundantly recompute trapezoid boundary
                        cells in between; bitwise identical to K=1. An
                        ineligible kernel falls back to K=1 with an SS###
                        diagnostic (default: 1)
  --engine SPEC         executor and nest backend for --run: an engine
                        (seq, threaded, threaded-overlap), a backend
                        (interp, bytecode), or both joined with '-'
                        (e.g. threaded-bytecode, threaded-overlap-bytecode);
                        'auto' picks grid, engine, backend, and spawn
                        threshold with the auto-tuner (see --tune);
                        default: seq-interp
  --tune[=FILE]         auto-tune this kernel on the --grid machine: search
                        every PE-grid factorization x engine x backend x
                        spawn threshold, prune with the cost model, time
                        the best-modeled survivors, print the candidate
                        table, and persist the winner in FILE (default
                        .hpf-tune.json); a warm cache skips the search
                        entirely. With --run, also executes the tuned
                        configuration (same as --engine auto)
  --trace[=FILE]        record per-PE event spans during --run and print
                        the per-step summary tables (compile passes,
                        per-PE span times, counters); with =FILE also
                        write Chrome trace_event JSON there (load in
                        chrome://tracing or ui.perfetto.dev)
  --metrics[=FILE]      collect per-PE metrics during --run (latency
                        histograms, step time series, load imbalance) and
                        print the JSON snapshot; with =FILE write it there
                        instead (a .prom suffix selects Prometheus text
                        exposition). Observation-only: results and
                        counters are bitwise identical with metrics off
  --report              print a one-page run report after --run: config,
                        per-PE utilization, histogram summaries, and the
                        cost-model drift table (modeled vs measured per
                        component, DRIFT markers outside the band)
  --print-input NAME[:N]
                        print a preset kernel source (five-point,
                        nine-point-cshift, nine-point-array, problem9,
                        jacobi, image-blur, wave2d) at problem size N
                        (default 16); FILE may be omitted
  --naive               compile like an xlhpf-class compiler instead
  --drop-shift K        fault injection: delete the K-th OVERLAP_SHIFT from
                        the compiled kernel before linting or running (the
                        static analyzer should report HS001; a verified run
                        should fail)
  --help, -h            show this help

exit codes: 0 success, 1 compile/run/IO failure, 2 usage error,
            3 lint warnings under --deny-warnings, 4 lint errors,
            5 static verification failure under --verify";

/// Stdout vanished mid-print. A closed pipe (`hpfsc ... | head`) means the
/// downstream consumer got everything it wanted — that is success, not an
/// error; anything else (disk full on a redirect) is a real I/O failure.
fn stdout_gone(e: std::io::Error) -> ! {
    if e.kind() == std::io::ErrorKind::BrokenPipe {
        exit(0)
    }
    eprintln!("hpfsc: cannot write to stdout: {e}");
    exit(1)
}

/// `println!` to stdout without the panic-on-broken-pipe behavior.
macro_rules! out {
    ($($t:tt)*) => {{
        use std::io::Write;
        if let Err(e) = writeln!(std::io::stdout(), $($t)*) {
            stdout_gone(e)
        }
    }};
}

/// `print!` to stdout without the panic-on-broken-pipe behavior.
macro_rules! out_raw {
    ($($t:tt)*) => {{
        use std::io::Write;
        if let Err(e) = write!(std::io::stdout(), $($t)*) {
            stdout_gone(e)
        }
    }};
}

fn usage_error(msg: &str) -> ! {
    eprintln!("hpfsc: {msg}");
    eprintln!("{USAGE}");
    exit(2)
}

/// Resolve a `--print-input` argument (`NAME` or `NAME:N`) to preset source.
fn preset_source(spec: &str) -> Option<String> {
    let (name, n) = match spec.split_once(':') {
        Some((name, n)) => (name, n.parse().ok()?),
        None => (spec, 16),
    };
    Some(match name {
        "five-point" => presets::five_point(n),
        "nine-point-cshift" => presets::nine_point_cshift(n),
        "nine-point-array" => presets::nine_point_array(n),
        "problem9" => presets::problem9(n),
        "jacobi" => presets::jacobi(n, 4),
        "image-blur" => presets::image_blur(n, 4),
        "wave2d" => presets::wave2d(n, 4),
        _ => return None,
    })
}

fn main() {
    let mut file = None;
    let mut stage = Stage::MemOpt;
    let mut emit: Option<Vec<String>> = None;
    let mut lint = false;
    let mut deny_warnings = false;
    let mut verify = false;
    let mut run = false;
    let mut grid: Vec<usize> = vec![2, 2];
    let mut halo = 1usize;
    let mut superstep = 1usize;
    let mut exec_cfg = ExecConfig::new();
    let mut trace_on = false;
    let mut trace_file: Option<String> = None;
    let mut metrics_on = false;
    let mut metrics_file: Option<String> = None;
    let mut report_on = false;
    let mut tune_on = false;
    let mut tune_file: Option<String> = None;
    let mut naive_mode = false;
    let mut print_input: Option<String> = None;
    let mut drop_shift: Option<usize> = None;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stage" => {
                stage = match args.next().as_deref() {
                    Some("original") => Stage::Original,
                    Some("offset") => Stage::OffsetArrays,
                    Some("partition") => Stage::Partition,
                    Some("unioning") => Stage::Unioning,
                    Some("full") | Some("memopt") => Stage::MemOpt,
                    other => usage_error(&format!("bad --stage {other:?}")),
                };
            }
            "--emit" => {
                emit = Some(
                    args.next()
                        .unwrap_or_else(|| usage_error("--emit needs an argument"))
                        .split(',')
                        .map(|s| s.to_string())
                        .collect(),
                );
            }
            "--lint" => lint = true,
            "--deny-warnings" => deny_warnings = true,
            "--verify" => verify = true,
            "--run" => run = true,
            "--grid" => {
                let g = args.next().unwrap_or_else(|| usage_error("--grid needs an argument"));
                grid = g
                    .split(['x', ','])
                    .map(|s| s.parse().unwrap_or_else(|_| usage_error(&format!("bad --grid {g}"))))
                    .collect();
            }
            "--halo" => {
                halo = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| usage_error("--halo needs a non-negative integer"))
            }
            "--superstep" => {
                superstep = args
                    .next()
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| usage_error("--superstep needs a positive integer"))
            }
            "--engine" => {
                let v = args.next().unwrap_or_else(|| usage_error("--engine needs an argument"));
                // One parser for every driver: hpfsc and the bench binary
                // accept exactly the same spellings.
                match ExecConfig::from_cli_str(&v) {
                    Ok(parsed) => {
                        exec_cfg.engine = parsed.engine;
                        exec_cfg.backend = parsed.backend;
                        exec_cfg.auto = parsed.auto;
                    }
                    Err(e) => usage_error(&format!("--engine: {e}")),
                }
            }
            "--naive" => naive_mode = true,
            "--drop-shift" => {
                drop_shift = Some(
                    args.next()
                        .and_then(|s| s.parse().ok())
                        .unwrap_or_else(|| usage_error("--drop-shift needs an index")),
                );
            }
            "--print-input" => {
                print_input =
                    Some(args.next().unwrap_or_else(|| usage_error("--print-input needs a name")));
            }
            "--help" | "-h" => {
                out!("{USAGE}");
                exit(0)
            }
            other if other == "--tune" || other.starts_with("--tune=") => {
                tune_on = true;
                if let Some(f) = other.strip_prefix("--tune=") {
                    if f.is_empty() {
                        usage_error("--tune= needs a file name");
                    }
                    tune_file = Some(f.to_string());
                }
            }
            other if other.starts_with("--superstep=") => {
                superstep = other
                    .strip_prefix("--superstep=")
                    .and_then(|s| s.parse().ok())
                    .filter(|&k| k >= 1)
                    .unwrap_or_else(|| usage_error("--superstep needs a positive integer"));
            }
            other if other == "--trace" || other.starts_with("--trace=") => {
                trace_on = true;
                if let Some(f) = other.strip_prefix("--trace=") {
                    if f.is_empty() {
                        usage_error("--trace= needs a file name");
                    }
                    trace_file = Some(f.to_string());
                }
            }
            other if other == "--metrics" || other.starts_with("--metrics=") => {
                metrics_on = true;
                if let Some(f) = other.strip_prefix("--metrics=") {
                    if f.is_empty() {
                        usage_error("--metrics= needs a file name");
                    }
                    metrics_file = Some(f.to_string());
                }
            }
            "--report" => report_on = true,
            other if other.starts_with('-') => {
                usage_error(&format!("unrecognized option '{other}'"))
            }
            other if file.is_none() => file = Some(other.to_string()),
            other => usage_error(&format!("unexpected argument '{other}'")),
        }
    }

    if let Some(spec) = &print_input {
        match preset_source(spec) {
            Some(src) => out_raw!("{src}"),
            None => usage_error(&format!("unknown preset '{spec}'")),
        }
        if file.is_none() {
            exit(0)
        }
    }

    let file = file.unwrap_or_else(|| usage_error("no input file"));
    let source = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("hpfsc: cannot read {file}: {e}");
        exit(1)
    });

    let options =
        if naive_mode { naive::naive_options() } else { CompileOptions::upto(stage).halo(halo) };
    let mut kernel = match Kernel::compile(&source, options) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("hpfsc: {file}: {e}");
            exit(1)
        }
    };
    if let Some(k) = drop_shift {
        if !kernel.drop_overlap_shift(k) {
            eprintln!("hpfsc: --drop-shift {k}: the kernel has no such OVERLAP_SHIFT");
            exit(1)
        }
    }

    // diag-json is a view of the lint results, so asking for it lints.
    let emit = emit.unwrap_or_else(|| if lint { Vec::new() } else { vec!["ir".to_string()] });
    let want_diag_json = emit.iter().any(|e| e == "diag-json");
    let diags = if lint || want_diag_json { kernel.lint() } else { Vec::new() };

    for what in &emit {
        match what.as_str() {
            "ir" => {
                out!("! optimized array-level IR ({})", stage.label());
                out_raw!("{}", kernel.listing());
            }
            "node" => {
                out!("! node program (per-PE SPMD code)");
                out_raw!("{}", nodepretty::node_program(&kernel.compiled.node));
            }
            "stats" => {
                let s = kernel.stats();
                out!("shift intrinsics     : {}", s.normalize.shifts);
                out!("temporaries created  : {}", s.normalize.temps);
                out!("shifts -> overlap    : {}", s.offset.converted);
                out!("repair copies        : {}", s.offset.copies_inserted);
                out!("comm ops (final)     : {}", s.comm_ops);
                out!("loop nests (final)   : {}", s.nests);
                out!("arrays allocated     : {}", s.arrays_allocated);
                out!(
                    "loads per point      : {} -> {}",
                    s.memopt.loads_before,
                    s.memopt.loads_after
                );
            }
            "diag-json" => out!("{}", analysis::render_json(&diags)),
            other => {
                eprintln!("hpfsc: unknown --emit kind '{other}'");
                exit(2)
            }
        }
    }

    if lint && !want_diag_json && !diags.is_empty() {
        eprint!("{}", analysis::render_text(&diags));
    }

    if verify {
        // Verify the most aggressive configuration regardless of --engine:
        // overlap windows give the race checker (PL001-PL003) something to
        // prove and compiled bytecode kernels give the bytecode verifier
        // (BV001-BV004) something to prove. An unchecked build cannot be
        // rejected at build time, so every diagnostic reaches the report.
        let vcfg = ExecConfig::new()
            .engine(hpf_core::Engine::ThreadedOverlap)
            .backend(Backend::Bytecode)
            .superstep(superstep)
            .check_invariants(false);
        let mcfg = MachineConfig::with_grid(grid.clone()).halo(halo);
        match kernel.plan(mcfg).config(vcfg).build() {
            Ok(plan) => {
                let vdiags = plan.verify_static();
                if vdiags.is_empty() {
                    out!(
                        "! verified: {} per-PE kernels, {} overlap windows per step \
                         ({:?} grid)",
                        grid.iter().product::<usize>(),
                        plan.overlap_windows_per_step(),
                        grid
                    );
                    if plan.supersteps_per_step() > 0 {
                        out!(
                            "! verified: superstep trapezoid coverage (PL004), \
                             {} supersteps per step at depth {superstep}",
                            plan.supersteps_per_step()
                        );
                    }
                } else {
                    eprint!("{}", analysis::render_text(&vdiags));
                    exit(5)
                }
            }
            // A checked build (debug default) rejects an unverifiable plan
            // inside `build` instead of returning it; that is still a
            // verification failure, not an I/O or machine error.
            Err(hpf_core::CoreError::Runtime(hpf_core::RtError::VerificationFailed { report })) => {
                eprintln!("{report}");
                exit(5)
            }
            Err(e) => {
                eprintln!("hpfsc: --verify: cannot build plan: {e}");
                exit(1)
            }
        }
    }

    if tune_on {
        let base = MachineConfig::with_grid(grid.clone()).halo(halo);
        let mut tuner = hpf_core::Tuner::new(base);
        if let Some(f) = &tune_file {
            tuner = tuner.cache_path(f);
        }
        match kernel.tune(&tuner) {
            Ok(out) => {
                let cache_name = tune_file.as_deref().unwrap_or(hpf_core::tune::DEFAULT_CACHE_FILE);
                if out.cache_hit {
                    out!(
                        "! tune: cache hit in {cache_name} (key {}) — zero candidates timed",
                        out.fingerprint
                    );
                } else {
                    out!(
                        "! tune: searched {} candidates, timed {}, {:.1} ms (key {}, cached in {cache_name})",
                        out.candidates.len(),
                        out.timed,
                        out.search_ns as f64 / 1e6,
                        out.fingerprint
                    );
                    out_raw!("{}", out.render_table());
                }
                out!(
                    "! best: {} {} pts={} ({:.4} ms measured)",
                    hpf_core::tune::grid_label(&out.best.grid),
                    out.best.exec_config().label(),
                    out.best.par_threshold,
                    out.best.measured_ms.unwrap_or(f64::INFINITY)
                );
            }
            Err(e) => {
                eprintln!("hpfsc: --tune failed: {e}");
                exit(1)
            }
        }
        if run {
            // --tune --run executes the tuned configuration.
            exec_cfg.auto = true;
        }
    }

    if run {
        let cfg = MachineConfig::with_grid(grid.clone()).halo(halo);
        let mut runner = kernel
            .runner(cfg.clone())
            .config(exec_cfg.superstep(superstep).trace(trace_on).metrics(metrics_on || report_on));
        if exec_cfg.auto {
            // Route the resolution through the same cache file --tune uses.
            let mut tuner = hpf_core::Tuner::new(cfg);
            if let Some(f) = &tune_file {
                tuner = tuner.cache_path(f);
            }
            runner = runner.tuner(tuner);
        }
        // Default deterministic initialization for every *user* array the
        // node program touches. Compiler temporaries are always written
        // before they are read; arrays the optimizer eliminated (Problem 9's
        // RIP/RIN after offset arrays) are neither allocated nor verified.
        let node_symbols = &kernel.compiled.node.symbols;
        let user_live: Vec<String> = kernel
            .compiled
            .node
            .live_arrays
            .iter()
            .map(|id| node_symbols.array(*id))
            .filter(|decl| !decl.temp)
            .map(|decl| decl.name.clone())
            .collect();
        for name in &user_live {
            runner = runner.init(name, move |p: &[i64]| {
                p.iter()
                    .enumerate()
                    .map(|(d, &i)| (i * (7 + 3 * d as i64)) as f64 * 0.01)
                    .sum::<f64>()
                    .sin()
            });
        }
        // Verify every live user array against the oracle.
        let outputs: Vec<String> = user_live;
        let output_refs: Vec<&str> = outputs.iter().map(|s| s.as_str()).collect();
        match runner.run_verified(&output_refs, 0.0) {
            Ok(r) => {
                let stats = r.stats();
                // Under --engine auto the machine's grid is the tuner's
                // choice, not the --grid argument; report what actually ran.
                let ran = &r.machine.cfg.grid.dims;
                out!(
                    "\n! run on {} PEs ({ran:?} grid), verified against the oracle",
                    ran.iter().product::<usize>(),
                );
                if exec_cfg.auto {
                    out!(
                        "config          : auto-tuned ({} cache hits, {} misses, {:.1} ms search)",
                        stats.tune_cache_hits,
                        stats.tune_cache_misses,
                        stats.tune_search_ns as f64 / 1e6
                    );
                }
                if superstep > 1 {
                    // Fallback diagnostics (SS001-SS009) explain why an
                    // ineligible kernel ran at the classic depth instead.
                    if !r.superstep_diags.is_empty() {
                        eprint!("{}", analysis::render_text(&r.superstep_diags));
                    }
                    out!(
                        "superstep       : depth {superstep}, {} logical steps per sweep, \
                         {} exchanges elided, {} trapezoid cells recomputed",
                        r.logical_steps,
                        stats.exchanges_elided,
                        stats.redundant_cells
                    );
                }
                out!("messages        : {}", stats.total_messages());
                out!("comm bytes      : {}", stats.total_comm_bytes());
                out!("intra bytes     : {}", stats.total_intra_bytes());
                out!("peak mem per PE : {} bytes", stats.max_peak_bytes());
                if exec_cfg.backend == Backend::Bytecode {
                    out!("kernels compiled: {}", stats.kernels_compiled);
                    out!("kernel execs    : {}", stats.kernel_execs);
                }
                out!("modeled time    : {:.3} ms", r.modeled_ms());
                out!("wall clock      : {:.3} ms", r.wall.as_secs_f64() * 1e3);
                if trace_on {
                    let trace = r.trace.as_ref().expect("tracing was configured");
                    out!("\n! compile passes");
                    for (name, pt) in PASS_NAMES.iter().zip(kernel.stats().pass_timings.iter()) {
                        if pt.wall_ns == 0 && pt.checks == 0 {
                            continue; // pass disabled at this stage
                        }
                        out!(
                            "{:<22} {:>9.1} us   {} checks, {} diagnostics",
                            name,
                            pt.wall_ns as f64 / 1e3,
                            pt.checks,
                            pt.diagnostics
                        );
                    }
                    out!("\n! per-PE span summary (1 step)");
                    out_raw!("{}", trace.summary().render_table(1));
                    out!("\n! per-PE counters");
                    out!("{stats}");
                    if let Some(path) = &trace_file {
                        match std::fs::write(path, trace.to_chrome_json()) {
                            Ok(()) => out!(
                                "\ntrace written to {path} (open in chrome://tracing \
                                 or ui.perfetto.dev)"
                            ),
                            Err(e) => {
                                eprintln!("hpfsc: cannot write {path}: {e}");
                                exit(1)
                            }
                        }
                    }
                }
                if report_on || metrics_on {
                    let snap = r.metrics.as_ref().expect("metrics were configured");
                    let drift = r.drift.as_ref().expect("metrics were configured");
                    if report_on {
                        out!(
                            "\n! run report: {} on {} PEs, {} steps",
                            snap.config,
                            snap.pes,
                            snap.steps
                        );
                        out!("\n! per-PE utilization");
                        out_raw!("{}", snap.render_utilization());
                        out!("\n! span latency histograms (all PEs merged)");
                        out_raw!("{}", snap.render_histograms());
                        out!("\n! cost-model drift");
                        out_raw!("{}", drift.render_table());
                    }
                    if metrics_on {
                        match &metrics_file {
                            Some(path) if path.ends_with(".prom") => {
                                if let Err(e) = std::fs::write(path, snap.to_prometheus()) {
                                    eprintln!("hpfsc: cannot write {path}: {e}");
                                    exit(1)
                                }
                                out!("\nmetrics written to {path} (Prometheus text exposition)");
                            }
                            Some(path) => {
                                let doc = hpf_core::trace::json::Value::Object(vec![
                                    ("metrics".into(), snap.to_json()),
                                    ("drift".into(), drift.to_json()),
                                ]);
                                if let Err(e) = std::fs::write(path, doc.render()) {
                                    eprintln!("hpfsc: cannot write {path}: {e}");
                                    exit(1)
                                }
                                out!("\nmetrics written to {path}");
                            }
                            None => {
                                let doc = hpf_core::trace::json::Value::Object(vec![
                                    ("metrics".into(), snap.to_json()),
                                    ("drift".into(), drift.to_json()),
                                ]);
                                out!("{}", doc.render());
                            }
                        }
                    }
                }
            }
            Err(e) => {
                eprintln!("hpfsc: run failed: {e}");
                exit(1)
            }
        }
    }

    if analysis::has_errors(&diags) {
        exit(4)
    }
    if deny_warnings && !diags.is_empty() {
        exit(3)
    }
}
