//! `hpfsc` — the stencil compiler driver.
//!
//! Compiles a mini-HPF source file through the SC'97 pipeline, shows the
//! optimized IR at any stage, and optionally runs it on the simulated
//! machine (verified against the reference interpreter).
//!
//! ```text
//! hpfsc FILE.f90 [--stage original|offset|partition|unioning|full]
//!                [--emit ir|node|stats] [--run] [--grid 2x2] [--halo 1]
//!                [--engine seq|threaded] [--print-input NAME] [--naive]
//! ```

use hpf_core::baselines::naive;
use hpf_core::passes::nodepretty;
use hpf_core::{CompileOptions, Engine, Kernel, MachineConfig, Stage};
use std::process::exit;

fn usage() -> ! {
    eprintln!(
        "usage: hpfsc FILE [--stage original|offset|partition|unioning|full] \
         [--emit ir|node|stats] [--run] [--grid RxC] [--halo W] \
         [--engine seq|threaded] [--naive]"
    );
    exit(2)
}

fn main() {
    let mut file = None;
    let mut stage = Stage::MemOpt;
    let mut emit = vec!["ir".to_string()];
    let mut run = false;
    let mut grid: Vec<usize> = vec![2, 2];
    let mut halo = 1usize;
    let mut engine = Engine::Sequential;
    let mut naive_mode = false;

    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--stage" => {
                stage = match args.next().as_deref() {
                    Some("original") => Stage::Original,
                    Some("offset") => Stage::OffsetArrays,
                    Some("partition") => Stage::Partition,
                    Some("unioning") => Stage::Unioning,
                    Some("full") | Some("memopt") => Stage::MemOpt,
                    _ => usage(),
                };
            }
            "--emit" => {
                emit = args
                    .next()
                    .unwrap_or_else(|| usage())
                    .split(',')
                    .map(|s| s.to_string())
                    .collect();
            }
            "--run" => run = true,
            "--grid" => {
                let g = args.next().unwrap_or_else(|| usage());
                grid = g.split(['x', ',']).map(|s| s.parse().unwrap_or_else(|_| usage())).collect();
            }
            "--halo" => halo = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| usage()),
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("seq") => Engine::Sequential,
                    Some("threaded") | Some("par") => Engine::Threaded,
                    _ => usage(),
                };
            }
            "--naive" => naive_mode = true,
            "--help" | "-h" => usage(),
            other if file.is_none() && !other.starts_with('-') => file = Some(other.to_string()),
            _ => usage(),
        }
    }
    let file = file.unwrap_or_else(|| usage());
    let source = std::fs::read_to_string(&file).unwrap_or_else(|e| {
        eprintln!("hpfsc: cannot read {file}: {e}");
        exit(1)
    });

    let options =
        if naive_mode { naive::naive_options() } else { CompileOptions::upto(stage).halo(halo) };
    let kernel = match Kernel::compile(&source, options) {
        Ok(k) => k,
        Err(e) => {
            eprintln!("hpfsc: {file}: {e}");
            exit(1)
        }
    };

    for what in &emit {
        match what.as_str() {
            "ir" => {
                println!("! optimized array-level IR ({})", stage.label());
                print!("{}", kernel.listing());
            }
            "node" => {
                println!("! node program (per-PE SPMD code)");
                print!("{}", nodepretty::node_program(&kernel.compiled.node));
            }
            "stats" => {
                let s = kernel.stats();
                println!("shift intrinsics     : {}", s.normalize.shifts);
                println!("temporaries created  : {}", s.normalize.temps);
                println!("shifts -> overlap    : {}", s.offset.converted);
                println!("repair copies        : {}", s.offset.copies_inserted);
                println!("comm ops (final)     : {}", s.comm_ops);
                println!("loop nests (final)   : {}", s.nests);
                println!("arrays allocated     : {}", s.arrays_allocated);
                println!(
                    "loads per point      : {} -> {}",
                    s.memopt.loads_before, s.memopt.loads_after
                );
            }
            other => {
                eprintln!("hpfsc: unknown --emit kind '{other}'");
                exit(2)
            }
        }
    }

    if run {
        let cfg = MachineConfig::with_grid(grid.clone()).halo(halo);
        let mut runner = kernel.runner(cfg).engine(engine);
        // Default deterministic initialization for every *user* array the
        // node program touches. Compiler temporaries are always written
        // before they are read; arrays the optimizer eliminated (Problem 9's
        // RIP/RIN after offset arrays) are neither allocated nor verified.
        let node_symbols = &kernel.compiled.node.symbols;
        let user_live: Vec<String> = kernel
            .compiled
            .node
            .live_arrays
            .iter()
            .map(|id| node_symbols.array(*id))
            .filter(|decl| !decl.temp)
            .map(|decl| decl.name.clone())
            .collect();
        for name in &user_live {
            runner = runner.init(name, move |p: &[i64]| {
                p.iter()
                    .enumerate()
                    .map(|(d, &i)| (i * (7 + 3 * d as i64)) as f64 * 0.01)
                    .sum::<f64>()
                    .sin()
            });
        }
        // Verify every live user array against the oracle.
        let outputs: Vec<String> = user_live;
        let output_refs: Vec<&str> = outputs.iter().map(|s| s.as_str()).collect();
        match runner.run_verified(&output_refs, 0.0) {
            Ok(r) => {
                let stats = r.stats();
                println!(
                    "\n! run on {} PEs ({:?} grid), verified against the oracle",
                    grid.iter().product::<usize>(),
                    grid
                );
                println!("messages        : {}", stats.total_messages());
                println!("comm bytes      : {}", stats.total_comm_bytes());
                println!("intra bytes     : {}", stats.total_intra_bytes());
                println!("peak mem per PE : {} bytes", stats.max_peak_bytes());
                println!("modeled time    : {:.3} ms", r.modeled_ms());
                println!("wall clock      : {:.3} ms", r.wall.as_secs_f64() * 1e3);
            }
            Err(e) => {
                eprintln!("hpfsc: run failed: {e}");
                exit(1)
            }
        }
    }
}
