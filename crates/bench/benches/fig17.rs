//! Criterion bench for Figure 17: wall-clock of the simulated execution of
//! Problem 9 at each cumulative pipeline stage.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::input;
use hpf_core::passes::{CompileOptions, Stage};
use hpf_core::{presets, Engine, Kernel, MachineConfig};

fn bench_fig17(c: &mut Criterion) {
    let n = 256;
    let src = presets::problem9(n);
    let mut group = c.benchmark_group("fig17_problem9_n256");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for stage in Stage::all() {
        let kernel = Kernel::compile(&src, CompileOptions::upto(stage)).unwrap();
        group.bench_function(BenchmarkId::from_parameter(stage.label()), |b| {
            b.iter(|| {
                kernel
                    .runner(MachineConfig::sp2_2x2())
                    .init("U", input)
                    .engine(Engine::Sequential)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig17);
criterion_main!(benches);
