//! Persistent communication schedules vs per-step re-setup: a time-stepped
//! Jacobi sweep run as (a) one `Plan` built once and stepped N times —
//! schedules compiled once, every step a pack/send/unpack through pooled
//! buffers — and (b) N chained one-shot `Runner::run()` calls, each
//! rebuilding the machine and recompiling the schedules.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::{input, plan_sweep, resetup_sweep};
use hpf_core::passes::CompileOptions;
use hpf_core::{presets, Engine, Kernel, MachineConfig};

const N: usize = 256;
const STEPS: usize = 10;

fn bench_persistent_vs_resetup(c: &mut Criterion) {
    let kernel = Kernel::compile(&presets::jacobi(N, 1), CompileOptions::full()).unwrap();
    let mut group = c.benchmark_group("persistent_jacobi_n256_10steps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1500));
    for (name, engine) in [("sequential", Engine::Sequential), ("threaded", Engine::Threaded)] {
        group.bench_function(BenchmarkId::new("plan_iterate", name), |b| {
            b.iter(|| plan_sweep(&kernel, &["U"], STEPS, &[2, 2], engine));
        });
        group.bench_function(BenchmarkId::new("per_step_resetup", name), |b| {
            b.iter(|| resetup_sweep(&kernel, &["U"], STEPS, &[2, 2], engine));
        });
    }
    group.finish();
}

fn bench_step_only(c: &mut Criterion) {
    // Marginal cost of one warm step: the plan is built outside the timed
    // region, so this isolates the pack/send/unpack path the persistent
    // schedules reduce each sweep to.
    let kernel = Kernel::compile(&presets::jacobi(N, 1), CompileOptions::full()).unwrap();
    let mut group = c.benchmark_group("warm_step_jacobi_n256");
    group.sample_size(20);
    for (name, engine) in [("sequential", Engine::Sequential), ("threaded", Engine::Threaded)] {
        let mut plan = kernel
            .plan(MachineConfig::grid([2, 2]))
            .init("U", input)
            .engine(engine)
            .build()
            .unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                plan.step();
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_persistent_vs_resetup, bench_step_only);
criterion_main!(benches);
