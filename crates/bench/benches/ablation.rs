//! Ablation benches: each memory optimization in isolation, communication
//! unioning on/off, and PE-grid scaling — wall-clock of the simulated
//! execution.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::input;
use hpf_core::passes::{CompileOptions, Stage};
use hpf_core::{presets, Engine, Kernel, MachineConfig};

fn bench_memopts(c: &mut Criterion) {
    let n = 256;
    let src = presets::problem9(n);
    let mut group = c.benchmark_group("ablation_memopts_n256");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    let base = CompileOptions::upto(Stage::Unioning);
    let variants: Vec<(&str, CompileOptions)> = vec![
        ("no_memopt", base),
        ("scalar_replacement", CompileOptions { scalar_replacement: true, ..base }),
        ("sr_unroll2", CompileOptions { scalar_replacement: true, unroll_factor: 2, ..base }),
        ("sr_unroll4", CompileOptions { scalar_replacement: true, unroll_factor: 4, ..base }),
        (
            "fortran_order_no_permute",
            CompileOptions {
                fortran_order: true,
                permute: false,
                scalar_replacement: true,
                ..base
            },
        ),
        (
            "fortran_order_permuted",
            CompileOptions { fortran_order: true, permute: true, scalar_replacement: true, ..base },
        ),
    ];
    for (name, opts) in variants {
        let kernel = Kernel::compile(&src, opts).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                kernel
                    .runner(MachineConfig::sp2_2x2())
                    .init("U", input)
                    .engine(Engine::Sequential)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_unioning(c: &mut Criterion) {
    let src = presets::problem9(128);
    let mut group = c.benchmark_group("ablation_unioning_n128");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (name, opts) in [
        ("unioning_off", CompileOptions { unioning: false, ..CompileOptions::full() }),
        ("unioning_on", CompileOptions::full()),
    ] {
        let kernel = Kernel::compile(&src, opts).unwrap();
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                kernel
                    .runner(MachineConfig::sp2_2x2())
                    .init("U", input)
                    .engine(Engine::Sequential)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_grids(c: &mut Criterion) {
    let src = presets::problem9(256);
    let kernel = Kernel::compile(&src, CompileOptions::full()).unwrap();
    let mut group = c.benchmark_group("scaling_grids_n256");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for grid in [vec![1usize, 1], vec![2, 2], vec![4, 4]] {
        let label = format!("{}x{}", grid[0], grid[1]);
        let g = grid.clone();
        group.bench_function(BenchmarkId::from_parameter(&label), |b| {
            b.iter(|| {
                kernel
                    .runner(MachineConfig::with_grid(g.clone()))
                    .init("U", input)
                    .engine(Engine::Sequential)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_memopts, bench_unioning, bench_grids);
criterion_main!(benches);
