//! Criterion bench for Figure 18: the three specifications of the 9-point
//! stencil (single-statement CSHIFT, multi-statement Problem 9, array
//! syntax) under the xlhpf-class baseline, against the paper's strategy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::input;
use hpf_core::baselines::naive;
use hpf_core::passes::{CompileOptions, Stage, TempPolicy};
use hpf_core::{presets, Engine, Kernel, MachineConfig};

fn bench_fig18(c: &mut Criterion) {
    let n = 256;
    let mut group = c.benchmark_group("fig18_nine_point_specs_n256");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));

    let run = |b: &mut criterion::Bencher, kernel: &Kernel, inp: &str| {
        b.iter(|| {
            kernel
                .runner(MachineConfig::sp2_2x2())
                .init(inp, input)
                .engine(Engine::Sequential)
                .run()
                .unwrap()
        });
    };

    let single = Kernel::compile(&presets::nine_point_cshift(n), naive::naive_options()).unwrap();
    group.bench_function(BenchmarkId::from_parameter("xlhpf_cshift_single"), |b| {
        run(b, &single, "SRC")
    });

    let mut multi_opts = naive::naive_options();
    multi_opts.temp_policy = TempPolicy::Reuse;
    let multi = Kernel::compile(&presets::problem9(n), multi_opts).unwrap();
    group.bench_function(BenchmarkId::from_parameter("xlhpf_multi_stmt"), |b| run(b, &multi, "U"));

    let arr = Kernel::compile(&presets::nine_point_array(n), CompileOptions::upto(Stage::Unioning))
        .unwrap();
    group
        .bench_function(BenchmarkId::from_parameter("xlhpf_array_syntax"), |b| run(b, &arr, "SRC"));

    let ours = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
    group.bench_function(BenchmarkId::from_parameter("this_paper"), |b| run(b, &ours, "U"));

    group.finish();
}

criterion_group!(benches, bench_fig18);
criterion_main!(benches);
