//! Criterion bench for Figure 11: naive (xlhpf-class) compilation of the
//! single-statement CSHIFT 9-point stencil vs the multi-statement Problem 9
//! form, across problem sizes. (The memory-exhaustion aspect of Figure 11 is
//! covered by the `experiments` binary and integration tests; wall-clock is
//! what Criterion measures here.)

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use hpf_bench::input;
use hpf_core::baselines::naive;
use hpf_core::passes::TempPolicy;
use hpf_core::{presets, Engine, Kernel, MachineConfig};

fn bench_fig11(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_naive_translation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for n in [64usize, 128, 256] {
        group.throughput(Throughput::Elements((n * n) as u64));
        let single =
            Kernel::compile(&presets::nine_point_cshift(n), naive::naive_options()).unwrap();
        group.bench_function(BenchmarkId::new("single_stmt_cshift", n), |b| {
            b.iter(|| {
                single
                    .runner(MachineConfig::sp2_2x2())
                    .init("SRC", input)
                    .engine(Engine::Sequential)
                    .run()
                    .unwrap()
            });
        });
        let mut opts = naive::naive_options();
        opts.temp_policy = TempPolicy::Reuse;
        let multi = Kernel::compile(&presets::problem9(n), opts).unwrap();
        group.bench_function(BenchmarkId::new("multi_stmt_problem9", n), |b| {
            b.iter(|| {
                multi
                    .runner(MachineConfig::sp2_2x2())
                    .init("U", input)
                    .engine(Engine::Sequential)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fig11);
criterion_main!(benches);
