//! Micro-benches of the compiler itself and of the runtime's data-movement
//! primitives: compilation latency per stage, full `CSHIFT` vs
//! `OVERLAP_SHIFT` movement cost, and threaded vs sequential engines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hpf_bench::input;
use hpf_core::ir::{ArrayDecl, ArrayId, Distribution, Shape, ShiftKind};
use hpf_core::passes::{CompileOptions, Stage};
use hpf_core::runtime::{Machine, MachineConfig};
use hpf_core::{frontend, presets, Engine, Kernel};

fn bench_compile(c: &mut Criterion) {
    let src = presets::problem9(512);
    let checked = frontend::compile_source(&src).unwrap();
    let mut group = c.benchmark_group("compile_problem9");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for stage in Stage::all() {
        group.bench_function(BenchmarkId::from_parameter(stage.label()), |b| {
            b.iter(|| hpf_core::passes::compile(&checked, CompileOptions::upto(stage)));
        });
    }
    group.bench_function(BenchmarkId::from_parameter("parse_and_check"), |b| {
        b.iter(|| frontend::compile_source(&src).unwrap());
    });
    group.finish();
}

fn bench_data_movement(c: &mut Criterion) {
    let n = 512;
    let mut group = c.benchmark_group("data_movement_n512");
    group.sample_size(20);
    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);
    let mut machine = Machine::new(MachineConfig::sp2_2x2());
    let decl = ArrayDecl::user("U", Shape::new([n, n]), Distribution::block(2));
    machine.alloc(U, &decl).unwrap();
    machine.alloc(T, &ArrayDecl::user("T", Shape::new([n, n]), Distribution::block(2))).unwrap();
    machine.fill(U, |p| (p[0] + p[1]) as f64);
    group.bench_function("full_cshift", |b| {
        b.iter(|| machine.cshift(T, U, 1, 0, ShiftKind::Circular).unwrap());
    });
    group.bench_function("overlap_shift", |b| {
        b.iter(|| machine.overlap_shift(U, 1, 0, None, ShiftKind::Circular).unwrap());
    });
    group.finish();
}

fn bench_engines(c: &mut Criterion) {
    let src = presets::jacobi(256, 4);
    let kernel = Kernel::compile(&src, CompileOptions::full()).unwrap();
    let mut group = c.benchmark_group("engines_jacobi_n256_4steps");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_millis(1200));
    for (name, engine) in [("sequential", Engine::Sequential), ("threaded", Engine::Threaded)] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                kernel
                    .runner(MachineConfig::sp2_2x2())
                    .init("U", input)
                    .engine(engine)
                    .run()
                    .unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_compile, bench_data_movement, bench_engines);
criterion_main!(benches);
