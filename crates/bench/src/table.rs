//! Minimal aligned-column table rendering for the experiments binary.

/// A printable table: header plus rows of strings.
#[derive(Clone, Debug, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column headers.
    pub header: Vec<String>,
    /// Rows.
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes.
    pub notes: Vec<String>,
}

impl Table {
    /// New table with a title and headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Append a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Render as a JSON object (hand-rolled: the build environment has no
    /// serde, and the schema is four flat fields).
    pub fn to_json(&self) -> String {
        let arr = |xs: &[String]| -> String {
            let items: Vec<String> = xs.iter().map(|s| json_string(s)).collect();
            format!("[{}]", items.join(", "))
        };
        let rows: Vec<String> = self.rows.iter().map(|r| arr(r)).collect();
        format!(
            "{{\"title\": {}, \"header\": {}, \"rows\": [{}], \"notes\": {}}}",
            json_string(&self.title),
            arr(&self.header),
            rows.join(", "),
            arr(&self.notes)
        )
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("## {}\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("  * {n}\n"));
        }
        out
    }
}

/// Escape a string as a JSON literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Render a slice of tables as a JSON array.
pub fn tables_to_json(tables: &[Table]) -> String {
    let items: Vec<String> = tables.iter().map(|t| t.to_json()).collect();
    format!("[{}]", items.join(",\n"))
}

/// Format a milliseconds value compactly.
pub fn ms(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["123".into(), "x".into()]);
        t.note("a note");
        let r = t.render();
        assert!(r.contains("## demo"));
        assert!(r.contains("123"));
        assert!(r.contains("* a note"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("demo", &["a"]);
        t.row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn ms_formatting() {
        assert_eq!(ms(123.4), "123");
        assert_eq!(ms(12.34), "12.34");
        assert_eq!(ms(0.1234), "0.1234");
    }
}
