//! Seeded random stencil workload generator.
//!
//! Produces random-but-valid mini-HPF kernels in the space the paper's
//! strategy covers: sums of coefficient×shift-chain terms over one or two
//! source arrays, accumulation statements, `CSHIFT`/`EOSHIFT` mixes, and
//! optional time loops. Used by the `--exp fuzz` robustness sweep (compile
//! at every stage, run, verify against the reference interpreter) and
//! available as a library for external fuzzing.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Shape of a generated workload.
#[derive(Clone, Debug)]
pub struct WorkloadSpec {
    /// Problem size (N×N arrays).
    pub n: usize,
    /// Number of statements.
    pub stmts: usize,
    /// Maximum terms per statement.
    pub max_terms: usize,
    /// Maximum shift-chain length per term.
    pub max_chain: usize,
    /// Allow `EOSHIFT` terms.
    pub eoshift: bool,
    /// Wrap the statements in a `DO k TIMES` loop.
    pub time_loop: Option<usize>,
}

impl Default for WorkloadSpec {
    fn default() -> Self {
        WorkloadSpec { n: 12, stmts: 3, max_terms: 4, max_chain: 2, eoshift: true, time_loop: None }
    }
}

/// Generate a random kernel source from a seed. The same `(spec, seed)`
/// pair always produces the same program.
pub fn generate(spec: &WorkloadSpec, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src =
        format!("PROGRAM fuzz{seed}\nPARAM N = {}\nREAL U(N,N), V(N,N), T(N,N), S(N,N)\n", spec.n);
    let mut body = String::new();
    for si in 0..spec.stmts {
        // Destinations cycle over T and S; sources draw from U, V, and the
        // previously assigned destinations.
        let dst = if si % 2 == 0 { "T" } else { "S" };
        let n_terms = rng.gen_range(1..=spec.max_terms);
        let mut rhs = if rng.gen_bool(0.4) && si > 0 {
            dst.to_string() // accumulate
        } else {
            String::new()
        };
        for _ in 0..n_terms {
            let srcs = ["U", "V", "U", "V", "T", "S"];
            let base = srcs[rng.gen_range(0..if si == 0 { 4usize } else { 6 })];
            let mut operand = base.to_string();
            let chain = rng.gen_range(0..=spec.max_chain);
            for _ in 0..chain {
                let amt: i64 = if rng.gen_bool(0.5) { 1 } else { -1 };
                let dim = rng.gen_range(1..=2);
                let use_eoshift = spec.eoshift && rng.gen_bool(0.3);
                if use_eoshift {
                    let b = rng.gen_range(-2..=2) as f64 * 0.5;
                    operand = format!("EOSHIFT({operand},{amt},{dim},BOUNDARY={b})");
                } else {
                    operand = format!("CSHIFT({operand},{amt},{dim})");
                }
            }
            let coeff = rng.gen_range(-4..=4) as f64 * 0.25;
            let term = format!("{coeff} * {operand}");
            rhs = if rhs.is_empty() { term } else { format!("{rhs} + {term}") };
        }
        if rng.gen_bool(0.2) {
            let ops = [">", "<", ">=", "<=", "==", "/="];
            let op = ops[rng.gen_range(0..ops.len())];
            let msrc = ["U", "V"][rng.gen_range(0..2usize)];
            body.push_str(&format!("WHERE ({msrc} {op} 0.1) {dst} = {rhs}\n"));
        } else {
            body.push_str(&format!("{dst} = {rhs}\n"));
        }
    }
    match spec.time_loop {
        Some(iters) => src.push_str(&format!("DO {iters} TIMES\n{body}ENDDO\n")),
        None => src.push_str(&body),
    }
    src.push_str("END\n");
    src
}

/// Outcome of one fuzz case.
#[derive(Clone, Debug)]
pub struct FuzzOutcome {
    /// Seed of the failing or passing case.
    pub seed: u64,
    /// `None` = verified at every stage; `Some(msg)` = first failure.
    pub failure: Option<String>,
}

/// Compile `cases` random kernels at every pipeline stage and verify each
/// against the reference interpreter. Returns outcomes (failures first).
pub fn fuzz_sweep(spec: &WorkloadSpec, cases: u64, base_seed: u64) -> Vec<FuzzOutcome> {
    use hpf_core::passes::{CompileOptions, Stage};
    use hpf_core::{Kernel, MachineConfig};
    let mut out = Vec::new();
    for i in 0..cases {
        let seed = base_seed + i;
        let src = generate(spec, seed);
        let mut failure = None;
        'stages: for stage in Stage::all() {
            let kernel = match Kernel::compile(&src, CompileOptions::upto(stage)) {
                Ok(k) => k,
                Err(e) => {
                    failure = Some(format!("{stage:?}: compile: {e}"));
                    break 'stages;
                }
            };
            let result = kernel
                .runner(MachineConfig::sp2_2x2())
                .init("U", |p| ((p[0] * 13 + p[1] * 7) as f64 * 0.03).sin())
                .init("V", |p| ((p[0] - 2 * p[1]) as f64 * 0.05).cos())
                .run_verified(&["T", "S"], 1e-11);
            if let Err(e) = result {
                failure = Some(format!("{stage:?}: {e}\n--- source ---\n{src}"));
                break 'stages;
            }
        }
        out.push(FuzzOutcome { seed, failure });
    }
    out.sort_by_key(|o| o.failure.is_none());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::default();
        assert_eq!(generate(&spec, 7), generate(&spec, 7));
        assert_ne!(generate(&spec, 7), generate(&spec, 8));
    }

    #[test]
    fn generated_kernels_compile() {
        let spec = WorkloadSpec::default();
        for seed in 0..10 {
            let src = generate(&spec, seed);
            hpf_core::Kernel::compile(&src, hpf_core::CompileOptions::full())
                .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{src}"));
        }
    }

    #[test]
    fn fuzz_sweep_small_batch_passes() {
        let spec = WorkloadSpec { n: 8, stmts: 2, ..Default::default() };
        let outcomes = fuzz_sweep(&spec, 6, 1000);
        for o in &outcomes {
            assert!(o.failure.is_none(), "seed {}: {}", o.seed, o.failure.as_ref().unwrap());
        }
    }

    #[test]
    fn time_loop_workloads_verify() {
        let spec = WorkloadSpec { n: 8, stmts: 2, time_loop: Some(3), ..Default::default() };
        let outcomes = fuzz_sweep(&spec, 4, 2000);
        for o in &outcomes {
            assert!(o.failure.is_none(), "seed {}: {}", o.seed, o.failure.as_ref().unwrap());
        }
    }
}
