//! The paper's experiments, each regenerating one table or figure.

use crate::table::{ms, Table};
use hpf_core::baselines::{cm2, hand_mpi, naive};
use hpf_core::frontend::compile_source;
use hpf_core::passes::{compile, CompileOptions, Stage, TempPolicy};
use hpf_core::{presets, Backend, CoreError, Engine, Kernel, MachineConfig};

/// Deterministic input field used by every experiment.
pub fn input(p: &[i64]) -> f64 {
    let x = p[0] as f64;
    let y = p.get(1).copied().unwrap_or(1) as f64;
    (0.013 * x + 0.007 * y).sin() + 0.25 * (0.003 * x * y).cos()
}

/// Measurements of one run.
#[derive(Clone, Copy, Debug)]
pub struct Measured {
    /// Modeled SP-2 time (cost model), milliseconds.
    pub modeled_ms: f64,
    /// Wall-clock of the simulated execution, milliseconds.
    pub wall_ms: f64,
    /// Total messages.
    pub msgs: u64,
    /// Interprocessor bytes.
    pub comm_bytes: u64,
    /// Intraprocessor copy bytes (what offset arrays eliminate).
    pub intra_bytes: u64,
    /// Subgrid-loop loads.
    pub loads: u64,
    /// Peak memory per PE, bytes.
    pub peak_bytes: usize,
}

/// Compile `src` with `opts` and run it, returning measurements.
pub fn measure(
    src: &str,
    opts: CompileOptions,
    grid: &[usize],
    budget: Option<usize>,
    engine: Engine,
) -> Result<Measured, CoreError> {
    let kernel = Kernel::compile(src, opts)?;
    let mut cfg = MachineConfig::with_grid(grid.to_vec()).halo(opts.halo);
    cfg.mem_budget = budget;
    let input_name = ["U", "SRC", "IMG"]
        .iter()
        .find(|n| kernel.checked.symbols.lookup_array(n).is_some())
        .expect("preset has a known input array");
    let run = kernel.runner(cfg).init(input_name, input).engine(engine).run()?;
    let stats = run.stats();
    let total = stats.total();
    Ok(Measured {
        modeled_ms: run.modeled_ms(),
        wall_ms: run.wall.as_secs_f64() * 1e3,
        msgs: stats.total_messages(),
        comm_bytes: stats.total_comm_bytes(),
        intra_bytes: stats.total_intra_bytes(),
        loads: total.loads,
        peak_bytes: stats.max_peak_bytes(),
    })
}

/// Per-PE subgrid bytes of one N×N array on a 2×2 grid with halo 1.
pub fn subgrid_bytes(n: usize) -> usize {
    let e = n.div_ceil(2) + 2;
    e * e * 8
}

/// **Figure 11**: execution time of the single-statement CSHIFT 9-point
/// stencil vs the multi-statement Problem 9 form under the naive
/// (xlhpf-class) translation, across problem sizes, with a per-PE memory
/// budget standing in for the SP-2's 256 MB/PE. The single-statement form's
/// twelve shift temporaries exhaust memory at the large sizes.
pub fn fig11(sizes: &[usize], engine: Engine) -> Table {
    let max = *sizes.iter().max().unwrap();
    // Budget: comfortably fits the multi-statement form (5 arrays) at the
    // largest size but not the single-statement form (14 arrays).
    let budget = 6 * subgrid_bytes(max);
    let mut t = Table::new(
        "Figure 11 — naive (xlhpf-class) compilation of two 9-point specifications",
        &[
            "N",
            "single-stmt CSHIFT [ms]",
            "multi-stmt Problem 9 [ms]",
            "single peak MB/PE",
            "multi peak MB/PE",
        ],
    );
    t.note(format!(
        "per-PE memory budget {:.1} MB (stands in for the SP-2's 256 MB/PE)",
        budget as f64 / 1e6
    ));
    for &n in sizes {
        let single = measure(
            &presets::nine_point_cshift(n),
            naive::naive_options(),
            &[2, 2],
            Some(budget),
            engine,
        );
        let multi = {
            let mut o = naive::naive_options();
            o.temp_policy = TempPolicy::Reuse; // statement-scoped temp reuse
            measure(&presets::problem9(n), o, &[2, 2], Some(budget), engine)
        };
        let cell = |m: &Result<Measured, CoreError>, f: fn(&Measured) -> String| match m {
            Ok(m) => f(m),
            Err(CoreError::Runtime(hpf_core::RtError::MemoryExhausted { .. })) => "OOM".to_string(),
            Err(e) => format!("err: {e}"),
        };
        t.row(vec![
            n.to_string(),
            cell(&single, |m| ms(m.modeled_ms)),
            cell(&multi, |m| ms(m.modeled_ms)),
            cell(&single, |m| format!("{:.2}", m.peak_bytes as f64 / 1e6)),
            cell(&multi, |m| format!("{:.2}", m.peak_bytes as f64 / 1e6)),
        ]);
    }
    t
}

/// **Figure 17**: step-wise results of the compilation strategy on
/// Problem 9 — original Fortran77+MPI translation, then cumulatively offset
/// arrays, context partitioning, communication unioning, memory
/// optimizations. Also the headline comparison against the naive HPF
/// translation (the paper's 52×).
pub fn fig17(n: usize, engine: Engine) -> Table {
    let src = presets::problem9(n);
    let mut t = Table::new(
        format!("Figure 17 — step-wise optimization of Problem 9 (N={n}, 2x2 PEs)"),
        &["stage", "modeled [ms]", "wall [ms]", "speedup", "msgs", "intra MB", "loads/pt"],
    );
    let mut first_modeled = None;
    let mut last_modeled = 0.0;
    let points = (n * n) as f64;
    for stage in Stage::all() {
        let m = measure(&src, CompileOptions::upto(stage), &[2, 2], None, engine).unwrap();
        let base = *first_modeled.get_or_insert(m.modeled_ms);
        last_modeled = m.modeled_ms;
        t.row(vec![
            stage.label().to_string(),
            ms(m.modeled_ms),
            ms(m.wall_ms),
            format!("{:.2}x", base / m.modeled_ms),
            m.msgs.to_string(),
            format!("{:.2}", m.intra_bytes as f64 / 1e6),
            format!("{:.1}", m.loads as f64 / points),
        ]);
    }
    // The 52x-style comparison: naive HPF translation of the
    // single-statement stencil vs our fully optimized Problem 9.
    let naive_hpf =
        measure(&presets::nine_point_cshift(n), naive::naive_options(), &[2, 2], None, engine)
            .unwrap();
    t.note(format!(
        "naive HPF (xlhpf-class) single-statement stencil: {} ms modeled -> {:.1}x slower than the full strategy (paper reports 52x)",
        ms(naive_hpf.modeled_ms),
        naive_hpf.modeled_ms / last_modeled
    ));
    t
}

/// **Figure 18**: the three specifications of the 9-point stencil under an
/// xlhpf-class compiler, against the paper's strategy. Array syntax is
/// modeled as xlhpf's scalarization-based path (no CSHIFT temporaries, no
/// unioning or memory optimization), which the paper observed tracked their
/// best code within ~10%.
pub fn fig18(sizes: &[usize], engine: Engine) -> Table {
    let mut t = Table::new(
        "Figure 18 — three 9-point specifications (modeled ms)",
        &[
            "N",
            "xlhpf cshift-1stmt",
            "xlhpf multi-stmt",
            "xlhpf array-syntax",
            "this paper (any spec)",
        ],
    );
    for &n in sizes {
        let single =
            measure(&presets::nine_point_cshift(n), naive::naive_options(), &[2, 2], None, engine)
                .unwrap();
        let multi = {
            let mut o = naive::naive_options();
            o.temp_policy = TempPolicy::Reuse;
            measure(&presets::problem9(n), o, &[2, 2], None, engine).unwrap()
        };
        let arr = measure(
            &presets::nine_point_array(n),
            CompileOptions::upto(Stage::Unioning),
            &[2, 2],
            None,
            engine,
        )
        .unwrap();
        let ours =
            measure(&presets::problem9(n), CompileOptions::full(), &[2, 2], None, engine).unwrap();
        t.row(vec![
            n.to_string(),
            ms(single.modeled_ms),
            ms(multi.modeled_ms),
            ms(arr.modeled_ms),
            ms(ours.modeled_ms),
        ]);
    }
    t.note("array-syntax under xlhpf modeled as direct scalarization with minimal overlap communication but no loop-level memory optimization (paper §6, MasPar-style); the remaining gap to 'this paper' is the memory-optimization stage, ~10% at the largest size in the paper");
    t
}

/// **Figures 6/15 (in-text)**: communication operations before and after
/// the pipeline for the three 9-point specifications — 12 CSHIFTs reduce to
/// 4 OVERLAP_SHIFTs regardless of specification.
pub fn comm_count() -> Table {
    let mut t = Table::new(
        "Communication counts — 9-point stencil, all three specifications",
        &["specification", "shift intrinsics", "after unioning", "with RSD"],
    );
    let specs: [(&str, String); 3] = [
        ("single-statement CSHIFT", presets::nine_point_cshift(64)),
        ("array syntax", presets::nine_point_array(64)),
        ("multi-statement Problem 9", presets::problem9(64)),
    ];
    for (name, src) in specs {
        let c = compile(&compile_source(&src).unwrap(), CompileOptions::full());
        t.row(vec![
            name.to_string(),
            c.stats.normalize.shifts.to_string(),
            c.stats.comm_ops.to_string(),
            c.stats.unioning.with_rsd.to_string(),
        ]);
    }
    t.note("paper: 12 CSHIFTs -> 4 OVERLAP_SHIFTs, 2 carrying RSDs (Figure 6/15)");
    t
}

/// **§4 (in-text)**: temporary-array storage across translations — 12
/// temporaries for the naive single-statement stencil, 3 for Problem 9, 0
/// after the offset-array optimization.
pub fn temp_storage() -> Table {
    let mut t = Table::new(
        "Temporary-array storage (9-point stencil, N arbitrary)",
        &["translation", "temp arrays", "arrays allocated"],
    );
    let single =
        compile(&compile_source(&presets::nine_point_cshift(64)).unwrap(), naive::naive_options());
    t.row(vec![
        "naive, single-statement CSHIFT".into(),
        single.stats.normalize.temps.to_string(),
        single.stats.arrays_allocated.to_string(),
    ]);
    let multi =
        compile(&compile_source(&presets::problem9(64)).unwrap(), hand_mpi::hand_mpi_options());
    // Problem 9's RIP and RIN are user temporaries: count them in.
    t.row(vec![
        "Problem 9 (RIP, RIN + shared TMP)".into(),
        (multi.stats.normalize.temps + 2).to_string(),
        multi.stats.arrays_allocated.to_string(),
    ]);
    let ours = compile(&compile_source(&presets::problem9(64)).unwrap(), CompileOptions::full());
    t.row(vec![
        "this paper (offset arrays)".into(),
        (ours.stats.arrays_allocated.saturating_sub(2)).to_string(),
        ours.stats.arrays_allocated.to_string(),
    ]);
    t.note("paper §4: 12 -> 3 -> 0 temporary arrays; only U and T remain allocated");
    t
}

/// **§6 robustness**: what the CM-2-style pattern matcher accepts vs what
/// the normalization-based strategy compiles, across stencil variations.
pub fn robustness() -> Table {
    let mut t = Table::new(
        "Robustness — pattern matching (CM-2 style) vs normalization (this paper)",
        &["kernel", "CM-2 recognizer", "this paper: msgs", "nests"],
    );
    let perturbed = r#"
PARAM N = 64
REAL S(N,N), D(N,N)
REAL C1 = 0.3
D = (C1 + 0.1) * CSHIFT(S,1,1) + S - CSHIFT(S,-1,2)
"#;
    let kernels: [(&str, String); 5] = [
        ("9-pt single-stmt CSHIFT", presets::nine_point_cshift(64)),
        ("9-pt array syntax", presets::nine_point_array(64)),
        ("Problem 9 (multi-stmt)", presets::problem9(64)),
        ("perturbed sum-of-products", perturbed.to_string()),
        ("Jacobi time loop", presets::jacobi(64, 4)),
    ];
    for (name, src) in kernels {
        let checked = compile_source(&src).unwrap();
        let rec = match cm2::recognize(&checked) {
            Ok(p) => format!("ok ({} taps)", p.taps.len()),
            Err(e) => format!("FAILS: {e}"),
        };
        let ours = compile(&checked, CompileOptions::full());
        t.row(vec![
            name.to_string(),
            rec,
            ours.stats.comm_ops.to_string(),
            ours.stats.nests.to_string(),
        ]);
    }
    t
}

/// Ablation of the memory optimizations (§3.4) and of communication
/// unioning, on Problem 9.
pub fn ablation(n: usize, engine: Engine) -> Table {
    let src = presets::problem9(n);
    let mut t = Table::new(
        format!("Ablation — individual optimizations on Problem 9 (N={n})"),
        &["variant", "modeled [ms]", "wall [ms]", "msgs", "loads/pt"],
    );
    let points = (n * n) as f64;
    let mut add = |name: &str, opts: CompileOptions| {
        let m = measure(&src, opts, &[2, 2], None, engine).unwrap();
        t.row(vec![
            name.to_string(),
            ms(m.modeled_ms),
            ms(m.wall_ms),
            m.msgs.to_string(),
            format!("{:.1}", m.loads as f64 / points),
        ]);
    };
    let base = CompileOptions::upto(Stage::Unioning);
    add("no memory opts", base);
    add("+ scalar replacement", CompileOptions { scalar_replacement: true, ..base });
    add(
        "+ unroll-and-jam x2",
        CompileOptions { scalar_replacement: true, unroll_factor: 2, ..base },
    );
    add(
        "+ unroll-and-jam x4",
        CompileOptions { scalar_replacement: true, unroll_factor: 4, ..base },
    );
    add(
        "naive Fortran loop order (no permutation)",
        CompileOptions { fortran_order: true, permute: false, scalar_replacement: true, ..base },
    );
    add(
        "naive order + permutation",
        CompileOptions { fortran_order: true, permute: true, scalar_replacement: true, ..base },
    );
    add("full, but unioning off", CompileOptions { unioning: false, ..CompileOptions::full() });
    add("full", CompileOptions::full());
    t
}

/// Wall-clock and modeled time of `steps` chained one-shot [`Runner`] runs:
/// every sweep rebuilds the machine, re-allocates temporaries, recompiles
/// the communication schedules, and carries the state arrays forward by
/// gather + re-init. This is the per-step re-setup baseline the persistent
/// [`Plan`] API eliminates.
///
/// [`Runner`]: hpf_core::Runner
/// [`Plan`]: hpf_core::Plan
pub fn resetup_sweep(
    kernel: &Kernel,
    state: &[&str],
    steps: usize,
    grid: &[usize],
    engine: Engine,
) -> (f64, f64) {
    let n = extent(kernel, state[0]);
    let mut fields: Vec<Vec<f64>> = state
        .iter()
        .map(|_| {
            let mut v = vec![0.0; n * n];
            for (i, slot) in v.iter_mut().enumerate() {
                *slot = input(&[(i / n + 1) as i64, (i % n + 1) as i64]);
            }
            v
        })
        .collect();
    let t0 = std::time::Instant::now();
    let mut modeled = 0.0;
    for _ in 0..steps {
        let mut r = kernel.runner(MachineConfig::grid(grid.to_vec()));
        for (name, field) in state.iter().zip(&fields) {
            let f = field.clone();
            r = r.init(name, move |p| f[(p[0] - 1) as usize * n + (p[1] - 1) as usize]);
        }
        let run = r.engine(engine).run().unwrap();
        modeled += run.modeled_ms();
        for (name, field) in state.iter().zip(fields.iter_mut()) {
            *field = run.gather(kernel, name);
        }
    }
    (t0.elapsed().as_secs_f64() * 1e3, modeled)
}

/// Wall-clock, modeled time, and schedule counters of one [`Plan`] built
/// once and stepped `steps` times — the persistent-schedule path.
///
/// [`Plan`]: hpf_core::Plan
pub fn plan_sweep(
    kernel: &Kernel,
    state: &[&str],
    steps: usize,
    grid: &[usize],
    engine: Engine,
) -> (f64, f64, u64, u64) {
    let t0 = std::time::Instant::now();
    let mut planner = kernel.plan(MachineConfig::grid(grid.to_vec()));
    for name in state {
        planner = planner.init(name, input);
    }
    let mut plan = planner.engine(engine).build().unwrap();
    plan.iterate(steps);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let st = plan.stats();
    (wall, plan.modeled_ms(), st.schedules_built, st.schedule_reuses)
}

fn extent(kernel: &Kernel, name: &str) -> usize {
    let id = kernel.array_id(name).unwrap();
    kernel.checked.symbols.array(id).shape.extent(0)
}

/// **Persistent schedules**: time-stepped sweeps under per-step re-setup
/// (chained one-shot `Runner::run` calls) vs a persistent `Plan` whose
/// communication schedules are compiled once and reused every step, across
/// PE grids, on heat-equation (Jacobi) and wave-equation kernels.
pub fn persistent(n: usize, steps: usize, engine: Engine) -> Table {
    let mut t = Table::new(
        format!("Persistent schedules — per-step re-setup vs Plan::iterate (N={n}, {steps} steps)"),
        &[
            "kernel",
            "grid",
            "re-setup wall [ms]",
            "plan wall [ms]",
            "re-setup modeled [ms]",
            "plan modeled [ms]",
            "built",
            "reused",
        ],
    );
    let jacobi = Kernel::compile(&presets::jacobi(n, 1), CompileOptions::full()).unwrap();
    let wave = Kernel::compile(&presets::wave2d(n, 1), CompileOptions::full()).unwrap();
    let cases: [(&str, &Kernel, &[&str]); 2] =
        [("jacobi (heat)", &jacobi, &["U"]), ("wave2d", &wave, &["U", "UPREV"])];
    for (name, kernel, state) in cases {
        for grid in [&[1usize, 1][..], &[2, 2], &[2, 4]] {
            let (rw, rm) = resetup_sweep(kernel, state, steps, grid, engine);
            let (pw, pm, built, reuses) = plan_sweep(kernel, state, steps, grid, engine);
            t.row(vec![
                name.to_string(),
                format!("{}x{}", grid[0], grid[1]),
                ms(rw),
                ms(pw),
                ms(rm),
                ms(pm),
                built.to_string(),
                reuses.to_string(),
            ]);
        }
    }
    t.note("plan: schedules compiled once at build, then every step is pack/send/unpack through pooled buffers (reused = steps x built); re-setup: every sweep rebuilds the machine, recompiles the schedules, and carries state by gather + re-init");
    t
}

/// Wall-clock, final state, and kernel counters of one plan built with the
/// given nest backend and stepped `steps` times (build time included — the
/// bytecode backend pays its one-time nest compilation inside the measured
/// window).
pub fn backend_sweep(
    kernel: &Kernel,
    out: &str,
    steps: usize,
    grid: &[usize],
    engine: Engine,
    backend: Backend,
) -> (f64, Vec<f64>, u64, u64) {
    let t0 = std::time::Instant::now();
    let mut plan = kernel
        .plan(MachineConfig::grid(grid.to_vec()))
        .init("U", input)
        .engine(engine)
        .backend(backend)
        .build()
        .unwrap();
    plan.iterate(steps);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let st = plan.stats();
    (wall, plan.gather(out).unwrap(), st.kernels_compiled, st.kernel_execs)
}

/// **Compiled kernels**: the tree interpreter vs the bytecode codegen
/// backend on Problem 9 (time-stepped via a plan so nest compilation is
/// paid once), on both engines, across problem sizes. Every comparison also
/// checks the two backends' final states bitwise.
pub fn codegen(sizes: &[usize], steps: usize) -> Table {
    let mut t = Table::new(
        format!("Compiled kernels — interpreter vs bytecode backend, Problem 9 ({steps} steps, 2x2 PEs)"),
        &["N", "engine", "interp wall [ms]", "bytecode wall [ms]", "speedup", "kernels", "execs"],
    );
    let grid = [2usize, 2];
    for &n in sizes {
        let kernel = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
        for engine in [Engine::Sequential, Engine::Threaded] {
            let (iw, iu, _, _) = backend_sweep(&kernel, "T", steps, &grid, engine, Backend::Interp);
            let (bw, bu, kernels, execs) =
                backend_sweep(&kernel, "T", steps, &grid, engine, Backend::Bytecode);
            assert_eq!(iu, bu, "backends diverged at N={n} on {engine:?}");
            t.row(vec![
                n.to_string(),
                engine.label().to_string(),
                ms(iw),
                ms(bw),
                format!("{:.2}x", iw / bw),
                kernels.to_string(),
                execs.to_string(),
            ]);
        }
    }
    t.note("bytecode: offsets/coefficients folded at nest-compile time, interior rows run branch-free with a hoisted bounds proof; both backends verified bitwise-identical per row above");
    t
}

/// Stepping wall-clock, final state, overlap counters, and modeled time of
/// one plan built with the bytecode backend and stepped `steps` times under
/// the given engine, with the threaded-engine spawn threshold set to 4096
/// points/PE so small problems take the sequential step instead of paying
/// thread spawn. The wall clock covers only `iterate(steps)` — plan
/// compilation is identical for both engines and excluded.
pub fn overlap_sweep(
    kernel: &Kernel,
    out: &str,
    steps: usize,
    grid: &[usize],
    engine: Engine,
) -> (f64, Vec<f64>, hpf_core::AggStats, f64) {
    let mut plan = kernel
        .plan(MachineConfig::grid(grid.to_vec()).par_threshold(4096))
        .init("U", input)
        .engine(engine)
        .backend(Backend::Bytecode)
        .build()
        .unwrap();
    let t0 = std::time::Instant::now();
    plan.iterate(steps);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    let stats = plan.stats();
    let modeled = plan.modeled_ms();
    (wall, plan.gather(out).unwrap(), stats, modeled)
}

/// **Split-phase overlap**: blocking threaded execution vs the
/// threaded-overlap engine on Problem 9 (bytecode backend, time-stepped via
/// a plan), across problem sizes. The overlap engine posts all sends,
/// computes the interior sub-rectangle while messages are in flight, then
/// drains the receives and finishes the boundary strips. Both engines do
/// identical computation and communication (counters are bitwise equal);
/// what split-phase buys is the receive latency hidden behind the interior
/// sweep, which the modeled columns expose via the per-window
/// `min(recv_ns, interior_ns)` credit (`AggStats::hidden_comm_ns`) and the
/// wall columns can only show when PEs run on real parallel hardware. Wall
/// times are the best of `OVERLAP_REPS` alternating runs per engine (the
/// simulator timeslices its PE threads, so single runs are noisy). Every
/// row also checks the two engines' final states bitwise.
pub fn overlap(sizes: &[usize], steps: usize) -> Table {
    const OVERLAP_REPS: usize = 5;
    let mut t = Table::new(
        format!(
            "Split-phase overlap — blocking threaded vs threaded-overlap, Problem 9 ({steps} steps, 2x2 PEs)"
        ),
        &[
            "N",
            "blocking wall [ms]",
            "overlap wall [ms]",
            "wall speedup",
            "blocking modeled [ms]",
            "overlap modeled [ms]",
            "modeled speedup",
            "ovl steps",
            "interior cells",
            "boundary cells",
        ],
    );
    let grid = [2usize, 2];
    for &n in sizes {
        let kernel = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
        let (mut bw, mut ow) = (f64::INFINITY, f64::INFINITY);
        let (mut bm, mut om) = (0.0, 0.0);
        let mut st = hpf_core::AggStats::default();
        for _ in 0..OVERLAP_REPS {
            let (w, bu, _, m) = overlap_sweep(&kernel, "T", steps, &grid, Engine::Threaded);
            bw = bw.min(w);
            bm = m;
            let (w, ou, s, m) = overlap_sweep(&kernel, "T", steps, &grid, Engine::ThreadedOverlap);
            ow = ow.min(w);
            om = m;
            st = s;
            assert_eq!(bu, ou, "engines diverged at N={n}");
        }
        t.row(vec![
            n.to_string(),
            ms(bw),
            ms(ow),
            format!("{:.2}x", bw / ow),
            ms(bm),
            ms(om),
            format!("{:.3}x", bm / om),
            st.overlapped_steps.to_string(),
            st.interior_cells.to_string(),
            st.boundary_cells.to_string(),
        ]);
    }
    t.note("spawn threshold 4096 points/PE: below it both engines degrade to the sequential step (ovl steps 0, modeled 1.00x); above it the overlap engine hides receive latency behind the interior computation — the modeled speedup counts exactly the hidden receive time under the SP-2 cost model, while wall speedup additionally depends on the host exposing real thread parallelism; final states verified bitwise per row and rep");
    t
}

/// **Trace attribution** — run Problem 9 traced under every engine
/// (bytecode backend) and attribute per-PE step time to
/// compute/pack/send/drain/boundary from the recorded spans. Doubles as a
/// self-check of the tracing subsystem: the Chrome export must round-trip
/// through the crate's own JSON parser, and the trace-derived
/// hidden-communication credit must agree with the counter-derived
/// [`hpf_core::AggStats::hidden_comm_ns`] within 5% (the drain spans carry
/// the same per-window credit, so they are in fact exactly equal).
pub fn trace_attribution(n: usize, steps: usize) -> Table {
    use hpf_core::trace::SpanKind;
    use hpf_core::ExecConfig;
    let kernel = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
    let mut t = Table::new(
        format!("Trace attribution — Problem 9 (N={n}, {steps} steps, 2x2 PEs, bytecode backend)"),
        &[
            "engine",
            "compute [ms]",
            "pack+unpack [ms]",
            "send [ms]",
            "drain [ms]",
            "boundary [ms]",
            "hidden [ms]",
            "step wall [ms]",
        ],
    );
    for engine in [Engine::Sequential, Engine::Threaded, Engine::ThreadedOverlap] {
        let cfg = ExecConfig::new().engine(engine).backend(Backend::Bytecode).trace(true);
        let mut plan = kernel
            .plan(MachineConfig::grid(vec![2, 2]).par_threshold(4096))
            .init("U", input)
            .config(cfg)
            .build()
            .unwrap();
        plan.iterate(steps);
        let stats = plan.stats();
        let trace = plan.take_trace();
        hpf_core::trace::json::parse(&trace.to_chrome_json())
            .expect("chrome trace JSON round-trips through the parser");
        let s = trace.summary();
        let hidden_trace: f64 = s.hidden_comm_ns().iter().sum();
        let hidden_stats: f64 = stats.hidden_comm_ns.iter().sum();
        assert!(
            (hidden_trace - hidden_stats).abs() <= hidden_stats.abs() * 0.05 + 1.0,
            "trace-derived hidden credit {hidden_trace} ns diverges from counters {hidden_stats} ns under {engine:?}"
        );
        let wall = |k: SpanKind| s.total_wall_ns(k) as f64 / 1e6;
        let step_ms =
            s.track("driver").map(|d| d.wall_ns(SpanKind::Step)).unwrap_or(0) as f64 / 1e6;
        t.row(vec![
            engine.label().to_string(),
            ms(wall(SpanKind::Compute) + wall(SpanKind::KernelExec) + wall(SpanKind::Interior)),
            ms(wall(SpanKind::Pack) + wall(SpanKind::Unpack)),
            ms(wall(SpanKind::CommPost)),
            ms(wall(SpanKind::CommDrain)),
            ms(wall(SpanKind::Boundary)),
            ms(hidden_trace / 1e6),
            ms(step_ms),
        ]);
    }
    t.note("per-span wall time summed over PEs and steps; the sequential engine packs/unpacks through persistent schedules (pack+unpack columns), the threaded engines fold packing into send/drain; hidden = modeled receive latency overlapped with interior compute, cross-checked against AggStats::hidden_comm_ns per engine; chrome JSON validated by round-tripping through hpf_trace::json");
    t
}

/// **Metrics**: per-engine metrics collection on Problem 9. Each engine
/// runs twice — metrics on and off — and the experiment asserts the
/// observation-only contract (bitwise-identical arrays and per-PE
/// counters) plus exact drift-report reconciliation with
/// `CostModel::modeled_time_ns` and `AggStats::hidden_comm_ns`, then
/// reports utilization, imbalance, and flagged drift components.
pub fn metrics(n: usize, steps: usize) -> Table {
    use hpf_core::ExecConfig;
    let kernel = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
    let mut t = Table::new(
        format!("Metrics — Problem 9 (N={n}, {steps} steps, 2x2 PEs, bytecode backend)"),
        &[
            "engine",
            "spans",
            "busy [%]",
            "imbalance",
            "bytes/step",
            "drift-flagged",
            "modeled [ms]",
            "wall [ms]",
        ],
    );
    for engine in [Engine::Sequential, Engine::Threaded, Engine::ThreadedOverlap] {
        let mcfg = MachineConfig::grid(vec![2, 2]).par_threshold(4096);
        let base = ExecConfig::new().engine(engine).backend(Backend::Bytecode);
        let mut plan =
            kernel.plan(mcfg.clone()).init("U", input).config(base.metrics(true)).build().unwrap();
        plan.iterate(steps);
        let mut plain = kernel.plan(mcfg).init("U", input).config(base).build().unwrap();
        plain.iterate(steps);
        // Observation-only: metrics change nothing the run can see.
        assert_eq!(
            plan.gather("T").unwrap(),
            plain.gather("T").unwrap(),
            "metrics perturbed results under {engine:?}"
        );
        assert_eq!(
            plan.stats().per_pe,
            plain.stats().per_pe,
            "metrics perturbed counters under {engine:?}"
        );
        assert!(plain.metrics_snapshot().is_none() && plain.drift_report().is_none());
        let snap = plan.metrics_snapshot().expect("metrics were configured");
        let drift = plan.drift_report().expect("metrics were configured");
        // The drift report's totals reconcile exactly with their sources.
        let agg = plan.stats();
        assert_eq!(drift.modeled_time_ns, plan.machine.cfg.cost.modeled_time_ns(&agg));
        assert_eq!(drift.hidden_comm_ns, agg.hidden_comm_ns.iter().sum::<f64>());
        assert_eq!(snap.steps, steps as u64);
        assert_eq!(snap.series.len(), steps);
        let spans: u64 = snap.merged_pe_registry().hists().map(|(_, h)| h.count()).sum();
        assert!(spans > 0, "no spans sampled under {engine:?}");
        let busy = snap.series.mean_busy();
        let mean_busy = busy.iter().sum::<f64>() / busy.len().max(1) as f64;
        let flagged: Vec<&str> = drift.flagged().iter().map(|c| c.name).collect();
        t.row(vec![
            engine.label().to_string(),
            spans.to_string(),
            format!("{:.1}", mean_busy * 100.0),
            format!("{:.2}", snap.series.mean_imbalance()),
            (snap.series.total_bytes() / steps as u64).to_string(),
            if flagged.is_empty() { "-".to_string() } else { flagged.join(",") },
            ms(plan.modeled_ms()),
            ms(plan.wall().as_secs_f64() * 1e3),
        ]);
    }
    t.note(
        "metrics are observation-only: each engine's metered run is asserted bitwise \
         identical (arrays and per-PE counters) to a metrics-off twin, and the drift \
         report's modeled total and hidden credit reconcile exactly with \
         CostModel::modeled_time_ns and AggStats::hidden_comm_ns; busy = mean per-PE \
         busy fraction across sampled steps, imbalance = max/mean busy",
    );
    t
}

/// PE-grid scaling of the fully optimized Problem 9.
pub fn scaling(n: usize, engine: Engine) -> Table {
    let src = presets::problem9(n);
    let mut t = Table::new(
        format!("Scaling — fully optimized Problem 9 (N={n})"),
        &["grid", "PEs", "modeled [ms]", "wall [ms]", "msgs"],
    );
    for grid in [vec![1, 1], vec![2, 1], vec![2, 2], vec![4, 2], vec![4, 4]] {
        let m = measure(&src, CompileOptions::full(), &grid, None, engine).unwrap();
        t.row(vec![
            format!("{}x{}", grid[0], grid[1]),
            (grid[0] * grid[1]).to_string(),
            ms(m.modeled_ms),
            ms(m.wall_ms),
            m.msgs.to_string(),
        ]);
    }
    t
}

/// Run one tuner candidate as a persistent plan for `steps` machine steps,
/// returning (wall ms, gathered output) — the measurement loop of [`tune`].
/// Superstep winners fuse `k` logical steps into every machine step, so the
/// wall clock is normalized by [`hpf_core::Plan::logical_steps_per_step`] to
/// keep configurations of different depths comparable per logical sweep
/// (Problem 9 is idempotent in its state array, so the gathered output is
/// depth-independent and the bitwise cross-check still applies).
fn tune_run(
    kernel: &Kernel,
    steps: usize,
    cfg: MachineConfig,
    exec: hpf_core::ExecConfig,
) -> (f64, Vec<f64>) {
    let mut plan = kernel.plan(cfg).init("U", input).config(exec).build().unwrap();
    let t0 = std::time::Instant::now();
    plan.iterate(steps);
    let wall = t0.elapsed().as_secs_f64() * 1e3 / plan.logical_steps_per_step() as f64;
    (wall, plan.gather("T").unwrap())
}

/// **Auto-tuning** — the cost-guided search vs the default configuration on
/// Problem 9, across problem sizes. For each N the tuner (cache disabled, so
/// every row is a fresh search) picks a configuration by pruning the full
/// grid × engine × backend × threshold space with the SP-2 cost model and
/// timing the top-8 survivors; an exhaustive search times *every* buildable
/// candidate as the reference optimum. Default (`2x2 seq-interp`), tuned,
/// and exhaustive-best configurations are then re-measured in the same
/// alternating best-of-reps loop, and the tuned/exhaustive ratio shows how
/// much the model's pruning gives up (1.000 when both searches agree on the
/// winner, which is the common case). Final states are verified bitwise
/// across all three configurations every row.
pub fn tune(sizes: &[usize], steps: usize) -> Table {
    const TUNE_REPS: usize = 5;
    let mut t = Table::new(
        format!("Auto-tuning — tuned vs default config, Problem 9 ({steps} steps, 4 PEs)"),
        &[
            "N",
            "candidates",
            "timed",
            "search [ms]",
            "default wall [ms]",
            "tuned wall [ms]",
            "speedup",
            "exhaustive wall [ms]",
            "tuned/exhaustive",
            "tuned config",
        ],
    );
    for &n in sizes {
        let kernel = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
        let base = MachineConfig::with_grid(vec![2, 2]).par_threshold(4096);
        let tuned = kernel.tune(&hpf_core::Tuner::new(base.clone()).no_cache()).unwrap();
        let exhaustive =
            kernel.tune(&hpf_core::Tuner::new(base.clone()).no_cache().exhaustive()).unwrap();
        let same_winner = tuned.best.grid == exhaustive.best.grid
            && tuned.best.exec_config() == exhaustive.best.exec_config()
            && tuned.best.par_threshold == exhaustive.best.par_threshold;

        let default_exec = hpf_core::ExecConfig::new();
        let (mut dw, mut tw, mut ew) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut out: Option<Vec<f64>> = None;
        for _ in 0..TUNE_REPS {
            let (w, u) = tune_run(&kernel, steps, base.clone(), default_exec);
            dw = dw.min(w);
            let prev = out.replace(u);
            if let (Some(a), Some(b)) = (prev.as_ref(), out.as_ref()) {
                assert_eq!(a, b, "configs diverged at N={n}");
            }
            let (w, u) = tune_run(
                &kernel,
                steps,
                tuned.best.machine_config(&base),
                tuned.best.exec_config(),
            );
            tw = tw.min(w);
            assert_eq!(out.as_ref().unwrap(), &u, "tuned config diverged at N={n}");
            if !same_winner {
                let (w, u) = tune_run(
                    &kernel,
                    steps,
                    exhaustive.best.machine_config(&base),
                    exhaustive.best.exec_config(),
                );
                ew = ew.min(w);
                assert_eq!(out.as_ref().unwrap(), &u, "exhaustive config diverged at N={n}");
            }
        }
        if same_winner {
            ew = tw;
        }
        t.row(vec![
            n.to_string(),
            exhaustive.candidates.len().to_string(),
            tuned.timed.to_string(),
            ms(tuned.search_ns as f64 / 1e6),
            ms(dw),
            ms(tw),
            format!("{:.2}x", dw / tw),
            ms(ew),
            format!("{:.3}", tw / ew),
            tuned.best.label(),
        ]);
    }
    t.note(
        "tuner: model-probe pruning (one plan build + one step per distinct modeled \
         configuration) then best-of-3 step timings for the top-8; exhaustive: every \
         buildable candidate timed; all three configurations re-measured in the same \
         alternating best-of-5 loop and verified bitwise per row; search time is the \
         cold tuner wall clock including all probes and timings",
    );
    t
}

/// Run Problem 9 at communication-avoiding superstep depth `k` for a fixed
/// budget of `steps` logical steps — depth `k` fuses `k` logical steps into
/// every machine step, so it takes `steps / k` machine steps and exchanges
/// halos once per machine step instead of once per logical step. Returns
/// (wall ms of the iterate loop, gathered output, counters, supersteps
/// executed per machine step). The wall clock covers only `iterate` — plan
/// compilation (including the one-time deep-fill schedule set) is excluded,
/// exactly like [`overlap_sweep`].
fn superstep_sweep(
    kernel: &Kernel,
    steps: usize,
    k: usize,
    engine: Engine,
) -> (f64, f64, Vec<f64>, hpf_core::AggStats, u64) {
    let exec = hpf_core::ExecConfig::new().engine(engine).backend(Backend::Bytecode).superstep(k);
    let mut plan =
        kernel.plan(MachineConfig::grid(vec![2, 2])).init("U", input).config(exec).build().unwrap();
    let logical = plan.logical_steps_per_step();
    assert!(
        steps.is_multiple_of(logical),
        "step budget {steps} must divide evenly into depth-{k} machine steps"
    );
    let t0 = std::time::Instant::now();
    plan.iterate(steps / logical);
    let wall = t0.elapsed().as_secs_f64() * 1e3;
    (wall, plan.modeled_ms(), plan.gather("T").unwrap(), plan.stats(), plan.supersteps_per_step())
}

/// **Communication-avoiding supersteps** — Problem 9 at superstep depths
/// {1, 2, 4, 8} across problem sizes, every depth doing the same `steps`
/// logical steps (rounded up to a multiple of 8 so every depth divides it).
/// Each depth is timed under all three engines and the fastest is reported;
/// `vs best k=1` is the speedup over the best classic (depth-1) engine.
/// Problem 9's stencil chain reads only the exchanged state array, so its
/// trapezoids never shrink (zero redundant boundary recomputation) and the
/// deep schedules elide `(k-1)/k` of the exchanges outright — the experiment
/// asserts the ≥2x message and schedule-execution reduction at every depth
/// k>1, bitwise-identical results across all depths and engines, a strictly
/// better modeled (SP-2 cost model) time at every depth k>1, and a
/// wall-clock win over the best classic engine at N≥256 (at N=128 the
/// exchanged volume is small enough that host timer noise swamps the win,
/// so only non-regression is asserted there).
pub fn superstep(sizes: &[usize], steps: usize) -> Table {
    const SS_REPS: usize = 5;
    const DEPTHS: [usize; 4] = [1, 2, 4, 8];
    let steps = steps.max(1).next_multiple_of(8);
    let mut t = Table::new(
        format!(
            "Communication-avoiding supersteps — Problem 9 ({steps} logical steps, 2x2 PEs, bytecode backend)"
        ),
        &[
            "N",
            "k",
            "engine",
            "wall [ms]",
            "vs best k=1",
            "modeled [ms]",
            "msgs",
            "sched execs",
            "elided",
            "redundant cells",
        ],
    );
    for &n in sizes {
        let kernel = Kernel::compile(&presets::problem9(n), CompileOptions::full()).unwrap();
        let mut reference: Option<Vec<f64>> = None;
        let mut best_k1 = f64::INFINITY;
        let mut best_deep = f64::INFINITY;
        let mut base_stats: Option<hpf_core::AggStats> = None;
        let mut base_modeled = f64::INFINITY;
        for k in DEPTHS {
            let mut best: Option<(f64, f64, Engine, hpf_core::AggStats)> = None;
            for engine in [Engine::Sequential, Engine::Threaded, Engine::ThreadedOverlap] {
                for _ in 0..SS_REPS {
                    let (w, m, u, st, ss) = superstep_sweep(&kernel, steps, k, engine);
                    if k > 1 {
                        assert!(ss >= 1, "depth {k} silently fell back to classic at N={n}");
                    }
                    match &reference {
                        Some(r) => assert_eq!(r, &u, "depth {k} {engine:?} diverged at N={n}"),
                        None => reference = Some(u),
                    }
                    if best.as_ref().is_none_or(|b| w < b.0) {
                        best = Some((w, m, engine, st));
                    }
                }
            }
            let (wall, modeled, engine, st) = best.expect("at least one engine timed");
            if k == 1 {
                best_k1 = wall;
                base_stats = Some(st.clone());
                base_modeled = modeled;
            } else {
                best_deep = best_deep.min(wall);
                let base = base_stats.as_ref().expect("depth 1 runs first");
                assert!(
                    base.total_messages() >= 2 * st.total_messages(),
                    "depth {k} must at least halve messages at N={n}: {} vs {}",
                    base.total_messages(),
                    st.total_messages()
                );
                assert!(
                    base.schedule_reuses >= 2 * st.schedule_reuses,
                    "depth {k} must at least halve schedule executions at N={n}: {} vs {}",
                    base.schedule_reuses,
                    st.schedule_reuses
                );
                assert!(st.exchanges_elided > 0, "depth {k} elided no exchanges at N={n}");
                // Deterministic counterpart of the wall-clock win: on the
                // SP-2 cost model the elided exchange latency is a strict
                // improvement for a kernel with zero redundant recompute.
                assert!(
                    modeled < base_modeled,
                    "depth {k} must improve modeled time at N={n}: {modeled} vs {base_modeled}"
                );
            }
            t.row(vec![
                n.to_string(),
                k.to_string(),
                engine.label().to_string(),
                ms(wall),
                format!("{:.2}x", best_k1 / wall),
                ms(modeled),
                st.total_messages().to_string(),
                st.schedule_reuses.to_string(),
                st.exchanges_elided.to_string(),
                st.redundant_cells.to_string(),
            ]);
        }
        // Wall-clock: the deep schedules strictly reduce host work (fewer
        // pack/send/unpack memcpys, same compute for a zero-redundancy
        // kernel), but the simulator's messages are cheap memcpys, so the
        // win only clears timer noise once the exchanged volume is large.
        // At N>=256 the best deep depth must beat the best classic engine
        // outright; at the smaller release size (N=128) it must at least
        // stay within noise of it — there the deterministic modeled
        // assertion above carries the communication-avoidance claim.
        if n >= 256 {
            assert!(
                best_deep < best_k1,
                "superstep must beat the best classic engine at N={n}: {best_deep} vs {best_k1}"
            );
        } else if n >= 128 {
            assert!(
                best_deep <= best_k1 * 1.05,
                "superstep must not lose wall-clock at N={n}: {best_deep} vs {best_k1}"
            );
        }
    }
    t.note(
        "every depth runs the same logical-step budget (depth k takes steps/k machine \
         steps); wall is the best of 5 reps x 3 engines per depth, iterate loop only; \
         messages and schedule executions shrink ~kx because the deep-fill exchange \
         runs once per machine step, and modeled time (SP-2 cost model, per-message \
         latency dominant) shrinks with them — the paper's regime, where the wall \
         column is bounded by the host's memcpy-cheap simulated messages; Problem 9's \
         chain reads only the exchanged state array, so trapezoids never shrink and \
         redundant cells stay 0; final states verified bitwise across all depths, \
         engines, and reps",
    );
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tune_experiment_beats_or_matches_the_default() {
        let t = tune(&[24], 2);
        assert_eq!(t.rows.len(), 1);
        // 3 grid factorizations of 4 PEs x (seq: 2 + threaded: 4 + overlap: 4)
        // x 4 superstep depths (Problem 9 is eligible for deep halos).
        assert_eq!(t.rows[0][1], "120");
        let timed: usize = t.rows[0][2].parse().unwrap();
        assert!(timed > 0 && timed <= 8);
        let ratio: f64 = t.rows[0][8].parse().unwrap();
        assert!(ratio.is_finite() && ratio > 0.0);
    }

    #[test]
    fn superstep_experiment_elides_communication_and_stays_bitwise() {
        // Small size in debug mode: superstep() itself asserts the >=2x
        // message/schedule reduction, the bitwise identity across depths and
        // engines, and (only at release-bench sizes N>=128) the wall-clock
        // win; here check the table shape and the k-fold message scaling.
        let t = superstep(&[24], 8);
        assert_eq!(t.rows.len(), 4, "one row per depth");
        let msgs = |r: usize| t.rows[r][6].parse::<u64>().unwrap();
        let elided = |r: usize| t.rows[r][8].parse::<u64>().unwrap();
        assert_eq!(t.rows[0][1], "1");
        assert_eq!(elided(0), 0, "classic depth elides nothing: {:?}", t.rows[0]);
        for r in 1..4 {
            // Each doubling of k halves the exchange count again.
            assert!(msgs(r - 1) >= 2 * msgs(r), "{:?} vs {:?}", t.rows[r - 1], t.rows[r]);
            assert!(elided(r) > elided(r - 1), "{:?}", t.rows[r]);
            assert_eq!(t.rows[r][9], "0", "Problem 9 recomputes nothing: {:?}", t.rows[r]);
        }
    }

    #[test]
    fn fig11_single_statement_ooms_at_large_sizes() {
        let t = fig11(&[32, 256], Engine::Sequential);
        assert_eq!(t.rows.len(), 2);
        // Small size: both run.
        assert_ne!(t.rows[0][1], "OOM");
        assert_ne!(t.rows[0][2], "OOM");
        // Large size: single-statement OOMs, multi survives.
        assert_eq!(t.rows[1][1], "OOM");
        assert_ne!(t.rows[1][2], "OOM");
    }

    #[test]
    fn fig17_every_stage_improves() {
        let t = fig17(64, Engine::Sequential);
        let modeled: Vec<f64> = t.rows.iter().map(|r| r[1].parse::<f64>().unwrap()).collect();
        assert_eq!(modeled.len(), 5);
        for w in modeled.windows(2) {
            assert!(w[1] < w[0], "each stage must reduce modeled time: {modeled:?}");
        }
        // Headline factor: the naive translation is much slower.
        assert!(t.notes[0].contains("x slower"));
    }

    #[test]
    fn fig18_shape_matches_paper() {
        let t = fig18(&[128], Engine::Sequential);
        let row = &t.rows[0];
        let single: f64 = row[1].parse().unwrap();
        let multi: f64 = row[2].parse().unwrap();
        let arr: f64 = row[3].parse().unwrap();
        let ours: f64 = row[4].parse().unwrap();
        // CSHIFT forms are far slower than array syntax; array syntax is
        // within ~25% of our best (paper: ~10% at the largest size).
        assert!(single > 2.0 * arr, "single {single} vs arr {arr}");
        assert!(multi > 1.5 * arr, "multi {multi} vs arr {arr}");
        assert!(arr >= ours, "arr {arr} vs ours {ours}");
        assert!(arr <= 1.6 * ours, "arr {arr} vs ours {ours}");
    }

    #[test]
    fn comm_count_matches_figure_15() {
        let t = comm_count();
        for row in &t.rows {
            assert_eq!(row[2], "4", "{row:?}");
            assert_eq!(row[3], "2", "{row:?}");
        }
        // Shift intrinsic counts differ per specification (12 / 8 / 8).
        assert_eq!(t.rows[0][1], "12");
    }

    #[test]
    fn temp_storage_matches_section_4() {
        let t = temp_storage();
        assert_eq!(t.rows[0][1], "12");
        assert_eq!(t.rows[1][1], "3");
        assert_eq!(t.rows[2][1], "0");
    }

    #[test]
    fn robustness_cm2_fails_except_canonical() {
        let t = robustness();
        assert!(t.rows[0][1].starts_with("ok"));
        for row in &t.rows[1..] {
            assert!(row[1].starts_with("FAILS"), "{row:?}");
        }
        // Our pipeline compiles them all to minimal messages.
        assert_eq!(t.rows[0][2], "4");
        assert_eq!(t.rows[2][2], "4");
    }

    #[test]
    fn ablation_unioning_and_memopts_help() {
        let t = ablation(64, Engine::Sequential);
        let get = |i: usize| t.rows[i][1].parse::<f64>().unwrap();
        let no_memopt = get(0);
        let sr = get(1);
        let uaj2 = get(2);
        let full = get(t.rows.len() - 1);
        assert!(sr < no_memopt);
        assert!(uaj2 <= sr);
        assert!(full <= uaj2 * 1.01);
        // Permutation: naive order is worse than permuted.
        let naive_order = t.rows[4][1].parse::<f64>().unwrap();
        let permuted = t.rows[5][1].parse::<f64>().unwrap();
        assert!(naive_order > permuted);
        // Unioning halves the message count (8 vs 4 ops x 4 PEs).
        let no_union: u64 = t.rows[6][3].parse().unwrap();
        let with_union: u64 = t.rows[7][3].parse().unwrap();
        assert_eq!(no_union, 32);
        assert_eq!(with_union, 16);
    }

    #[test]
    fn scaling_reduces_per_pe_work() {
        let t = scaling(64, Engine::Sequential);
        let one: f64 = t.rows[0][2].parse().unwrap();
        let four: f64 = t.rows[2][2].parse().unwrap();
        // 4 PEs beat 1 PE on compute-dominated sizes… at N=64 messages may
        // dominate; just require both produced sane numbers.
        assert!(one > 0.0 && four > 0.0);
    }

    #[test]
    fn persistent_plan_beats_per_step_resetup() {
        // The headline acceptance criterion: a >=10-step Jacobi sweep at
        // N=512 on a 2x2 grid — a Plan built once and stepped must beat 10
        // chained one-shot Runner::run() calls on both wall-clock and
        // modeled cost, with the schedule compiled once and reused on every
        // step.
        let kernel = Kernel::compile(&presets::jacobi(512, 1), CompileOptions::full()).unwrap();
        let steps = 10;
        let grid = [2, 2];
        let (resetup_wall, resetup_modeled) =
            resetup_sweep(&kernel, &["U"], steps, &grid, Engine::Sequential);
        let (plan_wall, plan_modeled, built, reuses) =
            plan_sweep(&kernel, &["U"], steps, &grid, Engine::Sequential);
        assert!(built > 0);
        assert_eq!(reuses, steps as u64 * built, "schedule reused on every step");
        assert!(
            plan_modeled < resetup_modeled,
            "modeled: plan {plan_modeled} vs re-setup {resetup_modeled}"
        );
        assert!(plan_wall < resetup_wall, "wall: plan {plan_wall} vs re-setup {resetup_wall}");
    }

    #[test]
    fn persistent_table_shape() {
        let t = persistent(32, 4, Engine::Sequential);
        assert_eq!(t.rows.len(), 6); // 2 kernels x 3 grids
        for row in &t.rows {
            let built: u64 = row[6].parse().unwrap();
            let reused: u64 = row[7].parse().unwrap();
            assert!(built > 0);
            assert_eq!(reused, 4 * built, "{row:?}");
        }
    }

    #[test]
    fn codegen_table_shape_and_counters() {
        // Small size in debug mode: don't assert on the speedup here (the
        // release-mode bench does), just shape, counters, and the built-in
        // bitwise cross-check (codegen() asserts it internally).
        let t = codegen(&[24], 3);
        assert_eq!(t.rows.len(), 2, "seq + threaded");
        for row in &t.rows {
            let kernels: u64 = row[5].parse().unwrap();
            let execs: u64 = row[6].parse().unwrap();
            assert!(kernels > 0, "{row:?}");
            assert_eq!(execs, 3 * kernels, "compiled once, reused each step: {row:?}");
        }
    }

    #[test]
    fn overlap_table_splits_above_threshold_and_degrades_below() {
        // Two sizes straddling the 4096 points/PE spawn threshold: at N=32
        // (256 points/PE/nest) both engines degrade to the sequential step,
        // so nothing overlaps; at N=160 (6400 points/PE/nest) the overlap
        // engine must fuse split-phase windows with non-trivial interior and
        // boundary regions. overlap() asserts bitwise identity internally.
        let t = overlap(&[32, 160], 2);
        assert_eq!(t.rows.len(), 2);
        let get = |r: usize, c: usize| t.rows[r][c].parse::<u64>().unwrap();
        assert_eq!(get(0, 7), 0, "below threshold nothing overlaps: {:?}", t.rows[0]);
        assert!(get(1, 7) > 0, "above threshold steps overlap: {:?}", t.rows[1]);
        assert!(get(1, 8) > 0 && get(1, 9) > 0, "split regions are non-trivial: {:?}", t.rows[1]);
        // The interior dominates the boundary strips — that is what makes
        // overlapping it with communication worthwhile.
        assert!(get(1, 8) > get(1, 9), "{:?}", t.rows[1]);
        // Modeled time: identical where nothing overlaps, strictly better
        // where split-phase windows hid receive time behind the interior.
        let speedup = |r: usize| t.rows[r][6].trim_end_matches('x').parse::<f64>().unwrap();
        assert_eq!(t.rows[0][4], t.rows[0][5], "degraded rows model identically: {:?}", t.rows[0]);
        assert!(speedup(1) > 1.0, "overlap must win on modeled time: {:?}", t.rows[1]);
    }

    #[test]
    fn threaded_engine_measures_too() {
        let m = measure(
            &presets::problem9(32),
            CompileOptions::full(),
            &[2, 2],
            None,
            Engine::Threaded,
        )
        .unwrap();
        assert_eq!(m.msgs, 16);
    }
}
