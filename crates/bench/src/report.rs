//! Canonical benchmark-report schema and the regression differ.
//!
//! Every `BENCH_*.json` file the experiments binary writes goes through
//! [`write_bench`], which wraps the experiment's table in one canonical
//! envelope (`hpf-bench/v1`): schema tag, experiment name, host metadata,
//! git revision, and a Unix timestamp, with the table's existing fields
//! (`title`, `header`, `rows`, `notes`) preserved at the top level so
//! older consumers keep working.
//!
//! `BENCH_history.json` (`hpf-bench-history/v1`) accumulates one entry
//! per [`append_history`] call: the same metadata plus a flat map of key
//! metrics from a fixed, small canonical suite ([`canonical_metrics`]).
//! [`diff_histories`] compares the latest entries of two history files
//! with per-metric tolerances — exact for deterministic counters, a
//! small relative band for modeled times, informational-only for host
//! wall clocks — and the `benchdiff` binary turns a regression into a
//! nonzero exit for CI.

use crate::table::Table;
use hpf_core::trace::json::{escape, parse, Value};
use std::time::{SystemTime, UNIX_EPOCH};

/// Where the run happened and what code it ran.
#[derive(Clone, Debug, PartialEq)]
pub struct RunMeta {
    /// Hostname, or `"unknown"` when the environment does not say.
    pub host: String,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// CPU architecture (`std::env::consts::ARCH`).
    pub arch: String,
    /// Available parallelism (0 when the runtime cannot tell).
    pub cpus: u64,
    /// `git rev-parse --short HEAD`, or `"unknown"` outside a work tree.
    pub git_rev: String,
    /// Seconds since the Unix epoch.
    pub timestamp_unix: u64,
}

/// Collect the current host's metadata.
pub fn run_meta() -> RunMeta {
    let host = std::env::var("HOSTNAME")
        .ok()
        .filter(|h| !h.is_empty())
        .or_else(|| {
            std::fs::read_to_string("/etc/hostname")
                .ok()
                .map(|s| s.trim().to_string())
                .filter(|h| !h.is_empty())
        })
        .unwrap_or_else(|| "unknown".to_string());
    let git_rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string());
    RunMeta {
        host,
        os: std::env::consts::OS.to_string(),
        arch: std::env::consts::ARCH.to_string(),
        cpus: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0),
        git_rev,
        timestamp_unix: SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0),
    }
}

impl RunMeta {
    fn host_json(&self) -> Value {
        Value::Object(vec![
            ("name".into(), Value::String(self.host.clone())),
            ("os".into(), Value::String(self.os.clone())),
            ("arch".into(), Value::String(self.arch.clone())),
            ("cpus".into(), Value::Number(self.cpus as f64)),
        ])
    }
}

/// The canonical `hpf-bench/v1` document for one experiment table. The
/// table's own four fields stay at the top level, unchanged from the
/// pre-envelope format.
pub fn bench_doc(experiment: &str, t: &Table, meta: &RunMeta) -> String {
    // Table::to_json is already a JSON object; splice the envelope fields
    // in front of its fields rather than re-encoding the table.
    let table_json = t.to_json();
    let body = table_json.strip_prefix('{').expect("table JSON is an object");
    format!(
        "{{\"schema\": \"hpf-bench/v1\", \"experiment\": \"{}\", \"host\": {}, \
         \"git_rev\": \"{}\", \"timestamp_unix\": {}, {}",
        escape(experiment),
        meta.host_json().render(),
        escape(&meta.git_rev),
        meta.timestamp_unix,
        body
    )
}

/// Write `BENCH_<experiment>.json` in the current directory and return
/// the file name.
pub fn write_bench(experiment: &str, t: &Table) -> String {
    let path = format!("BENCH_{experiment}.json");
    let doc = bench_doc(experiment, t, &run_meta());
    std::fs::write(&path, doc + "\n").unwrap_or_else(|e| panic!("write {path}: {e}"));
    path
}

/// Key metrics of the fixed canonical suite: small deterministic runs of
/// Problem 9 and Jacobi on a 2×2 grid, bytecode backend. Counter metrics
/// are exactly reproducible; `modeled_ms` is deterministic up to float
/// summation; `wall_ms` is the host's clock and only ever informational.
pub fn canonical_metrics() -> Vec<(String, f64)> {
    use hpf_core::{presets, Backend, CompileOptions, Kernel, MachineConfig};
    let mut out = Vec::new();
    let cases = [("problem9-32", presets::problem9(32)), ("jacobi-32", presets::jacobi(32, 4))];
    for (name, src) in cases {
        let kernel = Kernel::compile(&src, CompileOptions::full()).unwrap();
        let mut plan = kernel
            .plan(MachineConfig::grid([2, 2]))
            .init("U", crate::experiments::input)
            .backend(Backend::Bytecode)
            .build()
            .unwrap();
        plan.iterate(4);
        let stats = plan.stats();
        out.push((format!("{name}/messages"), stats.total_messages() as f64));
        out.push((format!("{name}/comm_bytes"), stats.total_comm_bytes() as f64));
        out.push((format!("{name}/peak_bytes"), stats.max_peak_bytes() as f64));
        out.push((format!("{name}/kernels_compiled"), stats.kernels_compiled as f64));
        out.push((format!("{name}/modeled_ms"), plan.modeled_ms()));
        out.push((format!("{name}/wall_ms"), plan.wall().as_secs_f64() * 1e3));
    }
    out
}

fn history_entry_json(meta: &RunMeta, metrics: &[(String, f64)]) -> Value {
    Value::Object(vec![
        ("host".into(), meta.host_json()),
        ("git_rev".into(), Value::String(meta.git_rev.clone())),
        ("timestamp_unix".into(), Value::Number(meta.timestamp_unix as f64)),
        (
            "metrics".into(),
            Value::Object(metrics.iter().map(|(k, v)| (k.clone(), Value::Number(*v))).collect()),
        ),
    ])
}

/// Append one entry (metadata + metrics) to the `hpf-bench-history/v1`
/// document at `path`, creating it if absent. Returns the entry count
/// after the append.
pub fn append_history(
    path: &str,
    meta: &RunMeta,
    metrics: &[(String, f64)],
) -> Result<usize, String> {
    let mut entries = match std::fs::read_to_string(path) {
        Ok(text) => match parse(&text)? {
            Value::Object(kv) => match kv.into_iter().find(|(k, _)| k == "entries") {
                Some((_, Value::Array(a))) => a,
                _ => return Err(format!("{path}: no entries array")),
            },
            _ => return Err(format!("{path}: not a history object")),
        },
        Err(_) => Vec::new(),
    };
    entries.push(history_entry_json(meta, metrics));
    let count = entries.len();
    let doc = Value::Object(vec![
        ("schema".into(), Value::String("hpf-bench-history/v1".into())),
        ("entries".into(), Value::Array(entries)),
    ]);
    std::fs::write(path, doc.render() + "\n").map_err(|e| format!("write {path}: {e}"))?;
    Ok(count)
}

/// The comparison verdict for one metric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DiffStatus {
    /// Within tolerance.
    Ok,
    /// Better than the baseline by more than the tolerance.
    Improved,
    /// Informational metric (host wall clock): never gated.
    Info,
    /// Worse than the baseline by more than the tolerance.
    Regressed,
    /// Present in the baseline, absent in the current entry.
    Missing,
}

/// One compared metric.
#[derive(Clone, Debug, PartialEq)]
pub struct DiffLine {
    /// Metric key (`experiment/metric`).
    pub metric: String,
    /// Baseline value (`NaN` for metrics new in the current entry).
    pub base: f64,
    /// Current value (`NaN` when [`DiffStatus::Missing`]).
    pub current: f64,
    /// Verdict.
    pub status: DiffStatus,
}

/// The gating tolerance for a metric key: `None` marks it informational
/// (host wall clock — too noisy to gate), `Some(rel)` gates at a relative
/// band. Deterministic counters gate exactly; modeled times get a small
/// band for float-summation drift across refactors.
pub fn tolerance_for(metric: &str) -> Option<f64> {
    if metric.ends_with("/wall_ms") || metric.ends_with("/search_ms") {
        None
    } else if metric.ends_with("/modeled_ms") {
        Some(0.02)
    } else {
        Some(0.0)
    }
}

fn latest_metrics(history: &Value, which: &str) -> Result<Vec<(String, f64)>, String> {
    let entries = match history.get("entries") {
        Some(Value::Array(a)) if !a.is_empty() => a,
        _ => return Err(format!("{which}: no history entries")),
    };
    match entries.last().unwrap().get("metrics") {
        Some(Value::Object(kv)) => kv
            .iter()
            .map(|(k, v)| match v {
                Value::Number(n) => Ok((k.clone(), *n)),
                other => Err(format!("{which}: metric {k} is not a number: {other:?}")),
            })
            .collect(),
        _ => Err(format!("{which}: latest entry has no metrics object")),
    }
}

/// Compare the latest entries of two history documents. All metrics are
/// lower-is-better. A metric the baseline has and the current entry lacks
/// is a regression (coverage loss); a metric new in the current entry
/// passes.
pub fn diff_histories(base: &str, current: &str) -> Result<Vec<DiffLine>, String> {
    let b = parse(base).map_err(|e| format!("baseline: {e}"))?;
    let c = parse(current).map_err(|e| format!("current: {e}"))?;
    let base_m = latest_metrics(&b, "baseline")?;
    let cur_m = latest_metrics(&c, "current")?;
    let mut out = Vec::new();
    for (key, bv) in &base_m {
        let line = match cur_m.iter().find(|(k, _)| k == key) {
            None => DiffLine {
                metric: key.clone(),
                base: *bv,
                current: f64::NAN,
                status: DiffStatus::Missing,
            },
            Some((_, cv)) => {
                let status = match tolerance_for(key) {
                    None => DiffStatus::Info,
                    Some(tol) => {
                        let slack = bv.abs() * tol;
                        if *cv > bv + slack {
                            DiffStatus::Regressed
                        } else if *cv < bv - slack {
                            DiffStatus::Improved
                        } else {
                            DiffStatus::Ok
                        }
                    }
                };
                DiffLine { metric: key.clone(), base: *bv, current: *cv, status }
            }
        };
        out.push(line);
    }
    for (key, cv) in &cur_m {
        if !base_m.iter().any(|(k, _)| k == key) {
            out.push(DiffLine {
                metric: key.clone(),
                base: f64::NAN,
                current: *cv,
                status: DiffStatus::Ok,
            });
        }
    }
    Ok(out)
}

/// Does any compared metric gate the build?
pub fn has_regression(lines: &[DiffLine]) -> bool {
    lines.iter().any(|l| matches!(l.status, DiffStatus::Regressed | DiffStatus::Missing))
}

/// Render the comparison as a table.
pub fn render_diff(lines: &[DiffLine]) -> String {
    use hpf_core::trace::{Align, TextTable};
    let mut t = TextTable::new(&[
        ("metric", Align::Left),
        ("base", Align::Right),
        ("current", Align::Right),
        ("delta%", Align::Right),
        ("status", Align::Left),
    ]);
    let num = |v: f64| if v.is_nan() { "-".to_string() } else { format!("{v:.4}") };
    for l in lines {
        let delta = if l.base.is_nan() || l.current.is_nan() || l.base == 0.0 {
            "-".to_string()
        } else {
            format!("{:+.2}", (l.current - l.base) / l.base * 100.0)
        };
        t.row([l.metric.clone(), num(l.base), num(l.current), delta, format!("{:?}", l.status)]);
    }
    t.render()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta() -> RunMeta {
        RunMeta {
            host: "testhost".into(),
            os: "linux".into(),
            arch: "x86_64".into(),
            cpus: 8,
            git_rev: "abc1234".into(),
            timestamp_unix: 1_700_000_000,
        }
    }

    fn history_doc(metrics: &[(&str, f64)]) -> String {
        let owned: Vec<(String, f64)> = metrics.iter().map(|(k, v)| (k.to_string(), *v)).collect();
        Value::Object(vec![
            ("schema".into(), Value::String("hpf-bench-history/v1".into())),
            ("entries".into(), Value::Array(vec![history_entry_json(&meta(), &owned)])),
        ])
        .render()
    }

    #[test]
    fn bench_doc_carries_envelope_and_preserves_table_fields() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("a note");
        let doc = bench_doc("codegen", &t, &meta());
        let v = parse(&doc).expect("canonical doc parses");
        assert_eq!(v.get("schema"), Some(&Value::String("hpf-bench/v1".into())));
        assert_eq!(v.get("experiment"), Some(&Value::String("codegen".into())));
        assert_eq!(v.get("git_rev"), Some(&Value::String("abc1234".into())));
        assert_eq!(v.get("host").and_then(|h| h.get("cpus")), Some(&Value::Number(8.0)));
        // The pre-envelope fields stay at the top level.
        assert_eq!(v.get("title"), Some(&Value::String("demo".into())));
        assert!(matches!(v.get("rows"), Some(Value::Array(r)) if r.len() == 1));
        assert!(matches!(v.get("notes"), Some(Value::Array(n)) if n.len() == 1));
    }

    #[test]
    fn history_appends_and_keeps_prior_entries() {
        let path = std::env::temp_dir()
            .join(format!("hpf-bench-history-{}.json", std::process::id()))
            .to_string_lossy()
            .into_owned();
        let _ = std::fs::remove_file(&path);
        let metrics = vec![("demo/messages".to_string(), 64.0)];
        assert_eq!(append_history(&path, &meta(), &metrics), Ok(1));
        assert_eq!(append_history(&path, &meta(), &metrics), Ok(2));
        let doc = parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(doc.get("schema"), Some(&Value::String("hpf-bench-history/v1".into())));
        assert!(matches!(doc.get("entries"), Some(Value::Array(a)) if a.len() == 2));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn identical_histories_do_not_regress() {
        let doc = history_doc(&[("p/messages", 64.0), ("p/modeled_ms", 1.0), ("p/wall_ms", 5.0)]);
        let lines = diff_histories(&doc, &doc).unwrap();
        assert!(!has_regression(&lines), "{lines:?}");
        assert!(lines.iter().all(|l| l.status != DiffStatus::Regressed));
    }

    #[test]
    fn injected_counter_regression_is_caught_exactly() {
        let base = history_doc(&[("p/messages", 64.0)]);
        let bad = history_doc(&[("p/messages", 65.0)]);
        let lines = diff_histories(&base, &bad).unwrap();
        assert!(has_regression(&lines));
        assert_eq!(lines[0].status, DiffStatus::Regressed);
        assert!(render_diff(&lines).contains("Regressed"));
        // Counters gate exactly: even one extra message fails; one fewer
        // is an improvement, not a failure.
        let better = history_doc(&[("p/messages", 63.0)]);
        let lines = diff_histories(&base, &better).unwrap();
        assert!(!has_regression(&lines));
        assert_eq!(lines[0].status, DiffStatus::Improved);
    }

    #[test]
    fn modeled_band_and_informational_wall() {
        let base = history_doc(&[("p/modeled_ms", 100.0), ("p/wall_ms", 10.0)]);
        // +1% modeled is inside the 2% band; 10x wall is informational.
        let near = history_doc(&[("p/modeled_ms", 101.0), ("p/wall_ms", 100.0)]);
        let lines = diff_histories(&base, &near).unwrap();
        assert!(!has_regression(&lines), "{lines:?}");
        assert!(lines.iter().any(|l| l.status == DiffStatus::Info));
        // +5% modeled is outside it.
        let far = history_doc(&[("p/modeled_ms", 105.0), ("p/wall_ms", 10.0)]);
        let lines = diff_histories(&base, &far).unwrap();
        assert!(has_regression(&lines));
    }

    #[test]
    fn losing_a_metric_is_a_regression_gaining_one_is_not() {
        let base = history_doc(&[("p/messages", 64.0)]);
        let lost = history_doc(&[("q/messages", 64.0)]);
        let lines = diff_histories(&base, &lost).unwrap();
        assert!(has_regression(&lines));
        assert!(lines.iter().any(|l| l.status == DiffStatus::Missing));
        assert!(lines.iter().any(|l| l.metric == "q/messages" && l.status == DiffStatus::Ok));
    }

    #[test]
    fn run_meta_is_populated() {
        let m = run_meta();
        assert!(!m.os.is_empty() && !m.arch.is_empty());
        assert!(m.timestamp_unix > 1_600_000_000);
        // git_rev resolves inside this repository's work tree.
        assert!(!m.git_rev.is_empty());
    }
}
