#![warn(missing_docs)]

//! # hpf-bench — experiment harness regenerating the paper's evaluation
//!
//! Every table and figure of the paper's evaluation section has a
//! corresponding experiment here; the `experiments` binary prints them as
//! tables, and the Criterion benches measure real wall-clock of the
//! simulated executions. See `EXPERIMENTS.md` at the repository root for
//! paper-vs-measured numbers.

pub mod experiments;
pub mod figures;
pub mod report;
pub mod table;
pub mod workload;

pub use experiments::*;
