//! `benchdiff` — the benchmark-regression gate.
//!
//! ```text
//! benchdiff BASELINE.json CURRENT.json
//! ```
//!
//! Compares the latest entries of two `hpf-bench-history/v1` files
//! (written by `experiments --exp history`) metric by metric: counters
//! gate exactly, modeled times within a 2% band, host wall clocks are
//! informational only. Losing a metric the baseline had is a regression;
//! gaining a new one is not.
//!
//! Exit codes: 0 no regression, 1 regression detected, 2 usage or parse
//! error.

use hpf_bench::report::{diff_histories, has_regression, render_diff, DiffStatus};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (base_path, cur_path) = match args.as_slice() {
        [b, c] => (b, c),
        _ => {
            eprintln!("usage: benchdiff BASELINE.json CURRENT.json");
            std::process::exit(2);
        }
    };
    let read = |path: &str| -> String {
        std::fs::read_to_string(path).unwrap_or_else(|e| {
            eprintln!("benchdiff: cannot read {path}: {e}");
            std::process::exit(2);
        })
    };
    let base = read(base_path);
    let current = read(cur_path);
    let lines = match diff_histories(&base, &current) {
        Ok(lines) => lines,
        Err(e) => {
            eprintln!("benchdiff: {e}");
            std::process::exit(2);
        }
    };
    print!("{}", render_diff(&lines));
    let gated = lines
        .iter()
        .filter(|l| matches!(l.status, DiffStatus::Regressed | DiffStatus::Missing))
        .count();
    if has_regression(&lines) {
        eprintln!("benchdiff: {gated} metric(s) regressed ({base_path} -> {cur_path})");
        std::process::exit(1);
    }
    println!("no regression ({} metrics compared)", lines.len());
}
