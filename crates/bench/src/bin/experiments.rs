//! Experiment harness: regenerates every table and figure of the paper.
//!
//! ```text
//! experiments [--exp all|fig11|fig17|fig18|comm-count|temp-storage|robustness|ablation|scaling|persistent|codegen|overlap|trace|tune|superstep|fig7to10|fuzz]
//!             [--n SIZE] [--sizes a,b,c] [--steps K]
//!             [--engine seq|threaded|threaded-overlap] [--json]
//! ```
//!
//! `--exp codegen` compares the interpreter and bytecode nest backends
//! (defaulting to N in {128, 512}) and writes the comparison to
//! `BENCH_codegen.json` in the current directory. `--exp overlap` compares
//! blocking threaded execution against the split-phase threaded-overlap
//! engine (defaulting to N in {128, 512, 2048}) and writes
//! `BENCH_overlap.json`. `--exp trace` runs Problem 9 traced under every
//! engine, attributes step time to compute/pack/send/drain/boundary from
//! the recorded spans, and writes `BENCH_trace.json`. `--exp tune` compares
//! the auto-tuner's pick against the default configuration and an
//! exhaustive search (defaulting to N in {128, 512, 2048}) and writes
//! `BENCH_tune.json`. `--exp superstep` runs Problem 9 at
//! communication-avoiding superstep depths {1, 2, 4, 8} under every engine
//! (defaulting to N in {128, 512}) and writes `BENCH_superstep.json`.
//! `--exp metrics` runs Problem 9 with metrics collection under every
//! engine, asserts the observation-only contract and exact drift-report
//! reconciliation, and writes `BENCH_metrics.json`. `--exp history`
//! appends the canonical small-suite key metrics (plus host metadata and
//! git revision) to `BENCH_history.json` — the baseline `benchdiff`
//! compares against.
//!
//! Every `BENCH_*.json` goes through the canonical `hpf-bench/v1`
//! envelope ([`hpf_bench::report::write_bench`]).
//!
//! `--engine` accepts the same specs as `hpfsc` (parsed by
//! [`ExecConfig::from_cli_str`]): an engine (`seq`, `threaded`,
//! `threaded-overlap`), a backend, or a pair like `threaded-bytecode`.

use hpf_bench::table::Table;
use hpf_bench::*;
use hpf_core::{Engine, ExecConfig};

/// Every experiment name `--exp` accepts, for the help text and the
/// unknown-experiment error.
const EXPERIMENTS: &[&str] = &[
    "all",
    "comm-count",
    "temp-storage",
    "fig11",
    "fig17",
    "fig18",
    "robustness",
    "ablation",
    "scaling",
    "persistent",
    "codegen",
    "overlap",
    "trace",
    "tune",
    "superstep",
    "metrics",
    "history",
    "fig7to10",
    "fuzz",
];

/// Write the experiment's table through the canonical envelope and print
/// it in the requested form.
fn emit(experiment: &str, t: &Table, json: bool) {
    let path = hpf_bench::report::write_bench(experiment, t);
    if json {
        println!("{}", t.to_json());
    } else {
        println!("{}", t.render());
    }
    eprintln!("wrote {path}");
}

struct Args {
    exp: String,
    n: usize,
    sizes: Vec<usize>,
    sizes_given: bool,
    steps: usize,
    engine: Engine,
    json: bool,
}

fn parse_args() -> Args {
    let mut args = Args {
        exp: "all".to_string(),
        n: 256,
        sizes: vec![64, 128, 256, 512],
        sizes_given: false,
        steps: 10,
        engine: Engine::Sequential,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--exp" => args.exp = it.next().expect("--exp VALUE"),
            "--n" => args.n = it.next().expect("--n SIZE").parse().expect("numeric size"),
            "--steps" => {
                args.steps = it.next().expect("--steps K").parse().expect("numeric step count")
            }
            "--sizes" => {
                args.sizes = it
                    .next()
                    .expect("--sizes a,b,c")
                    .split(',')
                    .map(|s| s.trim().parse().expect("numeric size"))
                    .collect();
                args.sizes_given = true;
            }
            "--engine" => {
                let spec = it.next().expect("--engine seq|threaded|threaded-overlap");
                match ExecConfig::from_cli_str(&spec) {
                    Ok(cfg) => args.engine = cfg.engine,
                    Err(e) => panic!("--engine: {e}"),
                }
            }
            "--json" => args.json = true,
            "--help" | "-h" => {
                println!(
                    "usage: experiments [--exp {}] [--n SIZE] [--sizes a,b,c] [--steps K] [--engine seq|threaded|threaded-overlap] [--json]",
                    EXPERIMENTS.join("|")
                );
                std::process::exit(0);
            }
            other => panic!("unknown argument {other} (try --help)"),
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let mut tables: Vec<Table> = Vec::new();
    let want = |name: &str| args.exp == "all" || args.exp == name;
    if want("comm-count") {
        tables.push(comm_count());
    }
    if want("temp-storage") {
        tables.push(temp_storage());
    }
    if want("fig11") {
        tables.push(fig11(&args.sizes, args.engine));
    }
    if want("fig17") {
        tables.push(fig17(args.n, args.engine));
    }
    if want("fig18") {
        tables.push(fig18(&args.sizes, args.engine));
    }
    if want("robustness") {
        tables.push(robustness());
    }
    if want("ablation") {
        tables.push(ablation(args.n, args.engine));
    }
    if want("scaling") {
        tables.push(scaling(args.n, args.engine));
    }
    if want("persistent") {
        tables.push(persistent(args.n, args.steps, args.engine));
    }
    if args.exp == "codegen" {
        // Both backends, both engines; defaults to the paper-scale sizes.
        let sizes: Vec<usize> = if args.sizes_given { args.sizes.clone() } else { vec![128, 512] };
        emit("codegen", &codegen(&sizes, args.steps), args.json);
        return;
    }
    if args.exp == "overlap" {
        // Blocking threaded vs threaded-overlap, bytecode backend; defaults
        // to sizes spanning the spawn threshold up to the headline N=2048.
        let sizes: Vec<usize> =
            if args.sizes_given { args.sizes.clone() } else { vec![128, 512, 2048] };
        emit("overlap", &overlap(&sizes, args.steps), args.json);
        return;
    }
    if args.exp == "trace" {
        // Per-engine span attribution for Problem 9; the experiment itself
        // validates the chrome JSON and the hidden-credit agreement.
        emit("trace", &trace_attribution(args.n, args.steps), args.json);
        return;
    }
    if args.exp == "tune" {
        // Tuned vs default vs exhaustive-search config; defaults to the
        // same headline sizes as the overlap experiment.
        let sizes: Vec<usize> =
            if args.sizes_given { args.sizes.clone() } else { vec![128, 512, 2048] };
        emit("tune", &tune(&sizes, args.steps), args.json);
        return;
    }
    if args.exp == "superstep" {
        // Communication-avoiding superstep depths {1,2,4,8} on Problem 9;
        // every depth runs the same logical-step budget and is verified
        // bitwise against the classic schedule. Defaults to the paper-scale
        // sizes where the wall-clock win is also asserted.
        let sizes: Vec<usize> = if args.sizes_given { args.sizes.clone() } else { vec![128, 512] };
        emit("superstep", &superstep(&sizes, args.steps), args.json);
        return;
    }
    if args.exp == "metrics" {
        // Per-engine metrics collection; the experiment itself asserts the
        // observation-only contract and drift reconciliation.
        emit("metrics", &metrics(args.n, args.steps), args.json);
        return;
    }
    if args.exp == "history" {
        // Append the canonical small-suite metrics to the regression
        // baseline; `benchdiff` compares two of these files.
        let meta = hpf_bench::report::run_meta();
        let metrics = hpf_bench::report::canonical_metrics();
        match hpf_bench::report::append_history("BENCH_history.json", &meta, &metrics) {
            Ok(count) => {
                for (k, v) in &metrics {
                    println!("{k} = {v}");
                }
                eprintln!(
                    "wrote BENCH_history.json ({count} entries, rev {}, host {})",
                    meta.git_rev, meta.host
                );
            }
            Err(e) => {
                eprintln!("experiments: --exp history: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if args.exp == "fig7to10" {
        println!("{}", hpf_bench::figures::figures_7_to_10(4));
        return;
    }
    if args.exp == "fuzz" {
        let spec = hpf_bench::workload::WorkloadSpec::default();
        let outcomes = hpf_bench::workload::fuzz_sweep(&spec, 32, 42);
        let failures: Vec<_> = outcomes.iter().filter(|o| o.failure.is_some()).collect();
        println!("fuzz sweep: {} cases, {} failures", outcomes.len(), failures.len());
        for f in failures {
            println!("seed {}: {}", f.seed, f.failure.as_ref().unwrap());
        }
        return;
    }
    if tables.is_empty() {
        eprintln!(
            "{}",
            hpf_core::exec::config::unknown_value("experiment", &args.exp, EXPERIMENTS)
        );
        std::process::exit(1);
    }
    if args.json {
        println!("{}", hpf_bench::table::tables_to_json(&tables));
    } else {
        for t in tables {
            println!("{}", t.render());
        }
    }
}
