//! ASCII reproduction of the paper's Figures 7–10: the data movement of the
//! four unioned `OVERLAP_SHIFT`s of the 9-point stencil, drawn on one PE's
//! subgrid and its overlap area.
//!
//! The paper illustrates a 5×5 subgrid (solid) surrounded by its overlap
//! area (dashed): the first two calls fill the North/South overlap rows
//! (Figures 7–8); the last two, thanks to their RSDs, pick up data from the
//! freshly filled overlap rows of the neighbours and populate the East/West
//! overlap columns *including the corners* (Figures 9–10).

use hpf_core::ir::{ArrayDecl, ArrayId, Distribution, Shape};
use hpf_core::passes::loopir::{CommOp, NodeItem};
use hpf_core::passes::{compile, CompileOptions};
use hpf_core::runtime::schedule::{overlap_shift_plan, CommAction};
use hpf_core::runtime::Machine;
use hpf_core::{frontend, presets, MachineConfig};

/// Render the overlap-area fill pattern of each unioned shift of the
/// 9-point stencil, for the PE at the given linear index on a 3×3 grid of
/// 15×15 arrays (5×5 subgrids, like the paper's figures).
pub fn figures_7_to_10(pe: usize) -> String {
    let n = 15usize;
    let checked = frontend::compile_source(&presets::nine_point_cshift(n)).unwrap();
    let compiled = compile(&checked, CompileOptions::full());
    let mut machine = Machine::new(MachineConfig::with_grid([3, 3]));
    const SRC: ArrayId = ArrayId(0);
    machine
        .alloc(SRC, &ArrayDecl::user("SRC", Shape::new([n, n]), Distribution::block(2)))
        .unwrap();
    let geom = machine.meta(SRC).geom.clone();
    let ext = geom.extents(pe);
    let halo = machine.cfg.halo;

    // filled[r][c]: 0 = untouched, k = filled by shift k (1-based).
    let h = ext[0] + 2 * halo;
    let w = ext[1] + 2 * halo;
    let mut filled = vec![vec![0u8; w]; h];
    let mut out = String::new();
    let mut shift_no = 0u8;
    compiled.node.for_each_item(&mut |item| {
        if let NodeItem::Comm(CommOp::Overlap { shift, dim, rsd, kind, .. }) = item {
            shift_no += 1;
            let plan = overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, halo).unwrap();
            for action in &plan {
                if let CommAction::Transfer(t) = action {
                    if t.dst_pe == pe {
                        mark(&mut filled, &t.dst_local, shift_no, halo);
                    }
                }
            }
            out.push_str(&format!(
                "Figure {} — CALL OVERLAP_CSHIFT(SRC,SHIFT={:+},DIM={}{})\n",
                6 + shift_no,
                shift,
                dim + 1,
                match rsd {
                    Some(r) if !r.is_trivial() => format!(",{r:?}"),
                    _ => String::new(),
                }
            ));
            out.push_str(&render(&filled, ext[0], ext[1], halo));
            out.push('\n');
        }
    });
    out.push_str("legend: . subgrid element  | 1-4 overlap cell filled by shift #k\n");
    out.push_str("corners are populated by shifts 3-4 via their RSDs (paper Figures 9-10)\n");
    out
}

fn mark(filled: &mut [Vec<u8>], region: &[(i64, i64)], shift_no: u8, halo: usize) {
    let (r0, r1) = region[0];
    let (c0, c1) = region[1];
    for r in r0..=r1 {
        for c in c0..=c1 {
            let ri = (r - 1 + halo as i64) as usize;
            let ci = (c - 1 + halo as i64) as usize;
            if filled[ri][ci] == 0 {
                filled[ri][ci] = shift_no;
            }
        }
    }
}

fn render(filled: &[Vec<u8>], ext_r: usize, ext_c: usize, halo: usize) -> String {
    let mut s = String::new();
    for (ri, row) in filled.iter().enumerate() {
        s.push_str("  ");
        for (ci, &v) in row.iter().enumerate() {
            let interior = ri >= halo && ri < halo + ext_r && ci >= halo && ci < halo + ext_c;
            let ch = if interior {
                '.'
            } else if v == 0 {
                ' '
            } else {
                (b'0' + v) as char
            };
            s.push(ch);
            s.push(' ');
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interior_pe_gets_all_four_sides_and_corners() {
        // PE 4 = centre of the 3x3 grid: every side of the overlap area is
        // populated, corners included.
        let s = figures_7_to_10(4);
        assert_eq!(s.matches("CALL OVERLAP_CSHIFT").count(), 4);
        // Render of the final state (after shift 4) has no blank overlap
        // cells: count spaces inside the last grid… simpler: corners belong
        // to shifts 3/4.
        let last_grid: Vec<&str> = s.lines().collect();
        let corner_lines: Vec<&&str> =
            last_grid.iter().filter(|l| l.starts_with("  ") && !l.trim().is_empty()).collect();
        assert!(!corner_lines.is_empty());
        // The full text mentions the RSDs on the dim-2 shifts.
        assert!(s.contains("DIM=2,[1-1:n+1,*]"), "{s}");
    }

    #[test]
    fn four_shifts_fill_disjoint_then_corner_regions() {
        let s = figures_7_to_10(4);
        // After all four shifts the corner cells are labelled 3 or 4 (the
        // RSD-carrying dim-2 shifts), never 1 or 2.
        let lines: Vec<&str> = s.lines().filter(|l| l.starts_with("  ")).collect();
        // The last rendered grid is the final 7 lines of grids.
        let final_grid = &lines[lines.len() - 7..];
        let first = final_grid[0].trim_start();
        let corner = first.chars().next().unwrap();
        assert!(corner == '3' || corner == '4', "corner '{corner}' in\n{s}");
    }
}
