//! The lint registry and the individual lint passes.
//!
//! | Code  | Severity | Meaning |
//! |-------|----------|---------|
//! | HS001 | error    | uncovered ghost read: an offset reference not dominated by `OVERLAP_SHIFT`s of sufficient width/direction |
//! | HS002 | error    | offset annotation exceeds the configured halo width |
//! | CU001 | warning  | residual subsumed shift: a comm run still contains a shift covered by a neighbouring one (unioning would remove it) |
//! | DF001 | error    | a temporary array is read but never written |
//! | DF002 | warning  | dead array statement: a temporary is written but never read |
//! | FP001 | error    | fusion-legality violation: a partition group contains non-congruent or fusion-preventing statements |
//!
//! `HS` lints run as a forward dataflow over basic blocks (see
//! [`crate::coverage`] for the lattice); `DF` lints use whole-program
//! def/use sets restricted to compiler temporaries (user arrays are external
//! inputs/outputs and are exempt); `CU`/`FP` check the §3.3 subsumption and
//! §3.2 congruence invariants respectively.

use crate::coverage::{covered, ShiftRec};
use hpf_ir::stmt::Resource;
use hpf_ir::{
    ArrayId, Diagnostic, Offsets, OperandRef, Program, Rsd, Section, ShiftKind, Span, Stmt,
    SymbolTable,
};
use std::collections::HashMap;

/// Uncovered ghost read.
pub const HS001: &str = "HS001";
/// Offset exceeds the configured halo width.
pub const HS002: &str = "HS002";
/// Residual subsumed shift after (or absent) unioning.
pub const CU001: &str = "CU001";
/// Temporary array read but never written.
pub const DF001: &str = "DF001";
/// Dead array statement: temporary written but never read.
pub const DF002: &str = "DF002";
/// Fusion-legality violation inside a partition group.
pub const FP001: &str = "FP001";

/// Every lint code with a one-line description (the registry).
pub fn registry() -> &'static [(&'static str, &'static str)] {
    &[
        (HS001, "uncovered ghost read (offset reference not dominated by an OVERLAP_SHIFT of sufficient width/direction)"),
        (HS002, "offset annotation exceeds the configured halo width"),
        (CU001, "residual subsumed shift in a communication run (unioning would remove it)"),
        (DF001, "temporary array read but never written"),
        (DF002, "dead array statement (temporary written but never read)"),
        (FP001, "fusion-legality violation inside a partition group"),
    ]
}

/// Render an offset annotation in the paper's style: `<+1,0>`.
fn fmt_offsets(o: &Offsets) -> String {
    let mut s = String::from("<");
    for (i, &c) in o.0.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        if c > 0 {
            s.push('+');
        }
        s.push_str(&c.to_string());
    }
    s.push('>');
    s
}

// ---------------------------------------------------------------------------
// HS001 / HS002: halo-safety dataflow
// ---------------------------------------------------------------------------

/// Per-array fills since the array's interior was last written.
type HaloState = HashMap<ArrayId, Vec<ShiftRec>>;

/// Forward halo-safety dataflow: HS001 (uncovered ghost read) and HS002
/// (offset beyond the halo). `halo` is the machine's overlap width.
pub fn halo_safety(p: &Program, halo: i64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut state = HaloState::new();
    halo_block(&p.symbols, &p.body, &mut state, halo, &mut out);
    // The two-pass loop body analysis revisits statements; drop exact
    // duplicate diagnostics.
    let mut seen: Vec<Diagnostic> = Vec::new();
    out.retain(|d| {
        if seen.contains(d) {
            false
        } else {
            seen.push(d.clone());
            true
        }
    });
    out
}

fn halo_block(
    symbols: &SymbolTable,
    block: &[Stmt],
    state: &mut HaloState,
    halo: i64,
    out: &mut Vec<Diagnostic>,
) {
    for s in block {
        match s {
            Stmt::OverlapShift { array, .. } => {
                if let Some(rec) = ShiftRec::from_stmt(s) {
                    state.entry(*array).or_default().push(rec);
                }
            }
            Stmt::ShiftAssign { dst, .. } => {
                // Writes the whole interior of `dst`: any previously filled
                // ghost copy of `dst` is now stale.
                state.remove(dst);
            }
            Stmt::Compute { lhs, rhs, .. } => {
                rhs.for_each_ref(&mut |r| check_read(symbols, state, r, halo, out));
                state.remove(lhs);
            }
            Stmt::Copy { dst, src } => {
                check_read(symbols, state, src, halo, out);
                state.remove(dst);
            }
            Stmt::TimeLoop { body, .. } => {
                // First pass: diagnoses reads of the first iteration. Its
                // exit state is the loop's steady-state entry (fills
                // accumulate monotonically; writes reset identically every
                // iteration), so a second pass diagnoses steady-state reads.
                halo_block(symbols, body, state, halo, out);
                halo_block(symbols, body, state, halo, out);
            }
        }
    }
}

fn check_read(
    symbols: &SymbolTable,
    state: &HaloState,
    r: &OperandRef,
    halo: i64,
    out: &mut Vec<Diagnostic>,
) {
    if r.offsets.is_zero() {
        return;
    }
    let name = &symbols.array(r.array).name;
    if r.offsets.max_abs() > halo {
        out.push(
            Diagnostic::error(
                HS002,
                format!(
                    "offset reference {}{} exceeds the halo width {halo}",
                    name,
                    fmt_offsets(&r.offsets)
                ),
            )
            .at_opt(r.span)
            .note("widen the halo (--halo) or reduce the stencil radius"),
        );
        return; // HS001 on the same ref would be noise
    }
    let fills: &[ShiftRec] = state.get(&r.array).map(Vec::as_slice).unwrap_or(&[]);
    if !covered(fills, &r.offsets) {
        out.push(
            Diagnostic::error(
                HS001,
                format!("uncovered ghost read {}{}", name, fmt_offsets(&r.offsets)),
            )
            .at_opt(r.span)
            .note(format!(
                "no OVERLAP_SHIFT of sufficient width/direction fills this overlap area of {name} \
                 between its last interior write and this read"
            )),
        );
    }
}

// ---------------------------------------------------------------------------
// CU001: residual subsumed shifts
// ---------------------------------------------------------------------------

/// Warn about overlap shifts inside one communication run that a
/// neighbouring shift of the same array/kind/dimension/direction subsumes
/// (§3.3: `|j| ≥ |i|` and an RSD at least as wide).
pub fn residual_subsumed_shifts(p: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for_each_block(&p.body, &mut |block| {
        let mut run: Vec<&Stmt> = Vec::new();
        for s in block {
            if s.is_comm() {
                run.push(s);
            } else {
                check_comm_run(&p.symbols, &run, &mut out);
                run.clear();
            }
        }
        check_comm_run(&p.symbols, &run, &mut out);
    });
    out
}

/// Effective transferred region of an overlap shift, for subsumption.
fn effective_rsd(s: &Stmt) -> Option<Rsd> {
    ShiftRec::from_stmt(s).and_then(|r| r.rsd)
}

fn check_comm_run(symbols: &SymbolTable, run: &[&Stmt], out: &mut Vec<Diagnostic>) {
    let shifts: Vec<(usize, ArrayId, ShiftKind, i64, usize, Option<Rsd>)> = run
        .iter()
        .enumerate()
        .filter_map(|(i, s)| match s {
            Stmt::OverlapShift { array, shift, dim, kind, .. } => {
                Some((i, *array, *kind, *shift, *dim, effective_rsd(s)))
            }
            _ => None,
        })
        .collect();
    let covers = |a: &Option<Rsd>, b: &Option<Rsd>| match (a, b) {
        (_, None) => true,
        (None, Some(_)) => false,
        (Some(x), Some(y)) => x.covers(y),
    };
    // `a` subsumes `b`: same array/kind/dim/direction, at least the amount,
    // at least the RSD.
    let subsumes = |a: &(usize, ArrayId, ShiftKind, i64, usize, Option<Rsd>),
                    b: &(usize, ArrayId, ShiftKind, i64, usize, Option<Rsd>)| {
        a.1 == b.1
            && a.2 == b.2
            && a.4 == b.4
            && a.3.signum() == b.3.signum()
            && a.3.abs() >= b.3.abs()
            && covers(&a.5, &b.5)
    };
    for (i, si) in shifts.iter().enumerate() {
        let redundant = shifts.iter().enumerate().any(|(j, sj)| {
            // Flag the later of two mutually subsuming (identical) shifts.
            j != i && subsumes(sj, si) && (j < i || !subsumes(si, sj))
        });
        if redundant {
            let name = &symbols.array(si.1).name;
            out.push(
                Diagnostic::warning(
                    CU001,
                    format!(
                        "subsumed OVERLAP_SHIFT({name},SHIFT={:+},DIM={}) in a communication run",
                        si.3,
                        si.4 + 1
                    ),
                )
                .note("communication unioning (§3.3, --stage unioning or later) removes it"),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// DF001 / DF002: temporary def/use
// ---------------------------------------------------------------------------

/// Whole-program def/use lint over compiler temporaries: DF001 (read but
/// never written — would read garbage) and DF002 (written but never read —
/// the statement is dead). User arrays are external inputs/outputs and are
/// exempt.
pub fn temp_dataflow(p: &Program) -> Vec<Diagnostic> {
    let n = p.symbols.num_arrays();
    let mut written = vec![false; n];
    let mut read = vec![false; n];
    let mut first_read_span: Vec<Option<Span>> = vec![None; n];
    p.for_each_stmt(&mut |s| {
        for r in s.reads() {
            if let Resource::Interior(a) = r {
                read[a.0 as usize] = true;
            }
        }
        match s {
            Stmt::Compute { lhs, rhs, .. } => {
                rhs.for_each_ref(&mut |r| {
                    let slot = &mut first_read_span[r.array.0 as usize];
                    if slot.is_none() {
                        *slot = r.span;
                    }
                });
                written[lhs.0 as usize] = true;
            }
            Stmt::Copy { dst, src } => {
                // `reads()` models an offset Copy source as ghost resources
                // only; for def/use purposes it is a read of the array.
                read[src.array.0 as usize] = true;
                written[dst.0 as usize] = true;
            }
            Stmt::ShiftAssign { dst, .. } => written[dst.0 as usize] = true,
            Stmt::OverlapShift { .. } | Stmt::TimeLoop { .. } => {}
        }
    });
    let mut out = Vec::new();
    for id in p.symbols.array_ids() {
        let decl = p.symbols.array(id);
        if !decl.temp {
            continue;
        }
        let i = id.0 as usize;
        if read[i] && !written[i] {
            out.push(
                Diagnostic::error(
                    DF001,
                    format!("temporary {} is read but never written", decl.name),
                )
                .at_opt(first_read_span[i])
                .note("its contents are undefined at every read"),
            );
        }
        if written[i] && !read[i] {
            // One diagnostic per writing statement (each is dead).
            p.for_each_stmt(&mut |s| {
                let writes_it = match s {
                    Stmt::Compute { lhs, .. } => lhs == &id,
                    Stmt::Copy { dst, .. } | Stmt::ShiftAssign { dst, .. } => dst == &id,
                    _ => false,
                };
                if writes_it {
                    let mut span = None;
                    if let Stmt::Compute { rhs, .. } = s {
                        rhs.for_each_ref(&mut |r| {
                            if span.is_none() {
                                span = r.span;
                            }
                        });
                    }
                    out.push(
                        Diagnostic::warning(
                            DF002,
                            format!(
                                "dead statement: temporary {} is written but never read",
                                decl.name
                            ),
                        )
                        .at_opt(span),
                    );
                }
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// FP001: fusion legality of partition groups
// ---------------------------------------------------------------------------

/// Congruence class of a statement (the analyzer's replica of the §3.2
/// classification in `hpf-passes`: congruent array statements operate on
/// identically distributed arrays over the same iteration space).
#[derive(Clone, PartialEq, Debug)]
enum StmtClass {
    Comm,
    Compute(Section, hpf_ir::Distribution),
    Single,
}

fn classify(symbols: &SymbolTable, s: &Stmt) -> StmtClass {
    match s {
        Stmt::ShiftAssign { .. } | Stmt::OverlapShift { .. } => StmtClass::Comm,
        Stmt::Compute { lhs, space, .. } => {
            StmtClass::Compute(space.clone(), symbols.array(*lhs).dist.clone())
        }
        Stmt::Copy { dst, .. } => {
            let decl = symbols.array(*dst);
            StmtClass::Compute(Section::full(&decl.shape), decl.dist.clone())
        }
        Stmt::TimeLoop { .. } => StmtClass::Single,
    }
}

/// True when fusing the two statements into one loop nest would turn a
/// loop-independent dependence into a loop-carried one: some array is
/// written by one statement and read at a non-zero offset by the other.
pub fn fusion_conflict(a: &Stmt, b: &Stmt) -> bool {
    offset_conflict(a, b) || offset_conflict(b, a)
}

fn offset_conflict(writer: &Stmt, reader: &Stmt) -> bool {
    let writes: Vec<ArrayId> = writer
        .writes()
        .into_iter()
        .filter_map(|r| match r {
            Resource::Interior(a) => Some(a),
            _ => None,
        })
        .collect();
    let mut conflict = false;
    let mut check = |array: ArrayId, offsets: &Offsets| {
        if writes.contains(&array) && !offsets.is_zero() {
            conflict = true;
        }
    };
    match reader {
        Stmt::Compute { rhs, .. } => rhs.for_each_ref(&mut |r| check(r.array, &r.offsets)),
        Stmt::Copy { src, .. } => check(src.array, &src.offsets),
        _ => {}
    }
    conflict
}

/// Check explicit partition groups (member indices into `block`) for
/// fusion legality: every pair in a group must be congruent and free of
/// fusion-preventing dependences. This is the post-condition the partition
/// pass hands its actual grouping to.
pub fn check_partition_groups(
    symbols: &SymbolTable,
    block: &[Stmt],
    groups: &[Vec<usize>],
) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for members in groups {
        for (a, &i) in members.iter().enumerate() {
            for &j in &members[a + 1..] {
                let (ci, cj) = (classify(symbols, &block[i]), classify(symbols, &block[j]));
                if matches!(ci, StmtClass::Comm) && matches!(cj, StmtClass::Comm) {
                    continue; // comm groups never fuse into loop nests
                }
                if ci != cj {
                    out.push(Diagnostic::error(
                        FP001,
                        format!(
                            "partition group mixes non-congruent statements (positions {i} and {j})"
                        ),
                    ));
                } else if fusion_conflict(&block[i], &block[j]) {
                    out.push(
                        Diagnostic::error(
                            FP001,
                            format!(
                                "fusion-preventing dependence inside a partition group \
                                 (positions {i} and {j})"
                            ),
                        )
                        .note(
                            "fusing them would turn a loop-independent dependence into a \
                             loop-carried one (§3.2's over-fusion guard)",
                        ),
                    );
                }
            }
        }
    }
    out
}

/// FP001 as a standalone lint: rebuild the greedy grouping scalarization
/// will use (maximal runs of adjacent same-class statements, broken when a
/// statement conflicts with any run member) and check it pairwise. Clean on
/// pipeline output by construction; it exists to catch drift between the
/// partitioner's placement and scalarization's fusion guard.
pub fn fusion_legality(p: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for_each_block(&p.body, &mut |block| {
        let mut groups: Vec<Vec<usize>> = Vec::new();
        for (i, s) in block.iter().enumerate() {
            let class = classify(&p.symbols, s);
            let joins = match groups.last() {
                Some(run) if !matches!(class, StmtClass::Single) => {
                    classify(&p.symbols, &block[run[0]]) == class
                        && run.iter().all(|&k| !fusion_conflict(&block[k], s))
                }
                _ => false,
            };
            if joins {
                groups.last_mut().unwrap().push(i);
            } else {
                groups.push(vec![i]);
            }
        }
        out.extend(check_partition_groups(&p.symbols, block, &groups));
    });
    out
}

/// Visit every basic block (the program body and each time-loop body).
fn for_each_block(body: &[Stmt], f: &mut impl FnMut(&[Stmt])) {
    f(body);
    for s in body {
        if let Stmt::TimeLoop { body: inner, .. } = s {
            for_each_block(inner, f);
        }
    }
}
