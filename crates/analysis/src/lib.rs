#![warn(missing_docs)]

//! # hpf-analysis — static analyzer over the normalized stencil IR
//!
//! A compile-time correctness layer for the SC'97 stencil pipeline. It has
//! three faces:
//!
//! * **Lints** ([`analyze`], [`lints`]): a registry of checks over any IR
//!   the pipeline can produce — most importantly **HS001**, the static twin
//!   of the runtime halo-poisoning property test: an offset operand
//!   reference (`U<+1,0>`) is an error unless the `OVERLAP_SHIFT`s executed
//!   since the array's last interior write materialize that ghost offset
//!   (the forward dataflow of [`coverage`]).
//! * **Pass post-conditions** ([`Check`], [`run_checks`]): each pass in
//!   `hpf-passes` declares the invariants its output must satisfy; the
//!   pipeline checks them between stages when
//!   `CompileOptions::check_invariants` is set.
//! * **Diagnostics** (re-exported from `hpf-ir`): everything is reported as
//!   [`Diagnostic`]s with stable codes and source spans, rendered as text or
//!   JSON (`hpfsc --lint --emit diag-json`).
//! * **Overlap regions** ([`overlap`]): the geometric complement of the
//!   ghost-liveness dataflow — split a PE's owned block into the interior
//!   computable while halo messages are in flight and the boundary strips
//!   that must wait, used by the split-phase overlapped engine.
//! * **Superstep coverage** ([`superstep`]): depth-coordinate geometry for
//!   communication-avoiding superstep schedules — does a candidate set of
//!   deep halo fills cover every ghost cell the `k` trapezoid sub-steps
//!   read before the next exchange?

pub mod coverage;
pub mod lints;
pub mod overlap;
pub mod superstep;

pub use hpf_ir::diag::{render_json, render_text, sort};
pub use hpf_ir::{Diagnostic, Severity, Span};
pub use lints::{check_partition_groups, registry, CU001, DF001, DF002, FP001, HS001, HS002};

use hpf_ir::{Program, Severity as Sev, Stmt};

/// Run every lint over a program. `halo` is the machine's overlap width.
/// Returns the diagnostics sorted for presentation (errors first).
pub fn analyze(p: &Program, halo: i64) -> Vec<Diagnostic> {
    let mut out = lints::halo_safety(p, halo);
    out.extend(lints::residual_subsumed_shifts(p));
    out.extend(lints::temp_dataflow(p));
    out.extend(lints::fusion_legality(p));
    hpf_ir::diag::sort(&mut out);
    out
}

/// True when any diagnostic is an error.
pub fn has_errors(diags: &[Diagnostic]) -> bool {
    diags.iter().any(|d| d.severity == Sev::Error)
}

/// A post-condition a pass can declare over its output IR.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Check {
    /// Structural validation ([`hpf_ir::validate::check`]).
    Validate,
    /// Normal-form alignment (§2.1): compute operands distributed like the
    /// LHS.
    NormalForm,
    /// All operand references aligned (zero offsets) and no overlap shifts —
    /// holds before the offset-array stage.
    AlignedRefs,
    /// Every offset read covered by preceding overlap shifts and within the
    /// halo (HS001/HS002).
    HaloSafe,
    /// No communication run contains a subsumed shift (CU001) — holds after
    /// unioning.
    NoSubsumedShifts,
    /// The grouping scalarization will use is fusion-legal (FP001).
    FusionLegal,
}

/// Run a set of post-condition checks, returning all violations sorted.
pub fn run_checks(p: &Program, halo: i64, checks: &[Check]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for c in checks {
        match c {
            Check::Validate => out.extend(hpf_ir::validate::check(p, halo)),
            Check::NormalForm => out.extend(hpf_ir::validate::normal_form_diagnostics(p)),
            Check::AlignedRefs => out.extend(aligned_refs(p)),
            Check::HaloSafe => out.extend(lints::halo_safety(p, halo)),
            Check::NoSubsumedShifts => out.extend(lints::residual_subsumed_shifts(p)),
            Check::FusionLegal => out.extend(lints::fusion_legality(p)),
        }
    }
    hpf_ir::diag::sort(&mut out);
    out
}

/// Pre-offset-stage invariant: no offset annotations, no overlap shifts.
fn aligned_refs(p: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    p.for_each_stmt(&mut |s| match s {
        Stmt::Compute { rhs, .. } => rhs.for_each_ref(&mut |r| {
            if !r.offsets.is_zero() {
                out.push(
                    Diagnostic::error(
                        "NF002",
                        format!(
                            "offset reference on {} before the offset-array stage",
                            p.symbols.array(r.array).name
                        ),
                    )
                    .at_opt(r.span),
                );
            }
        }),
        Stmt::OverlapShift { array, .. } => out.push(Diagnostic::error(
            "NF002",
            format!(
                "OVERLAP_SHIFT of {} before the offset-array stage",
                p.symbols.array(*array).name
            ),
        )),
        _ => {}
    });
    out
}
