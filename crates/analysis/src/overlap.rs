//! Overlap-region derivation for split-phase halo exchange.
//!
//! The ghost-liveness dataflow ([`crate::coverage`]) proves which halo
//! cells a nest's offset reads require; the complementary *geometric*
//! question — which part of a PE's owned block can execute **before** those
//! halo cells arrive — is answered here. Given a nest's local iteration
//! bounds and its maximum memory-access offset per dimension, the owned
//! block splits into an *interior* sub-rectangle (every access stays inside
//! owned storage, so it may run while halo messages are in flight) and the
//! complementary *boundary* strips (run after the receives drain). The
//! split is pure integer geometry over local index ranges, so it lives in
//! this crate and is reused by the executors.
//!
//! ## Counter parity under unroll-and-jam
//!
//! The executors classify each outer-loop index as a *jammed* group start
//! (`i + factor - 1 <= hi`) or a *unit* remainder point, and the per-PE
//! counters are derived from those group counts. A naive split along the
//! unrolled dimension would change the classification and make the
//! overlapped engine's counters diverge from the blocking engines. The
//! split therefore aligns both cuts along the unrolled dimension to the
//! unroll factor, measured from the range start: every piece then starts at
//! `lo + k·factor` and has either a factor-multiple length (all jammed) or
//! carries the natural remainder (the trailing boundary band), so the
//! per-piece group classification is exactly the full sweep's restricted to
//! the piece.

/// An inclusive per-dimension index range, `(lo, hi)`.
pub type Range = (i64, i64);

/// The split of one PE's local iteration space for one nest: the interior
/// box plus the boundary strips that complete it. The pieces are pairwise
/// disjoint and their union is the full space; see [`split_region`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RegionSplit {
    /// The sub-rectangle whose memory accesses all stay within owned
    /// storage: safe to execute while halo messages are in flight.
    pub interior: Vec<Range>,
    /// The complementary strips (onion peel, in loop order), executed after
    /// the receives drain. May be empty along dimensions with zero shrink.
    pub boundary: Vec<Vec<Range>>,
}

impl RegionSplit {
    /// Points in the interior box.
    pub fn interior_cells(&self) -> u64 {
        cells(&self.interior)
    }

    /// Points across all boundary strips.
    pub fn boundary_cells(&self) -> u64 {
        self.boundary.iter().map(|s| cells(s)).sum()
    }
}

/// Number of points in a region (product of range lengths; 0 when any
/// dimension is empty).
pub fn cells(ranges: &[Range]) -> u64 {
    ranges.iter().map(|&(lo, hi)| (hi - lo + 1).max(0) as u64).product()
}

/// Split the local box `lo..=hi` (per dimension) into an interior shrunk by
/// `shrink_lo[d]` / `shrink_hi[d]` points on each side and the
/// complementary boundary strips, peeled in loop `order` (outermost first).
/// `factor` is the unroll factor of the outermost loop (`order[0]`); both
/// interior cuts along that dimension are rounded outward/inward to factor
/// alignment so jammed/unit grouping is preserved piecewise (see module
/// docs). Returns `None` when the interior would be empty in any dimension
/// — the caller then takes the fully-blocking path for this PE.
pub fn split_region(
    lo: &[i64],
    hi: &[i64],
    shrink_lo: &[i64],
    shrink_hi: &[i64],
    order: &[usize],
    factor: i64,
) -> Option<RegionSplit> {
    let rank = lo.len();
    debug_assert!(hi.len() == rank && shrink_lo.len() == rank && shrink_hi.len() == rank);
    debug_assert!(order.len() == rank && factor >= 1);
    let d0 = *order.first()?;
    // Interior bounds per dimension: ilo[d]..=ihi[d].
    let mut ilo = vec![0i64; rank];
    let mut ihi = vec![0i64; rank];
    for d in 0..rank {
        let (a, b) = (shrink_lo[d].max(0), shrink_hi[d].max(0));
        if d == d0 {
            // Factor-align both cuts, measured from the range start.
            let n = hi[d] - lo[d] + 1;
            let top = ((a + factor - 1) / factor) * factor;
            ilo[d] = lo[d] + top;
            ihi[d] = lo[d] + factor * ((n - b) / factor) - 1;
        } else {
            ilo[d] = lo[d] + a;
            ihi[d] = hi[d] - b;
        }
        if ihi[d] < ilo[d] {
            return None; // degenerate interior: nothing to overlap with
        }
    }
    // Onion peel in loop order: each dimension's low/high strips span the
    // already-peeled interior of earlier dims and the full range of later
    // dims, so the pieces tile the box disjointly.
    let mut boundary = Vec::new();
    for (k, &d) in order.iter().enumerate() {
        let mut strip = |range: Range| {
            if range.1 < range.0 {
                return;
            }
            let mut s = Vec::with_capacity(rank);
            for dd in 0..rank {
                s.push((lo[dd], hi[dd]));
            }
            for &e in &order[..k] {
                s[e] = (ilo[e], ihi[e]);
            }
            s[d] = range;
            boundary.push(s);
        };
        strip((lo[d], ilo[d] - 1));
        strip((ihi[d] + 1, hi[d]));
    }
    let interior = (0..rank).map(|d| (ilo[d], ihi[d])).collect();
    Some(RegionSplit { interior, boundary })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn points(ranges: &[Range]) -> HashSet<Vec<i64>> {
        let mut out = HashSet::new();
        let mut stack = vec![Vec::new()];
        for &(lo, hi) in ranges {
            let mut next = Vec::new();
            for p in stack {
                for i in lo..=hi {
                    let mut q = p.clone();
                    q.push(i);
                    next.push(q);
                }
            }
            stack = next;
        }
        out.extend(stack);
        out
    }

    /// The pieces must tile the box exactly: disjoint, union = full.
    fn check_tiling(split: &RegionSplit, lo: &[i64], hi: &[i64]) {
        let full: Vec<Range> = lo.iter().zip(hi).map(|(&l, &h)| (l, h)).collect();
        let want = points(&full);
        let mut got = points(&split.interior);
        let interior_count = got.len();
        for strip in &split.boundary {
            for p in points(strip) {
                assert!(got.insert(p.clone()), "point {p:?} covered twice");
            }
        }
        assert_eq!(got, want, "pieces do not tile the box");
        assert_eq!(split.interior_cells(), interior_count as u64);
        assert_eq!(split.interior_cells() + split.boundary_cells(), want.len() as u64);
    }

    #[test]
    fn basic_2d_split_tiles_the_box() {
        let s = split_region(&[1, 1], &[8, 8], &[1, 1], &[1, 1], &[0, 1], 1).unwrap();
        assert_eq!(s.interior, vec![(2, 7), (2, 7)]);
        check_tiling(&s, &[1, 1], &[8, 8]);
    }

    #[test]
    fn factor_alignment_along_unrolled_dim() {
        // n=10, factor 2, shrink 1 each side: the top cut rounds up to 2,
        // the bottom cut lands on lo + 2*floor((10-1)/2) = lo+8.
        let s = split_region(&[1, 1], &[10, 8], &[1, 1], &[1, 1], &[0, 1], 2).unwrap();
        assert_eq!(s.interior[0], (3, 8));
        assert_eq!((s.interior[0].0 - 1) % 2, 0, "interior starts factor-aligned");
        assert_eq!((s.interior[0].1 - s.interior[0].0 + 1) % 2, 0, "interior length is a multiple");
        check_tiling(&s, &[1, 1], &[10, 8]);
    }

    #[test]
    fn zero_shrink_dims_have_no_strips() {
        let s = split_region(&[1, 1], &[8, 8], &[1, 0], &[1, 0], &[0, 1], 1).unwrap();
        assert_eq!(s.interior, vec![(2, 7), (1, 8)]);
        assert_eq!(s.boundary.len(), 2, "only dim-0 strips");
        check_tiling(&s, &[1, 1], &[8, 8]);
    }

    #[test]
    fn degenerate_interior_is_none() {
        // 4 rows shrunk by 2 on each side: nothing left.
        assert!(split_region(&[1, 1], &[4, 8], &[2, 1], &[2, 1], &[0, 1], 1).is_none());
        // Factor alignment can also consume the whole range.
        assert!(split_region(&[1, 1], &[3, 8], &[1, 1], &[1, 1], &[0, 1], 2).is_none());
    }

    #[test]
    fn permuted_order_peels_in_loop_order() {
        let s = split_region(&[1, 1], &[9, 9], &[2, 1], &[1, 2], &[1, 0], 1).unwrap();
        // order[0] = dim 1: its strips span dim 0 fully.
        assert_eq!(s.boundary[0][0], (1, 9));
        check_tiling(&s, &[1, 1], &[9, 9]);
    }

    #[test]
    fn rank_1_and_3_tile() {
        let s = split_region(&[1], &[16], &[1], &[1], &[0], 2).unwrap();
        check_tiling(&s, &[1], &[16]);
        let s =
            split_region(&[1, 2, 1], &[7, 9, 6], &[1, 1, 1], &[1, 0, 2], &[0, 1, 2], 2).unwrap();
        check_tiling(&s, &[1, 2, 1], &[7, 9, 6]);
    }
}
