//! Ghost-coverage geometry for superstep (deep-halo) schedules.
//!
//! A depth-`k` superstep issues one deep halo exchange and then runs `k`
//! stencil sub-steps without communicating, each sub-step reading ghost
//! cells the single exchange must have filled. Whether a candidate set of
//! deep fills actually covers every ghost cell the trapezoid sub-steps read
//! is a pure geometry question, independent of the loop IR — and this
//! module answers it in *depth coordinates*: per dimension, a point's
//! coordinate is its ghost depth, negative on the low side, positive on the
//! high side, `0` anywhere inside the owned block. A PE's ghost region is
//! then the integer ring box around the origin, and a deep fill (one
//! compiled overlap-shift schedule) is an axis-aligned box — e.g. a
//! depth-`D` high-side fill along dimension `d`, widened by corner
//! forwarding into `[-cl, ch]` along another dimension `e`, is the box with
//! interval `[1, D]` at `d` and `[-cl, ch]` at `e`.
//!
//! The check ([`uncovered_ghost`]) simply enumerates every integer point of
//! the required ghost ring and tests membership in the fill-box union.
//! Requirements are halo-sized (a handful of cells per side, per
//! dimension), so the enumeration is tiny — at halo 4 in 3-D it is at most
//! `9^3` points — and exactness matters more than asymptotics: the planner
//! uses this as a *legality* oracle (an uncovered point makes the kernel
//! ineligible for superstepping, falling back to `k = 1`), and the plan
//! verifier's PL004 rule re-derives the same geometry independently as a
//! defense in depth.

/// Per-dimension required ghost validity, `(lo, hi)` cells per side
/// (non-negative). `(0, 0)` in every dimension means no ghost reads.
pub type GhostNeed = Vec<(i64, i64)>;

/// An axis-aligned fill box in depth coordinates: per-dimension inclusive
/// `(lo, hi)` interval, where negative depths are low-side ghosts, positive
/// are high-side ghosts, and `0` stands for the whole owned extent.
pub type FillBox = Vec<(i64, i64)>;

/// First ghost point the fills leave uncovered, or `None` when every ghost
/// cell the need describes is written by at least one fill box.
///
/// The required region is the ring box `[-need[d].0, need[d].1]` per
/// dimension minus the all-owned origin; a point is covered when some fill
/// box contains it in every dimension. Points are visited in odometer order
/// (last dimension fastest), so the returned witness is deterministic.
pub fn uncovered_ghost(need: &GhostNeed, fills: &[FillBox]) -> Option<Vec<i64>> {
    let rank = need.len();
    if rank == 0 {
        return None;
    }
    let mut point: Vec<i64> = need.iter().map(|&(lo, _)| -lo).collect();
    loop {
        let is_ghost = point.iter().any(|&c| c != 0);
        if is_ghost {
            let covered = fills.iter().any(|f| {
                f.len() == rank && f.iter().zip(&point).all(|(&(lo, hi), &c)| lo <= c && c <= hi)
            });
            if !covered {
                return Some(point);
            }
        }
        // Odometer increment, last dimension fastest.
        let mut d = rank;
        loop {
            if d == 0 {
                return None;
            }
            d -= 1;
            if point[d] < need[d].1 {
                point[d] += 1;
                point[d + 1..].iter_mut().zip(&need[d + 1..]).for_each(|(c, &(lo, _))| *c = -lo);
                break;
            }
        }
    }
}

/// Total ghost cells the need describes per unit of owned surface — the
/// ring-box point count (every integer point of the box minus the origin).
/// Purely diagnostic: lets callers report how large a region a coverage
/// failure concerns.
pub fn ghost_point_count(need: &GhostNeed) -> u64 {
    let total: u64 = need.iter().map(|&(lo, hi)| (lo + hi + 1) as u64).product();
    total.saturating_sub(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_need_is_always_covered() {
        assert_eq!(uncovered_ghost(&vec![(0, 0), (0, 0)], &[]), None);
        assert_eq!(uncovered_ghost(&vec![], &[]), None);
        assert_eq!(ghost_point_count(&vec![(0, 0), (0, 0)]), 0);
    }

    #[test]
    fn face_fills_cover_star_need() {
        // A 5-point stencil at depth 1 needs only the four faces, no
        // corners — but the need box includes corners, so face fills alone
        // leave a corner uncovered...
        let need = vec![(1, 1), (1, 1)];
        let faces = vec![
            vec![(-1, -1), (0, 0)],
            vec![(1, 1), (0, 0)],
            vec![(0, 0), (-1, -1)],
            vec![(0, 0), (1, 1)],
        ];
        let witness = uncovered_ghost(&need, &faces).expect("corner uncovered");
        assert!(witness.iter().all(|&c| c != 0), "witness is a corner: {witness:?}");
        // ...and corner-extended fills (the RSD augmentation) cover it.
        let extended = vec![
            vec![(-1, -1), (0, 0)],
            vec![(1, 1), (0, 0)],
            vec![(-1, 1), (-1, -1)],
            vec![(-1, 1), (1, 1)],
        ];
        assert_eq!(uncovered_ghost(&need, &extended), None);
    }

    #[test]
    fn deep_fills_cover_deep_need() {
        // Depth-3 need in 1-D, covered by one fill per side.
        let need = vec![(3, 3)];
        assert_eq!(uncovered_ghost(&need, &[vec![(-3, -1)], vec![(1, 3)]]), None);
        // A shallower fill leaves the deepest cell uncovered.
        let w = uncovered_ghost(&need, &[vec![(-2, -1)], vec![(1, 3)]]).unwrap();
        assert_eq!(w, vec![-3]);
    }

    #[test]
    fn one_sided_need_ignores_other_side() {
        // EOSHIFT-style single-direction reads: only the high side needed.
        let need = vec![(0, 2), (0, 0)];
        assert_eq!(uncovered_ghost(&need, &[vec![(1, 2), (0, 0)]]), None);
        assert_eq!(uncovered_ghost(&need, &[vec![(1, 1), (0, 0)]]), Some(vec![2, 0]));
    }

    #[test]
    fn ghost_count_is_ring_points() {
        assert_eq!(ghost_point_count(&vec![(1, 1)]), 2);
        assert_eq!(ghost_point_count(&vec![(1, 1), (1, 1)]), 8);
        assert_eq!(ghost_point_count(&vec![(2, 2), (2, 2)]), 24);
    }
}
