//! Ghost-region coverage: which halo offsets of an array hold valid data.
//!
//! This is the static twin of the runtime's overlap-area fill semantics (and
//! of `unioning::covered_one` in `hpf-passes`, which proves the emission of
//! §3.3 covers its requirement set): executing a sequence of
//! `OVERLAP_SHIFT`s *in order* materializes a set of ghost offset vectors,
//! starting from the interior (`<0,…,0>`) and growing as each shift drags
//! previously materialized data — including RSD-widened corner regions —
//! into the overlap areas.
//!
//! The forward dataflow in [`crate::lints`] keeps, per array, the list of
//! fills since the array's interior was last written (a write invalidates
//! every ghost copy of the array, exactly as the runtime's halo poisoning
//! models staleness), and calls [`covered`] at each offset read.

use hpf_ir::{Offsets, Rsd, Stmt};

/// One `OVERLAP_SHIFT` fill event: shift amount and dimension plus the
/// effective RSD widening of the transferred section.
#[derive(Clone, PartialEq, Debug)]
pub struct ShiftRec {
    /// Signed shift amount.
    pub shift: i64,
    /// Shifted dimension (0-based).
    pub dim: usize,
    /// Effective RSD: the explicit one, or the one implied by non-zero
    /// source offsets (exactly the conversion scalarization performs when
    /// lowering to a runtime overlap op).
    pub rsd: Option<Rsd>,
}

impl ShiftRec {
    /// Extract the fill event of an [`Stmt::OverlapShift`]; `None` for any
    /// other statement.
    pub fn from_stmt(s: &Stmt) -> Option<ShiftRec> {
        let Stmt::OverlapShift { src_offsets, shift, dim, rsd, .. } = s else {
            return None;
        };
        let rsd = rsd.clone().or_else(|| {
            let mut r = Rsd::none(src_offsets.rank());
            for (e, &o) in src_offsets.0.iter().enumerate() {
                if e != *dim {
                    r.extend(e, o);
                }
            }
            if r.is_trivial() {
                None
            } else {
                Some(r)
            }
        });
        Some(ShiftRec { shift: *shift, dim: *dim, rsd })
    }
}

/// True when executing `fills` in order materializes ghost data at offset
/// `req` (all-zero `req` is trivially covered: it is the interior).
pub fn covered(fills: &[ShiftRec], req: &Offsets) -> bool {
    let rank = req.rank();
    let mut have: Vec<Offsets> = vec![Offsets::zero(rank)];
    for f in fills {
        if f.dim >= rank {
            continue; // malformed; validation reports it separately
        }
        let mut new: Vec<Offsets> = Vec::new();
        for base in &have {
            // The shift moves data whose other-dimension coordinates lie
            // within the RSD extension; `base` qualifies when every
            // non-shift component fits the RSD.
            let fits = (0..rank).all(|e| {
                if e == f.dim {
                    base.dim(e) == 0
                } else {
                    let c = base.dim(e);
                    match &f.rsd {
                        None => c == 0,
                        Some(r) => (-(r.ext[e].0 as i64)..=(r.ext[e].1 as i64)).contains(&c),
                    }
                }
            });
            if fits {
                for k in 1..=f.shift.abs() {
                    let mut v = base.clone();
                    v.0[f.dim] = f.shift.signum() * k;
                    new.push(v);
                }
            }
        }
        for v in new {
            if !have.contains(&v) {
                have.push(v);
            }
        }
    }
    have.contains(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{ArrayId, ShiftKind};

    fn overlap(shift: i64, dim: usize, rsd: Option<Rsd>) -> Stmt {
        Stmt::OverlapShift {
            array: ArrayId(0),
            src_offsets: Offsets::zero(2),
            shift,
            dim,
            rsd,
            kind: ShiftKind::Circular,
        }
    }

    #[test]
    fn single_shift_covers_its_face() {
        let fills = vec![ShiftRec::from_stmt(&overlap(2, 0, None)).unwrap()];
        assert!(covered(&fills, &Offsets::new([1, 0])));
        assert!(covered(&fills, &Offsets::new([2, 0])));
        assert!(!covered(&fills, &Offsets::new([3, 0])));
        assert!(!covered(&fills, &Offsets::new([-1, 0])));
        assert!(!covered(&fills, &Offsets::new([1, 1])));
        assert!(covered(&fills, &Offsets::zero(2)), "interior always valid");
    }

    #[test]
    fn corner_needs_rsd() {
        let plain = [overlap(1, 0, None), overlap(1, 1, None)]
            .iter()
            .filter_map(ShiftRec::from_stmt)
            .collect::<Vec<_>>();
        assert!(!covered(&plain, &Offsets::new([1, 1])));
        let mut rsd = Rsd::none(2);
        rsd.extend(0, 1);
        let with_rsd = [overlap(1, 0, None), overlap(1, 1, Some(rsd))]
            .iter()
            .filter_map(ShiftRec::from_stmt)
            .collect::<Vec<_>>();
        assert!(covered(&with_rsd, &Offsets::new([1, 1])));
    }

    #[test]
    fn src_offsets_imply_rsd() {
        // OVERLAP_SHIFT of U<+1,0> along dim 1 transfers the dim-0-extended
        // region: scalarization converts the annotation to an RSD; the model
        // must agree.
        let s = Stmt::OverlapShift {
            array: ArrayId(0),
            src_offsets: Offsets::new([1, 0]),
            shift: 1,
            dim: 1,
            rsd: None,
            kind: ShiftKind::Circular,
        };
        let rec = ShiftRec::from_stmt(&s).unwrap();
        let fills = vec![ShiftRec::from_stmt(&overlap(1, 0, None)).unwrap(), rec];
        assert!(covered(&fills, &Offsets::new([1, 1])));
    }

    #[test]
    fn order_matters() {
        let mut rsd = Rsd::none(2);
        rsd.extend(0, 1);
        // RSD shift first: dim-0 ghosts not yet filled, corner not covered.
        let wrong = [overlap(1, 1, Some(rsd.clone())), overlap(1, 0, None)]
            .iter()
            .filter_map(ShiftRec::from_stmt)
            .collect::<Vec<_>>();
        assert!(!covered(&wrong, &Offsets::new([1, 1])));
    }
}
