//! Unit tests for each lint, on hand-built IR.

use hpf_analysis::{analyze, check_partition_groups, has_errors, run_checks, Check};
use hpf_ir::{
    ArrayDecl, ArrayId, Distribution, Expr, Offsets, OperandRef, Program, Rsd, Section, Shape,
    ShiftKind, Span, Stmt, SymbolTable,
};

fn symbols3() -> (SymbolTable, ArrayId, ArrayId, ArrayId) {
    let mut t = SymbolTable::new();
    let u = t.add_array(ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2)));
    let v = t.add_array(ArrayDecl::user("V", Shape::new([8, 8]), Distribution::block(2)));
    let tmp = {
        let decl = ArrayDecl::temp_like("TMP1", t.array(u));
        t.add_array(decl)
    };
    (t, u, v, tmp)
}

fn overlap(array: ArrayId, shift: i64, dim: usize, rsd: Option<Rsd>) -> Stmt {
    Stmt::OverlapShift {
        array,
        src_offsets: Offsets::zero(2),
        shift,
        dim,
        rsd,
        kind: ShiftKind::Circular,
    }
}

fn compute_read(lhs: ArrayId, src: ArrayId, off: [i64; 2], span: Option<Span>) -> Stmt {
    let mut r = OperandRef::offset(src, Offsets::new(off));
    r.span = span;
    Stmt::Compute { lhs, space: Section::new([(2, 7), (2, 7)]), rhs: Expr::Ref(r) }
}

#[test]
fn hs001_uncovered_ghost_read() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(compute_read(v, u, [1, 0], Some(Span::new(4, 9))));
    let diags = analyze(&p, 1);
    assert!(has_errors(&diags));
    let d = diags.iter().find(|d| d.code == "HS001").expect("HS001 raised");
    assert_eq!(d.span, Some(Span::new(4, 9)));
    assert!(d.message.contains("U<+1,0>"), "{}", d.message);
}

#[test]
fn hs001_clean_when_shift_covers() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(compute_read(v, u, [1, 0], None));
    assert!(analyze(&p, 1).is_empty(), "{:?}", analyze(&p, 1));
}

#[test]
fn hs001_wrong_direction_still_fires() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, -1, 0, None));
    p.body.push(compute_read(v, u, [1, 0], None));
    assert!(analyze(&p, 1).iter().any(|d| d.code == "HS001"));
}

#[test]
fn hs001_interior_write_invalidates_ghosts() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    // U's interior changes: the filled ghost copy is stale now.
    p.body.push(Stmt::Compute {
        lhs: u,
        space: Section::new([(1, 8), (1, 8)]),
        rhs: Expr::Const(0.0),
    });
    p.body.push(compute_read(v, u, [1, 0], None));
    assert!(analyze(&p, 1).iter().any(|d| d.code == "HS001"));
}

#[test]
fn hs001_corner_needs_rsd() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(overlap(u, 1, 1, None));
    p.body.push(compute_read(v, u, [1, 1], None));
    assert!(analyze(&p, 1).iter().any(|d| d.code == "HS001"), "corner not covered without RSD");
    // Same but the dim-1 shift carries the RSD: clean.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    let mut rsd = Rsd::none(2);
    rsd.extend(0, 1);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(overlap(u, 1, 1, Some(rsd)));
    p.body.push(compute_read(v, u, [1, 1], None));
    assert!(!analyze(&p, 1).iter().any(|d| d.code == "HS001"));
}

#[test]
fn hs001_time_loop_steady_state() {
    // Fill happens inside the loop *after* the read: the first iteration
    // reads an unfilled ghost.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(Stmt::TimeLoop {
        iters: 3,
        body: vec![compute_read(v, u, [1, 0], None), overlap(u, 1, 0, None)],
    });
    assert!(analyze(&p, 1).iter().any(|d| d.code == "HS001"), "first-iteration read");

    // Fill precedes the read and U is never rewritten: clean in every
    // iteration.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(Stmt::TimeLoop {
        iters: 3,
        body: vec![overlap(u, 1, 0, None), compute_read(v, u, [1, 0], None)],
    });
    assert!(analyze(&p, 1).is_empty());

    // The loop rewrites U after the read; the fill at the loop head renews
    // the ghosts each iteration: still clean.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(Stmt::TimeLoop {
        iters: 3,
        body: vec![
            overlap(u, 1, 0, None),
            compute_read(v, u, [1, 0], None),
            Stmt::Copy { dst: u, src: OperandRef::aligned(v, 2) },
        ],
    });
    assert!(analyze(&p, 1).is_empty());

    // Fill only *before* the loop, rewrite inside: the second iteration
    // reads stale ghosts.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(Stmt::TimeLoop {
        iters: 3,
        body: vec![
            compute_read(v, u, [1, 0], None),
            Stmt::Copy { dst: u, src: OperandRef::aligned(v, 2) },
        ],
    });
    assert!(analyze(&p, 1).iter().any(|d| d.code == "HS001"), "steady-state read is stale");
}

#[test]
fn hs002_offset_beyond_halo() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(compute_read(v, u, [2, 0], Some(Span::new(2, 1))));
    let diags = analyze(&p, 1);
    assert!(diags.iter().any(|d| d.code == "HS002" && d.span == Some(Span::new(2, 1))));
    // Not also HS001 noise for the same ref.
    assert!(!diags.iter().any(|d| d.code == "HS001"));
}

#[test]
fn cu001_subsumed_shift_in_run() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(overlap(u, 2, 0, None));
    p.body.push(compute_read(v, u, [1, 0], None));
    let diags = analyze(&p, 2);
    let cu: Vec<_> = diags.iter().filter(|d| d.code == "CU001").collect();
    assert_eq!(cu.len(), 1, "{diags:?}");
    assert!(cu[0].message.contains("SHIFT=+1"), "the smaller shift is flagged: {}", cu[0].message);
}

#[test]
fn cu001_identical_shifts_flag_the_later() {
    let (t, u, _, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(overlap(u, 1, 0, None));
    let diags = analyze(&p, 1);
    assert_eq!(diags.iter().filter(|d| d.code == "CU001").count(), 1);
}

#[test]
fn cu001_not_across_statement_boundaries() {
    // The compute between the shifts splits the run: no subsumption.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(compute_read(v, u, [1, 0], None));
    p.body.push(overlap(u, 2, 0, None));
    assert!(!analyze(&p, 2).iter().any(|d| d.code == "CU001"));
}

#[test]
fn cu001_different_direction_or_kind_not_subsumed() {
    let (t, u, _, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(overlap(u, 1, 0, None));
    p.body.push(overlap(u, -2, 0, None));
    p.body.push(Stmt::OverlapShift {
        array: u,
        src_offsets: Offsets::zero(2),
        shift: 1,
        dim: 0,
        rsd: None,
        kind: ShiftKind::EndOff(0.0),
    });
    assert!(!analyze(&p, 2).iter().any(|d| d.code == "CU001"));
}

#[test]
fn df001_temp_read_never_written() {
    let (t, _, v, tmp) = symbols3();
    let mut p = Program::new(t);
    p.body.push(compute_read(v, tmp, [0, 0], None));
    // Aligned read of a never-written temp — make it an offset-free read so
    // HS001 stays quiet and DF001 is the only finding.
    let diags = analyze(&p, 1);
    assert!(diags.iter().any(|d| d.code == "DF001"), "{diags:?}");
}

#[test]
fn df001_user_arrays_exempt() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(Stmt::Compute {
        lhs: v,
        space: Section::new([(1, 8), (1, 8)]),
        rhs: Expr::Ref(OperandRef::aligned(u, 2)),
    });
    assert!(analyze(&p, 1).is_empty(), "user arrays are external inputs");
}

#[test]
fn df002_dead_temp_write() {
    let (t, u, _, tmp) = symbols3();
    let mut p = Program::new(t);
    p.body.push(Stmt::Compute {
        lhs: tmp,
        space: Section::new([(1, 8), (1, 8)]),
        rhs: Expr::Ref(OperandRef::aligned(u, 2)),
    });
    let diags = analyze(&p, 1);
    let df: Vec<_> = diags.iter().filter(|d| d.code == "DF002").collect();
    assert_eq!(df.len(), 1);
    assert_eq!(df[0].severity, hpf_analysis::Severity::Warning);
}

#[test]
fn fp001_bad_explicit_group() {
    let (t, u, v, tmp) = symbols3();
    let space = Section::new([(2, 7), (2, 7)]);
    let w = Stmt::Compute { lhs: u, space: space.clone(), rhs: Expr::Const(1.0) };
    let r = Stmt::Compute {
        lhs: v,
        space,
        rhs: Expr::Ref(OperandRef::offset(u, Offsets::new([1, 0]))),
    };
    let block = vec![w, r];
    let symbols = {
        let mut t2 = SymbolTable::new();
        t2.add_array(t.array(u).clone());
        t2.add_array(t.array(v).clone());
        t2.add_array(t.array(tmp).clone());
        t2
    };
    // Grouped together although a fusion-preventing dependence separates
    // them: FP001.
    let diags = check_partition_groups(&symbols, &block, &[vec![0, 1]]);
    assert!(diags.iter().any(|d| d.code == "FP001"), "{diags:?}");
    // Separate groups: legal.
    assert!(check_partition_groups(&symbols, &block, &[vec![0], vec![1]]).is_empty());
}

#[test]
fn post_condition_checks_compose() {
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(compute_read(v, u, [1, 0], None));
    // AlignedRefs and HaloSafe both reject this program.
    let diags = run_checks(&p, 1, &[Check::Validate, Check::AlignedRefs, Check::HaloSafe]);
    assert!(diags.iter().any(|d| d.code == "NF002"));
    assert!(diags.iter().any(|d| d.code == "HS001"));
    // A clean aligned program passes everything.
    let (t, u, v, _) = symbols3();
    let mut p = Program::new(t);
    p.body.push(Stmt::Compute {
        lhs: v,
        space: Section::new([(1, 8), (1, 8)]),
        rhs: Expr::Ref(OperandRef::aligned(u, 2)),
    });
    let all = [
        Check::Validate,
        Check::NormalForm,
        Check::AlignedRefs,
        Check::HaloSafe,
        Check::NoSubsumedShifts,
        Check::FusionLegal,
    ];
    assert!(run_checks(&p, 1, &all).is_empty());
}
