//! The reference interpreter — the correctness oracle.
//!
//! Evaluates a checked source program directly on dense global arrays with
//! Fortran90 semantics: the whole right-hand side of an array assignment is
//! evaluated before any element of the left-hand side is stored, `CSHIFT`
//! wraps circularly, `EOSHIFT` shifts the boundary value in. Every compiled
//! configuration (any stage subset, any PE grid, sequential or threaded)
//! must reproduce this interpreter's results exactly.

use hpf_frontend::{CExpr, CStmt, Checked};
use hpf_ir::{ArrayId, BinOp, Section, ShiftKind, SymbolTable};
use std::collections::HashMap;

/// A dense global array (row-major, 1-based logical indices).
#[derive(Clone, Debug, PartialEq)]
pub struct DenseArray {
    /// Per-dimension extents.
    pub shape: Vec<usize>,
    /// Row-major data.
    pub data: Vec<f64>,
}

impl DenseArray {
    /// Zero-filled array.
    pub fn zeros(shape: Vec<usize>) -> Self {
        let len = shape.iter().product();
        DenseArray { shape, data: vec![0.0; len] }
    }

    /// Build from a function of the 1-based global coordinates.
    pub fn from_fn(shape: Vec<usize>, f: impl Fn(&[i64]) -> f64) -> Self {
        let mut a = DenseArray::zeros(shape.clone());
        let sec = Section::new(shape.iter().map(|&e| (1i64, e as i64)).collect::<Vec<_>>());
        for p in sec.points() {
            let v = f(&p);
            a.set(&p, v);
        }
        a
    }

    fn strides(&self) -> Vec<usize> {
        let r = self.shape.len();
        let mut s = vec![1usize; r];
        for d in (0..r.saturating_sub(1)).rev() {
            s[d] = s[d + 1] * self.shape[d + 1];
        }
        s
    }

    fn index(&self, p: &[i64]) -> usize {
        let strides = self.strides();
        p.iter().zip(&strides).map(|(&i, &s)| (i - 1) as usize * s).sum()
    }

    /// Read a 1-based coordinate.
    pub fn get(&self, p: &[i64]) -> f64 {
        self.data[self.index(p)]
    }

    /// Write a 1-based coordinate.
    pub fn set(&mut self, p: &[i64], v: f64) {
        let i = self.index(p);
        self.data[i] = v;
    }
}

/// An evaluated RHS value: a scalar (broadcasts) or a section-shaped block.
#[derive(Clone, Debug)]
enum Val {
    Scalar(f64),
    /// Extents + row-major data over those extents.
    Arr(Vec<i64>, Vec<f64>),
}

/// The reference interpreter's state.
#[derive(Clone, Debug)]
pub struct Reference {
    /// Symbols of the interpreted program.
    pub symbols: SymbolTable,
    /// Global arrays by id.
    pub arrays: HashMap<ArrayId, DenseArray>,
}

impl Reference {
    /// Allocate every declared array, zero-filled.
    pub fn new(checked: &Checked) -> Self {
        let mut arrays = HashMap::new();
        for id in checked.symbols.array_ids() {
            let shape = checked.symbols.array(id).shape.0.clone();
            arrays.insert(id, DenseArray::zeros(shape));
        }
        Reference { symbols: checked.symbols.clone(), arrays }
    }

    /// Fill an array from a function of its global coordinates.
    pub fn fill(&mut self, id: ArrayId, f: impl Fn(&[i64]) -> f64) {
        let a = self.arrays.get_mut(&id).expect("declared array");
        let shape = a.shape.clone();
        *a = DenseArray::from_fn(shape, f);
    }

    /// Fill an array by name.
    pub fn fill_named(&mut self, name: &str, f: impl Fn(&[i64]) -> f64) {
        let id = self.symbols.lookup_array(name).expect("known array");
        self.fill(id, f);
    }

    /// Borrow an array by name.
    pub fn array_named(&self, name: &str) -> &DenseArray {
        let id = self.symbols.lookup_array(name).expect("known array");
        &self.arrays[&id]
    }

    /// Execute the whole program.
    pub fn run(&mut self, checked: &Checked) {
        self.exec_block(&checked.stmts);
    }

    fn exec_block(&mut self, stmts: &[CStmt]) {
        for s in stmts {
            match s {
                CStmt::Assign { lhs, section, rhs, mask, .. } => {
                    let val = self.eval(rhs);
                    match mask {
                        None => self.assign(*lhs, section, val),
                        Some(m) => {
                            let (op, a, b) = &**m;
                            let ma = self.eval(a);
                            let mb = self.eval(b);
                            self.assign_masked(*lhs, section, val, *op, ma, mb);
                        }
                    }
                }
                CStmt::Do { iters, body } => {
                    for _ in 0..*iters {
                        self.exec_block(body);
                    }
                }
            }
        }
    }

    fn assign(&mut self, lhs: ArrayId, section: &Section, val: Val) {
        let arr = self.arrays.get_mut(&lhs).expect("declared array");
        match val {
            Val::Scalar(v) => {
                for p in section.points() {
                    arr.set(&p, v);
                }
            }
            Val::Arr(extents, data) => {
                debug_assert_eq!(
                    extents,
                    (0..section.rank()).map(|d| section.extent(d)).collect::<Vec<_>>()
                );
                for (i, p) in section.points().enumerate() {
                    arr.set(&p, data[i]);
                }
            }
        }
    }

    /// Masked (`WHERE`) assignment: only elements where `a op b` holds are
    /// stored; the rest keep their previous values.
    fn assign_masked(
        &mut self,
        lhs: ArrayId,
        section: &Section,
        val: Val,
        op: hpf_ir::expr::CmpOp,
        ma: Val,
        mb: Val,
    ) {
        let arr = self.arrays.get_mut(&lhs).expect("declared array");
        let pick = |v: &Val, i: usize| match v {
            Val::Scalar(s) => *s,
            Val::Arr(_, d) => d[i],
        };
        for (i, p) in section.points().enumerate() {
            if op.apply(pick(&ma, i), pick(&mb, i)) != 0.0 {
                arr.set(&p, pick(&val, i));
            }
        }
    }

    fn eval(&self, e: &CExpr) -> Val {
        match e {
            CExpr::Const(v) => Val::Scalar(*v),
            CExpr::Scalar(id) => Val::Scalar(self.symbols.scalar(*id).value),
            CExpr::Sec { array, section, .. } => {
                let arr = &self.arrays[array];
                let data: Vec<f64> = section.points().map(|p| arr.get(&p)).collect();
                let extents = (0..section.rank()).map(|d| section.extent(d)).collect();
                Val::Arr(extents, data)
            }
            CExpr::Neg(a) => match self.eval(a) {
                Val::Scalar(v) => Val::Scalar(-v),
                Val::Arr(e, d) => Val::Arr(e, d.into_iter().map(|v| -v).collect()),
            },
            CExpr::Bin(op, a, b) => combine(*op, self.eval(a), self.eval(b)),
            CExpr::Shift { arg, shift, dim, kind, .. } => {
                let val = self.eval(arg);
                let (extents, data) = match val {
                    Val::Arr(e, d) => (e, d),
                    Val::Scalar(_) => panic!("sema rejects shifts of scalars"),
                };
                let sec = Section::new(extents.iter().map(|&e| (1i64, e)).collect::<Vec<_>>());
                let tmp = DenseArray { shape: extents.iter().map(|&e| e as usize).collect(), data };
                let n = extents[*dim];
                let out: Vec<f64> = sec
                    .points()
                    .map(|p| {
                        let mut q = p.clone();
                        q[*dim] += shift;
                        match kind {
                            ShiftKind::Circular => {
                                q[*dim] = (q[*dim] - 1).rem_euclid(n) + 1;
                                tmp.get(&q)
                            }
                            ShiftKind::EndOff(b) => {
                                if q[*dim] >= 1 && q[*dim] <= n {
                                    tmp.get(&q)
                                } else {
                                    *b
                                }
                            }
                        }
                    })
                    .collect();
                Val::Arr(extents, out)
            }
        }
    }
}

fn combine(op: BinOp, a: Val, b: Val) -> Val {
    match (a, b) {
        (Val::Scalar(x), Val::Scalar(y)) => Val::Scalar(op.apply(x, y)),
        (Val::Scalar(x), Val::Arr(e, d)) => {
            Val::Arr(e, d.into_iter().map(|v| op.apply(x, v)).collect())
        }
        (Val::Arr(e, d), Val::Scalar(y)) => {
            Val::Arr(e, d.into_iter().map(|v| op.apply(v, y)).collect())
        }
        (Val::Arr(e1, d1), Val::Arr(e2, d2)) => {
            debug_assert_eq!(e1, e2, "sema guarantees conformance");
            Val::Arr(e1, d1.into_iter().zip(d2).map(|(x, y)| op.apply(x, y)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;

    type Init = fn(&[i64]) -> f64;

    fn run_src(src: &str, init: &[(&str, Init)]) -> Reference {
        let checked = compile_source(src).unwrap();
        let mut r = Reference::new(&checked);
        for (name, f) in init {
            r.fill_named(name, f);
        }
        r.run(&checked);
        r
    }

    fn coord(p: &[i64]) -> f64 {
        (p[0] * 100 + p[1]) as f64
    }

    #[test]
    fn dense_array_indexing() {
        let mut a = DenseArray::zeros(vec![3, 4]);
        a.set(&[2, 3], 5.0);
        assert_eq!(a.get(&[2, 3]), 5.0);
        assert_eq!(a.data[4 + (3 - 1)], 5.0);
        let b = DenseArray::from_fn(vec![2, 2], |p| (p[0] + p[1]) as f64);
        assert_eq!(b.get(&[2, 2]), 4.0);
    }

    #[test]
    fn cshift_semantics() {
        let r = run_src(
            "PARAM N = 4\nREAL U(N,N), T(N,N)\nT = CSHIFT(U, SHIFT=1, DIM=1)\n",
            &[("U", coord)],
        );
        let t = r.array_named("T");
        // T(i,j) = U(i+1,j) circular.
        assert_eq!(t.get(&[1, 2]), coord(&[2, 2]));
        assert_eq!(t.get(&[4, 3]), coord(&[1, 3]));
    }

    #[test]
    fn eoshift_semantics() {
        let r = run_src(
            "PARAM N = 4\nREAL U(N,N), T(N,N)\nT = EOSHIFT(U, SHIFT=-2, DIM=2, BOUNDARY=7.5)\n",
            &[("U", coord)],
        );
        let t = r.array_named("T");
        assert_eq!(t.get(&[2, 4]), coord(&[2, 2]));
        assert_eq!(t.get(&[2, 1]), 7.5);
        assert_eq!(t.get(&[2, 2]), 7.5);
    }

    #[test]
    fn section_assignment() {
        let r =
            run_src("PARAM N = 4\nREAL U(N,N), T(N,N)\nT(2:3,2:3) = U(1:2,3:4)\n", &[("U", coord)]);
        let t = r.array_named("T");
        assert_eq!(t.get(&[2, 2]), coord(&[1, 3]));
        assert_eq!(t.get(&[3, 3]), coord(&[2, 4]));
        assert_eq!(t.get(&[1, 1]), 0.0, "outside the section untouched");
    }

    #[test]
    fn rhs_evaluated_before_assignment() {
        // In-place shift: every element must see the ORIGINAL values.
        let r = run_src(
            "PARAM N = 4\nREAL U(N)\nU = CSHIFT(U, SHIFT=1, DIM=1)\n",
            &[("U", |p| p[0] as f64)],
        );
        let u = r.array_named("U");
        assert_eq!(u.get(&[1]), 2.0);
        assert_eq!(u.get(&[4]), 1.0, "wrap uses the pre-assignment value");
    }

    #[test]
    fn scalar_broadcast_and_arithmetic() {
        let r = run_src(
            "PARAM N = 4\nREAL U(N), T(N)\nREAL C = 2.0\nT = C * U + 1 - U / 2\n",
            &[("U", |p| p[0] as f64)],
        );
        let t = r.array_named("T");
        for i in 1..=4i64 {
            assert_eq!(t.get(&[i]), 2.0 * i as f64 + 1.0 - i as f64 / 2.0);
        }
    }

    #[test]
    fn five_point_stencil_values() {
        let r = run_src(
            r#"
PARAM N = 4
REAL SRC(N,N), DST(N,N)
DST(2:N-1,2:N-1) = SRC(1:N-2,2:N-1) + SRC(2:N-1,1:N-2) &
                 + SRC(2:N-1,2:N-1) + SRC(3:N,2:N-1) + SRC(2:N-1,3:N)
"#,
            &[("SRC", coord)],
        );
        let d = r.array_named("DST");
        // DST(2,2) = SRC(1,2)+SRC(2,1)+SRC(2,2)+SRC(3,2)+SRC(2,3).
        assert_eq!(d.get(&[2, 2]), 102.0 + 201.0 + 202.0 + 302.0 + 203.0);
        assert_eq!(d.get(&[1, 1]), 0.0);
    }

    #[test]
    fn do_loop_repeats() {
        let r =
            run_src("PARAM N = 4\nREAL U(N)\nDO 3 TIMES\nU = U + 1\nENDDO\n", &[("U", |_| 0.0)]);
        assert_eq!(r.array_named("U").get(&[2]), 3.0);
    }

    #[test]
    fn nested_shift_composes() {
        let r = run_src(
            "PARAM N = 5\nREAL U(N), T(N)\nT = CSHIFT(CSHIFT(U, 2, 1), -1, 1)\n",
            &[("U", |p| p[0] as f64)],
        );
        // Net shift +1.
        let t = r.array_named("T");
        assert_eq!(t.get(&[1]), 2.0);
        assert_eq!(t.get(&[5]), 1.0);
    }
}
