//! Communication-avoiding superstep planning: deep-halo temporal tiling.
//!
//! A classic stencil schedule exchanges halos before every step — `S` steps
//! cost `S` exchange phases. A depth-`k` **superstep** instead allocates
//! halos deep enough for `k` steps, issues **one** deep exchange, then runs
//! `k` sub-steps without communicating. Each sub-step `j` (0-based) computes
//! a *trapezoidally shrinking* region: the PE's owned block expanded into
//! the ghost zone by the ghost depth later sub-steps still consume, so
//! neighbor-owned boundary cells are **redundantly recomputed** from the
//! deep halo instead of being received. The trade — `(k-1)` elided exchange
//! phases against a thin ring of recomputed points — wins whenever message
//! latency dominates, which is exactly the SP-2 regime the paper's cost
//! model describes (§2.2: large per-message software overhead).
//!
//! This module is the *planning* half: given the lowered node program and a
//! depth `k` it decides
//!
//! 1. **shape** — which program forms are superstep-able
//!    ([`SsShape`]): a program that is exactly one top-level `DO n TIMES`
//!    loop (the whole body tiles in time), or a program with no time loop
//!    at all (the driver's step loop is the time dimension, and one plan
//!    step then covers `k` logical steps);
//! 2. **eligibility** — circular overlap-shift communication only,
//!    full-space iteration-local nests (diagnosed as `SS00x` warnings; an
//!    ineligible kernel falls back to the classic `k = 1` schedule);
//! 3. **requirements** — a backward ghost-validity pass over the
//!    `k`-unrolled body with all interior communication elided, yielding
//!    each nest instance's expansion box and each array's residual deep-fill
//!    depth (for a self-updating stencil of radius `r` this is the textbook
//!    `k·r`; for a read-only input array it stays at the chain radius, and
//!    the deep fill then satisfies *every* sub-step);
//! 4. **deep schedules** — the original overlap shifts re-derived at
//!    deep-fill depth, corner-augmented RSDs included, with zero-need sides
//!    elided and duplicate `(array, dim, direction)` fills deduped;
//! 5. **coverage proof** — the depth-coordinate geometry of
//!    [`hpf_analysis::superstep`] confirms the deep fills cover every ghost
//!    cell the trapezoid reads; an uncovered witness point makes the kernel
//!    ineligible rather than silently wrong. The plan verifier's PL004 rule
//!    (see [`crate::plan_verify`]) later re-simulates the *compiled*
//!    schedule actions against the same geometry as a defense in depth.
//!
//! The execution half lives in [`crate::plan`]: a [`PlanItem::Superstep`]
//! item carries the deep-fill schedule slots, the body nests, and the
//! per-sub-step expansion boxes.
//!
//! [`PlanItem::Superstep`]: crate::plan::PlanItem

use hpf_analysis::superstep::{uncovered_ghost, FillBox};
use hpf_codegen::reads_before_def;
use hpf_ir::{ArrayId, Diagnostic, Rsd, Section, ShiftKind};
use hpf_passes::loopir::{CommOp, Instr, LoopNest, NodeItem, NodeProgram};
use hpf_passes::memopt::iteration_local;
use std::collections::HashMap;

/// SS001: the program's time structure does not tile (nested or multiple
/// time loops, or statements alongside the single time loop).
pub const SS001: &str = "SS001";
/// SS002: communication other than a circular overlap shift (full-shift
/// copies and `EOSHIFT` boundary injection re-derive per step and cannot be
/// deepened).
pub const SS002: &str = "SS002";
/// SS003: a nest iterates over a partial section — the trapezoid expansion
/// assumes the stencil formula holds over the whole array, ghosts included.
pub const SS003: &str = "SS003";
/// SS004: a nest body is not iteration-local (or reads a register before
/// defining it), so sub-step iterations cannot be replayed over an expanded
/// region.
pub const SS004: &str = "SS004";
/// SS005: a sub-step reads ghost cells of an array no overlap shift fills.
pub const SS005: &str = "SS005";
/// SS006: the derived deep fills leave a required ghost cell uncovered (a
/// coverage witness in depth coordinates is reported).
pub const SS006: &str = "SS006";
/// SS007: the time loop is shorter than the requested depth.
pub const SS007: &str = "SS007";
/// SS008: the machine's allocated halo is shallower than the deep-fill
/// depth the schedule requires (size the machine with [`superstep_halo`]).
pub const SS008: &str = "SS008";
/// SS009: the plan applies per-step double-buffer swaps, which cannot
/// interleave with the `k` sub-steps inside one superstep (used by the
/// planning layer above; never produced by [`plan_superstep`] itself).
pub const SS009: &str = "SS009";

/// Which program form the superstep tiles (see module docs).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SsShape {
    /// One top-level `DO iters TIMES` loop and nothing else: the plan keeps
    /// one step per program pass, tiling the loop into `iters / k`
    /// supersteps plus a classic remainder.
    TimeLoop {
        /// The loop's iteration count.
        iters: usize,
    },
    /// No time loop anywhere: the driver's step loop is the time dimension,
    /// so one plan step becomes one depth-`k` superstep covering `k`
    /// logical steps ([`crate::ExecPlan::logical_steps_per_step`]).
    Flat,
}

/// One deep-fill communication: an overlap shift of `|shift|` ghost layers
/// on the `shift.signum()` side of `dim`, corner-augmented along the other
/// dimensions by `rsd`.
#[derive(Clone, Debug)]
pub(crate) struct DeepFill {
    /// Array whose ghosts the fill writes.
    pub array: ArrayId,
    /// Signed depth: `sign · layers`, as `overlap_shift_plan` expects.
    pub shift: i64,
    /// Dimension of the fill.
    pub dim: usize,
    /// Corner forwarding: ghost layers of *other* dimensions the
    /// transferred band carries, available because an earlier fill in plan
    /// order already wrote them on the sender.
    pub rsd: Rsd,
}

/// A legal superstep schedule for one node program at one depth.
#[derive(Clone, Debug)]
pub(crate) struct SuperstepSchedule {
    /// The tiled program form.
    pub shape: SsShape,
    /// Sub-steps per exchange.
    pub k: usize,
    /// Deep fills, in (deduped) plan order of the original comms.
    pub deep: Vec<DeepFill>,
    /// `expansions[j][n]` = per-dimension `(below, above)` ghost expansion
    /// of the `n`-th body nest in sub-step `j` — the trapezoid.
    pub expansions: Vec<Vec<Vec<(i64, i64)>>>,
    /// Communication ops one classic pass of the body executes — the
    /// baseline the elision counter is measured against.
    pub body_comms: usize,
    /// Ghost depth the deep fills require the machine to allocate.
    pub halo: usize,
}

impl SuperstepSchedule {
    /// Exchange executions one depth-`k` superstep elides relative to `k`
    /// classic steps of the same body.
    pub fn elided(&self) -> u64 {
        (self.k * self.body_comms) as u64 - self.deep.len() as u64
    }
}

/// Ghost depth a depth-`k` superstep schedule of this program needs per
/// halo side, or `None` when the program is ineligible (callers then keep
/// their base halo and the classic schedule). `hpf-core`'s planner calls
/// this before building the machine so the subgrids are allocated deep
/// enough; `hpf-tune` calls it to price deep-`k` candidates.
pub fn superstep_halo(node: &NodeProgram, k: usize) -> Option<usize> {
    plan_superstep(node, k).ok().map(|s| s.halo)
}

/// The `SS00x` diagnostics explaining why a depth-`k` superstep schedule of
/// this program is not legal — empty when it is. What
/// [`crate::ExecPlan::superstep_diags`] reports after a fallback build.
pub fn superstep_diags(node: &NodeProgram, k: usize) -> Vec<Diagnostic> {
    plan_superstep(node, k).err().unwrap_or_default()
}

/// Plan a depth-`k` superstep schedule, or explain why there is none.
pub(crate) fn plan_superstep(
    node: &NodeProgram,
    k: usize,
) -> Result<SuperstepSchedule, Vec<Diagnostic>> {
    let (shape, body) = tile_shape(node, k)?;
    let mut diags = check_body(node, body);
    if !diags.is_empty() {
        return Err(diags);
    }
    let (expansions, residual) = backward_requirements(node, body, k);
    // Every residual ghost need must come from an array some overlap shift
    // in the body fills; a comm-less array's ghosts would stay poison.
    let filled: Vec<ArrayId> = body
        .iter()
        .filter_map(|i| match i {
            NodeItem::Comm(CommOp::Overlap { array, .. }) => Some(*array),
            _ => None,
        })
        .collect();
    for (&a, need) in residual.iter() {
        let nonzero = need.iter().any(|&(lo, hi)| lo > 0 || hi > 0);
        if nonzero && !filled.contains(&ArrayId(a)) {
            diags.push(Diagnostic::warning(
                SS005,
                format!(
                    "superstep sub-steps read ghost cells of {} that no overlap shift fills",
                    node.symbols.array(ArrayId(a)).name
                ),
            ));
        }
    }
    if !diags.is_empty() {
        return Err(diags);
    }
    let deep = derive_deep_fills(body, &residual);
    // Coverage proof: in depth coordinates, the deep fills must cover every
    // ghost cell the residual requirement describes, corners included.
    for (&a, need) in residual.iter() {
        let fills: Vec<FillBox> = deep.iter().filter(|f| f.array.0 == a).map(fill_box).collect();
        if let Some(witness) = uncovered_ghost(need, &fills) {
            diags.push(Diagnostic::warning(
                SS006,
                format!(
                    "deep fills of {} leave ghost cell at depth {:?} uncovered (need {:?})",
                    node.symbols.array(ArrayId(a)).name,
                    witness,
                    need
                ),
            ));
        }
    }
    if !diags.is_empty() {
        return Err(diags);
    }
    let halo = residual
        .values()
        .flat_map(|need| need.iter().flat_map(|&(lo, hi)| [lo, hi]))
        .max()
        .unwrap_or(0) as usize;
    let body_comms = body.iter().filter(|i| matches!(i, NodeItem::Comm(_))).count();
    Ok(SuperstepSchedule { shape, k, deep, expansions, body_comms, halo })
}

/// Decide the tiled form and the body the `k` sub-steps repeat.
fn tile_shape(node: &NodeProgram, k: usize) -> Result<(SsShape, &[NodeItem]), Vec<Diagnostic>> {
    let has_nested_loop =
        |items: &[NodeItem]| items.iter().any(|i| matches!(i, NodeItem::TimeLoop { .. }));
    match node.items.as_slice() {
        [NodeItem::TimeLoop { iters, body }] => {
            if has_nested_loop(body) {
                return Err(vec![Diagnostic::warning(
                    SS001,
                    "superstep tiling needs a single flat time loop; found a nested DO loop",
                )]);
            }
            if *iters < k {
                return Err(vec![Diagnostic::warning(
                    SS007,
                    format!("time loop runs {iters} iterations, fewer than superstep depth {k}"),
                )]);
            }
            Ok((SsShape::TimeLoop { iters: *iters }, body))
        }
        items if !has_nested_loop(items) => Ok((SsShape::Flat, items)),
        _ => Err(vec![Diagnostic::warning(
            SS001,
            "superstep tiling needs the program to be exactly one top-level DO loop \
             (or no DO loop at all); found a DO loop among other statements",
        )]),
    }
}

/// Per-item eligibility over the tiled body.
fn check_body(node: &NodeProgram, body: &[NodeItem]) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for item in body {
        match item {
            NodeItem::Comm(CommOp::FullShift { src, .. }) => diags.push(Diagnostic::warning(
                SS002,
                format!(
                    "full-shift copy of {} cannot be deepened; superstep needs overlap shifts \
                     (compile at least to the overlap stage)",
                    node.symbols.array(*src).name
                ),
            )),
            NodeItem::Comm(CommOp::Overlap { array, kind: ShiftKind::EndOff(_), .. }) => diags
                .push(Diagnostic::warning(
                    SS002,
                    format!(
                        "EOSHIFT boundary injection on {} re-derives per step and cannot be \
                         deepened",
                        node.symbols.array(*array).name
                    ),
                )),
            NodeItem::Comm(CommOp::Overlap { .. }) => {}
            NodeItem::Nest(nest) => {
                for a in stored_arrays(nest) {
                    let decl = node.symbols.array(a);
                    if nest.space != Section::full(&decl.shape) {
                        diags.push(Diagnostic::warning(
                            SS003,
                            format!(
                                "nest writes {} over partial section {:?}; trapezoid expansion \
                                 needs the stencil to hold over the full space",
                                decl.name, nest.space
                            ),
                        ));
                    }
                }
                let unit = unit_body(nest);
                let zero_stores = unit.iter().all(|i| match i {
                    Instr::Store { offsets, .. } => offsets.iter().all(|&o| o == 0),
                    _ => true,
                });
                if !zero_stores
                    || !iteration_local(unit)
                    || reads_before_def(unit)
                    || reads_before_def(&nest.body)
                {
                    diags.push(Diagnostic::warning(
                        SS004,
                        "nest body is not iteration-local with in-place stores, so its \
                         iterations cannot be replayed over an expanded region",
                    ));
                }
            }
            NodeItem::TimeLoop { .. } => unreachable!("tile_shape rejected nested loops"),
        }
    }
    diags
}

/// The semantic per-point body (the pre-jam unit body for unrolled nests).
fn unit_body(nest: &LoopNest) -> &[Instr] {
    nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body)
}

fn stored_arrays(nest: &LoopNest) -> Vec<ArrayId> {
    let mut out = Vec::new();
    for i in unit_body(nest) {
        if let Instr::Store { array, .. } = i {
            if !out.contains(array) {
                out.push(*array);
            }
        }
    }
    out
}

/// Per-array ghost-validity requirement, `(lo, hi)` layers per dimension,
/// keyed by `ArrayId.0`.
type Req = HashMap<u32, Vec<(i64, i64)>>;

/// Per-sub-step, per-nest region expansion, `(lo, hi)` layers per dimension.
type Expansions = Vec<Vec<Vec<(i64, i64)>>>;

/// The backward requirement pass (module docs, step 3): walk the
/// `k`-unrolled body in reverse with every communication elided. At a nest,
/// the expansion is the ghost depth later sub-steps still need of the
/// arrays it writes; each read at offset `o` then demands the read array's
/// ghosts out to `expansion + |o|`, and the written arrays' requirement
/// resets (the expanded sweep freshly computes their ghosts). Returns the
/// per-sub-step per-nest expansions and the residual requirement at the
/// start — the deep-fill depth per array.
fn backward_requirements(node: &NodeProgram, body: &[NodeItem], k: usize) -> (Expansions, Req) {
    let nests: Vec<&LoopNest> = body
        .iter()
        .filter_map(|i| match i {
            NodeItem::Nest(n) => Some(n),
            _ => None,
        })
        .collect();
    let mut req: Req = HashMap::new();
    let mut expansions = vec![vec![Vec::new(); nests.len()]; k];
    for j in (0..k).rev() {
        let mut n_idx = nests.len();
        for item in body.iter().rev() {
            let NodeItem::Nest(nest) = item else { continue };
            n_idx -= 1;
            let rank = nest.order.len();
            let written = stored_arrays(nest);
            // The nest's expansion: the widest ghost need of anything it
            // writes, per dimension and side.
            let mut e = vec![(0i64, 0i64); rank];
            for a in &written {
                if let Some(need) = req.get(&a.0) {
                    for d in 0..rank {
                        e[d].0 = e[d].0.max(need[d].0);
                        e[d].1 = e[d].1.max(need[d].1);
                    }
                }
            }
            expansions[j][n_idx] = e.clone();
            // The expanded sweep freshly computes the written arrays'
            // ghosts out to `e`; requirements from later sub-steps are
            // satisfied here, and the loads below re-impose this nest's
            // own needs (including self-reads of a written array).
            for a in &written {
                req.remove(&a.0);
            }
            for i in unit_body(nest) {
                let Instr::Load { array, offsets, .. } = i else { continue };
                let need = req.entry(array.0).or_insert_with(|| vec![(0, 0); rank]);
                for (d, &o) in offsets.iter().enumerate() {
                    need[d].0 = need[d].0.max(e[d].0 + (-o).max(0));
                    need[d].1 = need[d].1.max(e[d].1 + o.max(0));
                }
            }
        }
        debug_assert_eq!(n_idx, 0);
    }
    // Arrays the symbol table sizes at a different rank than the nests
    // never appear here: node programs are single-space (validated
    // upstream), so every requirement vector has the body rank.
    let _ = node;
    (expansions, req)
}

/// Derive the deep fills (module docs, step 4) from the body's comm ops in
/// plan order: deepen each overlap shift to the residual requirement on its
/// side, elide zero-need sides, dedupe repeated `(array, dim, direction)`
/// fills, and corner-augment each fill's RSD along every dimension an
/// earlier fill of the same array already wrote — the sender's freshly
/// filled ghosts forward into the corners, exactly like the classic
/// schedule's RSD corner forwarding but at deep-fill width.
fn derive_deep_fills(body: &[NodeItem], residual: &Req) -> Vec<DeepFill> {
    let mut deep: Vec<DeepFill> = Vec::new();
    for item in body {
        let NodeItem::Comm(CommOp::Overlap { array, shift, dim, .. }) = item else { continue };
        let Some(need) = residual.get(&array.0) else { continue };
        let pos = *shift > 0;
        let depth = if pos { need[*dim].1 } else { need[*dim].0 };
        if depth == 0 {
            continue;
        }
        if deep.iter().any(|f| f.array == *array && f.dim == *dim && (f.shift > 0) == pos) {
            continue;
        }
        let rank = need.len();
        let mut ext = vec![(0u32, 0u32); rank];
        for e in 0..rank {
            if e == *dim {
                continue;
            }
            let lo_done = deep.iter().any(|f| f.array == *array && f.dim == e && f.shift < 0);
            let hi_done = deep.iter().any(|f| f.array == *array && f.dim == e && f.shift > 0);
            ext[e] = (
                if lo_done { need[e].0 as u32 } else { 0 },
                if hi_done { need[e].1 as u32 } else { 0 },
            );
        }
        deep.push(DeepFill {
            array: *array,
            shift: if pos { depth } else { -depth },
            dim: *dim,
            rsd: Rsd { ext },
        });
    }
    deep
}

/// A deep fill as a depth-coordinate box for the coverage proof.
fn fill_box(f: &DeepFill) -> FillBox {
    let rank = f.rsd.ext.len();
    (0..rank)
        .map(|d| {
            if d == f.dim {
                let depth = f.shift.unsigned_abs() as i64;
                if f.shift > 0 {
                    (1, depth)
                } else {
                    (-depth, -1)
                }
            } else {
                (-(f.rsd.ext[d].0 as i64), f.rsd.ext[d].1 as i64)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};

    const JACOBI_LOOP: &str = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 12 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;

    const JACOBI_FLAT: &str = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
"#;

    fn node(src: &str) -> NodeProgram {
        let checked = compile_source(src).unwrap();
        compile(&checked, CompileOptions::upto(Stage::MemOpt)).node
    }

    #[test]
    fn jacobi_time_loop_tiles_with_kr_halo() {
        let n = node(JACOBI_LOOP);
        for k in [2usize, 4] {
            let s = plan_superstep(&n, k).expect("eligible");
            assert_eq!(s.shape, SsShape::TimeLoop { iters: 12 });
            assert_eq!(s.halo, k, "radius-1 chain needs k·r ghost layers");
            assert_eq!(s.body_comms, 4);
            assert_eq!(s.deep.len(), 4, "four deep fills, none elided");
            assert_eq!(s.elided(), (k as u64 - 1) * 4);
            // Trapezoid: both nests of sub-step j expand by (k-1-j).
            for (j, subs) in s.expansions.iter().enumerate() {
                let want = (k - 1 - j) as i64;
                for e in subs {
                    assert!(e.iter().all(|&(lo, hi)| lo == want && hi == want), "{j}: {e:?}");
                }
            }
        }
    }

    #[test]
    fn flat_program_tiles_as_driver_stepped() {
        let n = node(JACOBI_FLAT);
        let s = plan_superstep(&n, 4).expect("eligible");
        assert_eq!(s.shape, SsShape::Flat);
        assert_eq!(s.halo, 4);
    }

    #[test]
    fn depth_one_is_trivially_legal() {
        let n = node(JACOBI_LOOP);
        let s = plan_superstep(&n, 1).expect("k=1 always eligible for eligible kernels");
        assert_eq!(s.halo, 1);
        assert_eq!(s.elided(), 0);
        assert!(s.expansions[0].iter().all(|e| e.iter().all(|&x| x == (0, 0))));
    }

    #[test]
    fn deep_fills_carry_corner_rsds() {
        let n = node(JACOBI_LOOP);
        let s = plan_superstep(&n, 2).unwrap();
        // Later fills must forward the dimensions earlier fills wrote.
        let last = s.deep.last().unwrap();
        let other: usize = 1 - last.dim;
        assert_eq!(last.rsd.ext[other], (2, 2), "corner augmentation at deep width");
        assert_eq!(s.deep[0].rsd.ext, vec![(0, 0), (0, 0)], "first fill has nothing to forward");
    }

    #[test]
    fn full_shift_stage_is_ineligible() {
        let checked = compile_source(JACOBI_LOOP).unwrap();
        let n = compile(&checked, CompileOptions::upto(Stage::Original)).node;
        let diags = plan_superstep(&n, 4).unwrap_err();
        assert!(diags.iter().any(|d| d.code == SS002), "{diags:?}");
        assert_eq!(superstep_halo(&n, 4), None);
    }

    #[test]
    fn eoshift_is_ineligible() {
        let src = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
T = EOSHIFT(U,1,1) + EOSHIFT(U,-1,1)
U = T
"#;
        let n = node(src);
        let diags = plan_superstep(&n, 2).unwrap_err();
        assert!(diags.iter().any(|d| d.code == SS002), "{diags:?}");
    }

    #[test]
    fn partial_space_nest_is_ineligible() {
        let src = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
T(2:15,2:15) = U(1:14,2:15) + U(3:16,2:15) + U(2:15,1:14) + U(2:15,3:16)
"#;
        let n = node(src);
        let diags = plan_superstep(&n, 2).unwrap_err();
        assert!(diags.iter().any(|d| d.code == SS003), "{diags:?}");
    }

    #[test]
    fn short_time_loop_is_ineligible() {
        let n = node(JACOBI_LOOP);
        let diags = plan_superstep(&n, 16).unwrap_err();
        assert!(diags.iter().any(|d| d.code == SS007), "{diags:?}");
    }

    #[test]
    fn read_only_input_keeps_chain_radius() {
        // P depends on U through a radius-1 chain but U is never written:
        // the requirement on U cannot grow with k, so the halo stays at the
        // chain radius and deep fills satisfy every sub-step.
        let src = r#"
PARAM N = 16
REAL U(N,N), P(N,N)
P = CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2)
"#;
        let n = node(src);
        let s = plan_superstep(&n, 8).expect("eligible");
        assert_eq!(s.halo, 1, "requirement on a read-only array is k-independent");
        assert_eq!(s.elided(), 7 * s.body_comms as u64);
        assert!(s
            .expansions
            .iter()
            .all(|subs| subs.iter().all(|e| e.iter().all(|&x| x == (0, 0)))));
    }
}
