//! Result comparison utilities.

/// Maximum absolute element-wise difference between two equal-length slices.
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "length mismatch: {} vs {}", a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f64::max)
}

/// Panic with a helpful message when two results differ by more than `tol`.
pub fn assert_close(got: &[f64], want: &[f64], tol: f64, what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert!((g - w).abs() <= tol, "{what}: element {i} differs: got {g}, want {w} (tol {tol})");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_basics() {
        assert_eq!(max_abs_diff(&[1.0, 2.0], &[1.0, 2.5]), 0.5);
        assert_eq!(max_abs_diff(&[], &[]), 0.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn diff_length_mismatch_panics() {
        max_abs_diff(&[1.0], &[]);
    }

    #[test]
    fn close_passes_within_tol() {
        assert_close(&[1.0, 2.0], &[1.0, 2.0 + 1e-12], 1e-9, "x");
    }

    #[test]
    #[should_panic(expected = "element 1 differs")]
    fn close_fails_outside_tol() {
        assert_close(&[1.0, 2.0], &[1.0, 3.0], 1e-9, "x");
    }
}
