#![allow(clippy::needless_range_loop)] // index-based dimension math reads clearer here
#![warn(missing_docs)]

//! # hpf-exec — executors for the lowered node program
//!
//! Four ways to run a stencil kernel, all agreeing bit-for-bit:
//!
//! * [`mod@reference`] — the correctness oracle: a direct sequential interpreter
//!   of the checked source program on dense global arrays, implementing
//!   Fortran90 array-statement semantics (`CSHIFT`/`EOSHIFT`, sections,
//!   full-RHS-before-assignment);
//! * [`seq`] — the sequential machine executor: runs the node program on the
//!   `hpf-runtime` machine simulator one PE at a time, with all
//!   communication performed through the shared schedules;
//! * [`par`] — the SPMD executor: one OS thread per PE, message passing over
//!   channels, using the *same* deterministic schedules, so results are
//!   bitwise identical to the sequential engine;
//! * [`plan`] — the persistent-schedule driver for time-stepped sweeps: an
//!   [`ExecPlan`] compiles every communication operation once against the
//!   allocated subgrids (flat pack/unpack index lists, pooled buffers) and
//!   then steps the node program any number of times on the configured
//!   engine with zero per-step setup.
//!
//! Plans are described by one [`ExecConfig`] — engine ([`Engine`]), nest
//! backend ([`Backend`]), per-PE event tracing, invariant checking — built
//! with [`ExecPlan::build`] and stepped with [`ExecPlan::step`].
//! Orthogonally to the engine choice, every machine executor can evaluate
//! loop nests with the tree interpreter or with compiled bytecode kernels —
//! see [`Backend`] and the `*_with` entry points. Both backends are bitwise
//! identical.

pub mod backend;
pub mod config;
pub(crate) mod metrics;
pub mod nest;
pub mod par;
pub mod plan;
pub mod plan_verify;
pub mod reference;
pub mod seq;
pub mod superstep;
mod validate;
pub mod verify;

pub use backend::Backend;
pub use config::{Engine, ExecConfig};
pub use par::{execute_par, execute_par_with};
pub use plan::ExecPlan;
pub use reference::{DenseArray, Reference};
pub use seq::{allocate, execute_seq, execute_seq_with};
pub use superstep::{superstep_diags, superstep_halo};
pub use verify::{assert_close, max_abs_diff};
