//! Subgrid loop-nest execution on one PE.
//!
//! The nest's iteration space is global; each PE intersects it with the
//! region it owns (SPMD bounds reduction, paper §2.2) and runs the
//! register-machine body over the surviving local points. Bodies are
//! "compiled" per PE into flat-index form: every load/store becomes a base
//! index plus a precomputed delta, so the interpreter does no per-access
//! coordinate arithmetic.

use hpf_ir::expr::CmpOp;
use hpf_ir::{BinOp, ScalarId};
use hpf_passes::loopir::{Instr, LoopNest, Reg};
use hpf_runtime::PeState;

/// A body instruction with resolved scalar values and flattened access
/// deltas for this PE's subgrid layout.
#[derive(Clone, Debug)]
enum CInstr {
    Const(Reg, f64),
    Load(Reg, u32, i64),
    Store(u32, i64, Reg),
    Bin(BinOp, Reg, Reg, Reg),
    Neg(Reg, Reg),
    Copy(Reg, Reg),
    Cmp(CmpOp, Reg, Reg, Reg),
    Select(Reg, Reg, Reg, Reg),
}

fn compile_body(body: &[Instr], strides: &[usize], scalars: &[f64]) -> Vec<CInstr> {
    body.iter()
        .map(|i| match i {
            Instr::Const { dst, value } => CInstr::Const(*dst, *value),
            Instr::LoadScalar { dst, id } => CInstr::Const(*dst, scalars[id.0 as usize]),
            Instr::Load { dst, array, offsets } => {
                CInstr::Load(*dst, array.0, delta(offsets, strides))
            }
            Instr::Store { array, offsets, src } => {
                CInstr::Store(array.0, delta(offsets, strides), *src)
            }
            Instr::Bin { op, dst, a, b } => CInstr::Bin(*op, *dst, *a, *b),
            Instr::Neg { dst, src } => CInstr::Neg(*dst, *src),
            Instr::Copy { dst, src } => CInstr::Copy(*dst, *src),
            Instr::Cmp { op, dst, a, b } => CInstr::Cmp(*op, *dst, *a, *b),
            Instr::Select { dst, c, t, e } => CInstr::Select(*dst, *c, *t, *e),
        })
        .collect()
}

fn delta(offsets: &[i64], strides: &[usize]) -> i64 {
    offsets.iter().zip(strides).map(|(&o, &s)| o * s as i64).sum()
}

/// Resolve a `ScalarId`-indexed value table from the symbol table.
pub fn scalar_values(symbols: &hpf_ir::SymbolTable) -> Vec<f64> {
    symbols.scalar_ids().map(|id| symbols.scalar(id).value).collect()
}

/// This PE's local iteration bounds for a nest: the intersection of the
/// global iteration space with the owned region, translated to local
/// coordinates (inclusive). `None` when the PE owns nothing of the space.
/// Mirrors the bounds reduction of [`exec_nest`] and of the bytecode
/// compiler — the split-phase engine derives its interior/boundary regions
/// from these.
pub fn nest_local_bounds(pe: &PeState, nest: &LoopNest) -> Option<(Vec<i64>, Vec<i64>)> {
    let probe = nest.body.iter().find_map(|i| match i {
        Instr::Load { array, .. } | Instr::Store { array, .. } => Some(*array),
        _ => None,
    })?;
    let sub = pe.subgrids.get(probe.0 as usize)?.as_ref()?;
    let (owned, ext) = (&sub.owned, &sub.ext);
    if ext.contains(&0) {
        return None;
    }
    let rank = ext.len();
    let mut lo = vec![0i64; rank];
    let mut hi = vec![0i64; rank];
    for d in 0..rank {
        let (olo, _) = owned.dim(d);
        let (slo, shi) = nest.space.dim(d);
        lo[d] = (slo - olo + 1).max(1);
        hi[d] = (shi - olo + 1).min(ext[d] as i64);
        if hi[d] < lo[d] {
            return None;
        }
    }
    Some((lo, hi))
}

/// Execute one loop nest on one PE. `scalars` is the value table from
/// [`scalar_values`].
pub fn exec_nest(pe: &mut PeState, nest: &LoopNest, scalars: &[f64]) {
    let Some((lo, hi)) = nest_local_bounds(pe, nest) else {
        return; // this PE owns nothing of the space
    };
    exec_nest_over(pe, nest, scalars, &lo, &hi);
}

/// Execute one loop nest over a sub-range of this PE's local iteration
/// space: `region[d]` is an inclusive local index range, clipped against
/// the PE's bounds. The interpreter twin of
/// `hpf_codegen::exec_compiled_range`; counter accounting matches
/// [`exec_nest`] piecewise for factor-aligned tilings (see
/// `hpf_analysis::overlap`).
pub fn exec_nest_range(pe: &mut PeState, nest: &LoopNest, scalars: &[f64], region: &[(i64, i64)]) {
    let Some((mut lo, mut hi)) = nest_local_bounds(pe, nest) else {
        return;
    };
    debug_assert_eq!(region.len(), lo.len());
    for (d, &(rlo, rhi)) in region.iter().enumerate() {
        lo[d] = lo[d].max(rlo);
        hi[d] = hi[d].min(rhi);
        if hi[d] < lo[d] {
            return;
        }
    }
    exec_nest_over(pe, nest, scalars, &lo, &hi);
}

/// Execute one loop nest over this PE's local iteration space *expanded*
/// into the ghost region: dimension `d` gains `expand[d].0` points below
/// the owned block and `expand[d].1` above, clamped to allocated storage
/// (`1-halo ..= ext+halo`). The superstep engine's trapezoid sweeps run
/// through here — the expanded points redundantly recompute neighbor-owned
/// cells from deep-halo data, writing the results into this PE's own ghost
/// storage so later sub-steps can read them without communicating. Callers
/// must guarantee (superstep legality + PL004) that every read from the
/// expanded region stays inside allocated storage. Returns the number of
/// points beyond the unexpanded bounds that were computed (the redundant
/// work the cost model charges).
pub fn exec_nest_expanded(
    pe: &mut PeState,
    nest: &LoopNest,
    scalars: &[f64],
    expand: &[(i64, i64)],
) -> u64 {
    let Some((lo, hi)) = nest_local_bounds(pe, nest) else {
        return 0;
    };
    let (lo_x, hi_x) = expand_bounds(pe, nest, &lo, &hi, expand);
    let owned: u64 = lo.iter().zip(&hi).map(|(&l, &h)| (h - l + 1) as u64).product();
    let total: u64 = lo_x.iter().zip(&hi_x).map(|(&l, &h)| (h - l + 1) as u64).product();
    exec_nest_over(pe, nest, scalars, &lo_x, &hi_x);
    total - owned
}

/// The storage-clamped expanded bounds [`exec_nest_expanded`] runs over
/// (shared with the bytecode twin so both backends compute the identical
/// region). Local frame: owned cells `1..=ext`, ghosts out to `±halo`.
pub fn expand_bounds(
    pe: &PeState,
    nest: &LoopNest,
    lo: &[i64],
    hi: &[i64],
    expand: &[(i64, i64)],
) -> (Vec<i64>, Vec<i64>) {
    let probe = nest
        .body
        .iter()
        .find_map(|i| match i {
            Instr::Load { array, .. } | Instr::Store { array, .. } => Some(*array),
            _ => None,
        })
        .expect("nest bodies access at least one array");
    let sub = pe.subgrids[probe.0 as usize].as_ref().expect("allocated");
    let halo = sub.halo as i64;
    let lo_x: Vec<i64> = lo.iter().zip(expand).map(|(&l, &(e, _))| (l - e).max(1 - halo)).collect();
    let hi_x: Vec<i64> = hi
        .iter()
        .zip(expand)
        .enumerate()
        .map(|(d, (&h, &(_, e)))| (h + e).min(sub.ext[d] as i64 + halo))
        .collect();
    (lo_x, hi_x)
}

/// The interpreter body behind [`exec_nest`] / [`exec_nest_range`]: run the
/// register machine over the box `lo..=hi` (local, inclusive). Jammed/unit
/// grouping is decided against these bounds.
fn exec_nest_over(pe: &mut PeState, nest: &LoopNest, scalars: &[f64], lo: &[i64], hi: &[i64]) {
    let probe = nest
        .body
        .iter()
        .find_map(|i| match i {
            Instr::Load { array, .. } | Instr::Store { array, .. } => Some(*array),
            _ => None,
        })
        .expect("nest bodies access at least one array");
    let (strides, halo) = {
        let sub = pe.subgrid(probe);
        (sub.strides().to_vec(), sub.halo)
    };
    let rank = strides.len();

    let jammed = compile_body(&nest.body, &strides, scalars);
    let unit = nest.unroll.as_ref().map(|u| compile_body(&u.unit_body, &strides, scalars));

    // Flat base index of local point `lo` and per-dimension index steps.
    let base_of = |point: &[i64]| -> i64 {
        point.iter().zip(&strides).map(|(&l, &s)| (l + halo as i64 - 1) * s as i64).sum()
    };

    let max_regs = nest.regs.max(nest.unroll.as_ref().map_or(0, |u| u.unit_regs));
    let mut regs = vec![0.0f64; max_regs.max(1)];

    // Counters (bulk-updated at the end).
    let mut jammed_execs = 0u64;
    let mut unit_execs = 0u64;

    // Iterate the loops in `order`, outermost first. The unrolled loop (if
    // any) is order[0] with the given factor; remainder points run the unit
    // body.
    let order = &nest.order;
    debug_assert_eq!(order.len(), rank);
    let (unroll_dim, factor) = match &nest.unroll {
        Some(u) => {
            debug_assert_eq!(u.dim, order[0], "unroll applies to the outermost loop");
            (u.dim, u.factor as i64)
        }
        None => (order[0], 1),
    };

    // Odometer over the non-outermost loops.
    let inner_dims: Vec<usize> = order[1..].to_vec();
    let mut point = lo.to_vec();
    let d0 = unroll_dim;
    let mut i = lo[d0];
    while i <= hi[d0] {
        let use_jammed = i + factor - 1 <= hi[d0];
        let body = if use_jammed { &jammed } else { unit.as_ref().unwrap_or(&jammed) };
        let step = if use_jammed { factor } else { 1 };
        point[d0] = i;
        // Iterate the inner loops for this outer index.
        for d in &inner_dims {
            point[*d] = lo[*d];
        }
        'outer: loop {
            let base = base_of(&point);
            exec_body(pe, body, base, &mut regs);
            if use_jammed {
                jammed_execs += 1;
            } else {
                unit_execs += 1;
            }
            // Advance the inner odometer (last of `order` fastest).
            for idx in (0..inner_dims.len()).rev() {
                let d = inner_dims[idx];
                point[d] += 1;
                if point[d] <= hi[d] {
                    continue 'outer;
                }
                point[d] = lo[d];
            }
            break;
        }
        i += step;
    }

    // Bulk counters.
    let count = |body: &[Instr]| {
        let loads = body.iter().filter(|x| matches!(x, Instr::Load { .. })).count() as u64;
        let stores = body.iter().filter(|x| matches!(x, Instr::Store { .. })).count() as u64;
        let flops =
            body.iter().filter(|x| matches!(x, Instr::Bin { .. } | Instr::Neg { .. })).count()
                as u64;
        (loads, stores, flops)
    };
    let (jl, js, jf) = count(&nest.body);
    let (ul, us, uf) = nest.unroll.as_ref().map(|u| count(&u.unit_body)).unwrap_or((0, 0, 0));
    let s = &mut pe.stats;
    s.loads += jammed_execs * jl + unit_execs * ul;
    s.stores += jammed_execs * js + unit_execs * us;
    s.flops += jammed_execs * jf + unit_execs * uf;
    s.iters += jammed_execs + unit_execs;
    // Stride penalty: the innermost loop should run over the
    // storage-contiguous (last) dimension; otherwise every load walks a
    // large stride (what loop permutation fixes).
    if *order.last().unwrap() != rank - 1 && rank > 1 {
        s.strided_loads += jammed_execs * jl + unit_execs * ul;
    }
}

#[inline]
fn exec_body(pe: &mut PeState, body: &[CInstr], base: i64, regs: &mut [f64]) {
    for instr in body {
        match instr {
            CInstr::Const(d, v) => regs[*d as usize] = *v,
            CInstr::Load(d, arr, delta) => {
                let sub = pe.subgrids[*arr as usize].as_ref().expect("allocated");
                regs[*d as usize] = sub.raw()[(base + delta) as usize];
            }
            CInstr::Store(arr, delta, src) => {
                let v = regs[*src as usize];
                let sub = pe.subgrids[*arr as usize].as_mut().expect("allocated");
                sub.raw_mut()[(base + delta) as usize] = v;
            }
            CInstr::Bin(op, d, a, b) => {
                regs[*d as usize] = op.apply(regs[*a as usize], regs[*b as usize]);
            }
            CInstr::Neg(d, a) => regs[*d as usize] = -regs[*a as usize],
            CInstr::Copy(d, a) => regs[*d as usize] = regs[*a as usize],
            CInstr::Cmp(op, d, a, b) => {
                regs[*d as usize] = op.apply(regs[*a as usize], regs[*b as usize]);
            }
            CInstr::Select(d, c, t, e) => {
                regs[*d as usize] =
                    if regs[*c as usize] != 0.0 { regs[*t as usize] } else { regs[*e as usize] };
            }
        }
    }
}

/// Suppress unused warning for ScalarId re-export path.
#[allow(dead_code)]
fn _unused(_: ScalarId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_ir::{ArrayDecl, ArrayId, Distribution, Section, Shape};
    use hpf_passes::loopir::Unroll;
    use hpf_runtime::{Machine, MachineConfig};

    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        m.alloc(U, &ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2))).unwrap();
        m.alloc(T, &ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2))).unwrap();
        m.fill(U, |p| (p[0] * 100 + p[1]) as f64);
        m
    }

    fn copy_nest(space: Section, offsets: Vec<i64>) -> LoopNest {
        LoopNest {
            space,
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: U, offsets },
                Instr::Store { array: T, offsets: vec![0, 0], src: 0 },
            ],
            regs: 1,
            unroll: None,
        }
    }

    #[test]
    fn interior_copy_respects_spmd_bounds() {
        let mut m = machine();
        let nest = copy_nest(Section::new([(2, 7), (2, 7)]), vec![0, 0]);
        for pe in 0..4 {
            exec_nest(&mut m.pes[pe], &nest, &[]);
        }
        assert_eq!(m.get(T, &[2, 2]), 202.0);
        assert_eq!(m.get(T, &[7, 7]), 707.0);
        assert_eq!(m.get(T, &[1, 1]), 0.0, "outside the space untouched");
        assert_eq!(m.get(T, &[8, 4]), 0.0);
        // Each PE computed a 3x3 chunk: loads counted.
        let agg = m.stats();
        assert_eq!(agg.total().loads, 36);
        assert_eq!(agg.total().stores, 36);
        assert_eq!(agg.total().iters, 36);
    }

    #[test]
    fn offset_load_reads_halo() {
        let mut m = machine();
        m.overlap_shift(U, 1, 0, None, hpf_ir::ShiftKind::Circular).unwrap();
        m.reset_stats();
        let nest = copy_nest(Section::new([(1, 8), (1, 8)]), vec![1, 0]);
        for pe in 0..4 {
            exec_nest(&mut m.pes[pe], &nest, &[]);
        }
        // T(i,j) = U(i+1,j), circular through the halo.
        assert_eq!(m.get(T, &[4, 2]), 502.0, "cross-PE row via halo");
        assert_eq!(m.get(T, &[8, 3]), 103.0, "global wrap via halo");
    }

    #[test]
    fn scalars_resolved_in_body() {
        let mut m = machine();
        let nest = LoopNest {
            space: Section::new([(1, 8), (1, 8)]),
            order: vec![0, 1],
            body: vec![
                Instr::LoadScalar { dst: 0, id: hpf_ir::ScalarId(0) },
                Instr::Load { dst: 1, array: U, offsets: vec![0, 0] },
                Instr::Bin { op: BinOp::Mul, dst: 2, a: 0, b: 1 },
                Instr::Store { array: T, offsets: vec![0, 0], src: 2 },
            ],
            regs: 3,
            unroll: None,
        };
        for pe in 0..4 {
            exec_nest(&mut m.pes[pe], &nest, &[2.5]);
        }
        assert_eq!(m.get(T, &[3, 4]), 2.5 * 304.0);
        assert_eq!(m.stats().total().flops, 64);
    }

    #[test]
    fn unrolled_nest_covers_all_points_with_remainder() {
        let mut m = machine();
        // Space of 7 rows: factor 2 leaves a remainder row on some PEs.
        let mut nest = copy_nest(Section::new([(1, 7), (1, 8)]), vec![0, 0]);
        let unit = nest.body.clone();
        // Jam by hand: factor 2.
        let mut jammed = unit.clone();
        let mut second: Vec<Instr> = unit.to_vec();
        for i in &mut second {
            i.remap(&mut |r| r + 1);
            i.shift_dim(0, 1);
        }
        jammed.extend(second);
        nest.body = jammed;
        nest.regs = 2;
        nest.unroll = Some(Unroll { dim: 0, factor: 2, unit_body: unit, unit_regs: 1 });
        for pe in 0..4 {
            exec_nest(&mut m.pes[pe], &nest, &[]);
        }
        for i in 1..=7i64 {
            for j in 1..=8i64 {
                assert_eq!(m.get(T, &[i, j]), (i * 100 + j) as f64, "at ({i},{j})");
            }
        }
        assert_eq!(m.get(T, &[8, 1]), 0.0);
        // Loads: 7*8 = 56 points, one load each (jammed counts 2).
        assert_eq!(m.stats().total().loads, 56);
    }

    #[test]
    fn strided_order_counts_penalty() {
        let mut m = machine();
        let mut nest = copy_nest(Section::new([(1, 8), (1, 8)]), vec![0, 0]);
        nest.order = vec![1, 0]; // innermost = dim 0: strided for row-major
        for pe in 0..4 {
            exec_nest(&mut m.pes[pe], &nest, &[]);
        }
        let s = m.stats().total();
        assert_eq!(s.strided_loads, s.loads);
        // Natural order: no penalty.
        m.reset_stats();
        let nest2 = copy_nest(Section::new([(1, 8), (1, 8)]), vec![0, 0]);
        for pe in 0..4 {
            exec_nest(&mut m.pes[pe], &nest2, &[]);
        }
        assert_eq!(m.stats().total().strided_loads, 0);
    }

    #[test]
    fn expanded_nest_computes_ghost_points_and_counts_them() {
        let mut m = machine();
        // Full-space copy expanded by the halo depth on every side: each
        // PE's 4x4 block grows to 6x6 (halo 1), so 20 points per PE are
        // redundant ghost-region recomputation.
        let nest = copy_nest(Section::new([(1, 8), (1, 8)]), vec![0, 0]);
        for pe in 0..4 {
            let redundant = exec_nest_expanded(&mut m.pes[pe], &nest, &[], &[(1, 1), (1, 1)]);
            assert_eq!(redundant, 36 - 16);
        }
        // Owned results match the unexpanded sweep.
        for i in 1..=8i64 {
            for j in 1..=8i64 {
                assert_eq!(m.get(T, &[i, j]), (i * 100 + j) as f64, "at ({i},{j})");
            }
        }
        assert_eq!(m.stats().total().iters, 4 * 36, "expanded points all counted");
        // Zero expansion is exactly exec_nest.
        let mut m2 = machine();
        for pe in 0..4 {
            assert_eq!(exec_nest_expanded(&mut m2.pes[pe], &nest, &[], &[(0, 0), (0, 0)]), 0);
        }
        assert_eq!(m2.stats().total().iters, 64);
    }

    #[test]
    fn empty_intersection_is_noop() {
        let mut m = machine();
        let nest = copy_nest(Section::new([(1, 2), (1, 2)]), vec![0, 0]);
        // PE 3 owns (5:8,5:8): no intersection.
        exec_nest(&mut m.pes[3], &nest, &[]);
        assert_eq!(m.pes[3].stats.loads, 0);
    }
}
