//! The plan-level race checker: a happens-before analysis over the step
//! program that machine-checks the split-phase overlap engine's ordering
//! assumptions before any worker thread runs.
//!
//! For every [Overlap window](crate::plan::PlanItem::Overlap) the checker
//! reconstructs the per-PE event chain the overlapped engine executes —
//! post (with dependency-barrier drains), pre-drain, interior sweep, quiet
//! drain of in-flight receives, boundary strips — and verifies three
//! obligations, each reported as a standard `Diagnostic`:
//!
//! - **PL001 — interior/receive disjointness.** On every split PE, no
//!   receive left in flight across the interior sweep may write a cell the
//!   interior reads. The read set is the interior box expanded by the
//!   nest's per-dimension read radii, re-derived here from the unit body's
//!   load/store offsets (not taken from the fuser); the write set is each
//!   in-flight schedule's cross-PE unpack regions. Geometric
//!   [`regions_intersect`] decides. An in-flight message sits in the stash
//!   until drained, so the hazard is staleness: the interior would consume
//!   pre-exchange ghost values the post-interior drain then overwrites.
//! - **PL002 — drain order under corner forwarding.** When schedule `c`'s
//!   sends read ghost cells an earlier schedule `e`'s receives write
//!   ([`CompiledComm::depends_on`]), `e` must be fully drained before `c`
//!   posts — i.e. some dependency barrier must fire in between. Posting
//!   `c` early would pack stale corner values.
//! - **PL003 — buffer-pool aliasing.** A schedule's pooled message buffers
//!   are single-occupancy: the same schedule slot must not be posted again
//!   while a previous post is still in flight (no barrier in between).
//!
//! [Superstep items](crate::plan::PlanItem::Superstep) carry a fourth
//! obligation:
//!
//! - **PL004 — trapezoid coverage.** For every PE, a forward simulation in
//!   ghost-depth coordinates replays the superstep: the deep-fill
//!   schedules' *compiled* unpack/fill regions establish each array's
//!   valid ghost boxes, then every sub-step's reads (expansion plus
//!   per-array read radii, re-derived from the unit body — not taken from
//!   the planner) must be covered before its stores reset the written
//!   array's validity to the freshly computed box. An uncovered ghost
//!   point means a sub-step would consume stale or poison halo data. This
//!   independently re-checks the geometry `crate::superstep`'s planner
//!   proved, but against the compiled schedules rather than the plan.
//!
//! Blocking items need no checking — a plain [`PlanItem::Comm`] completes
//! before the next item starts, and non-split PEs inside a window drain
//! everything before their nest. The checker is wired into
//! [`ExecPlan::build`](crate::ExecPlan::build) together with the bytecode
//! verifier (`hpf_codegen::verify`): debug and checked builds verify every
//! plan; checked builds fail hard on any diagnostic, unchecked builds
//! demote the offending kernel to the interpreter or the offending window
//! to the blocking comm-then-nest path.

use crate::plan::{ExecPlan, PlanItem};
use hpf_analysis::superstep::{uncovered_ghost, FillBox, GhostNeed};
use hpf_codegen::CompiledNest;
use hpf_ir::diag::Diagnostic;
use hpf_passes::loopir::{Instr, LoopNest};
use hpf_runtime::schedule::{regions_intersect, CommAction};
use hpf_runtime::{CompiledComm, RtError};
use std::collections::HashMap;

/// An Overlap window's interior sweep may read a cell an in-flight receive
/// writes.
pub const PL001: &str = "PL001";
/// A schedule posts before a schedule it depends on (corner forwarding)
/// has drained.
pub const PL002: &str = "PL002";
/// A schedule's pooled buffers are posted again while still in flight.
pub const PL003: &str = "PL003";
/// A superstep sub-step reads a ghost cell neither the deep fill nor an
/// earlier sub-step's expanded sweep wrote — the trapezoid would consume
/// stale (or poison) halo data.
pub const PL004: &str = "PL004";

impl ExecPlan {
    /// Run the plan-level race checker over the whole step program,
    /// returning every violated obligation (empty = the plan's overlap
    /// windows are proven race-free). Kernel-level (`BV*`) obligations are
    /// covered separately by `CompiledNest::verify`; [`ExecPlan::verify`]
    /// reports both families.
    pub fn verify(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        verify_items(&self.items, &self.scheds, &mut out);
        for item in &self.items {
            collect_kernel_diags(item, &mut out);
        }
        out
    }

    /// Corrupt the first window that has a dependency barrier by clearing
    /// all its barriers — the drain-reorder fault for the mutation-kill
    /// suite (PL002). Returns `false` when the plan has no such window.
    #[doc(hidden)]
    pub fn corrupt_clear_barriers(&mut self) -> bool {
        // The recursive `if walk(body)` cannot become a match guard:
        // guards only get a shared borrow and `walk` mutates.
        #[allow(clippy::collapsible_match)]
        fn walk(items: &mut [PlanItem]) -> bool {
            for item in items {
                match item {
                    PlanItem::Overlap { barriers, .. } if barriers.contains(&true) => {
                        barriers.iter_mut().for_each(|b| *b = false);
                        return true;
                    }
                    PlanItem::TimeLoop { body, .. } => {
                        if walk(body) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        walk(&mut self.items)
    }

    /// Corrupt the first window that overlaps anything by widening every
    /// split PE's interior box, so the interior sweep reads cells the
    /// in-flight receives write (PL001). Returns `false` when no window
    /// keeps a receive in flight.
    #[doc(hidden)]
    pub fn corrupt_widen_interior(&mut self) -> bool {
        // See corrupt_clear_barriers on why this is not a match guard.
        #[allow(clippy::collapsible_match)]
        fn walk(items: &mut [PlanItem]) -> bool {
            for item in items {
                match item {
                    PlanItem::Overlap { pre_drain, splits, .. }
                        if pre_drain.contains(&false) && splits.iter().any(|s| s.is_some()) =>
                    {
                        for split in splits.iter_mut().flatten() {
                            for r in &mut split.interior {
                                r.0 -= 8;
                                r.1 += 8;
                            }
                        }
                        return true;
                    }
                    PlanItem::TimeLoop { body, .. } => {
                        if walk(body) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        walk(&mut self.items)
    }

    /// Corrupt the first window by posting its first schedule twice with no
    /// barrier in between — the buffer-pool aliasing fault (PL003).
    /// Returns `false` when the plan has no window.
    #[doc(hidden)]
    pub fn corrupt_duplicate_post(&mut self) -> bool {
        // See corrupt_clear_barriers on why this is not a match guard.
        #[allow(clippy::collapsible_match)]
        fn walk(items: &mut [PlanItem]) -> bool {
            for item in items {
                match item {
                    PlanItem::Overlap { comms, barriers, pre_drain, .. } if !comms.is_empty() => {
                        comms.insert(1, comms[0]);
                        barriers.insert(1, false);
                        pre_drain.insert(1, pre_drain[0]);
                        return true;
                    }
                    PlanItem::TimeLoop { body, .. } => {
                        if walk(body) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        walk(&mut self.items)
    }

    /// Corrupt the first superstep by widening every sub-step's trapezoid
    /// expansion beyond what the deep fills cover — the stale-ghost fault
    /// for the mutation-kill suite (PL004). Returns `false` when the plan
    /// has no superstep item.
    #[doc(hidden)]
    pub fn corrupt_widen_trapezoid(&mut self) -> bool {
        // See corrupt_clear_barriers on why this is not a match guard.
        #[allow(clippy::collapsible_match)]
        fn walk(items: &mut [PlanItem]) -> bool {
            for item in items {
                match item {
                    PlanItem::Superstep { expansions, .. } => {
                        for r in expansions.iter_mut().flatten().flatten() {
                            r.0 += 8;
                            r.1 += 8;
                        }
                        return true;
                    }
                    PlanItem::TimeLoop { body, .. } => {
                        if walk(body) {
                            return true;
                        }
                    }
                    _ => {}
                }
            }
            false
        }
        walk(&mut self.items)
    }
}

/// Kernel-level (`BV*`) diagnostics of every compiled kernel in the item
/// tree, annotated with the owning PE.
fn collect_kernel_diags(item: &PlanItem, out: &mut Vec<Diagnostic>) {
    match item {
        PlanItem::Nest { kernels, .. } | PlanItem::Overlap { kernels, .. } => {
            for (pe, kernel) in kernels.iter().enumerate() {
                if let Some(k) = kernel {
                    out.extend(
                        k.verify().into_iter().map(|d| d.note(format!("kernel for PE {pe}"))),
                    );
                }
            }
        }
        PlanItem::Superstep { nests, .. } => {
            for (_, kernels) in nests {
                for (pe, kernel) in kernels.iter().enumerate() {
                    if let Some(k) = kernel {
                        out.extend(
                            k.verify().into_iter().map(|d| d.note(format!("kernel for PE {pe}"))),
                        );
                    }
                }
            }
        }
        PlanItem::TimeLoop { body, .. } => {
            for item in body {
                collect_kernel_diags(item, out);
            }
        }
        _ => {}
    }
}

/// Walk the item tree checking every Overlap window.
fn verify_items(items: &[PlanItem], scheds: &[CompiledComm], out: &mut Vec<Diagnostic>) {
    for (w, item) in items.iter().enumerate() {
        match item {
            PlanItem::Overlap { comms, barriers, pre_drain, nest, splits, .. } => {
                verify_window(w, comms, barriers, pre_drain, nest, splits, scheds, out);
            }
            PlanItem::Superstep { k, comms, nests, expansions, pe_exts, .. } => {
                verify_superstep(w, *k, comms, nests, expansions, pe_exts, scheds, out);
            }
            PlanItem::TimeLoop { body, .. } => verify_items(body, scheds, out),
            _ => {}
        }
    }
}

/// The per-dimension read radii of the nest's semantic unit body: how far
/// outside the iteration box its loads and stores reach. Re-derived from
/// the instruction stream, independently of the fuser's copy.
fn read_radii(nest: &LoopNest) -> (Vec<i64>, Vec<i64>) {
    let unit = nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body);
    let rank = nest.order.len();
    let (mut lo, mut hi) = (vec![0i64; rank], vec![0i64; rank]);
    for i in unit {
        if let Instr::Load { offsets, .. } | Instr::Store { offsets, .. } = i {
            for (d, &o) in offsets.iter().enumerate() {
                lo[d] = lo[d].max(-o);
                hi[d] = hi[d].max(o);
            }
        }
    }
    (lo, hi)
}

/// Per-array read radii of the nest's semantic unit body, in first-load
/// order: how far outside the iteration point each array's loads reach,
/// `(below, above)` per dimension. Re-derived from the instruction stream,
/// independently of the superstep planner.
fn load_radii(nest: &LoopNest) -> Vec<(hpf_ir::ArrayId, Vec<(i64, i64)>)> {
    let unit = nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body);
    let rank = nest.order.len();
    let mut out: Vec<(hpf_ir::ArrayId, Vec<(i64, i64)>)> = Vec::new();
    for i in unit {
        let Instr::Load { array, offsets, .. } = i else { continue };
        if !out.iter().any(|(a, _)| a == array) {
            out.push((*array, vec![(0, 0); rank]));
        }
        let radii = &mut out.iter_mut().find(|(a, _)| a == array).unwrap().1;
        for (d, &o) in offsets.iter().enumerate() {
            radii[d].0 = radii[d].0.max(-o);
            radii[d].1 = radii[d].1.max(o);
        }
    }
    out
}

/// Arrays the nest's unit body stores, in first-store order.
fn stored(nest: &LoopNest) -> Vec<hpf_ir::ArrayId> {
    let unit = nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body);
    let mut out = Vec::new();
    for i in unit {
        if let Instr::Store { array, .. } = i {
            if !out.contains(array) {
                out.push(*array);
            }
        }
    }
    out
}

/// Map a 1-based local coordinate into ghost-depth coordinates: `0`
/// anywhere inside the owned extent, negative in the below-halo, positive
/// in the above-halo. Collapsing the owned range to one point is what
/// makes the ghost ring exactly "box minus origin" for
/// [`uncovered_ghost`].
fn depth(x: i64, ext: i64) -> i64 {
    if x < 1 {
        x - 1
    } else if x > ext {
        x - ext
    } else {
        0
    }
}

/// A compiled schedule region (1-based local coordinates, halo positions
/// at `<= 0` and `> ext`) as a ghost-depth box. `depth` is monotone and
/// skips no value over a contiguous range, so mapping the two endpoints is
/// exact.
fn depth_box(region: &[(i64, i64)], exts: &[i64]) -> FillBox {
    region.iter().zip(exts).map(|(&(lo, hi), &e)| (depth(lo, e), depth(hi, e))).collect()
}

/// Check one Superstep item's trapezoid-coverage obligation (PL004): for
/// every PE, replay the superstep forward in ghost-depth coordinates. The
/// deep-fill schedules' compiled unpack/fill regions establish each
/// array's valid ghost boxes; each sub-step's reads (expansion plus read
/// radii) must be covered, and its stores reset the written arrays'
/// validity to exactly the freshly computed box.
#[allow(clippy::too_many_arguments)]
fn verify_superstep(
    w: usize,
    k: usize,
    comms: &[usize],
    nests: &[(LoopNest, Vec<Option<CompiledNest>>)],
    expansions: &[Vec<Vec<(i64, i64)>>],
    pe_exts: &[Vec<i64>],
    scheds: &[CompiledComm],
    out: &mut Vec<Diagnostic>,
) {
    if expansions.len() != k || expansions.iter().any(|sub| sub.len() != nests.len()) {
        out.push(Diagnostic::error(
            PL004,
            format!(
                "superstep {w}: malformed trapezoid tables ({} sub-steps for depth {k}, \
                 {} nests)",
                expansions.len(),
                nests.len()
            ),
        ));
        return;
    }
    for (pe, exts) in pe_exts.iter().enumerate() {
        if exts.is_empty() {
            continue; // this PE owns no block of the iteration space
        }
        // Ghost boxes the deep fills establish on this PE, per array, read
        // off the compiled schedules (wrap-around self-transfers included).
        let mut valid: HashMap<hpf_ir::ArrayId, Vec<FillBox>> = HashMap::new();
        for &slot in comms {
            for action in &scheds[slot].actions {
                let (dst_pe, local) = match action {
                    CommAction::Transfer(t) => (t.dst_pe, &t.dst_local),
                    CommAction::Fill { pe, local, .. } => (*pe, local),
                };
                if dst_pe == pe {
                    valid.entry(scheds[slot].dst).or_default().push(depth_box(local, exts));
                }
            }
        }
        for (j, sub) in expansions.iter().enumerate() {
            for (n, ((nest, _), expand)) in nests.iter().zip(sub).enumerate() {
                for (array, radii) in load_radii(nest) {
                    let need: GhostNeed = expand
                        .iter()
                        .zip(&radii)
                        .map(|(&(elo, ehi), &(rlo, rhi))| (elo + rlo, ehi + rhi))
                        .collect();
                    let none = Vec::new();
                    let fills = valid.get(&array).unwrap_or(&none);
                    if let Some(witness) = uncovered_ghost(&need, fills) {
                        out.push(Diagnostic::error(
                            PL004,
                            format!(
                                "superstep {w}: PE {pe} sub-step {j} nest {n} reads ghost \
                                 cell at depth {witness:?} that neither the deep fill nor an \
                                 earlier sub-step's expanded sweep wrote (need {need:?}) — \
                                 the trapezoid would consume stale halo data"
                            ),
                        ));
                        return;
                    }
                }
                // The expanded sweep freshly computes the written arrays'
                // ghosts out to the expansion box — and nothing beyond it.
                let computed: FillBox = expand.iter().map(|&(lo, hi)| (-lo, hi)).collect();
                for array in stored(nest) {
                    valid.insert(array, vec![computed.clone()]);
                }
            }
        }
    }
}

/// Check one Overlap window's happens-before obligations (PL001–PL003).
#[allow(clippy::too_many_arguments)]
fn verify_window(
    w: usize,
    comms: &[usize],
    barriers: &[bool],
    pre_drain: &[bool],
    nest: &LoopNest,
    splits: &[Option<hpf_analysis::overlap::RegionSplit>],
    scheds: &[CompiledComm],
    out: &mut Vec<Diagnostic>,
) {
    if barriers.len() != comms.len() || pre_drain.len() != comms.len() {
        out.push(Diagnostic::error(
            PL002,
            format!(
                "window {w}: malformed event tables ({} comms, {} barriers, {} pre-drains)",
                comms.len(),
                barriers.len(),
                pre_drain.len()
            ),
        ));
        return;
    }

    // A barrier at post `j` drains everything still pending, so the post of
    // `comms[e]` happens-before the post of `comms[ci]` *with a drain in
    // between* iff some barrier fires in (e, ci].
    let drained_between = |e: usize, ci: usize| barriers[e + 1..=ci].iter().any(|&b| b);

    for ci in 0..comms.len() {
        for e in 0..ci {
            // PL002: dependency order. `depends_on` is the corner-forwarding
            // relation — comms[ci]'s sends pack ghost cells comms[e]'s
            // receives write.
            if scheds[comms[ci]].depends_on(&scheds[comms[e]]) && !drained_between(e, ci) {
                out.push(Diagnostic::error(
                    PL002,
                    format!(
                        "window {w}: schedule {} posts before schedule {} it depends on \
                         has drained — its sends would pack stale corner values",
                        comms[ci], comms[e]
                    ),
                ));
            }
            // PL003: single-occupancy pooled buffers.
            if comms[ci] == comms[e] && !drained_between(e, ci) {
                out.push(Diagnostic::error(
                    PL003,
                    format!(
                        "window {w}: schedule {} is posted at positions {e} and {ci} with no \
                         drain in between — its pooled message buffers would be aliased",
                        comms[ci]
                    ),
                ));
            }
        }
    }

    // PL001: on every split PE, every receive still in flight across the
    // interior sweep must be disjoint from the cells the interior reads.
    let (read_lo, read_hi) = read_radii(nest);
    for (pe, split) in splits.iter().enumerate() {
        let Some(split) = split else { continue };
        if split.interior.len() != read_lo.len() {
            out.push(Diagnostic::error(
                PL001,
                format!(
                    "window {w}: PE {pe} interior rank {} != nest rank {}",
                    split.interior.len(),
                    read_lo.len()
                ),
            ));
            continue;
        }
        let read: Vec<(i64, i64)> = split
            .interior
            .iter()
            .enumerate()
            .map(|(d, &(l, h))| (l - read_lo[d], h + read_hi[d]))
            .collect();
        for (ci, &slot) in comms.iter().enumerate() {
            if pre_drain[ci] {
                continue;
            }
            for action in &scheds[slot].actions {
                let CommAction::Transfer(t) = action else { continue };
                if t.dst_pe == pe && t.src_pe != pe && regions_intersect(&read, &t.dst_local) {
                    out.push(Diagnostic::error(
                        PL001,
                        format!(
                            "window {w}: PE {pe} interior sweep reads cells schedule {slot}'s \
                             in-flight receive writes (unpack region {:?} vs read box {:?}) — \
                             the interior would consume stale ghost values",
                            t.dst_local, read
                        ),
                    ));
                }
            }
        }
    }
}

/// Enforcement behind [`ExecPlan::build`](crate::ExecPlan::build): verify
/// every compiled kernel (`BV*`), every Overlap window, and every
/// Superstep item (`PL*`). With `checked` set, any diagnostic aborts the
/// build with [`RtError::VerificationFailed`]; otherwise each rejected
/// kernel falls back to the interpreter (`kernels[pe] = None`), each
/// rejected window is demoted to the blocking comm-then-nest sequence, and
/// each rejected superstep to a `k`-iteration time loop that re-runs the
/// deep fills before each sub-step's owned-only sweeps — all leaving a
/// plan that verifies clean. A rejected superstep whose body chains
/// through comm-less intermediate arrays has no such demotion (the chain
/// ghosts exist only through the expanded sweeps), so it fails the build
/// even unchecked rather than run a plan known wrong.
pub(crate) fn enforce(
    items: &mut Vec<PlanItem>,
    scheds: &[CompiledComm],
    checked: bool,
) -> Result<(), RtError> {
    let mut report = Vec::new();
    let mut hard = false;
    demote_items(items, scheds, checked, &mut report, &mut hard);
    if (checked || hard) && !report.is_empty() {
        let report =
            report.iter().map(|d| format!("{}: {}", d.code, d.message)).collect::<Vec<_>>();
        return Err(RtError::VerificationFailed { report: report.join("\n") });
    }
    Ok(())
}

/// True when the superstep's blocking demotion preserves semantics: every
/// array some nest stores and some nest reads at a nonzero offset must be
/// refilled by a deep-fill schedule. A comm-less chain array (problem-9
/// style shifted temporaries) gets its ghosts only from the expanded
/// sweeps the demotion drops.
fn superstep_demotable(
    comms: &[usize],
    nests: &[(LoopNest, Vec<Option<CompiledNest>>)],
    scheds: &[CompiledComm],
) -> bool {
    let stored_any: Vec<hpf_ir::ArrayId> =
        nests.iter().flat_map(|(nest, _)| stored(nest)).collect();
    nests
        .iter()
        .flat_map(|(nest, _)| load_radii(nest))
        .filter(|(_, radii)| radii.iter().any(|&(lo, hi)| lo > 0 || hi > 0))
        .filter(|(a, _)| stored_any.contains(a))
        .all(|(a, _)| comms.iter().any(|&slot| scheds[slot].dst == a))
}

fn demote_items(
    items: &mut Vec<PlanItem>,
    scheds: &[CompiledComm],
    checked: bool,
    report: &mut Vec<Diagnostic>,
    hard: &mut bool,
) {
    let old = std::mem::take(items);
    for mut item in old {
        // Kernel obligations first: a demoted window keeps its kernels, so
        // they must hold either way.
        if let PlanItem::Nest { kernels, .. } | PlanItem::Overlap { kernels, .. } = &mut item {
            for (pe, kernel) in kernels.iter_mut().enumerate() {
                let Some(k) = kernel else { continue };
                let diags = k.verify();
                if !diags.is_empty() {
                    report.extend(diags.into_iter().map(|d| d.note(format!("kernel for PE {pe}"))));
                    if !checked {
                        *kernel = None; // fall back to the interpreter
                    }
                }
            }
        }
        if let PlanItem::Superstep { nests, .. } = &mut item {
            for (_, kernels) in nests {
                for (pe, kernel) in kernels.iter_mut().enumerate() {
                    let Some(k) = kernel else { continue };
                    let diags = k.verify();
                    if !diags.is_empty() {
                        report.extend(
                            diags.into_iter().map(|d| d.note(format!("kernel for PE {pe}"))),
                        );
                        if !checked {
                            *kernel = None; // fall back to the interpreter
                        }
                    }
                }
            }
        }
        match item {
            PlanItem::Overlap { comms, barriers, pre_drain, nest, kernels, splits } => {
                let mut diags = Vec::new();
                verify_window(
                    items.len(),
                    &comms,
                    &barriers,
                    &pre_drain,
                    &nest,
                    &splits,
                    scheds,
                    &mut diags,
                );
                if diags.is_empty() {
                    items.push(PlanItem::Overlap {
                        comms,
                        barriers,
                        pre_drain,
                        nest,
                        kernels,
                        splits,
                    });
                } else {
                    report.extend(diags);
                    if !checked {
                        // Blocking demotion: each schedule completes before
                        // the next item starts, so every PL* hazard is
                        // structurally gone.
                        items.extend(comms.into_iter().map(PlanItem::Comm));
                        items.push(PlanItem::Nest { nest, kernels });
                    }
                }
            }
            PlanItem::Superstep { k, comms, nests, expansions, pe_exts, elided } => {
                let mut diags = Vec::new();
                verify_superstep(
                    items.len(),
                    k,
                    &comms,
                    &nests,
                    &expansions,
                    &pe_exts,
                    scheds,
                    &mut diags,
                );
                if diags.is_empty() {
                    items.push(PlanItem::Superstep {
                        k,
                        comms,
                        nests,
                        expansions,
                        pe_exts,
                        elided,
                    });
                } else {
                    report.extend(diags);
                    if checked {
                        // The build aborts; no replacement item needed.
                    } else if superstep_demotable(&comms, &nests, scheds) {
                        // Blocking demotion: re-run the deep fills before
                        // every sub-step and sweep owned cells only. The
                        // deep fills subsume each sub-step's classic ghost
                        // needs, so this is the classic schedule with
                        // over-deep refills — correct, merely slower.
                        items.push(PlanItem::TimeLoop {
                            iters: k,
                            body: comms
                                .into_iter()
                                .map(PlanItem::Comm)
                                .chain(
                                    nests
                                        .into_iter()
                                        .map(|(nest, kernels)| PlanItem::Nest { nest, kernels }),
                                )
                                .collect(),
                        });
                    } else {
                        *hard = true;
                    }
                }
            }
            PlanItem::TimeLoop { iters, mut body } => {
                demote_items(&mut body, scheds, checked, report, hard);
                items.push(PlanItem::TimeLoop { iters, body });
            }
            other => items.push(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::Backend;
    use crate::config::{Engine, ExecConfig};
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};
    use hpf_runtime::{Machine, MachineConfig};

    const JACOBI16: &str = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
"#;

    /// 9-point stencil (the paper's problem 9): the diagonal neighbors go
    /// through shifted temporaries, so the fused window's schedules forward
    /// corners and carry dependency barriers.
    const NINE_POINT16: &str = r#"
PARAM N = 16
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN + CSHIFT(U,-1,2) + CSHIFT(U,1,2) + CSHIFT(RIP,-1,2) + CSHIFT(RIP,1,2) + CSHIFT(RIN,-1,2) + CSHIFT(RIN,1,2)
U = T
"#;

    fn overlapped_plan(src: &str) -> (Machine, ExecPlan) {
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(Stage::MemOpt));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::with_grid(vec![2, 2]));
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, |p| ((p[0] * 31 + p[1] * 7) as f64).sin());
        let cfg = ExecConfig::new().engine(Engine::ThreadedOverlap).backend(Backend::Bytecode);
        let plan = ExecPlan::build(&mut m, &compiled.node, &cfg).unwrap();
        (m, plan)
    }

    /// A depth-`k` superstep plan of the flat Jacobi kernel: one
    /// [`PlanItem::Superstep`] item, deep halo of `k` layers.
    fn superstep_plan(k: usize) -> (Machine, ExecPlan) {
        let checked = compile_source(JACOBI16).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(Stage::MemOpt));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::with_grid(vec![2, 2]).halo(k));
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, |p| ((p[0] * 31 + p[1] * 7) as f64).sin());
        let cfg = ExecConfig::new().backend(Backend::Bytecode).superstep(k);
        let plan = ExecPlan::build(&mut m, &compiled.node, &cfg).unwrap();
        assert_eq!(plan.supersteps_per_step(), 1, "fixture must build a superstep");
        (m, plan)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code).collect()
    }

    #[test]
    fn compiler_built_plans_verify_clean() {
        for src in [JACOBI16, NINE_POINT16] {
            let (_, plan) = overlapped_plan(src);
            assert!(plan.overlap_windows_per_step() > 0, "fixture must fuse a window");
            assert!(plan.verify().is_empty(), "{:?}", plan.verify());
        }
    }

    #[test]
    fn cleared_barriers_trip_pl002() {
        let (_, mut plan) = overlapped_plan(NINE_POINT16);
        assert!(plan.corrupt_clear_barriers(), "9-point window must carry barriers");
        let d = plan.verify();
        assert!(codes(&d).contains(&PL002), "{d:?}");
    }

    #[test]
    fn widened_interior_trips_pl001() {
        let (_, mut plan) = overlapped_plan(JACOBI16);
        assert!(plan.corrupt_widen_interior());
        let d = plan.verify();
        assert!(codes(&d).contains(&PL001), "{d:?}");
    }

    #[test]
    fn duplicate_post_trips_pl003() {
        let (_, mut plan) = overlapped_plan(JACOBI16);
        assert!(plan.corrupt_duplicate_post());
        let d = plan.verify();
        assert!(codes(&d).contains(&PL003), "{d:?}");
    }

    #[test]
    fn superstep_plans_verify_clean() {
        for k in [2usize, 4] {
            let (_, plan) = superstep_plan(k);
            assert!(plan.verify().is_empty(), "{:?}", plan.verify());
        }
    }

    #[test]
    fn widened_trapezoid_trips_pl004() {
        let (_, mut plan) = superstep_plan(2);
        assert!(plan.corrupt_widen_trapezoid());
        let d = plan.verify();
        assert!(codes(&d).contains(&PL004), "{d:?}");
    }

    #[test]
    fn corrupted_superstep_demotes_to_deep_refill_loop() {
        // Unchecked enforcement demotes the corrupted superstep to a
        // k-iteration time loop of deep fills + owned-only sweeps, which
        // verifies clean and elides nothing.
        let (_, mut plan) = superstep_plan(2);
        assert!(plan.corrupt_widen_trapezoid());
        assert!(!plan.verify().is_empty());
        let items = &mut plan.items;
        let scheds = &plan.scheds;
        enforce(items, scheds, false).unwrap();
        assert!(plan.verify().is_empty(), "{:?}", plan.verify());

        // Checked enforcement on a corrupted superstep fails hard.
        let (_, mut plan) = superstep_plan(2);
        assert!(plan.corrupt_widen_trapezoid());
        let items = &mut plan.items;
        let scheds = &plan.scheds;
        let err = enforce(items, scheds, true).unwrap_err();
        let RtError::VerificationFailed { report } = err else {
            panic!("expected VerificationFailed")
        };
        assert!(report.contains(PL004), "{report}");
    }

    #[test]
    fn checked_build_rejects_corrupted_kernel_via_enforce() {
        // Corrupt a window, then re-run enforcement in unchecked mode: the
        // window is demoted to blocking and the plan verifies clean again.
        let (_, mut plan) = overlapped_plan(JACOBI16);
        assert!(plan.corrupt_widen_interior());
        assert!(!plan.verify().is_empty());
        let items = &mut plan.items;
        let scheds = &plan.scheds;
        enforce(items, scheds, false).unwrap();
        assert!(plan.verify().is_empty(), "{:?}", plan.verify());

        // Checked enforcement on a corrupted plan fails hard.
        let (_, mut plan) = overlapped_plan(JACOBI16);
        assert!(plan.corrupt_duplicate_post());
        let items = &mut plan.items;
        let scheds = &plan.scheds;
        let err = enforce(items, scheds, true).unwrap_err();
        let RtError::VerificationFailed { report } = err else {
            panic!("expected VerificationFailed")
        };
        assert!(report.contains(PL003), "{report}");
    }
}
