//! Persistent-schedule execution plans: compile once, step many times.
//!
//! [`ExecPlan::build`] takes an [`ExecConfig`] describing the whole run —
//! engine, nest backend, tracing, extra checking — then walks the compiled
//! node program once, allocates every array it references, and compiles
//! each communication op against the allocated subgrids into a
//! [`CompiledComm`] — neighbor PEs, RSD-extended bounds, flat pack/unpack
//! index lists, and pooled message buffers are all resolved here, at plan
//! time. Each subsequent [`ExecPlan::step`] then executes one sweep of the
//! kernel on the configured engine with **zero** per-step subgrid math,
//! plan recomputation, or buffer allocation — the persistent-communication
//! pattern of `MPI_Send_init`-style halo exchange.
//!
//! All step engines are bitwise identical to their one-shot counterparts
//! ([`crate::seq::execute_seq`], [`crate::par::execute_par`]) and produce the
//! same per-PE counters; the only observable difference is the
//! `schedules_built` / `schedule_reuses` pair in `AggStats`.
//!
//! With tracing enabled ([`ExecConfig::trace`]) every step additionally
//! records per-PE spans — kernel execution, pack/unpack, comm post/drain,
//! and the overlap engine's interior/boundary sweeps — on the machine's
//! `hpf_trace` recorders, plus schedule-build and kernel-compile spans on
//! the driver track at build time.

use crate::backend::{self, Backend};
use crate::config::{Engine, ExecConfig};
use crate::nest::{expand_bounds, nest_local_bounds, scalar_values};
use crate::par::{Msg, Worker};
use crate::superstep::{self, SsShape, SuperstepSchedule};
use hpf_analysis::overlap::{cells, split_region, RegionSplit};
use hpf_codegen::{compile_nest, reads_before_def, CompiledNest};
use hpf_ir::{ArrayId, Diagnostic, ShiftKind};
use hpf_passes::loopir::{CommOp, Instr, LoopNest, NodeItem, NodeProgram};
use hpf_passes::memopt::iteration_local;
use hpf_runtime::schedule::{cshift_plan, overlap_shift_plan, regions_intersect, CommAction};
use hpf_runtime::{CompiledComm, Machine, MoveKind, PeState, RtError};
use hpf_trace::SpanKind;
use std::collections::HashMap;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

/// One step-program item: like `NodeItem`, but communication ops are slots
/// into the plan's compiled-schedule table. Crate-visible so the
/// [`crate::plan_verify`] race checker can walk and (in its mutation tests)
/// corrupt the step program.
#[derive(Debug)]
pub(crate) enum PlanItem {
    /// Execute the compiled schedule at this slot.
    Comm(usize),
    /// Run a subgrid loop nest on every PE, through the per-PE compiled
    /// kernel where one exists (`kernels` is empty under the interpreter
    /// backend and per-PE `None` where codegen declined the nest).
    Nest { nest: LoopNest, kernels: Vec<Option<CompiledNest>> },
    /// A split-phase overlap window (fused when building for
    /// [`Engine::ThreadedOverlap`]): a run
    /// of consecutive overlap-shift schedules fused with the nest that
    /// consumes them. The overlapped engine posts every schedule's send
    /// half, runs the nest's interior while messages are in flight, drains
    /// the receives in plan order, then runs the boundary strips. The
    /// blocking engines execute it exactly like the unfused sequence.
    Overlap {
        /// Schedule slots, in plan order.
        comms: Vec<usize>,
        /// `barriers[i]`: drain every pending receive before posting
        /// `comms[i]` — set when that schedule's sends read ghost cells an
        /// earlier schedule's receives write (corner forwarding; see
        /// `CompiledComm::depends_on`).
        barriers: Vec<bool>,
        /// `pre_drain[i]`: `comms[i]`'s receives must complete before the
        /// interior runs, because its unpack writes ghost cells the
        /// interior reads (halo along a dimension the split does not
        /// shrink). Only comms with `pre_drain[i] == false` stay in flight
        /// across the interior sweep.
        pre_drain: Vec<bool>,
        /// The nest, as in [`PlanItem::Nest`].
        nest: LoopNest,
        /// Per-PE compiled kernels, as in [`PlanItem::Nest`].
        kernels: Vec<Option<CompiledNest>>,
        /// Per-PE interior/boundary split; `None` means that PE's interior
        /// is degenerate and it takes the fully-blocking path (drain first,
        /// then run the whole nest).
        splits: Vec<Option<RegionSplit>>,
    },
    /// Repeat the body (a `DO n TIMES` loop folded into one step).
    TimeLoop { iters: usize, body: Vec<PlanItem> },
    /// A depth-`k` superstep (communication-avoiding temporal tile, see
    /// [`crate::superstep`]): execute the deep-fill schedules once, then
    /// run the body nests `k` times with trapezoidally shrinking ghost
    /// expansions and **no** communication — sub-step `j` redundantly
    /// recomputes neighbor-owned boundary cells from the deep halo.
    Superstep {
        /// Sub-steps per exchange.
        k: usize,
        /// Deep-fill schedule slots, in plan order.
        comms: Vec<usize>,
        /// Body nests in order, with per-PE kernels as in
        /// [`PlanItem::Nest`], shared by every sub-step.
        nests: Vec<(LoopNest, Vec<Option<CompiledNest>>)>,
        /// `expansions[j][n]`: per-dimension `(below, above)` ghost
        /// expansion of nest `n` in sub-step `j` — the trapezoid.
        expansions: Vec<Vec<Vec<(i64, i64)>>>,
        /// Per-PE owned extents of the (single) iteration space, captured
        /// at build time so the PL004 verifier can map compiled schedule
        /// regions into ghost-depth coordinates without the machine (empty
        /// for a PE that owns no block).
        pe_exts: Vec<Vec<i64>>,
        /// Exchange executions this item elides relative to `k` classic
        /// steps of the same body.
        elided: u64,
    },
}

/// A kernel compiled against one machine: allocated arrays, persistent
/// communication schedules, per-PE bytecode kernels (when built with the
/// bytecode [`Backend`]), and a step program that reuses them all.
#[derive(Debug)]
pub struct ExecPlan {
    pub(crate) items: Vec<PlanItem>,
    pub(crate) scheds: Vec<CompiledComm>,
    scalars: Vec<f64>,
    /// The engine [`ExecPlan::step`] dispatches to, fixed at build time.
    engine: Engine,
    comm_execs_per_step: u64,
    kernel_execs_per_step: u64,
    /// Split-phase windows one step executes (time-loop weighted; zero
    /// unless built for [`Engine::ThreadedOverlap`]).
    overlap_windows_per_step: u64,
    /// Interior points one step computes before draining receives, summed
    /// over PEs (time-loop weighted).
    interior_cells_per_step: u64,
    /// Boundary-strip points one step computes after draining receives,
    /// summed over split PEs (time-loop weighted).
    boundary_cells_per_step: u64,
    /// Max over PEs of subgrid points one step computes on that PE — the
    /// work measure `MachineConfig::par_threshold` compares against.
    pe_points_per_step: u64,
    /// Superstep executions one step performs (time-loop weighted; zero
    /// unless built with [`ExecConfig::superstep`] depth > 1 on an
    /// eligible kernel).
    supersteps_per_step: u64,
    /// Exchange executions one step elides relative to the classic
    /// schedule (time-loop weighted).
    exchanges_elided_per_step: u64,
    /// Ghost-zone points one step redundantly recomputes across all PEs
    /// and sub-steps (time-loop weighted).
    redundant_cells_per_step: u64,
    /// Logical stencil steps one [`ExecPlan::step`] covers: the superstep
    /// depth `k` for a flat (driver-stepped) program tiled in time, else 1.
    logical_steps: usize,
    /// Why the requested superstep depth fell back to the classic `k = 1`
    /// schedule (empty when it did not).
    superstep_diags: Vec<Diagnostic>,
    /// Metrics collection state ([`ExecConfig::metrics`]); `None` keeps
    /// stepping metric-free.
    metrics: Option<Box<crate::metrics::MetricsState>>,
}

impl ExecPlan {
    /// Build an execution plan as described by `cfg`: allocate every
    /// referenced array (honoring the memory budget and overlap-width
    /// checks, like the one-shot executors), enable the machine's event
    /// tracers when [`ExecConfig::trace`] is set, pre-validate every
    /// communication plan when [`ExecConfig::check`] is set, and compile
    /// every communication op of the node program into a persistent
    /// schedule. Under [`Backend::Bytecode`] every nest is additionally
    /// compiled to a per-PE bytecode kernel here, once, and every
    /// subsequent step reuses the kernels — the loop-nest analogue of the
    /// persistent communication schedules.
    ///
    /// For [`Engine::ThreadedOverlap`] the plan then fuses every maximal
    /// run of consecutive overlap-shift schedules with the eligible nest
    /// that follows it into a split-phase [window](PlanItem::Overlap),
    /// computing each PE's interior/boundary split once, here at plan
    /// time. Callers gate that engine on halo-safety (HS001/HS002) being
    /// lint-clean — an unproven program must be built for a blocking
    /// engine instead.
    ///
    /// An unresolved [`ExecConfig::auto`] flag is ignored here: auto-tuning
    /// is resolved by the planning layer above (`hpf-core`'s `Planner`,
    /// through `hpf-tune`), which rewrites the configuration before calling
    /// this. The plan is built for the embedded engine and backend as-is.
    pub fn build(
        machine: &mut Machine,
        node: &NodeProgram,
        cfg: &ExecConfig,
    ) -> Result<ExecPlan, RtError> {
        if let Some(tc) = cfg.trace {
            machine.enable_tracing(tc);
        }
        // Metrics sample the trace rings; when tracing was not requested,
        // enable it privately and remember that the plan owns it, so
        // trace consumers still see "tracing off" (`Machine::take_trace`
        // callers go through the planning layer, which checks
        // `metrics_owns_trace`).
        let metrics_owns_trace = cfg.metrics.is_some() && cfg.trace.is_none();
        if metrics_owns_trace {
            machine.enable_tracing(hpf_trace::TraceConfig::default());
        }
        crate::seq::allocate(machine, node)?;
        if cfg.check {
            crate::validate::prevalidate_comms(machine, &node.items)?;
        }
        let scalars = scalar_values(&node.symbols);
        let mut scheds = Vec::new();
        let mut compiled = 0u64;
        let mut superstep_diags = Vec::new();
        let mut logical_steps = 1usize;
        // A depth-k superstep build replaces the classic item compilation
        // wholesale; an ineligible kernel (or a machine whose halo is too
        // shallow for the deep fills) falls back to the classic schedule,
        // keeping the planner's diagnostics.
        let mut items = None;
        if cfg.superstep > 1 {
            match superstep::plan_superstep(node, cfg.superstep) {
                Ok(ss) if ss.halo <= machine.cfg.halo => {
                    if ss.shape == SsShape::Flat {
                        logical_steps = ss.k;
                    }
                    items = Some(build_superstep_items(
                        machine,
                        node,
                        &ss,
                        &mut scheds,
                        &scalars,
                        cfg.backend,
                        &mut compiled,
                    )?);
                }
                Ok(ss) => superstep_diags.push(Diagnostic::warning(
                    superstep::SS008,
                    format!(
                        "machine halo {} is shallower than the depth-{} deep fill ({} layers); \
                         falling back to the classic schedule (size the machine with \
                         superstep_halo)",
                        machine.cfg.halo, ss.k, ss.halo
                    ),
                )),
                Err(diags) => superstep_diags = diags,
            }
        }
        let items = match items {
            Some(items) => items,
            None => compile_items(
                machine,
                &node.items,
                &mut scheds,
                &scalars,
                cfg.backend,
                &mut compiled,
            )?,
        };
        machine.note_kernels_compiled(compiled);
        let mut plan = ExecPlan {
            items,
            scheds,
            scalars,
            engine: cfg.engine,
            comm_execs_per_step: 0,
            kernel_execs_per_step: 0,
            overlap_windows_per_step: 0,
            interior_cells_per_step: 0,
            boundary_cells_per_step: 0,
            pe_points_per_step: 0,
            supersteps_per_step: 0,
            exchanges_elided_per_step: 0,
            redundant_cells_per_step: 0,
            logical_steps,
            superstep_diags,
            metrics: cfg.metrics.map(|mc| {
                Box::new(crate::metrics::MetricsState::new(
                    mc,
                    cfg.label(),
                    machine.pes.len(),
                    metrics_owns_trace,
                ))
            }),
        };
        if cfg.engine == Engine::ThreadedOverlap {
            let items = std::mem::take(&mut plan.items);
            plan.items = fuse_windows(machine, items, &plan.scheds);
        }
        // Static verification (BV* kernel obligations, PL* plan-level
        // races): always in debug builds, and on demand via `cfg.check`.
        // Checked builds fail hard; otherwise a rejected kernel falls back
        // to the interpreter and a rejected window to the blocking path —
        // the counters below then describe the demoted plan.
        if cfg.check || cfg!(debug_assertions) {
            crate::plan_verify::enforce(&mut plan.items, &plan.scheds, cfg.check)?;
        }
        if cfg.engine == Engine::ThreadedOverlap {
            let (windows, interior, boundary) = count_overlap(&plan.items);
            plan.overlap_windows_per_step = windows;
            plan.interior_cells_per_step = interior;
            plan.boundary_cells_per_step = boundary;
        }
        plan.comm_execs_per_step = count_comm_execs(&plan.items);
        plan.kernel_execs_per_step = count_kernel_execs(&plan.items);
        plan.pe_points_per_step = pe_points(machine, &plan.items);
        let (supersteps, elided, redundant) = count_superstep(machine, &plan.items);
        plan.supersteps_per_step = supersteps;
        plan.exchanges_elided_per_step = elided;
        plan.redundant_cells_per_step = redundant;
        Ok(plan)
    }

    /// The engine [`ExecPlan::step`] dispatches to (fixed at build time).
    pub fn engine(&self) -> Engine {
        self.engine
    }

    /// Run one sweep of the kernel on the configured engine. With
    /// metrics on, the step is bracketed by ring watermarks so exactly
    /// the spans it appends feed the histograms and its [`StepSample`] —
    /// observation only, after the engines have finished the step.
    pub fn step(&mut self, machine: &mut Machine) {
        let begin = self.metrics.as_ref().map(|m| m.begin(machine));
        match self.engine {
            Engine::Sequential => self.step_seq(machine),
            Engine::Threaded => self.step_par(machine),
            Engine::ThreadedOverlap => self.step_par_overlap(machine),
        }
        if let Some(begin) = begin {
            let logical = self.logical_steps;
            if let Some(m) = self.metrics.as_mut() {
                m.end(machine, begin, logical);
            }
        }
    }

    /// The collected metrics, frozen for export; `None` unless the plan
    /// was built with [`ExecConfig::metrics`].
    pub fn metrics_snapshot(&self) -> Option<hpf_metrics::MetricsSnapshot> {
        self.metrics.as_ref().map(|m| m.snapshot())
    }

    /// The cost-model drift report for the stepped-so-far run; `None`
    /// unless the plan was built with [`ExecConfig::metrics`].
    pub fn drift_report(&self, machine: &Machine) -> Option<hpf_metrics::DriftReport> {
        self.metrics.as_ref().map(|m| m.drift_report(machine))
    }

    /// True when the machine's tracing was enabled by metrics collection
    /// rather than [`ExecConfig::trace`] — trace consumers should then
    /// treat the run as untraced.
    pub fn metrics_owns_trace(&self) -> bool {
        self.metrics.as_ref().is_some_and(|m| m.owns_trace())
    }

    /// Number of distinct communication schedules compiled.
    pub fn comm_count(&self) -> usize {
        self.scheds.len()
    }

    /// Schedule executions one step performs (counts time-loop repeats).
    pub fn comm_execs_per_step(&self) -> u64 {
        self.comm_execs_per_step
    }

    /// Compiled-kernel executions one step performs across all PEs
    /// (time-loop weighted; zero under the interpreter backend).
    pub fn kernel_execs_per_step(&self) -> u64 {
        self.kernel_execs_per_step
    }

    /// Bytes held by the pooled message buffers across all schedules.
    pub fn pooled_bytes(&self) -> usize {
        self.scheds.iter().map(|s| s.pooled_bytes()).sum()
    }

    /// Split-phase windows one step executes (zero unless built for
    /// [`Engine::ThreadedOverlap`]).
    pub fn overlap_windows_per_step(&self) -> u64 {
        self.overlap_windows_per_step
    }

    /// Interior points one step computes while halo messages are in flight.
    pub fn interior_cells_per_step(&self) -> u64 {
        self.interior_cells_per_step
    }

    /// Boundary-strip points one step computes after the receives drain.
    pub fn boundary_cells_per_step(&self) -> u64 {
        self.boundary_cells_per_step
    }

    /// Superstep executions one step performs (zero unless built with
    /// [`ExecConfig::superstep`] depth > 1 on an eligible kernel).
    pub fn supersteps_per_step(&self) -> u64 {
        self.supersteps_per_step
    }

    /// Exchange executions one step elides relative to the classic
    /// schedule of the same program.
    pub fn exchanges_elided_per_step(&self) -> u64 {
        self.exchanges_elided_per_step
    }

    /// Ghost-zone points one step redundantly recomputes (the trapezoid
    /// price of the elided exchanges), summed over PEs and sub-steps.
    pub fn redundant_cells_per_step(&self) -> u64 {
        self.redundant_cells_per_step
    }

    /// Logical stencil steps one [`ExecPlan::step`] covers. This is the
    /// superstep depth `k` when a *flat* (driver-stepped) program was tiled
    /// in time — drivers comparing against a classic schedule must then
    /// call `step` `S / k` times to cover `S` logical steps — and 1 in
    /// every other configuration (including a tiled `DO` loop, whose
    /// iteration count is absorbed inside the step).
    pub fn logical_steps_per_step(&self) -> usize {
        self.logical_steps
    }

    /// Why the requested [`ExecConfig::superstep`] depth fell back to the
    /// classic schedule — the planner's `SS00x` diagnostics, empty when
    /// the superstep build succeeded (or none was requested).
    pub fn superstep_diags(&self) -> &[Diagnostic] {
        &self.superstep_diags
    }

    /// True when the per-PE work of one step is at or below the machine's
    /// `par_threshold` — the threaded engines then run the step on the
    /// calling thread (identical results and counters), since spawning a
    /// thread per PE costs more than the step itself at small sizes.
    fn below_par_threshold(&self, machine: &Machine) -> bool {
        machine.cfg.par_threshold > 0 && self.pe_points_per_step <= machine.cfg.par_threshold
    }

    /// Run one sweep of the kernel on the sequential engine.
    pub fn step_seq(&mut self, machine: &mut Machine) {
        let ExecPlan { items, scheds, scalars, .. } = self;
        step_items_seq(machine, items, scheds, scalars);
        machine.note_kernel_execs(self.kernel_execs_per_step);
        machine.note_superstep(self.exchanges_elided_per_step, self.redundant_cells_per_step);
    }

    /// Run one sweep on the SPMD engine: one thread per PE, channel message
    /// passing, reusing the precompiled plans (no per-step geometry or RSD
    /// math on the workers). Bitwise identical to [`ExecPlan::step_seq`].
    pub fn step_par(&mut self, machine: &mut Machine) {
        if self.below_par_threshold(machine) {
            return self.step_seq(machine);
        }
        self.step_threaded(machine, false);
    }

    /// Run one sweep on the split-phase overlapped engine: like
    /// [`ExecPlan::step_par`], but every [window](PlanItem::Overlap) posts
    /// its sends, computes the nest's interior while the messages are in
    /// flight, drains the receives in plan order, then computes the
    /// boundary strips. Bitwise identical to the blocking engines by
    /// construction; the only observable difference is the
    /// `overlapped_steps` / `interior_cells` / `boundary_cells` counters.
    /// On a plan built for a blocking engine (or whose windows all proved
    /// ineligible) this is exactly the blocking engine.
    pub fn step_par_overlap(&mut self, machine: &mut Machine) {
        if self.below_par_threshold(machine) {
            // Fully-blocking on the calling thread: nothing is overlapped,
            // so the overlap counters stay untouched.
            return self.step_seq(machine);
        }
        self.step_threaded(machine, true);
        machine.note_overlap(
            self.overlap_windows_per_step,
            self.interior_cells_per_step,
            self.boundary_cells_per_step,
        );
    }

    fn step_threaded(&mut self, machine: &mut Machine, overlapped: bool) {
        let cfg = machine.cfg.clone();
        let metas = machine.metas_snapshot();
        let n = machine.num_pes();
        let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) =
            (0..n).map(|_| unbounded()).unzip();
        let items = &self.items;
        let scheds = &self.scheds;
        let scalars = &self.scalars;
        std::thread::scope(|scope| {
            for (pe_state, rx) in machine.pes.iter_mut().zip(rxs) {
                let txs = txs.clone();
                let cfg = &cfg;
                let metas = &metas;
                scope.spawn(move || {
                    let mut w = Worker {
                        pe: pe_state.pe,
                        state: pe_state,
                        rx,
                        txs,
                        cfg,
                        metas,
                        scalars,
                        seq: 0,
                        stash: HashMap::new(),
                    };
                    if overlapped {
                        step_items_worker_overlap(&mut w, items, scheds);
                    } else {
                        step_items_worker(&mut w, items, scheds);
                    }
                });
            }
        });
        // Workers deliver messages themselves; credit the schedule reuses
        // and kernel executions on the machine so both engines report
        // identical counters.
        machine.note_schedule_reuses(self.comm_execs_per_step);
        machine.note_kernel_execs(self.kernel_execs_per_step);
        machine.note_superstep(self.exchanges_elided_per_step, self.redundant_cells_per_step);
    }
}

/// Walk node items, compiling each communication op against the machine —
/// and, under the bytecode backend, each nest into per-PE kernels.
fn compile_items(
    machine: &mut Machine,
    items: &[NodeItem],
    scheds: &mut Vec<CompiledComm>,
    scalars: &[f64],
    backend: Backend,
    compiled: &mut u64,
) -> Result<Vec<PlanItem>, RtError> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            NodeItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                let geom = machine.meta(*src).geom.clone();
                let plan = cshift_plan(&geom, *shift, *dim, *kind);
                out.push(push_sched(
                    scheds,
                    machine.compile_comm(*dst, *src, plan, MoveKind::FullShift),
                ));
            }
            NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                let geom = machine.meta(*array).geom.clone();
                let plan =
                    overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, machine.cfg.halo)?;
                out.push(push_sched(
                    scheds,
                    machine.compile_comm(*array, *array, plan, MoveKind::Overlap),
                ));
            }
            NodeItem::Nest(nest) => {
                let kernels: Vec<Option<CompiledNest>> = match backend {
                    Backend::Interp => Vec::new(),
                    Backend::Bytecode => {
                        let t0 = machine.driver_tracer().now();
                        let kernels: Vec<Option<CompiledNest>> =
                            machine.pes.iter().map(|pe| compile_nest(nest, pe, scalars)).collect();
                        machine.driver_tracer().record(SpanKind::KernelCompile, t0);
                        kernels
                    }
                };
                *compiled += kernels.iter().flatten().count() as u64;
                out.push(PlanItem::Nest { nest: nest.clone(), kernels });
            }
            NodeItem::TimeLoop { iters, body } => out.push(PlanItem::TimeLoop {
                iters: *iters,
                body: compile_items(machine, body, scheds, scalars, backend, compiled)?,
            }),
        }
    }
    Ok(out)
}

fn push_sched(scheds: &mut Vec<CompiledComm>, sched: CompiledComm) -> PlanItem {
    scheds.push(sched);
    PlanItem::Comm(scheds.len() - 1)
}

/// Compile a legal [`SuperstepSchedule`] against the machine: the deep
/// fills become persistent schedules, the body nests compile once (shared
/// by every sub-step), and the items assemble per the tiled shape — a flat
/// program becomes one [`PlanItem::Superstep`] covering `k` logical steps;
/// a `DO iters TIMES` loop becomes `iters / k` supersteps plus, when `k`
/// does not divide `iters`, a classic remainder loop (its shallow refills
/// re-establish whatever ghost validity it needs, so correctness does not
/// depend on what the last superstep left behind).
fn build_superstep_items(
    machine: &mut Machine,
    node: &NodeProgram,
    ss: &SuperstepSchedule,
    scheds: &mut Vec<CompiledComm>,
    scalars: &[f64],
    backend: Backend,
    compiled: &mut u64,
) -> Result<Vec<PlanItem>, RtError> {
    let body: &[NodeItem] = match ss.shape {
        SsShape::Flat => &node.items,
        SsShape::TimeLoop { .. } => match node.items.as_slice() {
            [NodeItem::TimeLoop { body, .. }] => body,
            _ => unreachable!("superstep shape detection admitted this program"),
        },
    };
    let mut comms = Vec::with_capacity(ss.deep.len());
    for f in &ss.deep {
        let geom = machine.meta(f.array).geom.clone();
        let plan = overlap_shift_plan(
            &geom,
            f.shift,
            f.dim,
            Some(&f.rsd),
            ShiftKind::Circular,
            machine.cfg.halo,
        )?;
        scheds.push(machine.compile_comm(f.array, f.array, plan, MoveKind::Overlap));
        comms.push(scheds.len() - 1);
    }
    let mut nests = Vec::new();
    for item in body {
        if let NodeItem::Nest(nest) = item {
            let kernels: Vec<Option<CompiledNest>> = match backend {
                Backend::Interp => Vec::new(),
                Backend::Bytecode => {
                    let t0 = machine.driver_tracer().now();
                    let kernels: Vec<Option<CompiledNest>> =
                        machine.pes.iter().map(|pe| compile_nest(nest, pe, scalars)).collect();
                    machine.driver_tracer().record(SpanKind::KernelCompile, t0);
                    kernels
                }
            };
            *compiled += kernels.iter().flatten().count() as u64;
            nests.push((nest.clone(), kernels));
        }
    }
    let pe_exts: Vec<Vec<i64>> = machine
        .pes
        .iter()
        .map(|pe| {
            nests
                .first()
                .and_then(|(nest, _)| nest_local_bounds(pe, nest))
                .map(|(_, hi)| hi)
                .unwrap_or_default()
        })
        .collect();
    let tile = PlanItem::Superstep {
        k: ss.k,
        comms,
        nests,
        expansions: ss.expansions.clone(),
        pe_exts,
        elided: ss.elided(),
    };
    match ss.shape {
        SsShape::Flat => Ok(vec![tile]),
        SsShape::TimeLoop { iters } => {
            let mut out = vec![PlanItem::TimeLoop { iters: iters / ss.k, body: vec![tile] }];
            let rem = iters % ss.k;
            if rem > 0 {
                let body_items = compile_items(machine, body, scheds, scalars, backend, compiled)?;
                out.push(PlanItem::TimeLoop { iters: rem, body: body_items });
            }
            Ok(out)
        }
    }
}

/// Run one PE's compute half of a superstep: every sub-step's nests over
/// their trapezoid expansions, under one [`SpanKind::Superstep`] span. The
/// sub-steps exchange nothing, so PEs proceed fully independently.
fn run_superstep_pe(
    state: &mut PeState,
    pe: usize,
    nests: &[(LoopNest, Vec<Option<CompiledNest>>)],
    expansions: &[Vec<Vec<(i64, i64)>>],
    scalars: &[f64],
) {
    let t0 = state.tracer.now();
    for sub in expansions {
        for ((nest, kernels), expand) in nests.iter().zip(sub) {
            let kernel = kernels.get(pe).and_then(|k| k.as_ref());
            let _ = backend::run_nest_expanded(state, nest, kernel, scalars, expand);
        }
    }
    state.tracer.record(SpanKind::Superstep, t0);
}

/// `(superstep execs, exchanges elided, redundant ghost points)` one step
/// performs, time-loop weighted. The redundant count is the deterministic
/// sum over PEs, sub-steps, and nests of the storage-clamped expanded box
/// minus the owned box — exactly what `run_nest_expanded` computes, so it
/// can be credited identically by every engine.
fn count_superstep(machine: &Machine, items: &[PlanItem]) -> (u64, u64, u64) {
    let mut acc = (0u64, 0u64, 0u64);
    for item in items {
        match item {
            PlanItem::Superstep { nests, expansions, elided, .. } => {
                acc.0 += 1;
                acc.1 += *elided;
                for sub in expansions {
                    for ((nest, _), expand) in nests.iter().zip(sub) {
                        for state in &machine.pes {
                            let Some((lo, hi)) = nest_local_bounds(state, nest) else { continue };
                            let owned: u64 =
                                lo.iter().zip(&hi).map(|(&l, &h)| (h - l + 1) as u64).product();
                            let (lo_x, hi_x) = expand_bounds(state, nest, &lo, &hi, expand);
                            let total: u64 =
                                lo_x.iter().zip(&hi_x).map(|(&l, &h)| (h - l + 1) as u64).product();
                            acc.2 += total - owned;
                        }
                    }
                }
            }
            PlanItem::TimeLoop { iters, body } => {
                let (s, e, r) = count_superstep(machine, body);
                let n = *iters as u64;
                acc = (acc.0 + n * s, acc.1 + n * e, acc.2 + n * r);
            }
            _ => {}
        }
    }
    acc
}

/// Rewrite a compiled item list, fusing each maximal run of consecutive
/// overlap-shift schedules followed by an eligible nest into a split-phase
/// [window](PlanItem::Overlap). Runs broken by any other item (a full
/// shift, a time loop, an ineligible nest) are flushed back as plain comm
/// items — the conservative fully-blocking path.
fn fuse_windows(machine: &Machine, items: Vec<PlanItem>, scheds: &[CompiledComm]) -> Vec<PlanItem> {
    let mut out = Vec::with_capacity(items.len());
    let mut run: Vec<usize> = Vec::new();
    let flush = |out: &mut Vec<PlanItem>, run: &mut Vec<usize>| {
        out.extend(run.drain(..).map(PlanItem::Comm));
    };
    for item in items {
        match item {
            PlanItem::Comm(i) if scheds[i].kind == MoveKind::Overlap => run.push(i),
            PlanItem::Nest { nest, kernels } if !run.is_empty() => {
                let derived = derive_splits(machine, &nest);
                let pre_drain: Vec<bool> = derived
                    .as_ref()
                    .map(|(splits, read_lo, read_hi)| {
                        run.iter()
                            .map(|&c| !comm_overlappable(&scheds[c], splits, read_lo, read_hi))
                            .collect()
                    })
                    .unwrap_or_default();
                match derived {
                    // A window where every receive would have to drain
                    // before the interior overlaps nothing: keep it on the
                    // blocking path so the counters stay meaningful.
                    Some((splits, _, _)) if !pre_drain.iter().all(|&b| b) => {
                        let barriers = run
                            .iter()
                            .enumerate()
                            .map(|(ci, &c)| {
                                run[..ci].iter().any(|&e| scheds[c].depends_on(&scheds[e]))
                            })
                            .collect();
                        out.push(PlanItem::Overlap {
                            comms: std::mem::take(&mut run),
                            barriers,
                            pre_drain,
                            nest,
                            kernels,
                            splits,
                        });
                    }
                    _ => {
                        flush(&mut out, &mut run);
                        out.push(PlanItem::Nest { nest, kernels });
                    }
                }
            }
            PlanItem::TimeLoop { iters, body } => {
                flush(&mut out, &mut run);
                out.push(PlanItem::TimeLoop { iters, body: fuse_windows(machine, body, scheds) });
            }
            other => {
                flush(&mut out, &mut run);
                out.push(other);
            }
        }
    }
    flush(&mut out, &mut run);
    out
}

/// Per-PE interior/boundary splits plus the unit body's per-dimension read
/// radii `(read_lo, read_hi)`.
type SplitPlan = (Vec<Option<RegionSplit>>, Vec<i64>, Vec<i64>);

/// Decide split-phase eligibility for a nest and compute each PE's
/// interior/boundary split. `None` means the whole nest takes the blocking
/// path; a per-PE `None` inside the vector means only that PE does (its
/// interior is degenerate).
///
/// Eligibility is judged on the semantic unit body (the pre-jam body for
/// unrolled nests — the jammed body is `factor` independent unit iterations
/// interleaved, so unit-level properties govern):
/// * [`iteration_local`] — every iteration's loads and stores of written
///   arrays hit only its own point, so iterations commute and interior
///   stores stay inside owned cells;
/// * no [`reads_before_def`] in either body — the interpreter and VM share
///   one register file across points, so a register read before its
///   definition would carry state across the interior/boundary seam.
///
/// The interior shrink per dimension is the widest load/store offset of the
/// unit body in that dimension: interior accesses then stay within owned
/// storage, untouched by the in-flight receives (which write ghost cells
/// only) — [`comm_overlappable`] double-checks that geometrically per
/// schedule and pre-drains any receive whose unpack would intersect the
/// interior's read region. Jammed accesses need no extra margin — a jammed
/// access at group start `i`, copy `k` is the unit access at point `i + k`,
/// and every group point lies inside the interior.
///
/// Returns the per-PE splits plus the unit body's per-dimension read radii
/// `(read_lo, read_hi)`.
fn derive_splits(machine: &Machine, nest: &LoopNest) -> Option<SplitPlan> {
    let unit = nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body);
    if !iteration_local(unit) || reads_before_def(unit) || reads_before_def(&nest.body) {
        return None;
    }
    let rank = nest.order.len();
    let mut read_lo = vec![0i64; rank];
    let mut read_hi = vec![0i64; rank];
    for i in unit {
        if let Instr::Load { offsets, .. } | Instr::Store { offsets, .. } = i {
            for (d, &o) in offsets.iter().enumerate() {
                read_lo[d] = read_lo[d].max(-o);
                read_hi[d] = read_hi[d].max(o);
            }
        }
    }
    let shrink_lo = read_lo.clone();
    let shrink_hi = read_hi.clone();
    let factor = nest.unroll.as_ref().map_or(1, |u| u.factor as i64);
    let splits: Vec<Option<RegionSplit>> = machine
        .pes
        .iter()
        .map(|pe| {
            let (lo, hi) = nest_local_bounds(pe, nest)?;
            split_region(&lo, &hi, &shrink_lo, &shrink_hi, &nest.order, factor)
        })
        .collect();
    // A window where no PE can split would overlap nothing: keep it on the
    // blocking path so the counters stay meaningful.
    if splits.iter().all(|s| s.is_none()) {
        return None;
    }
    Some((splits, read_lo, read_hi))
}

/// May this schedule's receives stay in flight while the interior runs?
/// Yes iff on every split PE, no cross-PE unpack region intersects the
/// cells that PE's interior reads — the interior box expanded by the
/// nest's per-dimension read radii. Local copies and fills execute in the
/// post half and non-split PEs drain everything before their nest, so only
/// receiving transfers on split PEs matter. Regions and bounds share the
/// 1-based local coordinate frame (owned cells `1..=ext`, ghosts outside).
fn comm_overlappable(
    sched: &CompiledComm,
    splits: &[Option<RegionSplit>],
    read_lo: &[i64],
    read_hi: &[i64],
) -> bool {
    splits.iter().enumerate().all(|(pe, split)| {
        let Some(split) = split else { return true };
        let read: Vec<(i64, i64)> = split
            .interior
            .iter()
            .enumerate()
            .map(|(d, &(l, h))| (l - read_lo[d], h + read_hi[d]))
            .collect();
        sched.actions.iter().all(|a| match a {
            CommAction::Transfer(t) if t.dst_pe == pe && t.src_pe != pe => {
                !regions_intersect(&read, &t.dst_local)
            }
            _ => true,
        })
    })
}

fn count_comm_execs(items: &[PlanItem]) -> u64 {
    items
        .iter()
        .map(|i| match i {
            PlanItem::Comm(_) => 1,
            PlanItem::Nest { .. } => 0,
            PlanItem::Overlap { comms, .. } | PlanItem::Superstep { comms, .. } => {
                comms.len() as u64
            }
            PlanItem::TimeLoop { iters, body } => *iters as u64 * count_comm_execs(body),
        })
        .sum()
}

fn count_kernel_execs(items: &[PlanItem]) -> u64 {
    items
        .iter()
        .map(|i| match i {
            PlanItem::Comm(_) => 0,
            PlanItem::Nest { kernels, .. } | PlanItem::Overlap { kernels, .. } => {
                kernels.iter().flatten().count() as u64
            }
            PlanItem::Superstep { nests, expansions, .. } => {
                expansions.len() as u64
                    * nests.iter().map(|(_, ks)| ks.iter().flatten().count() as u64).sum::<u64>()
            }
            PlanItem::TimeLoop { iters, body } => *iters as u64 * count_kernel_execs(body),
        })
        .sum()
}

/// `(windows, interior cells, boundary cells)` one step executes, summed
/// over PEs and time-loop weighted. PEs on the blocking path inside a
/// window contribute to neither cell count.
fn count_overlap(items: &[PlanItem]) -> (u64, u64, u64) {
    let mut acc = (0u64, 0u64, 0u64);
    for item in items {
        match item {
            PlanItem::Overlap { splits, .. } => {
                acc.0 += 1;
                for s in splits.iter().flatten() {
                    acc.1 += s.interior_cells();
                    acc.2 += s.boundary_cells();
                }
            }
            PlanItem::TimeLoop { iters, body } => {
                let (w, i, b) = count_overlap(body);
                let n = *iters as u64;
                acc = (acc.0 + n * w, acc.1 + n * i, acc.2 + n * b);
            }
            _ => {}
        }
    }
    acc
}

/// Max over PEs of the subgrid points one step computes on that PE.
fn pe_points(machine: &Machine, items: &[PlanItem]) -> u64 {
    fn walk(machine: &Machine, items: &[PlanItem], per: &mut [u64], weight: u64) {
        for item in items {
            match item {
                PlanItem::Nest { nest, .. } | PlanItem::Overlap { nest, .. } => {
                    for (pe, state) in machine.pes.iter().enumerate() {
                        if let Some((lo, hi)) = nest_local_bounds(state, nest) {
                            let box_: Vec<(i64, i64)> =
                                lo.iter().zip(&hi).map(|(&l, &h)| (l, h)).collect();
                            per[pe] += weight * cells(&box_);
                        }
                    }
                }
                PlanItem::Superstep { nests, expansions, .. } => {
                    for sub in expansions {
                        for ((nest, _), expand) in nests.iter().zip(sub) {
                            for (pe, state) in machine.pes.iter().enumerate() {
                                if let Some((lo, hi)) = nest_local_bounds(state, nest) {
                                    let (lo_x, hi_x) = expand_bounds(state, nest, &lo, &hi, expand);
                                    let box_: Vec<(i64, i64)> =
                                        lo_x.iter().zip(&hi_x).map(|(&l, &h)| (l, h)).collect();
                                    per[pe] += weight * cells(&box_);
                                }
                            }
                        }
                    }
                }
                PlanItem::TimeLoop { iters, body } => {
                    walk(machine, body, per, weight * *iters as u64);
                }
                _ => {}
            }
        }
    }
    let mut per = vec![0u64; machine.num_pes()];
    walk(machine, items, &mut per, 1);
    per.into_iter().max().unwrap_or(0)
}

/// Run a nest sweep on one PE, recording a [`SpanKind::KernelExec`] span
/// when it goes through a compiled kernel and [`SpanKind::Compute`] when
/// the interpreter evaluates it (a no-op branch with tracing off).
fn run_nest_traced(
    pe: &mut hpf_runtime::PeState,
    nest: &LoopNest,
    kernel: Option<&CompiledNest>,
    scalars: &[f64],
) {
    let t0 = pe.tracer.now();
    backend::run_nest(pe, nest, kernel, scalars);
    let kind = if kernel.is_some() { SpanKind::KernelExec } else { SpanKind::Compute };
    pe.tracer.record(kind, t0);
}

fn step_items_seq(
    machine: &mut Machine,
    items: &[PlanItem],
    scheds: &mut [CompiledComm],
    scalars: &[f64],
) {
    for item in items {
        match item {
            PlanItem::Comm(i) => machine.apply_compiled(&mut scheds[*i]),
            PlanItem::Nest { nest, kernels } | PlanItem::Overlap { nest, kernels, .. } => {
                // Windows degenerate to comm-then-nest on this engine; the
                // borrow split keeps the comm slots applied first.
                if let PlanItem::Overlap { comms, .. } = item {
                    for &i in comms {
                        machine.apply_compiled(&mut scheds[i]);
                    }
                }
                for pe in 0..machine.num_pes() {
                    let kernel = kernels.get(pe).and_then(|k| k.as_ref());
                    run_nest_traced(&mut machine.pes[pe], nest, kernel, scalars);
                }
            }
            PlanItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    step_items_seq(machine, body, scheds, scalars);
                }
            }
            PlanItem::Superstep { comms, nests, expansions, .. } => {
                for &i in comms {
                    machine.apply_compiled(&mut scheds[i]);
                }
                // Sub-steps exchange nothing, so each PE runs all of its
                // sub-steps before the next PE starts — same results.
                for pe in 0..machine.num_pes() {
                    run_superstep_pe(&mut machine.pes[pe], pe, nests, expansions, scalars);
                }
            }
        }
    }
}

fn step_items_worker(w: &mut Worker, items: &[PlanItem], scheds: &[CompiledComm]) {
    for item in items {
        match item {
            PlanItem::Comm(i) => {
                let s = &scheds[*i];
                w.comm(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
            }
            PlanItem::Nest { nest, kernels } | PlanItem::Overlap { nest, kernels, .. } => {
                // Windows degenerate to comm-then-nest on this engine too.
                if let PlanItem::Overlap { comms, .. } = item {
                    for &i in comms {
                        let s = &scheds[i];
                        w.comm(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
                    }
                }
                let kernel = kernels.get(w.pe).and_then(|k| k.as_ref());
                run_nest_traced(w.state, nest, kernel, w.scalars);
            }
            PlanItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    step_items_worker(w, body, scheds);
                }
            }
            PlanItem::Superstep { comms, nests, expansions, .. } => {
                for &i in comms {
                    let s = &scheds[i];
                    w.comm(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
                }
                run_superstep_pe(w.state, w.pe, nests, expansions, w.scalars);
            }
        }
    }
}

/// The split-phase walker behind [`ExecPlan::step_par_overlap`]. Identical
/// to [`step_items_worker`] except on [`PlanItem::Overlap`]: post every
/// schedule's send half (draining pending receives first wherever a
/// dependency barrier demands it), compute the nest's interior while the
/// messages are in flight, drain the remaining receives in plan order, then
/// compute the boundary strips. A PE whose interior is degenerate drains
/// immediately and runs the whole nest — the blocking protocol.
fn step_items_worker_overlap(w: &mut Worker, items: &[PlanItem], scheds: &[CompiledComm]) {
    for item in items {
        match item {
            PlanItem::Comm(i) => {
                let s = &scheds[*i];
                w.comm(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
            }
            PlanItem::Nest { nest, kernels } => {
                let kernel = kernels.get(w.pe).and_then(|k| k.as_ref());
                run_nest_traced(w.state, nest, kernel, w.scalars);
            }
            PlanItem::Overlap { comms, barriers, pre_drain, nest, kernels, splits } => {
                let drain = |w: &mut Worker, pending: &mut Vec<(usize, u64)>| {
                    for (ci, seq) in pending.drain(..) {
                        let s = &scheds[comms[ci]];
                        w.comm_finish(s.dst, &s.actions, seq);
                    }
                };
                let mut pending: Vec<(usize, u64)> = Vec::with_capacity(comms.len());
                for (ci, &slot) in comms.iter().enumerate() {
                    if barriers[ci] {
                        drain(w, &mut pending);
                    }
                    let s = &scheds[slot];
                    let seq = w.comm_post(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
                    pending.push((ci, seq));
                }
                let kernel = kernels.get(w.pe).and_then(|k| k.as_ref());
                match splits.get(w.pe).and_then(|s| s.as_ref()) {
                    Some(split) => {
                        // Receives whose unpack writes cells the interior
                        // reads (halo along unshrunk dimensions) must land
                        // first; the rest stay in flight across the
                        // interior sweep.
                        let mut in_flight: Vec<(usize, u64)> = Vec::with_capacity(pending.len());
                        for (ci, seq) in pending.drain(..) {
                            if pre_drain[ci] {
                                let s = &scheds[comms[ci]];
                                w.comm_finish(s.dst, &s.actions, seq);
                            } else {
                                in_flight.push((ci, seq));
                            }
                        }
                        // Snapshot counters around the interior sweep and
                        // the drain: the cost model credits the receive
                        // time that was covered by interior compute (the
                        // latency split-phase hides; DESIGN.md §5d).
                        let pre = w.state.stats;
                        let t_int = w.state.tracer.now();
                        backend::run_nest_range(w.state, nest, kernel, w.scalars, &split.interior);
                        let t_int_end = w.state.tracer.now();
                        let mid = w.state.stats;
                        // The window's receives drain under one span (the
                        // per-comm spans stay quiet) so the drain's modeled
                        // attribution is the same per-window quantity the
                        // hidden-credit counter is built from.
                        let t_drn = w.state.tracer.now();
                        for (ci, seq) in in_flight.drain(..) {
                            let s = &scheds[comms[ci]];
                            w.comm_finish_quiet(s.dst, &s.actions, seq);
                        }
                        let t_drn_end = w.state.tracer.now();
                        let post = w.state.stats;
                        let t_bnd = w.state.tracer.now();
                        for strip in &split.boundary {
                            backend::run_nest_range(w.state, nest, kernel, w.scalars, strip);
                        }
                        w.state.tracer.record(SpanKind::Boundary, t_bnd);
                        let cost = &w.cfg.cost;
                        let interior_ns = cost.pe_time_ns(&mid.delta_since(&pre));
                        let recv_ns = cost.pe_time_ns(&post.delta_since(&mid));
                        let hidden = recv_ns.min(interior_ns);
                        w.state.overlap_hidden_ns += hidden;
                        let tracer = &mut w.state.tracer;
                        tracer.record_at(SpanKind::Interior, t_int, t_int_end, interior_ns, 0.0);
                        tracer.record_at(SpanKind::CommDrain, t_drn, t_drn_end, recv_ns, hidden);
                    }
                    None => {
                        drain(w, &mut pending);
                        run_nest_traced(w.state, nest, kernel, w.scalars);
                    }
                }
            }
            PlanItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    step_items_worker_overlap(w, body, scheds);
                }
            }
            // Supersteps already avoid (k-1)/k of all communication; the
            // single deep fill stays on the blocking protocol.
            PlanItem::Superstep { comms, nests, expansions, .. } => {
                for &i in comms {
                    let s = &scheds[i];
                    w.comm(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
                }
                run_superstep_pe(w.state, w.pe, nests, expansions, w.scalars);
            }
        }
    }
}

/// Swap pairs applied after each step — the double-buffer flip for
/// Jacobi-style kernels written without an explicit copy-back statement.
pub fn apply_swaps(machine: &mut Machine, swaps: &[(ArrayId, ArrayId)]) {
    for &(a, b) in swaps {
        machine.swap_subgrids(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::execute_seq;
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};
    use hpf_runtime::MachineConfig;

    const JACOBI: &str = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
"#;

    // Large enough that each PE's 8x8 block keeps a factor-aligned interior
    // after shrinking by the stencil radius (8x8 blocks over 2x2 do not).
    const JACOBI16: &str = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
"#;

    fn init(p: &[i64]) -> f64 {
        ((p[0] * 31 + p[1] * 7) as f64).sin()
    }

    /// Shorthand: the split-phase overlapped engine on a given backend.
    fn ovl(backend: Backend) -> ExecConfig {
        ExecConfig::new().engine(Engine::ThreadedOverlap).backend(backend)
    }

    fn setup(
        src: &str,
        stage: Stage,
        grid: &[usize],
    ) -> (Machine, hpf_passes::Compiled, hpf_ir::ArrayId) {
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(stage));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::with_grid(grid.to_vec()));
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, init);
        m.reset_stats();
        (m, compiled, u)
    }

    #[test]
    fn plan_steps_match_repeated_execute_seq() {
        for stage in [Stage::Original, Stage::MemOpt] {
            // Plan once, step 5 times.
            let (mut m_plan, compiled, u) = setup(JACOBI, stage, &[2, 2]);
            let mut plan =
                ExecPlan::build(&mut m_plan, &compiled.node, &ExecConfig::new()).unwrap();
            for _ in 0..5 {
                plan.step_seq(&mut m_plan);
            }
            // Re-execute 5 times on a fresh path (state carries forward in
            // the same machine; execute_seq leaves arrays allocated).
            let (mut m_ref, compiled_ref, _) = setup(JACOBI, stage, &[2, 2]);
            for _ in 0..5 {
                execute_seq(&mut m_ref, &compiled_ref.node).unwrap();
            }
            assert_eq!(m_plan.gather(u), m_ref.gather(u), "stage {stage:?}");
            // Same per-PE counters; the plan path adds only schedule stats.
            assert_eq!(m_plan.stats().per_pe, m_ref.stats().per_pe);
            let st = m_plan.stats();
            assert_eq!(st.schedules_built as usize, plan.comm_count());
            assert_eq!(st.schedule_reuses, 5 * plan.comm_execs_per_step());
        }
    }

    #[test]
    fn plan_step_par_bitwise_equals_seq() {
        let (mut m_seq, compiled, u) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_seq = ExecPlan::build(&mut m_seq, &compiled.node, &ExecConfig::new()).unwrap();
        let (mut m_par, compiled2, _) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_par = ExecPlan::build(&mut m_par, &compiled2.node, &ExecConfig::new()).unwrap();
        for _ in 0..4 {
            p_seq.step_seq(&mut m_seq);
            p_par.step_par(&mut m_par);
        }
        assert_eq!(m_seq.gather(u), m_par.gather(u));
        assert_eq!(m_seq.stats(), m_par.stats());
    }

    #[test]
    fn plan_compiles_time_loops_once() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 6 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;
        let (mut m, compiled, u) = setup(src, Stage::MemOpt, &[2, 2]);
        let mut plan = ExecPlan::build(&mut m, &compiled.node, &ExecConfig::new()).unwrap();
        // The DO body's comm ops are compiled once but execute 6× per step.
        assert_eq!(plan.comm_execs_per_step(), 6 * plan.comm_count() as u64);
        plan.step_seq(&mut m);
        let st = m.stats();
        assert_eq!(st.schedules_built as usize, plan.comm_count());
        assert_eq!(st.schedule_reuses, plan.comm_execs_per_step());
        // Matches the one-shot executor.
        let (mut m_ref, compiled_ref, _) = setup(src, Stage::MemOpt, &[2, 2]);
        execute_seq(&mut m_ref, &compiled_ref.node).unwrap();
        assert_eq!(m.gather(u), m_ref.gather(u));
    }

    #[test]
    fn overlapped_plan_fuses_windows_and_steps_bitwise_equal() {
        for backend in [Backend::Interp, Backend::Bytecode] {
            for stage in [Stage::Original, Stage::MemOpt] {
                let (mut m_seq, compiled, u) = setup(JACOBI16, stage, &[2, 2]);
                let mut p_seq = ExecPlan::build(
                    &mut m_seq,
                    &compiled.node,
                    &ExecConfig::new().backend(backend),
                )
                .unwrap();
                let (mut m_ovl, compiled2, _) = setup(JACOBI16, stage, &[2, 2]);
                let mut p_ovl =
                    ExecPlan::build(&mut m_ovl, &compiled2.node, &ovl(backend)).unwrap();
                if stage == Stage::MemOpt {
                    // Only the optimized pipeline emits overlap shifts; at
                    // Stage::Original every CSHIFT is a full-shift copy and
                    // the plan has nothing to fuse.
                    assert!(
                        p_ovl.overlap_windows_per_step() > 0,
                        "JACOBI at {stage:?} should fuse at least one window"
                    );
                    assert!(p_ovl.interior_cells_per_step() > 0);
                    assert!(p_ovl.boundary_cells_per_step() > 0);
                }
                for _ in 0..4 {
                    p_seq.step_seq(&mut m_seq);
                    p_ovl.step_par_overlap(&mut m_ovl);
                }
                assert_eq!(m_seq.gather(u), m_ovl.gather(u), "{backend:?} {stage:?}");
                assert_eq!(m_seq.stats().per_pe, m_ovl.stats().per_pe, "{backend:?} {stage:?}");
                let st = m_ovl.stats();
                assert_eq!(st.overlapped_steps, 4 * p_ovl.overlap_windows_per_step());
                assert_eq!(st.interior_cells, 4 * p_ovl.interior_cells_per_step());
                assert_eq!(st.boundary_cells, 4 * p_ovl.boundary_cells_per_step());
            }
        }
    }

    #[test]
    fn overlapped_steps_record_hidden_comm_credit() {
        // Same kernel, same counters on every PE — but the split-phase
        // engine hides receive time behind measured interior compute, so it
        // records a positive per-PE credit and its modeled time is strictly
        // below the blocking plan's. Blocking engines record zero.
        let (mut m_blk, compiled, _) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let mut p_blk = ExecPlan::build(&mut m_blk, &compiled.node, &ExecConfig::new()).unwrap();
        let (mut m_ovl, c2, _) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let mut p_ovl = ExecPlan::build(&mut m_ovl, &c2.node, &ovl(Backend::Interp)).unwrap();
        assert!(p_ovl.overlap_windows_per_step() > 0);
        for _ in 0..3 {
            p_blk.step_par(&mut m_blk);
            p_ovl.step_par_overlap(&mut m_ovl);
        }
        let st_blk = m_blk.stats();
        let st_ovl = m_ovl.stats();
        assert_eq!(st_blk.per_pe, st_ovl.per_pe, "counters stay engine-independent");
        assert!(st_blk.hidden_comm_ns.iter().all(|&h| h == 0.0));
        assert!(
            st_ovl.hidden_comm_ns.iter().all(|&h| h > 0.0),
            "every split PE hid some receive time: {:?}",
            st_ovl.hidden_comm_ns
        );
        let cost = hpf_runtime::CostModel::sp2();
        assert!(cost.modeled_time_ns(&st_ovl) < cost.modeled_time_ns(&st_blk));
        // The credit can never exceed what a receive actually costs.
        for (pe, s) in st_ovl.per_pe.iter().enumerate() {
            let recv_only = hpf_runtime::PeStats {
                msgs_recv: s.msgs_recv,
                bytes_recv: s.bytes_recv,
                ..Default::default()
            };
            assert!(st_ovl.hidden_comm_ns[pe] <= cost.pe_time_ns(&recv_only));
        }
    }

    #[test]
    fn overlapped_plan_blocking_engines_still_work() {
        // An overlapped plan stepped on the blocking engines executes the
        // windows as comm-then-nest, identical to an unfused plan.
        let (mut m_ref, compiled, u) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_ref = ExecPlan::build(&mut m_ref, &compiled.node, &ExecConfig::new()).unwrap();
        let (mut m_seq, c2, _) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_seq = ExecPlan::build(&mut m_seq, &c2.node, &ovl(Backend::Interp)).unwrap();
        let (mut m_par, c3, _) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_par = ExecPlan::build(&mut m_par, &c3.node, &ovl(Backend::Interp)).unwrap();
        for _ in 0..3 {
            p_ref.step_seq(&mut m_ref);
            p_seq.step_seq(&mut m_seq);
            p_par.step_par(&mut m_par);
        }
        assert_eq!(m_ref.gather(u), m_seq.gather(u));
        assert_eq!(m_ref.gather(u), m_par.gather(u));
        assert_eq!(m_ref.stats(), m_seq.stats(), "blocking seq step ignores windows");
        assert_eq!(m_ref.stats(), m_par.stats(), "blocking par step ignores windows");
    }

    #[test]
    fn par_threshold_degrades_small_steps_to_seq() {
        // 8x8 over 2x2 PEs: 16 points per PE per nest, 32 per step — below
        // a threshold of 64, so step_par runs on the calling thread with
        // identical results and counters.
        let cfg = MachineConfig::sp2_2x2().par_threshold(64);
        let checked = compile_source(JACOBI).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(Stage::MemOpt));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mk = |cfg: MachineConfig| {
            let mut m = Machine::new(cfg);
            m.alloc(u, checked.symbols.array(u)).unwrap();
            m.fill(u, init);
            m.reset_stats();
            m
        };
        let mut m_seq = mk(MachineConfig::sp2_2x2());
        let mut p_seq = ExecPlan::build(&mut m_seq, &compiled.node, &ExecConfig::new()).unwrap();
        let mut m_par = mk(cfg.clone());
        let mut p_par = ExecPlan::build(&mut m_par, &compiled.node, &ExecConfig::new()).unwrap();
        let mut m_ovl = mk(cfg);
        let mut p_ovl = ExecPlan::build(&mut m_ovl, &compiled.node, &ovl(Backend::Interp)).unwrap();
        for _ in 0..3 {
            p_seq.step_seq(&mut m_seq);
            p_par.step_par(&mut m_par);
            p_ovl.step_par_overlap(&mut m_ovl);
        }
        assert_eq!(m_seq.gather(u), m_par.gather(u));
        assert_eq!(m_seq.gather(u), m_ovl.gather(u));
        assert_eq!(m_seq.stats(), m_par.stats());
        // Degraded overlap steps overlap nothing: counters stay zero.
        assert_eq!(m_ovl.stats().overlapped_steps, 0);
        assert_eq!(m_seq.stats(), m_ovl.stats());
    }

    #[test]
    fn window_degenerate_interior_takes_blocking_path() {
        // A 4-row space shrunk by 1 on each side over a 4x1 grid leaves a
        // single owned row per PE along dim 0 — factor alignment then
        // consumes the interior on every PE, so no window is fused and the
        // plan still steps correctly.
        let (mut m_seq, compiled, u) = setup(JACOBI, Stage::MemOpt, &[4, 1]);
        let mut p_seq = ExecPlan::build(&mut m_seq, &compiled.node, &ExecConfig::new()).unwrap();
        let (mut m_ovl, c2, _) = setup(JACOBI, Stage::MemOpt, &[4, 1]);
        let mut p_ovl = ExecPlan::build(&mut m_ovl, &c2.node, &ovl(Backend::Interp)).unwrap();
        assert_eq!(p_ovl.overlap_windows_per_step(), 0, "degenerate interiors: no window");
        for _ in 0..3 {
            p_seq.step_seq(&mut m_seq);
            p_ovl.step_par_overlap(&mut m_ovl);
        }
        assert_eq!(m_seq.gather(u), m_ovl.gather(u));
        assert_eq!(m_seq.stats().per_pe, m_ovl.stats().per_pe);
    }

    #[test]
    fn traced_overlap_plan_spans_reproduce_hidden_credit() {
        // With tracing on, every overlap window records an Interior span
        // and one window-drain CommDrain span carrying the cost-model
        // attribution — summing the drains' hidden_ns per PE reproduces
        // the always-on hidden_comm_ns counters exactly.
        let (mut m, compiled, u) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let cfg = ovl(Backend::Bytecode).trace(true);
        let mut plan = ExecPlan::build(&mut m, &compiled.node, &cfg).unwrap();
        assert_eq!(plan.engine(), Engine::ThreadedOverlap);
        assert!(m.tracing_enabled());
        for _ in 0..3 {
            plan.step(&mut m);
        }
        let stats = m.stats();
        let summary = m.take_trace().summary();
        let derived = summary.hidden_comm_ns();
        assert_eq!(derived, stats.hidden_comm_ns, "trace-derived hidden == counter");
        assert!(derived.iter().all(|&h| h > 0.0));
        for pe in summary.pe_tracks() {
            assert!(pe.count(SpanKind::Interior) > 0, "{}", pe.name);
            assert!(pe.count(SpanKind::Boundary) > 0, "{}", pe.name);
            assert!(pe.count(SpanKind::CommPost) > 0, "{}", pe.name);
            assert!(pe.count(SpanKind::KernelExec) > 0, "{}", pe.name);
        }
        let driver = summary.track("driver").expect("driver track");
        assert!(driver.count(SpanKind::ScheduleBuild) > 0);
        assert!(driver.count(SpanKind::KernelCompile) > 0);
        // Results stay bitwise identical to an untraced sequential plan.
        let (mut m_ref, c2, _) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let mut p_ref = ExecPlan::build(&mut m_ref, &c2.node, &ExecConfig::new()).unwrap();
        for _ in 0..3 {
            p_ref.step(&mut m_ref);
        }
        assert_eq!(m.gather(u), m_ref.gather(u));
        assert_eq!(m.stats().per_pe, m_ref.stats().per_pe);
    }

    #[test]
    fn checked_build_rejects_bad_shifts_at_build_time() {
        let src = "PARAM N = 8\nREAL U(N,N), T(N,N)\nT = CSHIFT(U, SHIFT=2, DIM=1) + U\n";
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::full().halo(2));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2()); // halo 1
        m.alloc(u, checked.symbols.array(u)).unwrap();
        let cfg = ExecConfig::new().check_invariants(true);
        let err = ExecPlan::build(&mut m, &compiled.node, &cfg).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { .. }));
    }

    #[test]
    fn plan_propagates_shift_too_wide() {
        let src = "PARAM N = 8\nREAL U(N,N), T(N,N)\nT = CSHIFT(U, SHIFT=2, DIM=1) + U\n";
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::full().halo(2));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2()); // halo 1
        m.alloc(u, checked.symbols.array(u)).unwrap();
        let err = ExecPlan::build(&mut m, &compiled.node, &ExecConfig::new()).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { .. }));
    }

    #[test]
    fn swaps_flip_buffers_each_step() {
        // U and T have identical distribution; swapping after a step makes
        // T's fresh values the next step's U without copying.
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
"#;
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::full());
        let u = checked.symbols.lookup_array("U").unwrap();
        let t = checked.symbols.lookup_array("T").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, init);
        let mut plan = ExecPlan::build(&mut m, &compiled.node, &ExecConfig::new()).unwrap();
        plan.step_seq(&mut m);
        let after_one = m.gather(t);
        apply_swaps(&mut m, &[(u, t)]);
        assert_eq!(m.gather(u), after_one, "swap moved T's result into U");
    }

    /// Like [`setup`] at `Stage::MemOpt`, but with a `halo`-deep overlap
    /// area for superstep builds.
    fn setup_deep(
        src: &str,
        grid: &[usize],
        halo: usize,
    ) -> (Machine, hpf_passes::Compiled, hpf_ir::ArrayId) {
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(Stage::MemOpt));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::with_grid(grid.to_vec()).halo(halo));
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, init);
        m.reset_stats();
        (m, compiled, u)
    }

    #[test]
    fn flat_superstep_bitwise_equals_classic_across_engines() {
        const STEPS: usize = 8;
        let (mut m_ref, c_ref, u) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let mut p_ref = ExecPlan::build(&mut m_ref, &c_ref.node, &ExecConfig::new()).unwrap();
        for _ in 0..STEPS {
            p_ref.step_seq(&mut m_ref);
        }
        let want = m_ref.gather(u);
        for k in [2usize, 4] {
            for backend in [Backend::Interp, Backend::Bytecode] {
                for engine in [Engine::Sequential, Engine::Threaded, Engine::ThreadedOverlap] {
                    let (mut m, c, _) = setup_deep(JACOBI16, &[2, 2], k);
                    let cfg = ExecConfig::new().engine(engine).backend(backend).superstep(k);
                    let mut plan = ExecPlan::build(&mut m, &c.node, &cfg).unwrap();
                    assert!(plan.superstep_diags().is_empty(), "{:?}", plan.superstep_diags());
                    assert_eq!(plan.logical_steps_per_step(), k, "flat kernel is driver-stepped");
                    assert_eq!(plan.supersteps_per_step(), 1);
                    assert!(plan.redundant_cells_per_step() > 0);
                    for _ in 0..STEPS / k {
                        plan.step(&mut m);
                    }
                    assert_eq!(m.gather(u), want, "k={k} {backend:?} {engine:?}");
                }
            }
        }
    }

    #[test]
    fn superstep_elides_exchanges_and_counts_redundancy() {
        const STEPS: usize = 8;
        let k = 4usize;
        let (mut m_ref, c_ref, u) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let mut p_ref = ExecPlan::build(&mut m_ref, &c_ref.node, &ExecConfig::new()).unwrap();
        for _ in 0..STEPS {
            p_ref.step_seq(&mut m_ref);
        }
        let (mut m, c, _) = setup_deep(JACOBI16, &[2, 2], k);
        let cfg = ExecConfig::new().superstep(k).trace(true);
        let mut plan = ExecPlan::build(&mut m, &c.node, &cfg).unwrap();
        for _ in 0..STEPS / k {
            plan.step_seq(&mut m);
        }
        assert_eq!(m.gather(u), m_ref.gather(u));
        let st = m.stats();
        let st_ref = m_ref.stats();
        // k−1 of every k exchange phases disappear, and the counters say so.
        assert_eq!(plan.exchanges_elided_per_step(), (k as u64 - 1) * 4);
        assert_eq!(st.exchanges_elided, (STEPS / k) as u64 * plan.exchanges_elided_per_step());
        assert_eq!(st.redundant_cells, (STEPS / k) as u64 * plan.redundant_cells_per_step());
        assert_eq!(st_ref.exchanges_elided, 0);
        // Visible in schedule traffic: 4 deep fills per superstep replace
        // 4 exchanges per classic step.
        assert_eq!(st.schedule_reuses * k as u64, st_ref.schedule_reuses);
        // Every PE records one Superstep span per superstep.
        for pe in m.take_trace().summary().pe_tracks() {
            assert_eq!(pe.count(SpanKind::Superstep), (STEPS / k) as u64, "{}", pe.name);
        }
    }

    #[test]
    fn time_loop_superstep_tiles_with_remainder() {
        // 11 iterations: k=2 → 5 supersteps + 1 classic; k=4 → 2 + 3.
        const SRC: &str = r#"
PARAM N = 16
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 11 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;
        let (mut m_ref, c_ref, u) = setup(SRC, Stage::MemOpt, &[2, 2]);
        let mut p_ref = ExecPlan::build(&mut m_ref, &c_ref.node, &ExecConfig::new()).unwrap();
        p_ref.step_seq(&mut m_ref);
        for k in [2usize, 4] {
            let (mut m, c, _) = setup_deep(SRC, &[2, 2], k);
            let cfg = ExecConfig::new().backend(Backend::Bytecode).superstep(k);
            let mut plan = ExecPlan::build(&mut m, &c.node, &cfg).unwrap();
            assert_eq!(plan.logical_steps_per_step(), 1, "the loop tiles in place");
            assert_eq!(plan.supersteps_per_step(), (11 / k) as u64);
            plan.step_seq(&mut m);
            assert_eq!(m.gather(u), m_ref.gather(u), "k={k}");
        }
    }

    #[test]
    fn ineligible_kernel_falls_back_to_classic_with_diagnostics() {
        // Stage::Original leaves full-shift copies — SS002-ineligible — so
        // the build keeps the classic schedule and explains why.
        let (mut m, compiled, u) = setup(JACOBI16, Stage::Original, &[2, 2]);
        let cfg = ExecConfig::new().superstep(4);
        let mut plan = ExecPlan::build(&mut m, &compiled.node, &cfg).unwrap();
        assert!(
            plan.superstep_diags().iter().any(|d| d.code == superstep::SS002),
            "{:?}",
            plan.superstep_diags()
        );
        assert_eq!(plan.supersteps_per_step(), 0);
        assert_eq!(plan.logical_steps_per_step(), 1);
        let (mut m_ref, c2, _) = setup(JACOBI16, Stage::Original, &[2, 2]);
        let mut p_ref = ExecPlan::build(&mut m_ref, &c2.node, &ExecConfig::new()).unwrap();
        for _ in 0..3 {
            plan.step_seq(&mut m);
            p_ref.step_seq(&mut m_ref);
        }
        assert_eq!(m.gather(u), m_ref.gather(u));
        assert_eq!(m.stats(), m_ref.stats());
    }

    #[test]
    fn shallow_halo_falls_back_with_ss008() {
        // Machine halo 1 cannot hold a depth-4 deep fill; the build falls
        // back to the classic schedule rather than fail.
        let (mut m, compiled, _) = setup(JACOBI16, Stage::MemOpt, &[2, 2]);
        let plan =
            ExecPlan::build(&mut m, &compiled.node, &ExecConfig::new().superstep(4)).unwrap();
        assert!(
            plan.superstep_diags().iter().any(|d| d.code == superstep::SS008),
            "{:?}",
            plan.superstep_diags()
        );
        assert_eq!(plan.supersteps_per_step(), 0);
    }
}
