//! Persistent-schedule execution plans: compile once, step many times.
//!
//! [`ExecPlan::build`] walks the compiled node program once, allocates every
//! array it references, and compiles each communication op against the
//! allocated subgrids into a [`CompiledComm`] — neighbor PEs, RSD-extended
//! bounds, flat pack/unpack index lists, and pooled message buffers are all
//! resolved here, at plan time. Each subsequent [`ExecPlan::step_seq`] /
//! [`ExecPlan::step_par`] then executes one sweep of the kernel with **zero**
//! per-step subgrid math, plan recomputation, or buffer allocation — the
//! persistent-communication pattern of `MPI_Send_init`-style halo exchange.
//!
//! Both step engines are bitwise identical to their one-shot counterparts
//! ([`crate::seq::execute_seq`], [`crate::par::execute_par`]) and produce the
//! same per-PE counters; the only observable difference is the
//! `schedules_built` / `schedule_reuses` pair in `AggStats`.

use crate::backend::{self, Backend};
use crate::nest::scalar_values;
use crate::par::{Msg, Worker};
use hpf_codegen::{compile_nest, CompiledNest};
use hpf_ir::ArrayId;
use hpf_passes::loopir::{CommOp, LoopNest, NodeItem, NodeProgram};
use hpf_runtime::schedule::{cshift_plan, overlap_shift_plan};
use hpf_runtime::{CompiledComm, Machine, MoveKind, RtError};
use std::collections::HashMap;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

/// One step-program item: like `NodeItem`, but communication ops are slots
/// into the plan's compiled-schedule table.
#[derive(Debug)]
enum PlanItem {
    /// Execute the compiled schedule at this slot.
    Comm(usize),
    /// Run a subgrid loop nest on every PE, through the per-PE compiled
    /// kernel where one exists (`kernels` is empty under the interpreter
    /// backend and per-PE `None` where codegen declined the nest).
    Nest { nest: LoopNest, kernels: Vec<Option<CompiledNest>> },
    /// Repeat the body (a `DO n TIMES` loop folded into one step).
    TimeLoop { iters: usize, body: Vec<PlanItem> },
}

/// A kernel compiled against one machine: allocated arrays, persistent
/// communication schedules, per-PE bytecode kernels (when built with the
/// bytecode [`Backend`]), and a step program that reuses them all.
#[derive(Debug)]
pub struct ExecPlan {
    items: Vec<PlanItem>,
    scheds: Vec<CompiledComm>,
    scalars: Vec<f64>,
    comm_execs_per_step: u64,
    kernel_execs_per_step: u64,
}

impl ExecPlan {
    /// Allocate every referenced array (honoring the memory budget and
    /// overlap-width checks, like the one-shot executors) and compile every
    /// communication op of the node program into a persistent schedule.
    /// Nests run on the interpreter backend; see [`ExecPlan::build_with`].
    pub fn build(machine: &mut Machine, node: &NodeProgram) -> Result<ExecPlan, RtError> {
        ExecPlan::build_with(machine, node, Backend::default())
    }

    /// [`ExecPlan::build`] with an explicit nest-evaluation [`Backend`].
    /// Under [`Backend::Bytecode`] every nest is additionally compiled to a
    /// per-PE bytecode kernel here, once, and every subsequent step reuses
    /// the kernels — the loop-nest analogue of the persistent communication
    /// schedules.
    pub fn build_with(
        machine: &mut Machine,
        node: &NodeProgram,
        backend: Backend,
    ) -> Result<ExecPlan, RtError> {
        crate::seq::allocate(machine, node)?;
        let scalars = scalar_values(&node.symbols);
        let mut scheds = Vec::new();
        let mut compiled = 0u64;
        let items =
            compile_items(machine, &node.items, &mut scheds, &scalars, backend, &mut compiled)?;
        machine.note_kernels_compiled(compiled);
        let comm_execs_per_step = count_comm_execs(&items);
        let kernel_execs_per_step = count_kernel_execs(&items);
        Ok(ExecPlan { items, scheds, scalars, comm_execs_per_step, kernel_execs_per_step })
    }

    /// Number of distinct communication schedules compiled.
    pub fn comm_count(&self) -> usize {
        self.scheds.len()
    }

    /// Schedule executions one step performs (counts time-loop repeats).
    pub fn comm_execs_per_step(&self) -> u64 {
        self.comm_execs_per_step
    }

    /// Compiled-kernel executions one step performs across all PEs
    /// (time-loop weighted; zero under the interpreter backend).
    pub fn kernel_execs_per_step(&self) -> u64 {
        self.kernel_execs_per_step
    }

    /// Bytes held by the pooled message buffers across all schedules.
    pub fn pooled_bytes(&self) -> usize {
        self.scheds.iter().map(|s| s.pooled_bytes()).sum()
    }

    /// Run one sweep of the kernel on the sequential engine.
    pub fn step_seq(&mut self, machine: &mut Machine) {
        let ExecPlan { items, scheds, scalars, .. } = self;
        step_items_seq(machine, items, scheds, scalars);
        machine.note_kernel_execs(self.kernel_execs_per_step);
    }

    /// Run one sweep on the SPMD engine: one thread per PE, channel message
    /// passing, reusing the precompiled plans (no per-step geometry or RSD
    /// math on the workers). Bitwise identical to [`ExecPlan::step_seq`].
    pub fn step_par(&mut self, machine: &mut Machine) {
        let cfg = machine.cfg.clone();
        let metas = machine.metas_snapshot();
        let n = machine.num_pes();
        let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) =
            (0..n).map(|_| unbounded()).unzip();
        let items = &self.items;
        let scheds = &self.scheds;
        let scalars = &self.scalars;
        std::thread::scope(|scope| {
            for (pe_state, rx) in machine.pes.iter_mut().zip(rxs) {
                let txs = txs.clone();
                let cfg = &cfg;
                let metas = &metas;
                scope.spawn(move || {
                    let mut w = Worker {
                        pe: pe_state.pe,
                        state: pe_state,
                        rx,
                        txs,
                        cfg,
                        metas,
                        scalars,
                        seq: 0,
                        stash: HashMap::new(),
                    };
                    step_items_worker(&mut w, items, scheds);
                });
            }
        });
        // Workers deliver messages themselves; credit the schedule reuses
        // and kernel executions on the machine so both engines report
        // identical counters.
        machine.note_schedule_reuses(self.comm_execs_per_step);
        machine.note_kernel_execs(self.kernel_execs_per_step);
    }
}

/// Walk node items, compiling each communication op against the machine —
/// and, under the bytecode backend, each nest into per-PE kernels.
fn compile_items(
    machine: &mut Machine,
    items: &[NodeItem],
    scheds: &mut Vec<CompiledComm>,
    scalars: &[f64],
    backend: Backend,
    compiled: &mut u64,
) -> Result<Vec<PlanItem>, RtError> {
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        match item {
            NodeItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                let geom = machine.meta(*src).geom.clone();
                let plan = cshift_plan(&geom, *shift, *dim, *kind);
                out.push(push_sched(
                    scheds,
                    machine.compile_comm(*dst, *src, plan, MoveKind::FullShift),
                ));
            }
            NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                let geom = machine.meta(*array).geom.clone();
                let plan =
                    overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, machine.cfg.halo)?;
                out.push(push_sched(
                    scheds,
                    machine.compile_comm(*array, *array, plan, MoveKind::Overlap),
                ));
            }
            NodeItem::Nest(nest) => {
                let kernels: Vec<Option<CompiledNest>> = match backend {
                    Backend::Interp => Vec::new(),
                    Backend::Bytecode => {
                        machine.pes.iter().map(|pe| compile_nest(nest, pe, scalars)).collect()
                    }
                };
                *compiled += kernels.iter().flatten().count() as u64;
                out.push(PlanItem::Nest { nest: nest.clone(), kernels });
            }
            NodeItem::TimeLoop { iters, body } => out.push(PlanItem::TimeLoop {
                iters: *iters,
                body: compile_items(machine, body, scheds, scalars, backend, compiled)?,
            }),
        }
    }
    Ok(out)
}

fn push_sched(scheds: &mut Vec<CompiledComm>, sched: CompiledComm) -> PlanItem {
    scheds.push(sched);
    PlanItem::Comm(scheds.len() - 1)
}

fn count_comm_execs(items: &[PlanItem]) -> u64 {
    items
        .iter()
        .map(|i| match i {
            PlanItem::Comm(_) => 1,
            PlanItem::Nest { .. } => 0,
            PlanItem::TimeLoop { iters, body } => *iters as u64 * count_comm_execs(body),
        })
        .sum()
}

fn count_kernel_execs(items: &[PlanItem]) -> u64 {
    items
        .iter()
        .map(|i| match i {
            PlanItem::Comm(_) => 0,
            PlanItem::Nest { kernels, .. } => kernels.iter().flatten().count() as u64,
            PlanItem::TimeLoop { iters, body } => *iters as u64 * count_kernel_execs(body),
        })
        .sum()
}

fn step_items_seq(
    machine: &mut Machine,
    items: &[PlanItem],
    scheds: &mut [CompiledComm],
    scalars: &[f64],
) {
    for item in items {
        match item {
            PlanItem::Comm(i) => machine.apply_compiled(&mut scheds[*i]),
            PlanItem::Nest { nest, kernels } => {
                for pe in 0..machine.num_pes() {
                    let kernel = kernels.get(pe).and_then(|k| k.as_ref());
                    backend::run_nest(&mut machine.pes[pe], nest, kernel, scalars);
                }
            }
            PlanItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    step_items_seq(machine, body, scheds, scalars);
                }
            }
        }
    }
}

fn step_items_worker(w: &mut Worker, items: &[PlanItem], scheds: &[CompiledComm]) {
    for item in items {
        match item {
            PlanItem::Comm(i) => {
                let s = &scheds[*i];
                w.comm(s.dst, s.src, &s.actions, s.kind == MoveKind::FullShift);
            }
            PlanItem::Nest { nest, kernels } => {
                let kernel = kernels.get(w.pe).and_then(|k| k.as_ref());
                backend::run_nest(w.state, nest, kernel, w.scalars);
            }
            PlanItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    step_items_worker(w, body, scheds);
                }
            }
        }
    }
}

/// Swap pairs applied after each step — the double-buffer flip for
/// Jacobi-style kernels written without an explicit copy-back statement.
pub fn apply_swaps(machine: &mut Machine, swaps: &[(ArrayId, ArrayId)]) {
    for &(a, b) in swaps {
        machine.swap_subgrids(a, b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seq::execute_seq;
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};
    use hpf_runtime::MachineConfig;

    const JACOBI: &str = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
"#;

    fn init(p: &[i64]) -> f64 {
        ((p[0] * 31 + p[1] * 7) as f64).sin()
    }

    fn setup(
        src: &str,
        stage: Stage,
        grid: &[usize],
    ) -> (Machine, hpf_passes::Compiled, hpf_ir::ArrayId) {
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(stage));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::with_grid(grid.to_vec()));
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, init);
        m.reset_stats();
        (m, compiled, u)
    }

    #[test]
    fn plan_steps_match_repeated_execute_seq() {
        for stage in [Stage::Original, Stage::MemOpt] {
            // Plan once, step 5 times.
            let (mut m_plan, compiled, u) = setup(JACOBI, stage, &[2, 2]);
            let mut plan = ExecPlan::build(&mut m_plan, &compiled.node).unwrap();
            for _ in 0..5 {
                plan.step_seq(&mut m_plan);
            }
            // Re-execute 5 times on a fresh path (state carries forward in
            // the same machine; execute_seq leaves arrays allocated).
            let (mut m_ref, compiled_ref, _) = setup(JACOBI, stage, &[2, 2]);
            for _ in 0..5 {
                execute_seq(&mut m_ref, &compiled_ref.node).unwrap();
            }
            assert_eq!(m_plan.gather(u), m_ref.gather(u), "stage {stage:?}");
            // Same per-PE counters; the plan path adds only schedule stats.
            assert_eq!(m_plan.stats().per_pe, m_ref.stats().per_pe);
            let st = m_plan.stats();
            assert_eq!(st.schedules_built as usize, plan.comm_count());
            assert_eq!(st.schedule_reuses, 5 * plan.comm_execs_per_step());
        }
    }

    #[test]
    fn plan_step_par_bitwise_equals_seq() {
        let (mut m_seq, compiled, u) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_seq = ExecPlan::build(&mut m_seq, &compiled.node).unwrap();
        let (mut m_par, compiled2, _) = setup(JACOBI, Stage::MemOpt, &[2, 2]);
        let mut p_par = ExecPlan::build(&mut m_par, &compiled2.node).unwrap();
        for _ in 0..4 {
            p_seq.step_seq(&mut m_seq);
            p_par.step_par(&mut m_par);
        }
        assert_eq!(m_seq.gather(u), m_par.gather(u));
        assert_eq!(m_seq.stats(), m_par.stats());
    }

    #[test]
    fn plan_compiles_time_loops_once() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 6 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;
        let (mut m, compiled, u) = setup(src, Stage::MemOpt, &[2, 2]);
        let mut plan = ExecPlan::build(&mut m, &compiled.node).unwrap();
        // The DO body's comm ops are compiled once but execute 6× per step.
        assert_eq!(plan.comm_execs_per_step(), 6 * plan.comm_count() as u64);
        plan.step_seq(&mut m);
        let st = m.stats();
        assert_eq!(st.schedules_built as usize, plan.comm_count());
        assert_eq!(st.schedule_reuses, plan.comm_execs_per_step());
        // Matches the one-shot executor.
        let (mut m_ref, compiled_ref, _) = setup(src, Stage::MemOpt, &[2, 2]);
        execute_seq(&mut m_ref, &compiled_ref.node).unwrap();
        assert_eq!(m.gather(u), m_ref.gather(u));
    }

    #[test]
    fn plan_propagates_shift_too_wide() {
        let src = "PARAM N = 8\nREAL U(N,N), T(N,N)\nT = CSHIFT(U, SHIFT=2, DIM=1) + U\n";
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::full().halo(2));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2()); // halo 1
        m.alloc(u, checked.symbols.array(u)).unwrap();
        let err = ExecPlan::build(&mut m, &compiled.node).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { .. }));
    }

    #[test]
    fn swaps_flip_buffers_each_step() {
        // U and T have identical distribution; swapping after a step makes
        // T's fresh values the next step's U without copying.
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
"#;
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::full());
        let u = checked.symbols.lookup_array("U").unwrap();
        let t = checked.symbols.lookup_array("T").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, init);
        let mut plan = ExecPlan::build(&mut m, &compiled.node).unwrap();
        plan.step_seq(&mut m);
        let after_one = m.gather(t);
        apply_swaps(&mut m, &[(u, t)]);
        assert_eq!(m.gather(u), after_one, "swap moved T's result into U");
    }
}
