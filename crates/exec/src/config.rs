//! Execution configuration: the engine/backend/tracing/checking knobs a
//! plan is built with, and the one CLI spelling shared by every driver.
//!
//! [`ExecConfig`] is the single argument of [`crate::ExecPlan::build`] —
//! instead of one constructor per engine/backend combination, callers
//! describe the run once and the plan stores the choice, so
//! [`crate::ExecPlan::step`] needs no per-call dispatch arguments.

use crate::backend::Backend;
use hpf_metrics::MetricsConfig;
use hpf_trace::TraceConfig;

/// Which executor steps the plan.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Engine {
    /// One PE at a time (deterministic, lowest overhead for small problems).
    #[default]
    Sequential,
    /// One OS thread per PE with channel-based message passing; results are
    /// bitwise identical to [`Engine::Sequential`].
    Threaded,
    /// [`Engine::Threaded`] with split-phase halo exchange: each PE posts
    /// its sends, computes the interior of its block while the messages are
    /// in flight, drains the receives in plan order, then computes the
    /// boundary strips. Callers gate this on the halo-safety lints
    /// (HS001/HS002): an unproven kernel must take a blocking engine
    /// instead. Results stay bitwise identical to both blocking engines.
    ThreadedOverlap,
}

impl Engine {
    /// Short name, as accepted by `hpfsc --engine` and printed by benches.
    pub fn label(self) -> &'static str {
        match self {
            Engine::Sequential => "seq",
            Engine::Threaded => "threaded",
            Engine::ThreadedOverlap => "threaded-overlap",
        }
    }
}

/// How to build and step an execution plan: engine, nest backend, event
/// tracing, and extra invariant checking. A builder with by-value setters:
///
/// ```
/// use hpf_exec::{Backend, Engine, ExecConfig};
/// let cfg = ExecConfig::new().engine(Engine::ThreadedOverlap).backend(Backend::Bytecode);
/// assert_eq!(cfg.label(), "threaded-overlap-bytecode");
/// assert_eq!(ExecConfig::from_cli_str("threaded-overlap-bytecode").unwrap(), cfg);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExecConfig {
    /// The executor stepping the plan.
    pub engine: Engine,
    /// How loop nests are evaluated (tree interpreter or compiled
    /// bytecode kernels). Bitwise-identical results either way.
    pub backend: Backend,
    /// When set, the plan enables per-PE event tracing on its machine at
    /// build time: every schedule build, pack/unpack, comm post/drain,
    /// interior/boundary sweep and kernel compile/exec records a span.
    /// `None` (the default) leaves every tracer disabled — recording
    /// sites then cost one predictable branch and no clock read.
    pub trace: Option<TraceConfig>,
    /// When set, the plan collects metrics each step: per-PE span-latency
    /// histograms, a per-step time series (phase breakdown, bytes moved,
    /// busy fractions, load imbalance), and the inputs of the cost-model
    /// drift report. Metrics read the same per-PE trace rings the `trace`
    /// option exposes; when `trace` is off they enable the rings
    /// internally without changing user-facing trace semantics
    /// (observation-only either way). `None` (the default) records
    /// nothing.
    pub metrics: Option<MetricsConfig>,
    /// Pre-validate every communication plan at build time (shift widths
    /// against the halo), like the one-shot threaded executor does, so a
    /// malformed program fails in `build` rather than on a worker thread.
    pub check: bool,
    /// Ask the planning layer to auto-tune this run: enumerate the legal
    /// (PE grid, engine, backend, `par_threshold`) space with `hpf-tune`,
    /// consult the persistent tuning cache, and overwrite `engine`/
    /// `backend` (and the machine's grid and threshold) with the winner
    /// before building. Resolved *above* [`crate::ExecPlan::build`] — the
    /// plan builder itself ignores this flag and uses the embedded
    /// engine/backend as-is.
    pub auto: bool,
    /// Superstep depth `k`: amortize one deep halo exchange over `k`
    /// logical time steps by redundantly recomputing boundary cells on a
    /// trapezoidally shrinking region (the communication-avoiding schedule
    /// of `DESIGN.md §5h`). `1` (the default) is the classic
    /// exchange-every-step schedule. Depths above 1 engage only when the
    /// kernel passes the superstep legality analysis; an ineligible kernel
    /// degrades to `k = 1` and the plan records why
    /// ([`crate::ExecPlan::superstep_diags`]).
    pub superstep: usize,
}

impl Default for ExecConfig {
    fn default() -> ExecConfig {
        ExecConfig {
            engine: Engine::default(),
            backend: Backend::default(),
            trace: None,
            metrics: None,
            check: false,
            auto: false,
            superstep: 1,
        }
    }
}

impl ExecConfig {
    /// The default configuration: sequential engine, interpreter backend,
    /// tracing off, checks off, superstep depth 1.
    pub fn new() -> ExecConfig {
        ExecConfig::default()
    }

    /// A configuration that asks the planning layer to pick the fastest
    /// legal configuration itself (see [`ExecConfig::auto`] the field).
    /// Spelled `auto` on the CLI: `hpfsc … --run --engine auto`.
    pub fn auto() -> ExecConfig {
        ExecConfig { auto: true, ..ExecConfig::default() }
    }

    /// Select the executor.
    pub fn engine(mut self, engine: Engine) -> Self {
        self.engine = engine;
        self
    }

    /// Select the nest-evaluation backend.
    pub fn backend(mut self, backend: Backend) -> Self {
        self.backend = backend;
        self
    }

    /// Enable event tracing with the default ring capacity.
    pub fn trace(mut self, on: bool) -> Self {
        self.trace = if on { Some(TraceConfig::default()) } else { None };
        self
    }

    /// Enable event tracing with an explicit recorder configuration.
    pub fn trace_with(mut self, cfg: TraceConfig) -> Self {
        self.trace = Some(cfg);
        self
    }

    /// Enable metrics collection with the default configuration.
    pub fn metrics(mut self, on: bool) -> Self {
        self.metrics = if on { Some(MetricsConfig::default()) } else { None };
        self
    }

    /// Enable metrics collection with an explicit configuration.
    pub fn metrics_with(mut self, cfg: MetricsConfig) -> Self {
        self.metrics = Some(cfg);
        self
    }

    /// Toggle build-time communication-plan pre-validation.
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check = on;
        self
    }

    /// Select the superstep depth (`0` is normalized to `1`). Depths above
    /// 1 require a machine halo deep enough for the depth-`k` fill — size
    /// it with [`crate::superstep_halo`].
    pub fn superstep(mut self, k: usize) -> Self {
        self.superstep = k.max(1);
        self
    }

    /// The `engine[-backend]` spelling [`ExecConfig::from_cli_str`]
    /// round-trips: the engine label, plus `-bytecode` when the bytecode
    /// backend is selected (`-interp` being the default is omitted). An
    /// unresolved auto configuration is labeled `auto`.
    pub fn label(&self) -> String {
        if self.auto {
            return "auto".to_string();
        }
        match self.backend {
            Backend::Interp => self.engine.label().to_string(),
            Backend::Bytecode => format!("{}-bytecode", self.engine.label()),
        }
    }

    /// Parse a `--engine` argument: an engine (`seq`, `threaded`,
    /// `threaded-overlap`), a backend (`interp`, `bytecode`), or both
    /// joined with `-` (e.g. `threaded-bytecode`,
    /// `threaded-overlap-interp`), or `auto` (auto-tune: the planning
    /// layer picks grid, engine, backend, and threshold). Engine names are
    /// matched longest first so `threaded-overlap` is not misread as
    /// `threaded` plus an unknown backend. `hpfsc` and the bench driver
    /// share this parser, so one spelling works everywhere.
    pub fn from_cli_str(spec: &str) -> Result<ExecConfig, String> {
        if spec == "auto" {
            return Ok(ExecConfig::auto());
        }
        let mut cfg = ExecConfig::new();
        let mut rest = spec;
        for (name, engine) in [
            ("threaded-overlap", Engine::ThreadedOverlap),
            ("threaded", Engine::Threaded),
            ("par", Engine::Threaded),
            ("sequential", Engine::Sequential),
            ("seq", Engine::Sequential),
        ] {
            if let Some(r) = rest.strip_prefix(name) {
                cfg.engine = engine;
                rest = r;
                break;
            }
        }
        match rest {
            "" if !spec.is_empty() => Ok(cfg),
            rest => match rest.strip_prefix('-').unwrap_or(rest) {
                "interp" => Ok(cfg.backend(Backend::Interp)),
                "bytecode" => Ok(cfg.backend(Backend::Bytecode)),
                _ => Err(unknown_value(
                    "engine",
                    spec,
                    &[
                        "seq",
                        "threaded",
                        "threaded-overlap",
                        "interp",
                        "bytecode",
                        "auto",
                        "engine-backend pairs like seq-bytecode, threaded-interp, \
                         threaded-overlap-bytecode",
                    ],
                )),
            },
        }
    }
}

/// Render the one unknown-CLI-value error every driver prints the same way:
/// `unknown <flag> '<value>' (valid: a, b, c)`. Shared by
/// [`ExecConfig::from_cli_str`], `hpfsc`, and the bench drivers so the
/// "choices are…" list is spelled once.
pub fn unknown_value(flag: &str, value: &str, choices: &[&str]) -> String {
    format!("unknown {flag} '{value}' (valid: {})", choices.join(", "))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_sequential_interp_untraced() {
        let cfg = ExecConfig::new();
        assert_eq!(cfg.engine, Engine::Sequential);
        assert_eq!(cfg.backend, Backend::Interp);
        assert!(cfg.trace.is_none());
        assert!(!cfg.check);
        assert_eq!(cfg.superstep, 1);
    }

    #[test]
    fn superstep_builder_normalizes_zero_to_one() {
        assert_eq!(ExecConfig::new().superstep(4).superstep, 4);
        assert_eq!(ExecConfig::new().superstep(0).superstep, 1);
        assert_eq!(ExecConfig::new().superstep(0), ExecConfig::new());
    }

    #[test]
    fn cli_round_trips_every_combination() {
        for engine in [Engine::Sequential, Engine::Threaded, Engine::ThreadedOverlap] {
            for backend in [Backend::Interp, Backend::Bytecode] {
                let cfg = ExecConfig::new().engine(engine).backend(backend);
                let parsed = ExecConfig::from_cli_str(&cfg.label()).unwrap();
                assert_eq!(parsed.engine, engine, "{}", cfg.label());
                assert_eq!(parsed.backend, backend, "{}", cfg.label());
            }
        }
    }

    #[test]
    fn cli_accepts_engine_or_backend_alone_and_aliases() {
        assert_eq!(ExecConfig::from_cli_str("seq").unwrap().engine, Engine::Sequential);
        assert_eq!(ExecConfig::from_cli_str("sequential").unwrap().engine, Engine::Sequential);
        assert_eq!(ExecConfig::from_cli_str("par").unwrap().engine, Engine::Threaded);
        let b = ExecConfig::from_cli_str("bytecode").unwrap();
        assert_eq!(b.engine, Engine::Sequential);
        assert_eq!(b.backend, Backend::Bytecode);
        let ti = ExecConfig::from_cli_str("threaded-interp").unwrap();
        assert_eq!(ti.engine, Engine::Threaded);
        assert_eq!(ti.backend, Backend::Interp);
        let tob = ExecConfig::from_cli_str("threaded-overlap-bytecode").unwrap();
        assert_eq!(tob.engine, Engine::ThreadedOverlap);
        assert_eq!(tob.backend, Backend::Bytecode);
    }

    #[test]
    fn auto_round_trips_and_clears_on_resolution() {
        let cfg = ExecConfig::auto();
        assert!(cfg.auto);
        assert_eq!(cfg.label(), "auto");
        assert_eq!(ExecConfig::from_cli_str("auto").unwrap(), cfg);
        // The planning layer resolves auto by overwriting engine/backend
        // and clearing the flag; the label then reads normally again.
        let resolved = ExecConfig { auto: false, ..cfg }.engine(Engine::Threaded);
        assert_eq!(resolved.label(), "threaded");
    }

    #[test]
    fn cli_rejects_garbage() {
        for bad in ["", "fast", "threaded-", "threaded-turbo", "seq-bytecode-extra"] {
            assert!(ExecConfig::from_cli_str(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn trace_toggle_sets_default_capacity() {
        let cfg = ExecConfig::new().trace(true);
        assert_eq!(cfg.trace.unwrap().capacity, TraceConfig::DEFAULT_CAPACITY);
        assert!(ExecConfig::new().trace(true).trace(false).trace.is_none());
    }
}
