//! SPMD threaded executor: one OS thread per PE, message passing over
//! channels, using the same deterministic communication schedules as the
//! sequential engine — results are bitwise identical.
//!
//! Protocol: for every communication operation, each PE (1) posts all its
//! sends (channels are unbounded, so sends never block — no deadlock
//! regardless of plan order), (2) applies local fills and self-transfers,
//! (3) blocks receiving its incoming transfers in plan order, matching
//! messages by `(sequence number, sender)` tags with a stash for
//! out-of-order arrivals.

use crate::backend::{self, Backend, BcItem};
use crate::nest::{exec_nest, scalar_values};
use hpf_passes::loopir::{CommOp, NodeItem, NodeProgram};
use hpf_runtime::schedule::{cshift_plan, overlap_shift_plan, split_halves, CommAction};
use hpf_runtime::{ArrayMeta, Machine, MachineConfig, PeState, RtError};
use hpf_trace::SpanKind;
use std::collections::HashMap;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

pub(crate) type Msg = (u64, usize, Vec<f64>);

/// Execute the node program with one thread per PE. Allocates referenced
/// arrays first (sequentially). Returns the same results, counters and
/// errors as [`crate::seq::execute_seq`]. Nests run on the interpreter
/// backend; see [`execute_par_with`] to choose.
pub fn execute_par(machine: &mut Machine, node: &NodeProgram) -> Result<(), RtError> {
    execute_par_with(machine, node, Backend::default())
}

/// [`execute_par`] with an explicit nest-evaluation [`Backend`]. Kernels
/// are compiled once up front (sequentially, after allocation) and shared
/// read-only by the worker threads; results stay bitwise identical to
/// every other engine/backend combination.
pub fn execute_par_with(
    machine: &mut Machine,
    node: &NodeProgram,
    backend: Backend,
) -> Result<(), RtError> {
    crate::seq::allocate(machine, node)?;
    // Pre-validate every communication plan once (shift widths etc.) so
    // worker threads cannot fail.
    crate::validate::prevalidate_comms(machine, &node.items)?;
    let cfg = machine.cfg.clone();
    let metas = machine.metas_snapshot();
    let scalars = scalar_values(&node.symbols);
    let n = machine.num_pes();
    // Compile kernels before the threads start; each worker reads only its
    // own PE's slot. Under the interpreter backend this is an empty tree
    // walk (no nest compiles, `kernels[pe]` is `None` everywhere).
    let (bc_items, compiled) = match backend {
        Backend::Interp => (Vec::new(), 0),
        Backend::Bytecode => backend::compile_items(machine, &node.items, &scalars),
    };
    let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) = (0..n).map(|_| unbounded()).unzip();
    std::thread::scope(|scope| {
        for (pe_state, rx) in machine.pes.iter_mut().zip(rxs) {
            let txs = txs.clone();
            let cfg = &cfg;
            let metas = &metas;
            let scalars = &scalars;
            let items = &node.items;
            let bc_items = &bc_items;
            scope.spawn(move || {
                let mut w = Worker {
                    pe: pe_state.pe,
                    state: pe_state,
                    rx,
                    txs,
                    cfg,
                    metas,
                    scalars,
                    seq: 0,
                    stash: HashMap::new(),
                };
                match backend {
                    Backend::Interp => w.run(items),
                    Backend::Bytecode => w.run_bc(bc_items),
                }
            });
        }
    });
    if backend == Backend::Bytecode {
        // Machine-wide counters, credited once after the join (same pattern
        // as the plan engine's schedule-reuse accounting).
        machine.note_kernels_compiled(compiled);
        machine.note_kernel_execs(backend::kernel_execs_per_pass(&bc_items));
    }
    Ok(())
}

pub(crate) struct Worker<'a> {
    pub(crate) pe: usize,
    pub(crate) state: &'a mut PeState,
    pub(crate) rx: Receiver<Msg>,
    pub(crate) txs: Vec<Sender<Msg>>,
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) metas: &'a [Option<ArrayMeta>],
    pub(crate) scalars: &'a [f64],
    pub(crate) seq: u64,
    pub(crate) stash: HashMap<(u64, usize), Vec<f64>>,
}

impl Worker<'_> {
    fn run(&mut self, items: &[NodeItem]) {
        for item in items {
            match item {
                NodeItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                    let geom = self.metas[src.0 as usize].as_ref().unwrap().geom.clone();
                    let plan = cshift_plan(&geom, *shift, *dim, *kind);
                    self.comm(*dst, *src, &plan, true);
                }
                NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                    let geom = self.metas[array.0 as usize].as_ref().unwrap().geom.clone();
                    let plan =
                        overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, self.cfg.halo)
                            .expect("pre-validated");
                    self.comm(*array, *array, &plan, false);
                }
                NodeItem::Nest(nest) => exec_nest(self.state, nest, self.scalars),
                NodeItem::TimeLoop { iters, body } => {
                    for _ in 0..*iters {
                        self.run(body);
                    }
                }
            }
        }
    }

    /// Bytecode-backend twin of [`Worker::run`]: identical communication
    /// protocol, but each nest runs through this PE's compiled kernel (or
    /// the interpreter, where compilation declined).
    fn run_bc(&mut self, items: &[BcItem]) {
        for item in items {
            match item {
                BcItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                    let geom = self.metas[src.0 as usize].as_ref().unwrap().geom.clone();
                    let plan = cshift_plan(&geom, *shift, *dim, *kind);
                    self.comm(*dst, *src, &plan, true);
                }
                BcItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                    let geom = self.metas[array.0 as usize].as_ref().unwrap().geom.clone();
                    let plan =
                        overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, self.cfg.halo)
                            .expect("pre-validated");
                    self.comm(*array, *array, &plan, false);
                }
                BcItem::Nest { nest, kernels } => {
                    backend::run_nest(self.state, nest, kernels[self.pe].as_ref(), self.scalars);
                }
                BcItem::TimeLoop { iters, body } => {
                    for _ in 0..*iters {
                        self.run_bc(body);
                    }
                }
            }
        }
    }

    /// Blocking communication: post the send half, then immediately drain
    /// the receive half. Bitwise identical to `Machine::apply_compiled`.
    pub(crate) fn comm(
        &mut self,
        dst: hpf_ir::ArrayId,
        src: hpf_ir::ArrayId,
        plan: &[CommAction],
        full_shift: bool,
    ) {
        let seq = self.comm_post(dst, src, plan, full_shift);
        self.comm_finish(dst, plan, seq);
    }

    /// Split-phase first half: post all sends (phase 1), then apply local
    /// fills and self-transfers (phase 2). Channels are unbounded, so this
    /// never blocks. Returns the sequence number the sends were tagged
    /// with; pass it to [`Worker::comm_finish`] to drain the receives.
    pub(crate) fn comm_post(
        &mut self,
        dst: hpf_ir::ArrayId,
        src: hpf_ir::ArrayId,
        plan: &[CommAction],
        full_shift: bool,
    ) -> u64 {
        let t0 = self.state.tracer.now();
        let seq = self.seq;
        self.seq += 1;
        let halves = split_halves(plan, self.pe);
        // Phase 1: all sends.
        for t in &halves.sends {
            let buf = self.state.subgrid(src).read_region(&t.src_local);
            let bytes = (buf.len() * 8) as u64;
            self.txs[t.dst_pe].send((seq, self.pe, buf)).expect("peer alive");
            self.state.stats.msgs_sent += 1;
            self.state.stats.bytes_sent += bytes;
        }
        // Phase 2: local fills and self-transfers.
        for action in &halves.locals {
            match action {
                CommAction::Fill { local, value, .. } => {
                    self.state.subgrid_mut(dst).fill_region(local, *value);
                }
                CommAction::Transfer(t) => {
                    let buf = self.state.subgrid(src).read_region(&t.src_local);
                    let bytes = (buf.len() * 8) as u64;
                    self.state.subgrid_mut(dst).write_region(&t.dst_local, &buf);
                    if full_shift {
                        self.state.stats.intra_bytes += bytes;
                    } else {
                        self.state.stats.wrap_bytes += bytes;
                    }
                }
            }
        }
        self.state.tracer.record(SpanKind::CommPost, t0);
        seq
    }

    /// Split-phase second half: block receiving this PE's incoming
    /// transfers, in plan order (phase 3), matching messages by
    /// `(seq, sender)` with a stash for out-of-order arrivals. Records one
    /// [`SpanKind::CommDrain`] span for the whole drain.
    pub(crate) fn comm_finish(&mut self, dst: hpf_ir::ArrayId, plan: &[CommAction], seq: u64) {
        let t0 = self.state.tracer.now();
        self.comm_finish_quiet(dst, plan, seq);
        self.state.tracer.record(SpanKind::CommDrain, t0);
    }

    /// [`Worker::comm_finish`] without the span: the overlap engine drains
    /// a whole window under a single drain span carrying the cost-model
    /// attribution, so its per-comm drains must not record their own.
    pub(crate) fn comm_finish_quiet(
        &mut self,
        dst: hpf_ir::ArrayId,
        plan: &[CommAction],
        seq: u64,
    ) {
        for t in &split_halves(plan, self.pe).recvs {
            let buf = self.recv_tagged(seq, t.src_pe);
            let bytes = (buf.len() * 8) as u64;
            self.state.subgrid_mut(dst).write_region(&t.dst_local, &buf);
            self.state.stats.msgs_recv += 1;
            self.state.stats.bytes_recv += bytes;
        }
    }

    fn recv_tagged(&mut self, seq: u64, from: usize) -> Vec<f64> {
        if let Some(buf) = self.stash.remove(&(seq, from)) {
            return buf;
        }
        loop {
            let (s, f, buf) = self.rx.recv().expect("peer alive");
            if s == seq && f == from {
                return buf;
            }
            self.stash.insert((s, f), buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use crate::seq::execute_seq;
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 16
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    fn init(p: &[i64]) -> f64 {
        ((p[0] * 37 + p[1] * 13) as f64).cos()
    }

    fn run_both(src: &str, stage: Stage, grid: &[usize], out: &str) {
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(stage));
        let u = checked.symbols.lookup_array("U").unwrap();
        let t = checked.symbols.lookup_array(out).unwrap();

        let mut m_seq = Machine::new(MachineConfig::with_grid(grid.to_vec()));
        m_seq.alloc(u, checked.symbols.array(u)).unwrap();
        m_seq.fill(u, init);
        execute_seq(&mut m_seq, &compiled.node).unwrap();

        let mut m_par = Machine::new(MachineConfig::with_grid(grid.to_vec()));
        m_par.alloc(u, checked.symbols.array(u)).unwrap();
        m_par.fill(u, init);
        execute_par(&mut m_par, &compiled.node).unwrap();

        assert_eq!(
            m_seq.gather(t),
            m_par.gather(t),
            "parallel differs from sequential at stage {stage:?} grid {grid:?}"
        );
        // Counters agree too (same schedules).
        assert_eq!(m_seq.stats().total(), m_par.stats().total());

        // And both match the oracle.
        let mut r = Reference::new(&checked);
        r.fill_named("U", init);
        r.run(&checked);
        assert_eq!(m_par.gather(t), r.arrays[&t].data);
    }

    #[test]
    fn problem9_parallel_matches_sequential_all_stages() {
        for stage in Stage::all() {
            run_both(PROBLEM9, stage, &[2, 2], "T");
        }
    }

    #[test]
    fn parallel_on_other_grids() {
        for grid in [&[1usize, 1][..], &[4, 1], &[1, 4], &[2, 4]] {
            run_both(PROBLEM9, Stage::MemOpt, grid, "T");
        }
    }

    #[test]
    fn parallel_time_loop() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 7 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;
        run_both(src, Stage::MemOpt, &[2, 2], "U");
        run_both(src, Stage::Original, &[2, 2], "U");
    }

    #[test]
    fn stash_applies_permuted_deliveries_in_plan_order() {
        use hpf_ir::{ArrayDecl, ArrayId, Distribution, Shape};
        use hpf_runtime::schedule::Transfer;

        const U: ArrayId = ArrayId(0);
        let mut m = Machine::new(MachineConfig::sp2_2x2());
        m.alloc(U, &ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2))).unwrap();
        let cfg = m.cfg.clone();
        let metas = m.metas_snapshot();
        let recv = |from: usize, dst_local: Vec<(i64, i64)>| {
            CommAction::Transfer(Transfer {
                src_pe: from,
                dst_pe: 0,
                src_local: dst_local.clone(),
                dst_local,
            })
        };
        // Op 0: PE 0 receives its right ghost column from PE 1, then its
        // bottom ghost row from PE 2, in that plan order.
        let plan0 = vec![recv(1, vec![(1, 4), (5, 5)]), recv(2, vec![(5, 5), (1, 4)])];
        // Op 1: PE 0 receives its top ghost row from PE 1.
        let plan1 = vec![recv(1, vec![(0, 0), (1, 4)])];
        let (tx, rx) = unbounded();
        // Deliver everything out of order: op 0's PE-2 message first, then
        // a message for the *later* op 1, then op 0's PE-1 message.
        let buf_a = vec![1.0, 2.0, 3.0, 4.0];
        let buf_b = vec![5.0, 6.0, 7.0, 8.0];
        let buf_c = vec![9.0, 10.0, 11.0, 12.0];
        tx.send((0, 2, buf_b.clone())).unwrap();
        tx.send((1, 1, buf_c.clone())).unwrap();
        tx.send((0, 1, buf_a.clone())).unwrap();
        // Closing the channel makes any recv beyond the injected messages
        // fail loudly instead of hanging the test.
        drop(tx);
        let mut w = Worker {
            pe: 0,
            state: &mut m.pes[0],
            rx,
            txs: Vec::new(),
            cfg: &cfg,
            metas: &metas,
            scalars: &[],
            seq: 0,
            stash: HashMap::new(),
        };
        w.comm_finish(U, &plan0, 0);
        // (seq, sender) matching applied each buffer to its own plan entry
        // and stashed the future-op message.
        assert!(w.stash.contains_key(&(1, 1)), "future-op message stashed");
        assert_eq!(w.stash.len(), 1);
        assert_eq!(w.state.subgrid(U).read_region(&[(1, 4), (5, 5)]), buf_a);
        assert_eq!(w.state.subgrid(U).read_region(&[(5, 5), (1, 4)]), buf_b);
        // Op 1 drains from the stash without touching the closed channel.
        w.comm_finish(U, &plan1, 1);
        assert!(w.stash.is_empty());
        assert_eq!(w.state.subgrid(U).read_region(&[(0, 0), (1, 4)]), buf_c);
        assert_eq!(w.state.stats.msgs_recv, 3);
    }

    #[test]
    fn parallel_prevalidates_bad_shifts() {
        let src = "PARAM N = 8\nREAL U(N,N), T(N,N)\nT = CSHIFT(U, SHIFT=2, DIM=1) + U\n";
        let checked = compile_source(src).unwrap();
        // halo=2 lets the offset pass convert; run on a machine with halo=1
        // so the plan is invalid.
        let compiled = compile(&checked, CompileOptions::full().halo(2));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2()); // halo 1
        m.alloc(u, checked.symbols.array(u)).unwrap();
        let err = execute_par(&mut m, &compiled.node).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { .. }));
    }
}
