//! SPMD threaded executor: one OS thread per PE, message passing over
//! channels, using the same deterministic communication schedules as the
//! sequential engine — results are bitwise identical.
//!
//! Protocol: for every communication operation, each PE (1) posts all its
//! sends (channels are unbounded, so sends never block — no deadlock
//! regardless of plan order), (2) applies local fills and self-transfers,
//! (3) blocks receiving its incoming transfers in plan order, matching
//! messages by `(sequence number, sender)` tags with a stash for
//! out-of-order arrivals.

use crate::backend::{self, Backend, BcItem};
use crate::nest::{exec_nest, scalar_values};
use hpf_passes::loopir::{CommOp, NodeItem, NodeProgram};
use hpf_runtime::schedule::{cshift_plan, overlap_shift_plan, CommAction};
use hpf_runtime::{ArrayMeta, Machine, MachineConfig, PeState, RtError};
use std::collections::HashMap;
use std::sync::mpsc::{channel as unbounded, Receiver, Sender};

pub(crate) type Msg = (u64, usize, Vec<f64>);

/// Execute the node program with one thread per PE. Allocates referenced
/// arrays first (sequentially). Returns the same results, counters and
/// errors as [`crate::seq::execute_seq`]. Nests run on the interpreter
/// backend; see [`execute_par_with`] to choose.
pub fn execute_par(machine: &mut Machine, node: &NodeProgram) -> Result<(), RtError> {
    execute_par_with(machine, node, Backend::default())
}

/// [`execute_par`] with an explicit nest-evaluation [`Backend`]. Kernels
/// are compiled once up front (sequentially, after allocation) and shared
/// read-only by the worker threads; results stay bitwise identical to
/// every other engine/backend combination.
pub fn execute_par_with(
    machine: &mut Machine,
    node: &NodeProgram,
    backend: Backend,
) -> Result<(), RtError> {
    crate::seq::allocate(machine, node)?;
    // Pre-validate every communication plan once (shift widths etc.) so
    // worker threads cannot fail.
    prevalidate(machine, &node.items)?;
    let cfg = machine.cfg.clone();
    let metas = machine.metas_snapshot();
    let scalars = scalar_values(&node.symbols);
    let n = machine.num_pes();
    // Compile kernels before the threads start; each worker reads only its
    // own PE's slot. Under the interpreter backend this is an empty tree
    // walk (no nest compiles, `kernels[pe]` is `None` everywhere).
    let (bc_items, compiled) = match backend {
        Backend::Interp => (Vec::new(), 0),
        Backend::Bytecode => backend::compile_items(machine, &node.items, &scalars),
    };
    let (txs, rxs): (Vec<Sender<Msg>>, Vec<Receiver<Msg>>) = (0..n).map(|_| unbounded()).unzip();
    std::thread::scope(|scope| {
        for (pe_state, rx) in machine.pes.iter_mut().zip(rxs) {
            let txs = txs.clone();
            let cfg = &cfg;
            let metas = &metas;
            let scalars = &scalars;
            let items = &node.items;
            let bc_items = &bc_items;
            scope.spawn(move || {
                let mut w = Worker {
                    pe: pe_state.pe,
                    state: pe_state,
                    rx,
                    txs,
                    cfg,
                    metas,
                    scalars,
                    seq: 0,
                    stash: HashMap::new(),
                };
                match backend {
                    Backend::Interp => w.run(items),
                    Backend::Bytecode => w.run_bc(bc_items),
                }
            });
        }
    });
    if backend == Backend::Bytecode {
        // Machine-wide counters, credited once after the join (same pattern
        // as the plan engine's schedule-reuse accounting).
        machine.note_kernels_compiled(compiled);
        machine.note_kernel_execs(backend::kernel_execs_per_pass(&bc_items));
    }
    Ok(())
}

fn prevalidate(machine: &Machine, items: &[NodeItem]) -> Result<(), RtError> {
    for item in items {
        match item {
            NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                let geom = machine.meta(*array).geom.clone();
                overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, machine.cfg.halo)?;
            }
            NodeItem::TimeLoop { body, .. } => prevalidate(machine, body)?,
            _ => {}
        }
    }
    Ok(())
}

pub(crate) struct Worker<'a> {
    pub(crate) pe: usize,
    pub(crate) state: &'a mut PeState,
    pub(crate) rx: Receiver<Msg>,
    pub(crate) txs: Vec<Sender<Msg>>,
    pub(crate) cfg: &'a MachineConfig,
    pub(crate) metas: &'a [Option<ArrayMeta>],
    pub(crate) scalars: &'a [f64],
    pub(crate) seq: u64,
    pub(crate) stash: HashMap<(u64, usize), Vec<f64>>,
}

impl Worker<'_> {
    fn run(&mut self, items: &[NodeItem]) {
        for item in items {
            match item {
                NodeItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                    let geom = self.metas[src.0 as usize].as_ref().unwrap().geom.clone();
                    let plan = cshift_plan(&geom, *shift, *dim, *kind);
                    self.comm(*dst, *src, &plan, true);
                }
                NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                    let geom = self.metas[array.0 as usize].as_ref().unwrap().geom.clone();
                    let plan =
                        overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, self.cfg.halo)
                            .expect("pre-validated");
                    self.comm(*array, *array, &plan, false);
                }
                NodeItem::Nest(nest) => exec_nest(self.state, nest, self.scalars),
                NodeItem::TimeLoop { iters, body } => {
                    for _ in 0..*iters {
                        self.run(body);
                    }
                }
            }
        }
    }

    /// Bytecode-backend twin of [`Worker::run`]: identical communication
    /// protocol, but each nest runs through this PE's compiled kernel (or
    /// the interpreter, where compilation declined).
    fn run_bc(&mut self, items: &[BcItem]) {
        for item in items {
            match item {
                BcItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                    let geom = self.metas[src.0 as usize].as_ref().unwrap().geom.clone();
                    let plan = cshift_plan(&geom, *shift, *dim, *kind);
                    self.comm(*dst, *src, &plan, true);
                }
                BcItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                    let geom = self.metas[array.0 as usize].as_ref().unwrap().geom.clone();
                    let plan =
                        overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, self.cfg.halo)
                            .expect("pre-validated");
                    self.comm(*array, *array, &plan, false);
                }
                BcItem::Nest { nest, kernels } => {
                    backend::run_nest(self.state, nest, kernels[self.pe].as_ref(), self.scalars);
                }
                BcItem::TimeLoop { iters, body } => {
                    for _ in 0..*iters {
                        self.run_bc(body);
                    }
                }
            }
        }
    }

    pub(crate) fn comm(
        &mut self,
        dst: hpf_ir::ArrayId,
        src: hpf_ir::ArrayId,
        plan: &[CommAction],
        full_shift: bool,
    ) {
        let seq = self.seq;
        self.seq += 1;
        // Phase 1: all sends.
        for action in plan {
            if let CommAction::Transfer(t) = action {
                if t.src_pe == self.pe && t.dst_pe != self.pe {
                    let buf = self.state.subgrid(src).read_region(&t.src_local);
                    let bytes = (buf.len() * 8) as u64;
                    self.txs[t.dst_pe].send((seq, self.pe, buf)).expect("peer alive");
                    self.state.stats.msgs_sent += 1;
                    self.state.stats.bytes_sent += bytes;
                }
            }
        }
        // Phase 2: local fills and self-transfers.
        for action in plan {
            match action {
                CommAction::Fill { pe, local, value } if *pe == self.pe => {
                    self.state.subgrid_mut(dst).fill_region(local, *value);
                }
                CommAction::Transfer(t) if t.src_pe == self.pe && t.dst_pe == self.pe => {
                    let buf = self.state.subgrid(src).read_region(&t.src_local);
                    let bytes = (buf.len() * 8) as u64;
                    self.state.subgrid_mut(dst).write_region(&t.dst_local, &buf);
                    if full_shift {
                        self.state.stats.intra_bytes += bytes;
                    } else {
                        self.state.stats.wrap_bytes += bytes;
                    }
                }
                _ => {}
            }
        }
        // Phase 3: receives, in plan order.
        for action in plan {
            if let CommAction::Transfer(t) = action {
                if t.dst_pe == self.pe && t.src_pe != self.pe {
                    let buf = self.recv_tagged(seq, t.src_pe);
                    let bytes = (buf.len() * 8) as u64;
                    self.state.subgrid_mut(dst).write_region(&t.dst_local, &buf);
                    self.state.stats.msgs_recv += 1;
                    self.state.stats.bytes_recv += bytes;
                }
            }
        }
    }

    fn recv_tagged(&mut self, seq: u64, from: usize) -> Vec<f64> {
        if let Some(buf) = self.stash.remove(&(seq, from)) {
            return buf;
        }
        loop {
            let (s, f, buf) = self.rx.recv().expect("peer alive");
            if s == seq && f == from {
                return buf;
            }
            self.stash.insert((s, f), buf);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use crate::seq::execute_seq;
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 16
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    fn init(p: &[i64]) -> f64 {
        ((p[0] * 37 + p[1] * 13) as f64).cos()
    }

    fn run_both(src: &str, stage: Stage, grid: &[usize], out: &str) {
        let checked = compile_source(src).unwrap();
        let compiled = compile(&checked, CompileOptions::upto(stage));
        let u = checked.symbols.lookup_array("U").unwrap();
        let t = checked.symbols.lookup_array(out).unwrap();

        let mut m_seq = Machine::new(MachineConfig::with_grid(grid.to_vec()));
        m_seq.alloc(u, checked.symbols.array(u)).unwrap();
        m_seq.fill(u, init);
        execute_seq(&mut m_seq, &compiled.node).unwrap();

        let mut m_par = Machine::new(MachineConfig::with_grid(grid.to_vec()));
        m_par.alloc(u, checked.symbols.array(u)).unwrap();
        m_par.fill(u, init);
        execute_par(&mut m_par, &compiled.node).unwrap();

        assert_eq!(
            m_seq.gather(t),
            m_par.gather(t),
            "parallel differs from sequential at stage {stage:?} grid {grid:?}"
        );
        // Counters agree too (same schedules).
        assert_eq!(m_seq.stats().total(), m_par.stats().total());

        // And both match the oracle.
        let mut r = Reference::new(&checked);
        r.fill_named("U", init);
        r.run(&checked);
        assert_eq!(m_par.gather(t), r.arrays[&t].data);
    }

    #[test]
    fn problem9_parallel_matches_sequential_all_stages() {
        for stage in Stage::all() {
            run_both(PROBLEM9, stage, &[2, 2], "T");
        }
    }

    #[test]
    fn parallel_on_other_grids() {
        for grid in [&[1usize, 1][..], &[4, 1], &[1, 4], &[2, 4]] {
            run_both(PROBLEM9, Stage::MemOpt, grid, "T");
        }
    }

    #[test]
    fn parallel_time_loop() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 7 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;
        run_both(src, Stage::MemOpt, &[2, 2], "U");
        run_both(src, Stage::Original, &[2, 2], "U");
    }

    #[test]
    fn parallel_prevalidates_bad_shifts() {
        let src = "PARAM N = 8\nREAL U(N,N), T(N,N)\nT = CSHIFT(U, SHIFT=2, DIM=1) + U\n";
        let checked = compile_source(src).unwrap();
        // halo=2 lets the offset pass convert; run on a machine with halo=1
        // so the plan is invalid.
        let compiled = compile(&checked, CompileOptions::full().halo(2));
        let u = checked.symbols.lookup_array("U").unwrap();
        let mut m = Machine::new(MachineConfig::sp2_2x2()); // halo 1
        m.alloc(u, checked.symbols.array(u)).unwrap();
        let err = execute_par(&mut m, &compiled.node).unwrap_err();
        assert!(matches!(err, RtError::ShiftTooWide { .. }));
    }
}
