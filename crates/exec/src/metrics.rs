//! Per-step metrics sampling and the cost-model drift join.
//!
//! `hpf-metrics` owns the data types; this module owns the *collection*:
//! it knows machines, tracers, and the cost model. Sampling piggybacks
//! on the per-PE trace rings instead of adding a second family of
//! instrumentation sites — [`MetricsState::begin`] snapshots each PE
//! ring's length (a watermark) before the engines run a step, and
//! [`MetricsState::end`] reads back exactly the spans that step appended
//! (a non-draining peek via [`hpf_trace::Tracer::events`]), feeding the
//! per-PE latency histograms and one [`StepSample`]. When the user did
//! not ask for tracing, [`crate::ExecPlan::build`] enables the rings
//! privately and the plan reports that it owns them, so user-facing
//! trace semantics stay unchanged.
//!
//! The drift join ([`MetricsState::drift_report`]) prices the run's
//! aggregate counters with the machine's [`CostModel`] component by
//! component and pairs each term with the measured wall time of the span
//! kinds that perform that work. PE-track spans never nest (each engine
//! records disjoint phases), so per-kind sums partition the busy time.

use hpf_metrics::{
    DriftComponent, DriftReport, MetricsConfig, MetricsSnapshot, Registry, StepSample, StepSeries,
};
use hpf_runtime::{CostModel, Machine, PeStats};
use hpf_trace::{now_ns, SpanKind};

/// Collection state owned by an [`crate::ExecPlan`] built with
/// [`crate::ExecConfig::metrics`].
#[derive(Debug)]
pub(crate) struct MetricsState {
    cfg: MetricsConfig,
    /// The exec-config label, embedded in snapshots.
    label: String,
    /// True when the plan enabled tracing purely for metrics (user trace
    /// off): the trace must then stay invisible to trace consumers.
    owns_trace: bool,
    steps: u64,
    series: StepSeries,
    per_pe: Vec<Registry>,
    driver: Registry,
    /// Hidden-communication credit read back off the drain spans the
    /// sampler has seen (pairs with the counter-side credit in the drift
    /// report; diverges only when rings overflow).
    hidden_measured_ns: f64,
}

/// Watermarks captured at the top of one plan step.
pub(crate) struct StepBegin {
    t0: u64,
    marks: Vec<usize>,
    dropped: Vec<u64>,
    bytes0: u64,
}

/// Span kinds that occupy a PE (disjoint on PE tracks — see module doc).
const PE_LEAF_KINDS: [SpanKind; 9] = [
    SpanKind::Compute,
    SpanKind::KernelExec,
    SpanKind::Interior,
    SpanKind::Boundary,
    SpanKind::Pack,
    SpanKind::Unpack,
    SpanKind::CommPost,
    SpanKind::CommDrain,
    SpanKind::Superstep,
];

impl MetricsState {
    pub(crate) fn new(cfg: MetricsConfig, label: String, pes: usize, owns_trace: bool) -> Self {
        MetricsState {
            cfg,
            label,
            owns_trace,
            steps: 0,
            series: StepSeries::new(cfg.step_capacity),
            per_pe: vec![Registry::new(); pes],
            driver: Registry::new(),
            hidden_measured_ns: 0.0,
        }
    }

    /// Does the trace on the machine exist only to feed metrics?
    pub(crate) fn owns_trace(&self) -> bool {
        self.owns_trace
    }

    /// Snapshot the per-PE ring watermarks and byte counters before the
    /// engine runs a step.
    pub(crate) fn begin(&self, machine: &Machine) -> StepBegin {
        StepBegin {
            t0: now_ns(),
            marks: machine.pes.iter().map(|p| p.tracer.len()).collect(),
            dropped: machine.pes.iter().map(|p| p.tracer.dropped()).collect(),
            bytes0: machine.pes.iter().map(|p| p.stats.bytes_sent).sum(),
        }
    }

    /// Fold the spans the step appended into the histograms and record
    /// its [`StepSample`].
    pub(crate) fn end(&mut self, machine: &Machine, begin: StepBegin, logical_steps: usize) {
        let wall_ns = now_ns().saturating_sub(begin.t0);
        let mut sample = StepSample {
            step: self.steps,
            wall_ns,
            bytes_moved: machine
                .pes
                .iter()
                .map(|p| p.stats.bytes_sent)
                .sum::<u64>()
                .saturating_sub(begin.bytes0),
            ..StepSample::default()
        };
        for (pe, p) in machine.pes.iter().enumerate() {
            let events = p.tracer.events();
            let from = begin.marks.get(pe).copied().unwrap_or(0).min(events.len());
            let mut busy = 0u64;
            for e in &events[from..] {
                self.per_pe[pe].hist_record(e.kind.label(), e.dur_ns);
                self.hidden_measured_ns += e.hidden_ns;
                if PE_LEAF_KINDS.contains(&e.kind) {
                    busy += e.dur_ns;
                }
                match e.kind {
                    SpanKind::Compute | SpanKind::KernelExec | SpanKind::Interior => {
                        sample.compute_ns += e.dur_ns
                    }
                    SpanKind::Boundary => {
                        sample.compute_ns += e.dur_ns;
                        sample.boundary_ns += e.dur_ns;
                    }
                    SpanKind::Pack | SpanKind::Unpack => sample.pack_ns += e.dur_ns,
                    SpanKind::CommPost => sample.send_ns += e.dur_ns,
                    SpanKind::CommDrain => sample.drain_ns += e.dur_ns,
                    SpanKind::Superstep => sample.superstep_ns += e.dur_ns,
                    _ => {}
                }
            }
            let dropped =
                p.tracer.dropped().saturating_sub(begin.dropped.get(pe).copied().unwrap_or(0));
            if dropped > 0 {
                self.per_pe[pe].counter_add("spans_dropped", dropped);
            }
            sample.busy.push(busy as f64 / wall_ns.max(1) as f64);
        }
        sample.imbalance = StepSample::imbalance_of(&sample.busy);
        self.driver.counter_add("steps", 1);
        self.driver.counter_add("logical_steps", logical_steps as u64);
        self.driver.counter_add("bytes_moved", sample.bytes_moved);
        self.driver.hist_record("step-wall", wall_ns);
        self.series.push(sample);
        self.steps += 1;
    }

    /// Freeze the collected metrics for export.
    pub(crate) fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            config: self.label.clone(),
            pes: self.per_pe.len(),
            steps: self.steps,
            per_pe: self.per_pe.clone(),
            driver: self.driver.clone(),
            series: self.series.clone(),
        }
    }

    /// Join the machine's aggregate counters, priced by its cost model,
    /// against the measured per-kind wall sums. The report's
    /// `modeled_time_ns` and `hidden_comm_ns` are taken straight from
    /// [`CostModel::modeled_time_ns`] and `AggStats::hidden_comm_ns`, so
    /// they reconcile with those sources exactly.
    pub(crate) fn drift_report(&self, machine: &Machine) -> DriftReport {
        let agg = machine.stats();
        let cost = &machine.cfg.cost;
        let t = agg.total();
        let hidden_modeled: f64 = agg.hidden_comm_ns.iter().sum();
        let components = vec![
            DriftComponent {
                name: "compute",
                modeled_ns: compute_modeled_ns(cost, &t),
                measured_ns: self.kinds_wall_ns(&[
                    SpanKind::Compute,
                    SpanKind::KernelExec,
                    SpanKind::Interior,
                    SpanKind::Boundary,
                    SpanKind::Superstep,
                ]),
                model_only: false,
            },
            DriftComponent {
                name: "msg-latency",
                modeled_ns: (t.msgs_sent + t.msgs_recv) as f64 * cost.alpha_ns,
                measured_ns: self.kinds_wall_ns(&[SpanKind::CommPost, SpanKind::CommDrain]),
                model_only: false,
            },
            DriftComponent {
                name: "bandwidth",
                modeled_ns: (t.bytes_sent + t.bytes_recv) as f64 * cost.beta_ns_per_byte
                    + (t.intra_bytes + t.wrap_bytes) as f64 * cost.copy_ns_per_byte,
                measured_ns: self.kinds_wall_ns(&[SpanKind::Pack, SpanKind::Unpack]),
                model_only: false,
            },
            DriftComponent {
                name: "hidden-credit",
                modeled_ns: hidden_modeled,
                measured_ns: self.hidden_measured_ns,
                model_only: true,
            },
        ];
        DriftReport {
            components,
            hidden_comm_ns: hidden_modeled,
            modeled_time_ns: cost.modeled_time_ns(&agg),
            measured_wall_ns: self.series.total_wall_ns(),
            band: (self.cfg.band_low, self.cfg.band_high),
        }
    }

    /// Total measured wall ns in the given span kinds, over all PEs.
    fn kinds_wall_ns(&self, kinds: &[SpanKind]) -> f64 {
        let mut sum = 0u64;
        for r in &self.per_pe {
            for k in kinds {
                if let Some(h) = r.hist(k.label()) {
                    sum += h.sum();
                }
            }
        }
        sum as f64
    }
}

/// The cost model's pure-compute terms for one counter set — the
/// non-communication summands of [`CostModel::pe_time_ns`].
fn compute_modeled_ns(cost: &CostModel, s: &PeStats) -> f64 {
    s.loads as f64 * cost.load_ns
        + s.strided_loads as f64 * cost.strided_load_extra_ns
        + s.stores as f64 * cost.store_ns
        + s.flops as f64 * cost.flop_ns
        + s.iters as f64 * cost.iter_ns
        + s.allocs as f64 * cost.alloc_ns
}
