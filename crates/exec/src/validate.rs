//! Shared pre-execution validation, used by every engine.
//!
//! Two checks run before any PE touches a subgrid:
//!
//! * [`check_halo`] — static: every offset access in the node program must
//!   fit inside the machine's overlap width, or a kernel compiled for a
//!   wider halo would silently read the wrong subgrid cells.
//! * [`prevalidate_comms`] — dynamic: build every overlap-shift plan once
//!   on the coordinating thread so worker threads can `.expect()` plan
//!   construction instead of threading `Result`s through the SPMD
//!   protocol. The sequential engine gets the same errors lazily from
//!   `Machine::overlap_shift`; the threaded engines call this up front.

use hpf_passes::loopir::{CommOp, Instr, NodeItem, NodeProgram};
use hpf_runtime::schedule::overlap_shift_plan;
use hpf_runtime::{Machine, RtError};

/// Reject node programs whose offset accesses exceed the machine's overlap
/// width.
pub(crate) fn check_halo(machine: &Machine, node: &NodeProgram) -> Result<(), RtError> {
    let halo = machine.cfg.halo as i64;
    let mut worst: Option<(i64, usize)> = None;
    node.for_each_item(&mut |item| {
        if let NodeItem::Nest(nest) = item {
            let unit = nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body);
            for i in unit {
                if let Instr::Load { offsets, .. } = i {
                    for (d, &o) in offsets.iter().enumerate() {
                        if o.abs() > halo && worst.is_none_or(|(w, _)| o.abs() > w) {
                            worst = Some((o, d));
                        }
                    }
                }
            }
        }
    });
    match worst {
        Some((o, d)) => Err(RtError::ShiftTooWide { shift: o, dim: d, limit: machine.cfg.halo }),
        None => Ok(()),
    }
}

/// Build every overlap-shift communication plan in the item tree once,
/// surfacing any plan-construction error (shift wider than the halo, bad
/// RSD extent) before threads are spawned.
pub(crate) fn prevalidate_comms(machine: &Machine, items: &[NodeItem]) -> Result<(), RtError> {
    for item in items {
        match item {
            NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                let geom = machine.meta(*array).geom.clone();
                overlap_shift_plan(&geom, *shift, *dim, rsd.as_ref(), *kind, machine.cfg.halo)?;
            }
            NodeItem::TimeLoop { body, .. } => prevalidate_comms(machine, body)?,
            _ => {}
        }
    }
    Ok(())
}
