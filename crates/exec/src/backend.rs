//! Backend selection: every engine (one-shot seq/par, plan stepping) can
//! evaluate loop nests with the tree interpreter or with bytecode kernels
//! compiled by `hpf-codegen`.
//!
//! The backend is orthogonal to the [`engine`](crate::par) choice: kernels
//! are compiled once per (nest, PE) after allocation, shared read-only by
//! worker threads, and reused across plan steps. A nest the codegen cannot
//! specialize (see `hpf_codegen::compile_nest`) falls back to the
//! interpreter for that (nest, PE) pair only. Both backends are bitwise
//! identical and produce the same per-PE counters; the only observable
//! difference is the `kernels_compiled` / `kernel_execs` pair in
//! `AggStats`.

use crate::nest::{exec_nest, exec_nest_expanded, exec_nest_range, expand_bounds};
use hpf_codegen::{
    compile_nest, exec_compiled, exec_compiled_over, exec_compiled_range, CompiledNest,
};
use hpf_passes::loopir::{CommOp, LoopNest, NodeItem};
use hpf_runtime::{Machine, PeState};

/// How loop-nest bodies are evaluated.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum Backend {
    /// Walk the register-machine body with the tree interpreter per point
    /// (the oracle semantics).
    #[default]
    Interp,
    /// Compile each nest to a bytecode kernel once and run it through the
    /// VM's bounds-check-free interior fast path.
    Bytecode,
}

impl Backend {
    /// Short name, as accepted by `hpfsc --engine` and printed by benches.
    pub fn label(self) -> &'static str {
        match self {
            Backend::Interp => "interp",
            Backend::Bytecode => "bytecode",
        }
    }
}

/// A node item with per-PE compiled kernels attached to each nest (empty
/// under the interpreter backend). Borrows the node program.
pub(crate) enum BcItem<'a> {
    Comm(&'a CommOp),
    Nest { nest: &'a LoopNest, kernels: Vec<Option<CompiledNest>> },
    TimeLoop { iters: usize, body: Vec<BcItem<'a>> },
}

/// Mirror the item tree, compiling every nest for every PE. Arrays must
/// already be allocated. Returns the tree and the number of kernels
/// compiled.
pub(crate) fn compile_items<'a>(
    machine: &Machine,
    items: &'a [NodeItem],
    scalars: &[f64],
) -> (Vec<BcItem<'a>>, u64) {
    let mut compiled = 0u64;
    let out = items
        .iter()
        .map(|item| match item {
            NodeItem::Comm(c) => BcItem::Comm(c),
            NodeItem::Nest(nest) => {
                let kernels: Vec<Option<CompiledNest>> =
                    machine.pes.iter().map(|pe| compile_nest(nest, pe, scalars)).collect();
                compiled += kernels.iter().flatten().count() as u64;
                BcItem::Nest { nest, kernels }
            }
            NodeItem::TimeLoop { iters, body } => {
                let (body, c) = compile_items(machine, body, scalars);
                compiled += c;
                BcItem::TimeLoop { iters: *iters, body }
            }
        })
        .collect();
    (out, compiled)
}

/// Compiled-kernel executions one full pass of the items performs across
/// all PEs (time-loop weighted) — the deterministic count both engines
/// credit to `AggStats::kernel_execs`.
pub(crate) fn kernel_execs_per_pass(items: &[BcItem]) -> u64 {
    items
        .iter()
        .map(|item| match item {
            BcItem::Comm(_) => 0,
            BcItem::Nest { kernels, .. } => kernels.iter().flatten().count() as u64,
            BcItem::TimeLoop { iters, body } => *iters as u64 * kernel_execs_per_pass(body),
        })
        .sum()
}

/// Run one nest on one PE through the chosen kernel, falling back to the
/// interpreter when the nest did not compile for this PE.
#[inline]
pub(crate) fn run_nest(
    pe: &mut PeState,
    nest: &LoopNest,
    kernel: Option<&CompiledNest>,
    scalars: &[f64],
) {
    match kernel {
        Some(k) => exec_compiled(pe, k),
        None => exec_nest(pe, nest, scalars),
    }
}

/// Run one nest on one PE restricted to a sub-rectangle of its local
/// iteration space (local subgrid coordinates, inclusive). Used by the
/// split-phase overlapped engine to execute interior regions and boundary
/// strips separately; the region is clipped against the nest's local
/// bounds by the callee.
#[inline]
pub(crate) fn run_nest_range(
    pe: &mut PeState,
    nest: &LoopNest,
    kernel: Option<&CompiledNest>,
    scalars: &[f64],
    region: &[(i64, i64)],
) {
    match kernel {
        Some(k) => exec_compiled_range(pe, k, region),
        None => exec_nest_range(pe, nest, scalars, region),
    }
}

/// Run one nest on one PE over its local bounds *expanded* into the ghost
/// region by `expand[d] = (below, above)` layers per side — a superstep
/// trapezoid sub-step sweep, which redundantly recomputes neighbor-owned
/// cells from deep-halo data. Both backends compute the identical
/// storage-clamped box (see `exec_nest_expanded`). Returns the number of
/// redundant (beyond-owned) points computed.
#[inline]
pub(crate) fn run_nest_expanded(
    pe: &mut PeState,
    nest: &LoopNest,
    kernel: Option<&CompiledNest>,
    scalars: &[f64],
    expand: &[(i64, i64)],
) -> u64 {
    match kernel {
        Some(k) => {
            let Some((lo, hi)) = k.local_bounds() else { return 0 };
            let (lo, hi) = (lo.to_vec(), hi.to_vec());
            let (lo_x, hi_x) = expand_bounds(pe, nest, &lo, &hi, expand);
            let owned: u64 = lo.iter().zip(&hi).map(|(&l, &h)| (h - l + 1) as u64).product();
            let total: u64 = lo_x.iter().zip(&hi_x).map(|(&l, &h)| (h - l + 1) as u64).product();
            exec_compiled_over(pe, k, &lo_x, &hi_x);
            total - owned
        }
        None => exec_nest_expanded(pe, nest, scalars, expand),
    }
}
