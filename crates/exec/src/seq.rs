//! Sequential machine executor.

use crate::backend::{self, Backend, BcItem};
use crate::nest::{exec_nest, scalar_values};
use hpf_passes::loopir::{CommOp, NodeItem, NodeProgram};
use hpf_runtime::{Machine, RtError};

/// Allocate every array the node program references (inputs may already be
/// allocated by the caller; those are left untouched), after checking that
/// the machine's overlap width can serve every offset access the program
/// performs.
pub fn allocate(machine: &mut Machine, node: &NodeProgram) -> Result<(), RtError> {
    crate::validate::check_halo(machine, node)?;
    for id in &node.live_arrays {
        if !machine.is_allocated(*id) {
            machine.alloc(*id, node.symbols.array(*id))?;
        }
    }
    Ok(())
}

/// Execute the node program on the machine, one PE at a time, with all
/// communication applied through the shared schedules. Allocates referenced
/// arrays first. Nests run on the interpreter backend; see
/// [`execute_seq_with`] to choose.
pub fn execute_seq(machine: &mut Machine, node: &NodeProgram) -> Result<(), RtError> {
    execute_seq_with(machine, node, Backend::default())
}

/// [`execute_seq`] with an explicit nest-evaluation [`Backend`]. Both
/// backends produce bitwise-identical array contents and per-PE counters;
/// the bytecode backend additionally bumps `kernels_compiled` /
/// `kernel_execs` in `AggStats`.
pub fn execute_seq_with(
    machine: &mut Machine,
    node: &NodeProgram,
    backend: Backend,
) -> Result<(), RtError> {
    allocate(machine, node)?;
    let scalars = scalar_values(&node.symbols);
    match backend {
        Backend::Interp => exec_items(machine, &node.items, &scalars),
        Backend::Bytecode => {
            let (items, compiled) = backend::compile_items(machine, &node.items, &scalars);
            machine.note_kernels_compiled(compiled);
            let execs = backend::kernel_execs_per_pass(&items);
            exec_bc_items(machine, &items, &scalars)?;
            machine.note_kernel_execs(execs);
            Ok(())
        }
    }
}

fn exec_items(machine: &mut Machine, items: &[NodeItem], scalars: &[f64]) -> Result<(), RtError> {
    for item in items {
        match item {
            NodeItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                machine.cshift(*dst, *src, *shift, *dim, *kind)?;
            }
            NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                machine.overlap_shift(*array, *shift, *dim, rsd.as_ref(), *kind)?;
            }
            NodeItem::Nest(nest) => {
                for pe in 0..machine.num_pes() {
                    exec_nest(&mut machine.pes[pe], nest, scalars);
                }
            }
            NodeItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    exec_items(machine, body, scalars)?;
                }
            }
        }
    }
    Ok(())
}

fn exec_bc_items(machine: &mut Machine, items: &[BcItem], scalars: &[f64]) -> Result<(), RtError> {
    for item in items {
        match item {
            BcItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                machine.cshift(*dst, *src, *shift, *dim, *kind)?;
            }
            BcItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                machine.overlap_shift(*array, *shift, *dim, rsd.as_ref(), *kind)?;
            }
            BcItem::Nest { nest, kernels } => {
                for pe in 0..machine.num_pes() {
                    backend::run_nest(&mut machine.pes[pe], nest, kernels[pe].as_ref(), scalars);
                }
            }
            BcItem::TimeLoop { iters, body } => {
                for _ in 0..*iters {
                    exec_bc_items(machine, body, scalars)?;
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reference::Reference;
    use crate::verify::max_abs_diff;
    use hpf_frontend::compile_source;
    use hpf_passes::{compile, CompileOptions, Stage};
    use hpf_runtime::MachineConfig;

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    fn check_against_reference(src: &str, stage: Stage, grid: &[usize], out: &str) {
        let checked = compile_source(src).unwrap();
        // Oracle.
        let mut r = Reference::new(&checked);
        let init = |p: &[i64]| {
            p.iter().enumerate().map(|(d, &i)| (i * (31 + d as i64)) as f64).sum::<f64>().sin()
        };
        r.fill_named("U", init);
        r.run(&checked);
        // Machine execution.
        let compiled = compile(&checked, CompileOptions::upto(stage));
        let mut m = hpf_runtime::Machine::new(MachineConfig::with_grid(grid.to_vec()));
        let u = checked.symbols.lookup_array("U").unwrap();
        m.alloc(u, checked.symbols.array(u)).unwrap();
        m.fill(u, init);
        execute_seq(&mut m, &compiled.node).unwrap();
        let id = checked.symbols.lookup_array(out).unwrap();
        let got = m.gather(id);
        let want = &r.arrays[&id].data;
        assert_eq!(
            max_abs_diff(&got, want),
            0.0,
            "stage {stage:?} grid {grid:?} differs from reference"
        );
    }

    #[test]
    fn problem9_every_stage_matches_reference_2x2() {
        for stage in Stage::all() {
            check_against_reference(PROBLEM9, stage, &[2, 2], "T");
        }
    }

    #[test]
    fn problem9_other_grids() {
        for grid in [&[1usize, 1][..], &[1, 4], &[4, 1], &[4, 2]] {
            check_against_reference(PROBLEM9, Stage::MemOpt, grid, "T");
        }
    }

    #[test]
    fn five_point_array_syntax_matches() {
        let src = r#"
PARAM N = 12
REAL U(N,N), T(N,N)
REAL C1 = 0.1, C2 = 0.2, C3 = 0.4, C4 = 0.2, C5 = 0.1
T(2:N-1,2:N-1) = C1 * U(1:N-2,2:N-1) + C2 * U(2:N-1,1:N-2) &
               + C3 * U(2:N-1,2:N-1) + C4 * U(3:N,2:N-1) + C5 * U(2:N-1,3:N)
"#;
        for stage in Stage::all() {
            check_against_reference(src, stage, &[2, 2], "T");
        }
    }

    #[test]
    fn eoshift_kernel_matches() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
T = EOSHIFT(U, SHIFT=1, DIM=1, BOUNDARY=3.5) + EOSHIFT(U, SHIFT=-1, DIM=2) + U
"#;
        for stage in Stage::all() {
            check_against_reference(src, stage, &[2, 2], "T");
        }
    }

    #[test]
    fn jacobi_time_loop_matches() {
        let src = r#"
PARAM N = 8
REAL U(N,N), T(N,N)
REAL C = 0.25
DO 5 TIMES
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
ENDDO
"#;
        for stage in Stage::all() {
            check_against_reference(src, stage, &[2, 2], "U");
        }
    }

    #[test]
    fn memory_budget_error_propagates() {
        let checked = compile_source(PROBLEM9).unwrap();
        // FreshPerShift: 6 temps + 4 user arrays = 10 arrays of 8x8.
        let mut opts = CompileOptions::upto(Stage::Original);
        opts.temp_policy = hpf_passes::TempPolicy::FreshPerShift;
        let compiled = compile(&checked, opts);
        // 8x8 over 2x2 halo 1: 36 elems = 288 B per array per PE.
        let mut m = hpf_runtime::Machine::new(MachineConfig::sp2_2x2().budget(5 * 288));
        let err = execute_seq(&mut m, &compiled.node).unwrap_err();
        assert!(matches!(err, RtError::MemoryExhausted { .. }));
        // The optimized version allocates only U and T: fits.
        let compiled_opt = compile(&checked, CompileOptions::full());
        let mut m2 = hpf_runtime::Machine::new(MachineConfig::sp2_2x2().budget(5 * 288));
        execute_seq(&mut m2, &compiled_opt.node).unwrap();
    }
}
