//! Chrome `trace_event` JSON export.
//!
//! The output is the "JSON object format" understood by `chrome://tracing`
//! and Perfetto: a `traceEvents` array of metadata (`ph:"M"`) events naming
//! the process and one thread per track, followed by complete (`ph:"X"`)
//! duration events. Timestamps are microseconds since the process-wide
//! trace epoch; each track's events are emitted in non-decreasing `ts`
//! order. Hand-rolled — the build environment has no serde — and parsed
//! back by [`crate::json`] in tests and CI.

use crate::summary::Trace;

// The JSON string escaper lives with the rest of the JSON machinery; this
// re-export keeps the historical `chrome::escape` path working.
pub use crate::json::escape;

fn us(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e3)
}

impl Trace {
    /// Serialize to Chrome `trace_event` JSON.
    pub fn to_chrome_json(&self) -> String {
        let mut evs: Vec<String> = Vec::new();
        evs.push(
            "{\"ph\":\"M\",\"pid\":0,\"tid\":0,\"name\":\"process_name\",\
             \"args\":{\"name\":\"hpf-stencil\"}}"
                .to_string(),
        );
        for (tid, track) in self.tracks.iter().enumerate() {
            evs.push(format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_name\",\
                 \"args\":{{\"name\":\"{}\"}}}}",
                escape(&track.name)
            ));
            evs.push(format!(
                "{{\"ph\":\"M\",\"pid\":0,\"tid\":{tid},\"name\":\"thread_sort_index\",\
                 \"args\":{{\"sort_index\":{tid}}}}}"
            ));
        }
        for (tid, track) in self.tracks.iter().enumerate() {
            for e in &track.events {
                let mut args = String::new();
                if e.modeled_ns != 0.0 || e.hidden_ns != 0.0 {
                    args = format!(
                        ",\"args\":{{\"modeled_ns\":{:.1},\"hidden_ns\":{:.1}}}",
                        e.modeled_ns, e.hidden_ns
                    );
                }
                evs.push(format!(
                    "{{\"ph\":\"X\",\"pid\":0,\"tid\":{tid},\"ts\":{},\"dur\":{},\
                     \"name\":\"{}\",\"cat\":\"{}\"{args}}}",
                    us(e.start_ns),
                    us(e.dur_ns),
                    e.kind.label(),
                    e.kind.category(),
                ));
            }
        }
        format!("{{\"displayTimeUnit\":\"ms\",\"traceEvents\":[{}]}}\n", evs.join(",\n"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::{parse, Value};
    use crate::span::{Event, SpanKind};
    use crate::summary::Track;

    fn sample() -> Trace {
        Trace {
            tracks: vec![
                Track {
                    name: "driver".into(),
                    events: vec![Event {
                        kind: SpanKind::Step,
                        start_ns: 0,
                        dur_ns: 5_000,
                        modeled_ns: 0.0,
                        hidden_ns: 0.0,
                    }],
                    dropped: 0,
                },
                Track {
                    name: "PE 0".into(),
                    events: vec![
                        Event {
                            kind: SpanKind::Interior,
                            start_ns: 1_000,
                            dur_ns: 2_000,
                            modeled_ns: 900.0,
                            hidden_ns: 0.0,
                        },
                        Event {
                            kind: SpanKind::CommDrain,
                            start_ns: 3_000,
                            dur_ns: 500,
                            modeled_ns: 700.0,
                            hidden_ns: 700.0,
                        },
                    ],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn export_parses_and_has_expected_shape() {
        let j = sample().to_chrome_json();
        let v = parse(&j).expect("valid JSON");
        let obj = match &v {
            Value::Object(kv) => kv,
            _ => panic!("top level must be an object"),
        };
        let events = obj
            .iter()
            .find(|(k, _)| k == "traceEvents")
            .map(|(_, v)| match v {
                Value::Array(a) => a,
                _ => panic!("traceEvents must be an array"),
            })
            .expect("has traceEvents");
        // 1 process_name + 2x(thread_name + sort) + 3 X events
        assert_eq!(events.len(), 1 + 4 + 3);
    }

    #[test]
    fn per_track_timestamps_are_monotonic() {
        let j = sample().to_chrome_json();
        let v = parse(&j).unwrap();
        let mut last_ts: std::collections::HashMap<i64, f64> = Default::default();
        if let Value::Object(kv) = &v {
            if let Some((_, Value::Array(evs))) = kv.iter().find(|(k, _)| k == "traceEvents") {
                for e in evs {
                    if let Value::Object(fields) = e {
                        let get =
                            |name: &str| fields.iter().find(|(k, _)| k == name).map(|(_, v)| v);
                        if !matches!(get("ph"), Some(Value::String(s)) if s == "X") {
                            continue;
                        }
                        let tid = match get("tid") {
                            Some(Value::Number(n)) => *n as i64,
                            _ => panic!("X event missing tid"),
                        };
                        let ts = match get("ts") {
                            Some(Value::Number(n)) => *n,
                            _ => panic!("X event missing ts"),
                        };
                        let prev = last_ts.insert(tid, ts);
                        assert!(prev.is_none_or(|p| ts >= p), "ts regressed on tid {tid}");
                    }
                }
            }
        }
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn drain_span_carries_hidden_args() {
        let j = sample().to_chrome_json();
        assert!(j.contains("\"hidden_ns\":700.0"));
        assert!(j.contains("\"cat\":\"comm\""));
    }
}
