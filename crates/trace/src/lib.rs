#![warn(missing_docs)]

//! # hpf-trace — per-PE event tracing & profiling
//!
//! The simulator's evaluation layer reasons from aggregate counters
//! ([`hpf-runtime`'s `AggStats`]), but attributing a step's wall time on
//! each PE — how long packs took, how much of a drain hid behind interior
//! compute — needs a timeline. This crate is that observability layer:
//!
//! * [`Tracer`] — a per-PE span recorder. Each worker thread owns exactly
//!   one tracer (single writer), so recording is lock-free by construction:
//!   an enabled-flag branch, a monotonic clock read, and a write into a
//!   **preallocated ring** ([`TraceConfig::capacity`] events, no allocation
//!   on the hot path, newest events dropped on overflow). When disabled,
//!   [`Tracer::now`] and [`Tracer::record`] reduce to a single predictable
//!   branch — no clock read, no write — so instrumented code paths cost
//!   nothing measurable.
//! * [`SpanKind`] — the span taxonomy: compile passes, schedule builds,
//!   kernel compiles, pack/unpack, comm post/drain, interior/boundary
//!   sweeps, whole compute sweeps, and step envelopes.
//! * [`Trace`] / [`Track`] — the collected timeline: one track per PE plus
//!   driver/compile tracks, all sharing one process-wide epoch
//!   ([`now_ns`]) so cross-thread timestamps line up.
//! * [`Trace::to_chrome_json`] — Chrome `trace_event` JSON for
//!   `chrome://tracing` / Perfetto, hand-rolled (the container has no
//!   serde) and validated by the bundled mini JSON parser ([`json`]) —
//!   which doubles as the workspace's shared JSON module (`hpf-tune` reads
//!   and writes its on-disk tuning cache through it).
//! * [`TraceSummary`] — per-track per-kind aggregates consumable from
//!   tests, including the trace-derived hidden-communication view
//!   ([`TraceSummary::hidden_comm_ns`]) and a plain-text per-step summary
//!   table ([`TraceSummary::render_table`]).

pub mod chrome;
pub mod json;
pub mod span;
pub mod summary;
pub mod table;

pub use span::{now_ns, Event, SpanKind, TraceConfig, Tracer};
pub use summary::{Trace, TraceSummary, Track, TrackSummary};
pub use table::{Align, TextTable};
