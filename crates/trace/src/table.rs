//! Minimal monospace table renderer shared by every hand-rolled text
//! table in the workspace: the trace summary, the runtime counter
//! display, the tuner candidate listing, and the metrics run report.
//!
//! Columns are declared once with an alignment; widths are computed from
//! the widest cell (header included), so callers never hard-code field
//! widths. Besides cell rows a table can carry full-width *lines*
//! (warnings, footnotes) that are emitted verbatim under the preceding
//! row — the trace summary uses these for dropped-span notices.

/// Horizontal alignment of one column.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Align {
    /// Pad on the right (names, labels).
    Left,
    /// Pad on the left (numbers).
    Right,
}

enum Row {
    Cells(Vec<String>),
    Line(String),
}

/// A column-aligned text table.
pub struct TextTable {
    indent: String,
    header: Vec<String>,
    aligns: Vec<Align>,
    rows: Vec<Row>,
}

impl TextTable {
    /// A table with the given `(header, alignment)` columns.
    pub fn new(columns: &[(&str, Align)]) -> Self {
        TextTable {
            indent: String::new(),
            header: columns.iter().map(|(h, _)| h.to_string()).collect(),
            aligns: columns.iter().map(|&(_, a)| a).collect(),
            rows: Vec::new(),
        }
    }

    /// Prefix every rendered line with `indent`.
    pub fn indent(mut self, indent: &str) -> Self {
        self.indent = indent.to_string();
        self
    }

    /// Append one row of cells. Missing trailing cells render empty; extra
    /// cells are a caller bug and panic.
    pub fn row<I>(&mut self, cells: I)
    where
        I: IntoIterator,
        I::Item: Into<String>,
    {
        let cells: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert!(cells.len() <= self.header.len(), "row wider than the declared columns");
        self.rows.push(Row::Cells(cells));
    }

    /// Append a full-width verbatim line (warning, footnote). It is
    /// indented like the rows but ignores the column grid.
    pub fn line(&mut self, text: impl Into<String>) {
        self.rows.push(Row::Line(text.into()));
    }

    /// True when no rows or lines have been added.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Render header plus rows, one `\n`-terminated line each.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            if let Row::Cells(cells) = row {
                for (i, c) in cells.iter().enumerate() {
                    widths[i] = widths[i].max(c.len());
                }
            }
        }
        let mut out = String::new();
        self.push_cells(&mut out, &self.header, &widths);
        for row in &self.rows {
            match row {
                Row::Cells(cells) => self.push_cells(&mut out, cells, &widths),
                Row::Line(text) => {
                    out.push_str(&self.indent);
                    out.push_str(text);
                    out.push('\n');
                }
            }
        }
        out
    }

    fn push_cells(&self, out: &mut String, cells: &[String], widths: &[usize]) {
        out.push_str(&self.indent);
        let last = widths.len() - 1;
        for (i, w) in widths.iter().enumerate() {
            let cell = cells.get(i).map(String::as_str).unwrap_or("");
            let text = match self.aligns[i] {
                Align::Left => format!("{cell:<w$}"),
                Align::Right => format!("{cell:>w$}"),
            };
            if i < last {
                out.push_str(&text);
                out.push(' ');
            } else {
                // No trailing padding after the final column.
                out.push_str(text.trim_end());
            }
        }
        // Rows shorter than the column set would otherwise leave padding
        // from the intermediate columns dangling at the end of the line.
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_align_and_autosize() {
        let mut t = TextTable::new(&[("name", Align::Left), ("n", Align::Right)]);
        t.row(["alpha", "5"]);
        t.row(["b", "1234"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines, vec!["name     n", "alpha    5", "b     1234"]);
    }

    #[test]
    fn lines_are_verbatim_and_indent_applies() {
        let mut t = TextTable::new(&[("a", Align::Left)]).indent("  ");
        t.row(["x"]);
        t.line("(note)");
        let s = t.render();
        assert_eq!(s, "  a\n  x\n  (note)\n");
    }

    #[test]
    fn short_rows_pad_with_empty_cells() {
        let mut t = TextTable::new(&[("a", Align::Left), ("b", Align::Right)]);
        t.row(["only"]);
        let s = t.render();
        assert!(s.contains("only"));
        assert_eq!(s.lines().count(), 2);
    }

    #[test]
    #[should_panic(expected = "row wider")]
    fn wide_rows_panic() {
        let mut t = TextTable::new(&[("a", Align::Left)]);
        t.row(["x", "y"]);
    }
}
