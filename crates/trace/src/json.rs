//! A minimal JSON parser and printer — the workspace's one shared JSON
//! module.
//!
//! The build environment has no crates.io access, so there is no serde;
//! this ~150-line recursive-descent parser is what the tests and the CI
//! gate use to validate the Chrome trace export (and what
//! `experiments --exp trace` uses to self-check `BENCH_trace.json`).
//! It accepts the full JSON grammar (RFC 8259) minus exotic number forms
//! beyond what `f64::from_str` handles, which is more than the exporter
//! emits.
//!
//! The module is deliberately self-contained (the Chrome exporter borrows
//! [`escape`] from here, not the other way around) so downstream crates can
//! use it without pulling in the rest of the tracing machinery: `hpf-tune`
//! reads its on-disk tuning cache through [`parse`] and writes it through
//! [`Value::render`], and `hpf-trace` is a leaf crate, so no dependency
//! cycle arises.

/// A parsed JSON value. Object keys keep insertion order.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (stored as `f64`).
    Number(f64),
    /// A string (escapes decoded).
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, as ordered key/value pairs.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Look up a key in an object value.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(kv) => kv.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Render back to compact JSON (canonical form for round-trip tests).
    pub fn render(&self) -> String {
        match self {
            Value::Null => "null".into(),
            Value::Bool(b) => b.to_string(),
            Value::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    format!("{}", *n as i64)
                } else {
                    format!("{n:?}")
                }
            }
            Value::String(s) => format!("\"{}\"", escape(s)),
            Value::Array(a) => {
                let inner: Vec<String> = a.iter().map(Value::render).collect();
                format!("[{}]", inner.join(","))
            }
            Value::Object(kv) => {
                let inner: Vec<String> =
                    kv.iter().map(|(k, v)| format!("\"{}\":{}", escape(k), v.render())).collect();
                format!("{{{}}}", inner.join(","))
            }
        }
    }
}

/// Escape a string for embedding in a JSON string literal.
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Parse a complete JSON document. Errors carry a byte offset.
pub fn parse(s: &str) -> Result<Value, String> {
    let b = s.as_bytes();
    let mut p = Parser { b, i: 0, depth: 0 };
    p.ws();
    let v = p.value()?;
    p.ws();
    if p.i != b.len() {
        return Err(format!("trailing data at byte {}", p.i));
    }
    Ok(v)
}

/// Maximum container nesting the parser accepts. Hand-written recursive
/// descent recurses once per `[`/`{`, so unbounded depth would let a
/// hostile document (a tampered tuning cache, a corrupt metrics snapshot)
/// overflow the stack; anything the workspace emits is a handful of
/// levels deep.
const MAX_DEPTH: usize = 512;

struct Parser<'a> {
    b: &'a [u8],
    i: usize,
    depth: usize,
}

impl<'a> Parser<'a> {
    fn ws(&mut self) {
        while self.i < self.b.len() && matches!(self.b[self.i], b' ' | b'\t' | b'\n' | b'\r') {
            self.i += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.b.get(self.i).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.i += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", c as char, self.i))
        }
    }

    fn lit(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.b[self.i..].starts_with(word.as_bytes()) {
            self.i += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.i))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.nested(Self::object),
            Some(b'[') => self.nested(Self::array),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.lit("true", Value::Bool(true)),
            Some(b'f') => self.lit("false", Value::Bool(false)),
            Some(b'n') => self.lit("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected byte at {}", self.i)),
        }
    }

    fn nested(&mut self, f: fn(&mut Self) -> Result<Value, String>) -> Result<Value, String> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} at byte {}", self.i));
        }
        let v = f(self);
        self.depth -= 1;
        v
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut kv = Vec::new();
        self.ws();
        if self.peek() == Some(b'}') {
            self.i += 1;
            return Ok(Value::Object(kv));
        }
        loop {
            self.ws();
            let k = self.string()?;
            self.ws();
            self.expect(b':')?;
            self.ws();
            let v = self.value()?;
            kv.push((k, v));
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b'}') => {
                    self.i += 1;
                    return Ok(Value::Object(kv));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.i)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut a = Vec::new();
        self.ws();
        if self.peek() == Some(b']') {
            self.i += 1;
            return Ok(Value::Array(a));
        }
        loop {
            self.ws();
            a.push(self.value()?);
            self.ws();
            match self.peek() {
                Some(b',') => self.i += 1,
                Some(b']') => {
                    self.i += 1;
                    return Ok(Value::Array(a));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.i)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.i += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.i += 1;
                    let e = self.peek().ok_or("unterminated escape")?;
                    self.i += 1;
                    match e {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.i + 4 > self.b.len() {
                                return Err("truncated \\u escape".into());
                            }
                            let hex = std::str::from_utf8(&self.b[self.i..self.i + 4])
                                .map_err(|_| "bad \\u escape")?;
                            let cp = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape")?;
                            self.i += 4;
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.i)),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.b[self.i..])
                        .map_err(|_| "invalid UTF-8 in string")?;
                    let c = rest.chars().next().unwrap();
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control char at byte {}", self.i));
                    }
                    out.push(c);
                    self.i += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.i;
        if self.peek() == Some(b'-') {
            self.i += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.i += 1;
        }
        if self.peek() == Some(b'.') {
            self.i += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.i += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.i += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.i += 1;
            }
        }
        let text = std::str::from_utf8(&self.b[start..self.i]).unwrap();
        text.parse::<f64>().map(Value::Number).map_err(|_| format!("bad number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse(" -12.5e2 ").unwrap(), Value::Number(-1250.0));
        assert_eq!(parse("\"a\\nb\"").unwrap(), Value::String("a\nb".into()));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":[1,{"b":"x"},null],"c":false}"#).unwrap();
        assert_eq!(v.get("c"), Some(&Value::Bool(false)));
        match v.get("a") {
            Some(Value::Array(a)) => {
                assert_eq!(a.len(), 3);
                assert_eq!(a[1].get("b"), Some(&Value::String("x".into())));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\":1}x").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("01abc").is_err());
    }

    #[test]
    fn round_trip_is_stable() {
        let src = r#"{"s":"q\"uote","n":1.5,"i":-7,"a":[true,null],"o":{"k":0}}"#;
        let v1 = parse(src).unwrap();
        let printed = v1.render();
        let v2 = parse(&printed).unwrap();
        assert_eq!(v1, v2);
        assert_eq!(printed, v2.render());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(parse("\"\\u0041\\u00e9\"").unwrap(), Value::String("Aé".into()));
    }

    #[test]
    fn every_simple_escape_decodes() {
        let v = parse(r#""\"\\\/\b\f\n\r\t""#).unwrap();
        assert_eq!(v, Value::String("\"\\/\u{8}\u{c}\n\r\t".into()));
        // Unknown escapes and truncated \u sequences are rejected, not
        // passed through.
        assert!(parse(r#""\q""#).is_err());
        assert!(parse(r#""\u12""#).is_err());
        assert!(parse(r#""\u12zz""#).is_err());
        assert!(parse("\"ends-in-backslash\\").is_err());
    }

    #[test]
    fn escape_and_parse_invert_each_other() {
        let nasty = "tab\t nl\n cr\r quote\" slash\\ bell\u{7} é∂";
        let doc = format!("\"{}\"", escape(nasty));
        assert_eq!(parse(&doc).unwrap(), Value::String(nasty.into()));
    }

    #[test]
    fn deep_nesting_round_trips_below_the_limit() {
        let depth = 100;
        let doc = format!("{}0{}", "[".repeat(depth), "]".repeat(depth));
        let v = parse(&doc).unwrap();
        assert_eq!(v.render(), doc);
    }

    #[test]
    fn pathological_nesting_errors_instead_of_overflowing() {
        let deep_array = format!("{}0{}", "[".repeat(4000), "]".repeat(4000));
        let err = parse(&deep_array).unwrap_err();
        assert!(err.contains("nesting deeper"), "{err}");
        let deep_object = "{\"k\":".repeat(4000) + "1" + &"}".repeat(4000);
        assert!(parse(&deep_object).unwrap_err().contains("nesting deeper"));
        // The guard resets between siblings: wide-but-shallow stays fine.
        let wide = format!("[{}]", vec!["[0]"; 4000].join(","));
        assert!(parse(&wide).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_both_entries_and_get_returns_the_first() {
        let v = parse(r#"{"k":1,"k":2,"other":3}"#).unwrap();
        assert_eq!(v.get("k"), Some(&Value::Number(1.0)));
        match &v {
            Value::Object(kv) => assert_eq!(kv.len(), 3, "no silent dedup: {kv:?}"),
            other => panic!("unexpected: {other:?}"),
        }
        // Round-tripping preserves the duplicate rather than dropping it.
        assert_eq!(v.render(), r#"{"k":1,"k":2,"other":3}"#);
    }

    #[test]
    fn every_truncation_of_a_valid_document_is_rejected() {
        let src = r#"{"a":[1,-2.5e3,{"b":"x\ny"},null],"c":[true,false]}"#;
        assert!(parse(src).is_ok());
        for cut in 1..src.len() {
            if !src.is_char_boundary(cut) {
                continue;
            }
            let prefix = &src[..cut];
            assert!(parse(prefix).is_err(), "prefix {prefix:?} parsed");
        }
    }
}
