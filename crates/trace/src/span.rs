//! Span taxonomy, the process-wide clock, and the per-PE recorder.

use std::sync::OnceLock;
use std::time::Instant;

/// What a recorded span measured. One variant per instrumentation point in
/// the compiler and the machine simulator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// One compile-pipeline pass (normalize, offset, …) — compile track.
    Pass = 0,
    /// Building one persistent communication schedule (index lists,
    /// pooled buffers) — driver track.
    ScheduleBuild = 1,
    /// Compiling one loop nest to bytecode kernels across PEs — driver
    /// track.
    KernelCompile = 2,
    /// One full subgrid sweep of a nest by a compiled bytecode kernel.
    KernelExec = 3,
    /// One full subgrid sweep of a nest by the interpreter backend.
    Compute = 4,
    /// Gathering one transfer's source elements into its pooled buffer
    /// (sender side).
    Pack = 5,
    /// Scattering one transfer's buffer into the destination overlap area
    /// (receiver side).
    Unpack = 6,
    /// Posting a comm op's sends (split-phase: pack + enqueue, no wait).
    CommPost = 7,
    /// Draining a comm op's receives (the blocking half of an exchange).
    CommDrain = 8,
    /// Interior sweep of a split-phase exchange window (runs while
    /// messages are in flight).
    Interior = 9,
    /// Boundary-strip sweeps of a split-phase exchange window (run after
    /// the drain).
    Boundary = 10,
    /// One whole plan step — driver track envelope.
    Step = 11,
    /// One communication-avoiding superstep: the deep halo exchange plus
    /// the `k` trapezoid sub-step sweeps it amortizes (per-PE tracks).
    Superstep = 12,
}

/// Number of span kinds (array-index bound for per-kind aggregates).
pub const NUM_KINDS: usize = 13;

impl SpanKind {
    /// Every kind, in `repr` order.
    pub const ALL: [SpanKind; NUM_KINDS] = [
        SpanKind::Pass,
        SpanKind::ScheduleBuild,
        SpanKind::KernelCompile,
        SpanKind::KernelExec,
        SpanKind::Compute,
        SpanKind::Pack,
        SpanKind::Unpack,
        SpanKind::CommPost,
        SpanKind::CommDrain,
        SpanKind::Interior,
        SpanKind::Boundary,
        SpanKind::Step,
        SpanKind::Superstep,
    ];

    /// Short name used in exports and tables.
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Pass => "pass",
            SpanKind::ScheduleBuild => "schedule-build",
            SpanKind::KernelCompile => "kernel-compile",
            SpanKind::KernelExec => "kernel-exec",
            SpanKind::Compute => "compute",
            SpanKind::Pack => "pack",
            SpanKind::Unpack => "unpack",
            SpanKind::CommPost => "comm-post",
            SpanKind::CommDrain => "comm-drain",
            SpanKind::Interior => "interior",
            SpanKind::Boundary => "boundary",
            SpanKind::Step => "step",
            SpanKind::Superstep => "superstep",
        }
    }

    /// Chrome trace-event category (colour group in the viewer).
    pub fn category(self) -> &'static str {
        match self {
            SpanKind::Pass | SpanKind::ScheduleBuild | SpanKind::KernelCompile => "compile",
            SpanKind::Pack | SpanKind::Unpack | SpanKind::CommPost | SpanKind::CommDrain => "comm",
            SpanKind::KernelExec | SpanKind::Compute | SpanKind::Interior | SpanKind::Boundary => {
                "compute"
            }
            SpanKind::Step | SpanKind::Superstep => "step",
        }
    }
}

/// One recorded span.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Event {
    /// What was measured.
    pub kind: SpanKind,
    /// Start, nanoseconds since the process-wide epoch ([`now_ns`]).
    pub start_ns: u64,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
    /// Modeled nanoseconds attributed to the span by the cost model
    /// (e.g. a drain's modeled receive time, an interior sweep's modeled
    /// compute time). Zero when the span carries no model attribution.
    pub modeled_ns: f64,
    /// Modeled receive nanoseconds hidden behind interior compute —
    /// nonzero only on [`SpanKind::CommDrain`] spans recorded by the
    /// split-phase overlap engine (`min(recv_ns, interior_ns)` for the
    /// window the drain closed).
    pub hidden_ns: f64,
}

static EPOCH: OnceLock<Instant> = OnceLock::new();

/// Nanoseconds since the process-wide trace epoch (lazily pinned to the
/// first call). All tracers share this epoch so spans recorded on
/// different worker threads land on one consistent timeline.
#[inline]
pub fn now_ns() -> u64 {
    EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
}

/// Recorder configuration.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceConfig {
    /// Ring capacity per tracer, in events. The ring is preallocated at
    /// enable time; once full, new events are dropped (and counted) so
    /// the hot path never reallocates.
    pub capacity: usize,
}

impl TraceConfig {
    /// Default ring capacity per tracer (events).
    pub const DEFAULT_CAPACITY: usize = 1 << 16;
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { capacity: Self::DEFAULT_CAPACITY }
    }
}

/// A single-writer span recorder. Each PE's worker thread (and the driver
/// thread) owns one tracer exclusively, so recording needs no locks or
/// atomics: check the enabled flag, read the clock, write into the
/// preallocated ring.
///
/// Disabled (the default), every method is a branch that does nothing:
/// [`Tracer::now`] returns 0 without reading the clock and
/// [`Tracer::record`] returns without writing, which is what makes
/// leaving the instrumentation compiled-in free.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    on: bool,
    ring: Vec<Event>,
    cap: usize,
    dropped: u64,
}

impl Tracer {
    /// A disabled tracer: no buffer, every record call a no-op.
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Turn recording on with a freshly preallocated ring.
    pub fn enable(&mut self, cfg: TraceConfig) {
        self.on = true;
        self.cap = cfg.capacity;
        self.ring = Vec::with_capacity(cfg.capacity);
        self.dropped = 0;
    }

    /// Whether spans are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.on
    }

    /// Timestamp for a span about to start, or 0 when disabled (the
    /// matching `record` call will ignore it). Skipping the clock read
    /// when disabled is the zero-overhead guarantee.
    #[inline]
    pub fn now(&self) -> u64 {
        if self.on {
            now_ns()
        } else {
            0
        }
    }

    /// Close a span opened at `start_ns` (a [`Tracer::now`] value).
    #[inline]
    pub fn record(&mut self, kind: SpanKind, start_ns: u64) {
        if self.on {
            let dur = now_ns().saturating_sub(start_ns);
            self.push(Event { kind, start_ns, dur_ns: dur, modeled_ns: 0.0, hidden_ns: 0.0 });
        }
    }

    /// Close a span and attach cost-model attribution (`modeled_ns`) and,
    /// for overlap-window drains, the hidden-communication credit.
    #[inline]
    pub fn record_modeled(
        &mut self,
        kind: SpanKind,
        start_ns: u64,
        modeled_ns: f64,
        hidden_ns: f64,
    ) {
        if self.on {
            let dur = now_ns().saturating_sub(start_ns);
            self.push(Event { kind, start_ns, dur_ns: dur, modeled_ns, hidden_ns });
        }
    }

    /// Record a span whose end was observed before its attribution was
    /// known (the overlap engine measures the drain, then computes the
    /// hidden credit from counter deltas, then records): both endpoints
    /// are explicit [`Tracer::now`] values.
    #[inline]
    pub fn record_at(
        &mut self,
        kind: SpanKind,
        start_ns: u64,
        end_ns: u64,
        modeled_ns: f64,
        hidden_ns: f64,
    ) {
        if self.on {
            let dur = end_ns.saturating_sub(start_ns);
            self.push(Event { kind, start_ns, dur_ns: dur, modeled_ns, hidden_ns });
        }
    }

    #[inline]
    fn push(&mut self, ev: Event) {
        if self.ring.len() < self.cap {
            self.ring.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Events recorded so far.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// True when no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Events dropped because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The recorded events without draining, in completion order (the
    /// order [`Tracer::record`] saw them, not start order). The metrics
    /// sampler uses this with a pre-step `len()` watermark to read just
    /// the spans one plan step produced, leaving the ring intact for the
    /// eventual [`Tracer::drain`].
    pub fn events(&self) -> &[Event] {
        &self.ring
    }

    /// Take the recorded events (sorted by start time — spans are pushed
    /// at completion, so nested spans complete before their parents) and
    /// reset the ring. The tracer stays enabled.
    pub fn drain(&mut self) -> (Vec<Event>, u64) {
        let mut evs = std::mem::take(&mut self.ring);
        if self.on {
            self.ring = Vec::with_capacity(self.cap);
        }
        evs.sort_by_key(|e| (e.start_ns, e.dur_ns));
        let dropped = self.dropped;
        self.dropped = 0;
        (evs, dropped)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        assert!(!t.is_enabled());
        assert_eq!(t.now(), 0);
        t.record(SpanKind::Pack, 0);
        t.record_modeled(SpanKind::CommDrain, 0, 10.0, 5.0);
        assert!(t.is_empty());
        assert_eq!(t.dropped(), 0);
    }

    #[test]
    fn enabled_tracer_records_and_drains_sorted() {
        let mut t = Tracer::disabled();
        t.enable(TraceConfig { capacity: 8 });
        let a = t.now();
        t.record(SpanKind::Pack, a);
        let b = t.now();
        t.record_modeled(SpanKind::CommDrain, b, 42.0, 7.0);
        assert_eq!(t.len(), 2);
        let (evs, dropped) = t.drain();
        assert_eq!(dropped, 0);
        assert_eq!(evs.len(), 2);
        assert!(evs.windows(2).all(|w| w[0].start_ns <= w[1].start_ns));
        assert_eq!(evs[1].kind, SpanKind::CommDrain);
        assert_eq!(evs[1].modeled_ns, 42.0);
        assert_eq!(evs[1].hidden_ns, 7.0);
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn full_ring_drops_newest_without_reallocating() {
        let mut t = Tracer::disabled();
        t.enable(TraceConfig { capacity: 2 });
        let cap_before = t.ring.capacity();
        for _ in 0..5 {
            let s = t.now();
            t.record(SpanKind::Compute, s);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        assert_eq!(t.ring.capacity(), cap_before);
    }

    #[test]
    fn epoch_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn kind_labels_are_unique() {
        let mut labels: Vec<&str> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), NUM_KINDS);
    }
}
