//! Collected timelines and their aggregate views.

use crate::span::{Event, SpanKind, NUM_KINDS};
use crate::table::{Align, TextTable};

/// One timeline: all spans recorded by one tracer (one PE worker thread,
/// or a driver/compile-side tracer).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Track {
    /// Display name ("PE 0", "driver", "compile-passes").
    pub name: String,
    /// Spans, sorted by start time.
    pub events: Vec<Event>,
    /// Spans lost to ring overflow on this track.
    pub dropped: u64,
}

/// A complete collected trace: one [`Track`] per tracer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Trace {
    /// Tracks, driver/compile first, then one per PE in PE order.
    pub tracks: Vec<Track>,
}

impl Trace {
    /// Per-track per-kind aggregates.
    pub fn summary(&self) -> TraceSummary {
        TraceSummary {
            tracks: self
                .tracks
                .iter()
                .map(|t| {
                    let mut s = TrackSummary {
                        name: t.name.clone(),
                        dropped: t.dropped,
                        ..TrackSummary::default()
                    };
                    for e in &t.events {
                        let k = e.kind as usize;
                        s.count[k] += 1;
                        s.wall_ns[k] += e.dur_ns;
                        s.modeled_ns[k] += e.modeled_ns;
                        s.hidden_ns[k] += e.hidden_ns;
                    }
                    s
                })
                .collect(),
        }
    }

    /// Total number of spans across all tracks.
    pub fn total_events(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

/// Per-kind aggregates for one track.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrackSummary {
    /// Track display name.
    pub name: String,
    /// Spans lost to ring overflow.
    pub dropped: u64,
    /// Span count per [`SpanKind`] (indexed by `kind as usize`).
    pub count: [u64; NUM_KINDS],
    /// Total wall nanoseconds per kind.
    pub wall_ns: [u64; NUM_KINDS],
    /// Total modeled nanoseconds per kind.
    pub modeled_ns: [f64; NUM_KINDS],
    /// Total hidden-communication nanoseconds per kind (nonzero only for
    /// [`SpanKind::CommDrain`]).
    pub hidden_ns: [f64; NUM_KINDS],
}

impl TrackSummary {
    /// Span count for one kind.
    pub fn count(&self, k: SpanKind) -> u64 {
        self.count[k as usize]
    }

    /// Total wall nanoseconds for one kind.
    pub fn wall_ns(&self, k: SpanKind) -> u64 {
        self.wall_ns[k as usize]
    }

    /// Total modeled nanoseconds for one kind.
    pub fn modeled_ns(&self, k: SpanKind) -> f64 {
        self.modeled_ns[k as usize]
    }

    /// Total hidden nanoseconds for one kind.
    pub fn hidden_ns(&self, k: SpanKind) -> f64 {
        self.hidden_ns[k as usize]
    }

    /// Is this a per-PE track (vs driver/compile)?
    pub fn is_pe(&self) -> bool {
        self.name.starts_with("PE ")
    }
}

/// Aggregate view of a [`Trace`], consumable from tests.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TraceSummary {
    /// One entry per track, same order as [`Trace::tracks`].
    pub tracks: Vec<TrackSummary>,
}

impl TraceSummary {
    /// Look up a track by name.
    pub fn track(&self, name: &str) -> Option<&TrackSummary> {
        self.tracks.iter().find(|t| t.name == name)
    }

    /// The per-PE tracks, in PE order.
    pub fn pe_tracks(&self) -> Vec<&TrackSummary> {
        self.tracks.iter().filter(|t| t.is_pe()).collect()
    }

    /// The trace-derived hidden-communication view: per PE, the hidden
    /// credit carried by that PE's overlap-window drain spans. With
    /// tracing on, this reproduces `AggStats::hidden_comm_ns` exactly —
    /// both are sums of the same per-window `min(recv_ns, interior_ns)`
    /// values, one accumulated in a counter, one read back off the spans.
    pub fn hidden_comm_ns(&self) -> Vec<f64> {
        self.pe_tracks().iter().map(|t| t.hidden_ns(SpanKind::CommDrain)).collect()
    }

    /// Total wall nanoseconds for one kind across all tracks.
    pub fn total_wall_ns(&self, k: SpanKind) -> u64 {
        self.tracks.iter().map(|t| t.wall_ns(k)).sum()
    }

    /// Total span count for one kind across all tracks.
    pub fn total_count(&self, k: SpanKind) -> u64 {
        self.tracks.iter().map(|t| t.count(k)).sum()
    }

    /// Total spans lost to ring overflow, across every track (driver
    /// tracks included — a PE-only count would hide driver drops).
    pub fn total_dropped(&self) -> u64 {
        self.tracks.iter().map(|t| t.dropped).sum()
    }

    /// Plain-text per-step summary table: for each per-PE track, wall
    /// microseconds per step in each execution-phase column. `steps`
    /// clamps to at least 1. Tracks that overflowed their ring get an
    /// inline note, and any overflow at all appends a closing warning so
    /// drops are never silent in the rendered view.
    pub fn render_table(&self, steps: u64) -> String {
        let steps = steps.max(1) as f64;
        const COLS: [SpanKind; 8] = [
            SpanKind::Compute,
            SpanKind::KernelExec,
            SpanKind::Interior,
            SpanKind::Boundary,
            SpanKind::Pack,
            SpanKind::Unpack,
            SpanKind::CommPost,
            SpanKind::CommDrain,
        ];
        let mut columns: Vec<(&str, Align)> =
            vec![("track", Align::Left), ("events", Align::Right)];
        for k in COLS {
            columns.push((k.label(), Align::Right));
        }
        columns.push(("hidden", Align::Right));
        let mut table = TextTable::new(&columns);
        for t in self.pe_tracks() {
            let events: u64 = t.count.iter().sum();
            let mut row = vec![t.name.clone(), events.to_string()];
            for k in COLS {
                row.push(format!("{:.1}", t.wall_ns(k) as f64 / steps / 1e3));
            }
            row.push(format!("{:.1}", t.hidden_ns(SpanKind::CommDrain) / steps / 1e3));
            table.row(row);
            if t.dropped > 0 {
                table.line(format!("  ({} spans dropped: ring full)", t.dropped));
            }
        }
        table.line(
            "(per-PE wall microseconds per step; hidden = modeled comm hidden behind interior compute)",
        );
        let dropped = self.total_dropped();
        if dropped > 0 {
            table.line(format!(
                "warning: {dropped} spans lost to ring overflow — raise TraceConfig capacity for a complete trace"
            ));
        }
        table.render()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(kind: SpanKind, start: u64, dur: u64) -> Event {
        Event { kind, start_ns: start, dur_ns: dur, modeled_ns: 0.0, hidden_ns: 0.0 }
    }

    fn sample() -> Trace {
        Trace {
            tracks: vec![
                Track {
                    name: "driver".into(),
                    events: vec![ev(SpanKind::ScheduleBuild, 0, 100), ev(SpanKind::Step, 100, 900)],
                    dropped: 0,
                },
                Track {
                    name: "PE 0".into(),
                    events: vec![
                        ev(SpanKind::Pack, 120, 30),
                        ev(SpanKind::Interior, 160, 200),
                        Event {
                            kind: SpanKind::CommDrain,
                            start_ns: 360,
                            dur_ns: 50,
                            modeled_ns: 400.0,
                            hidden_ns: 250.0,
                        },
                        ev(SpanKind::Boundary, 420, 60),
                    ],
                    dropped: 2,
                },
                Track {
                    name: "PE 1".into(),
                    events: vec![Event {
                        kind: SpanKind::CommDrain,
                        start_ns: 300,
                        dur_ns: 40,
                        modeled_ns: 100.0,
                        hidden_ns: 100.0,
                    }],
                    dropped: 0,
                },
            ],
        }
    }

    #[test]
    fn summary_aggregates_by_kind_and_track() {
        let s = sample().summary();
        assert_eq!(s.tracks.len(), 3);
        let pe0 = s.track("PE 0").unwrap();
        assert_eq!(pe0.count(SpanKind::Pack), 1);
        assert_eq!(pe0.wall_ns(SpanKind::Interior), 200);
        assert_eq!(pe0.modeled_ns(SpanKind::CommDrain), 400.0);
        assert_eq!(pe0.dropped, 2);
        assert_eq!(s.total_wall_ns(SpanKind::CommDrain), 90);
        assert_eq!(s.total_count(SpanKind::CommDrain), 2);
    }

    #[test]
    fn hidden_view_is_per_pe_drain_credit() {
        let s = sample().summary();
        assert_eq!(s.hidden_comm_ns(), vec![250.0, 100.0]);
    }

    #[test]
    fn pe_tracks_exclude_driver() {
        let s = sample().summary();
        let pes = s.pe_tracks();
        assert_eq!(pes.len(), 2);
        assert!(pes.iter().all(|t| t.is_pe()));
    }

    #[test]
    fn table_mentions_every_pe_and_reports_drops() {
        let s = sample().summary();
        let table = s.render_table(2);
        assert!(table.contains("PE 0"));
        assert!(table.contains("PE 1"));
        assert!(table.contains("dropped"));
        assert!(table.contains("interior"));
        assert!(table.contains("warning: 2 spans lost"), "{table}");
    }

    #[test]
    fn table_omits_the_overflow_warning_when_nothing_dropped() {
        let mut trace = sample();
        trace.tracks[1].dropped = 0;
        let s = trace.summary();
        assert_eq!(s.total_dropped(), 0);
        assert!(!s.render_table(1).contains("warning:"));
    }
}
