//! The legal configuration space: PE-grid factorizations crossed with the
//! engine × backend matrix and the threaded-engine spawn threshold.

use hpf_exec::{Backend, Engine, ExecConfig};
use hpf_runtime::{MachineConfig, PeGrid};

/// One point of the configuration space the tuner searches, annotated with
/// its modeled time (cost-model pruning stage) and, for the top-K
/// survivors, its empirically measured per-step wall time.
#[derive(Clone, Debug, PartialEq)]
pub struct Candidate {
    /// PE mesh (a factorization of the machine's core count whose rank
    /// matches the base grid's).
    pub grid: Vec<usize>,
    /// The executor.
    pub engine: Engine,
    /// The nest-evaluation backend.
    pub backend: Backend,
    /// Threaded-engine spawn threshold (points per PE per step).
    pub par_threshold: u64,
    /// Communication-avoiding superstep depth (1 = the classic
    /// exchange-every-step schedule).
    pub superstep: usize,
    /// Modeled time of one step under the machine's cost model,
    /// milliseconds. `INFINITY` when the candidate's plan failed to build
    /// (e.g. a collapsed dimension on a multi-PE axis).
    pub modeled_ms: f64,
    /// Best-of-R measured wall time of one step, milliseconds. `None` for
    /// candidates pruned by the model (never timed) or whose build failed.
    pub measured_ms: Option<f64>,
}

impl Candidate {
    /// The execution configuration this candidate describes (the part
    /// [`hpf_exec::ExecPlan::build`] consumes).
    pub fn exec_config(&self) -> ExecConfig {
        ExecConfig::new().engine(self.engine).backend(self.backend).superstep(self.superstep)
    }

    /// The base machine configuration with this candidate's grid and spawn
    /// threshold applied (halo, budget, and cost model inherited).
    pub fn machine_config(&self, base: &MachineConfig) -> MachineConfig {
        let mut cfg = base.clone();
        cfg.grid = PeGrid::new(self.grid.clone());
        cfg.par_threshold = self.par_threshold;
        cfg
    }

    /// `RxC engine[-backend] pts=N [ss=K]` — the row label of the candidate
    /// table; the superstep depth appears only when it avoids communication.
    pub fn label(&self) -> String {
        let ss = if self.superstep > 1 { format!(" ss={}", self.superstep) } else { String::new() };
        format!(
            "{} {} pts={}{ss}",
            grid_label(&self.grid),
            self.exec_config().label(),
            self.par_threshold
        )
    }
}

/// Render a grid as `2x2` / `1x4x1`.
pub fn grid_label(grid: &[usize]) -> String {
    grid.iter().map(|d| d.to_string()).collect::<Vec<_>>().join("x")
}

/// Every ordered factorization of `pes` into `rank` positive factors, in
/// deterministic lexicographic order — the legal PE meshes for arrays of
/// that rank. `factorizations(4, 2)` is `[[1,4], [2,2], [4,1]]`.
pub fn factorizations(pes: usize, rank: usize) -> Vec<Vec<usize>> {
    assert!(pes >= 1 && rank >= 1, "need at least one PE and one axis");
    let mut out = Vec::new();
    let mut cur = vec![1usize; rank];
    fn rec(left: usize, d: usize, cur: &mut Vec<usize>, out: &mut Vec<Vec<usize>>) {
        if d + 1 == cur.len() {
            cur[d] = left;
            out.push(cur.clone());
            return;
        }
        for f in 1..=left {
            if left.is_multiple_of(f) {
                cur[d] = f;
                rec(left / f, d + 1, cur, out);
            }
        }
    }
    rec(pes, 0, &mut cur, &mut out);
    out
}

/// Enumerate the full candidate space for `pes` processors arranged in
/// rank-`rank` meshes: every grid factorization × every engine × every
/// backend × every spawn threshold in `thresholds` × every
/// communication-avoiding superstep depth in `supersteps`. The sequential
/// engine ignores the spawn threshold, so it is emitted once per backend
/// (with threshold 0) rather than once per threshold; the split-phase
/// threaded-overlap engine is included only when `allow_overlap` (callers
/// gate it on the halo-safety lints, exactly like manual engine choice);
/// callers pass only superstep depths the kernel is eligible for (an empty
/// slice means the classic depth 1). Modeled and measured fields start
/// unset.
pub fn enumerate(
    pes: usize,
    rank: usize,
    allow_overlap: bool,
    thresholds: &[u64],
    supersteps: &[usize],
) -> Vec<Candidate> {
    let mut engines = vec![Engine::Sequential, Engine::Threaded];
    if allow_overlap {
        engines.push(Engine::ThreadedOverlap);
    }
    let depths: &[usize] = if supersteps.is_empty() { &[1] } else { supersteps };
    let mut out = Vec::new();
    for grid in factorizations(pes, rank) {
        for &engine in &engines {
            let pts: &[u64] = if engine == Engine::Sequential { &[0] } else { thresholds };
            for &backend in &[Backend::Interp, Backend::Bytecode] {
                for &par_threshold in pts {
                    for &superstep in depths {
                        out.push(Candidate {
                            grid: grid.clone(),
                            engine,
                            backend,
                            par_threshold,
                            superstep: superstep.max(1),
                            modeled_ms: f64::INFINITY,
                            measured_ms: None,
                        });
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn factorizations_cover_all_ordered_splits() {
        assert_eq!(factorizations(4, 2), vec![vec![1, 4], vec![2, 2], vec![4, 1]]);
        assert_eq!(factorizations(1, 2), vec![vec![1, 1]]);
        assert_eq!(factorizations(6, 2).len(), 4); // 1x6 2x3 3x2 6x1
        assert_eq!(factorizations(8, 3).len(), 10);
        for f in factorizations(12, 3) {
            assert_eq!(f.iter().product::<usize>(), 12);
        }
    }

    #[test]
    fn enumerate_counts_the_matrix() {
        // 3 grids x (seq: 2 backends + threaded: 2x2 + overlap: 2x2) = 30.
        let cands = enumerate(4, 2, true, &[0, 4096], &[1]);
        assert_eq!(cands.len(), 3 * (2 + 4 + 4));
        // Without overlap the split-phase engine disappears entirely.
        let blocking = enumerate(4, 2, false, &[0, 4096], &[1]);
        assert_eq!(blocking.len(), 3 * (2 + 4));
        assert!(blocking.iter().all(|c| c.engine != Engine::ThreadedOverlap));
        // Sequential candidates carry exactly one threshold value.
        let seq: Vec<_> = cands.iter().filter(|c| c.engine == Engine::Sequential).collect();
        assert!(seq.iter().all(|c| c.par_threshold == 0));
        // Superstep depths multiply the whole matrix; empty means depth 1.
        let deep = enumerate(4, 2, true, &[0, 4096], &[1, 2, 4]);
        assert_eq!(deep.len(), 3 * cands.len());
        assert_eq!(enumerate(4, 2, true, &[0, 4096], &[]).len(), cands.len());
        assert!(enumerate(4, 2, true, &[0, 4096], &[]).iter().all(|c| c.superstep == 1));
    }

    #[test]
    fn labels_read_like_the_cli() {
        let c = Candidate {
            grid: vec![2, 2],
            engine: Engine::Threaded,
            backend: Backend::Bytecode,
            par_threshold: 4096,
            superstep: 1,
            modeled_ms: f64::INFINITY,
            measured_ms: None,
        };
        assert_eq!(c.label(), "2x2 threaded-bytecode pts=4096");
        assert_eq!(ExecConfig::from_cli_str("threaded-bytecode").unwrap(), c.exec_config());
    }

    #[test]
    fn machine_config_applies_grid_and_threshold() {
        let base = MachineConfig::grid([2, 2]).halo(2).memory_mb(64);
        let c = Candidate {
            grid: vec![1, 4],
            engine: Engine::Threaded,
            backend: Backend::Interp,
            par_threshold: 4096,
            superstep: 1,
            modeled_ms: 0.0,
            measured_ms: None,
        };
        let cfg = c.machine_config(&base);
        assert_eq!(cfg.grid.dims, vec![1, 4]);
        assert_eq!(cfg.par_threshold, 4096);
        assert_eq!(cfg.halo, 2, "halo inherited from the base");
        assert_eq!(cfg.mem_budget, Some(64 << 20), "budget inherited");
    }
}
