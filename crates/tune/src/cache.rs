//! The persistent on-disk tuning cache (`.hpf-tune.json`).
//!
//! One JSON object per file: `{"version": 1, "entries": [...]}` with one
//! entry per kernel fingerprint, each holding the winning grid, the
//! `engine[-backend]` label (re-parsed with
//! [`hpf_exec::ExecConfig::from_cli_str`]), the spawn threshold, and the
//! modeled/measured times of the winner. Reads go through the shared
//! [`hpf_trace::json`] parser; writes are a hand-rolled
//! [`hpf_trace::json::Value::render`] of the same shape, so the file
//! round-trips through the crate's own machinery. A file that fails to
//! parse — truncated write, hand-edited junk, wrong version — is reported
//! to the caller as an error string; the tuner warns and falls back to a
//! fresh search rather than failing the run.

use hpf_trace::json::{parse, Value};
use std::path::Path;

/// Cache format version; bumped when the entry schema changes so stale
/// files fall back to a fresh search instead of being misread (v2 added
/// the winning superstep depth).
pub const CACHE_VERSION: u64 = 2;

/// The default cache file name, resolved in the working directory.
pub const DEFAULT_CACHE_FILE: &str = ".hpf-tune.json";

/// One cached tuning decision, keyed by the kernel fingerprint.
#[derive(Clone, Debug, PartialEq)]
pub struct CacheEntry {
    /// Kernel fingerprint ([`fingerprint`]): normalized IR + machine shape
    /// + problem size, FNV-1a hashed to 16 hex digits.
    pub key: String,
    /// Winning PE mesh.
    pub grid: Vec<usize>,
    /// Winning `engine[-backend]` label
    /// ([`hpf_exec::ExecConfig::label`] / `from_cli_str` round-trip).
    pub config: String,
    /// Winning threaded-engine spawn threshold.
    pub par_threshold: u64,
    /// Winning communication-avoiding superstep depth (1 = classic).
    pub superstep: u64,
    /// The winner's modeled step time when it was searched, milliseconds.
    pub modeled_ms: f64,
    /// The winner's measured step time when it was searched, milliseconds.
    pub measured_ms: f64,
}

/// Deterministic 64-bit FNV-1a over a seed string, as 16 hex digits — the
/// kernel fingerprint. The seed is built by the caller from everything the
/// tuning decision depends on (normalized IR listing, array shapes, PE
/// count, halo), so equal seeds mean the cached winner is reusable and any
/// change to kernel or machine re-keys the search.
pub fn fingerprint(seed: &str) -> String {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in seed.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{h:016x}")
}

/// An in-memory image of the cache file.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TuneCache {
    /// Entries in file order; at most one per key.
    pub entries: Vec<CacheEntry>,
}

impl TuneCache {
    /// Load the cache at `path`. A missing file is an empty cache (the
    /// normal cold start); an unreadable or unparsable file is an error
    /// string describing the corruption, which callers surface as a
    /// warning before searching fresh.
    pub fn load(path: &Path) -> Result<TuneCache, String> {
        if !path.exists() {
            return Ok(TuneCache::default());
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("unreadable: {e}"))?;
        let v = parse(&text).map_err(|e| format!("corrupt JSON: {e}"))?;
        Self::from_value(&v)
    }

    fn from_value(v: &Value) -> Result<TuneCache, String> {
        let version = num(v.get("version").ok_or("missing version")?)? as u64;
        if version != CACHE_VERSION {
            return Err(format!("version {version}, expected {CACHE_VERSION}"));
        }
        let entries = match v.get("entries").ok_or("missing entries")? {
            Value::Array(a) => a,
            _ => return Err("entries is not an array".into()),
        };
        let mut out = TuneCache::default();
        for e in entries {
            let grid = match e.get("grid").ok_or("entry missing grid")? {
                Value::Array(a) => {
                    a.iter().map(|d| num(d).map(|n| n as usize)).collect::<Result<Vec<_>, _>>()?
                }
                _ => return Err("grid is not an array".into()),
            };
            if grid.is_empty() || grid.contains(&0) {
                return Err(format!("bad grid {grid:?}"));
            }
            out.entries.push(CacheEntry {
                key: string(e.get("key").ok_or("entry missing key")?)?,
                grid,
                config: string(e.get("config").ok_or("entry missing config")?)?,
                par_threshold: num(e.get("par_threshold").ok_or("entry missing par_threshold")?)?
                    as u64,
                superstep: num(e.get("superstep").ok_or("entry missing superstep")?)? as u64,
                modeled_ms: num(e.get("modeled_ms").ok_or("entry missing modeled_ms")?)?,
                measured_ms: num(e.get("measured_ms").ok_or("entry missing measured_ms")?)?,
            });
        }
        Ok(out)
    }

    /// The entry cached for `key`, if any.
    pub fn lookup(&self, key: &str) -> Option<&CacheEntry> {
        self.entries.iter().find(|e| e.key == key)
    }

    /// Insert `entry`, replacing any existing entry with the same key.
    pub fn insert(&mut self, entry: CacheEntry) {
        self.entries.retain(|e| e.key != entry.key);
        self.entries.push(entry);
    }

    /// Serialize to the on-disk JSON (trailing newline included).
    pub fn to_json(&self) -> String {
        let entries = self
            .entries
            .iter()
            .map(|e| {
                Value::Object(vec![
                    ("key".into(), Value::String(e.key.clone())),
                    (
                        "grid".into(),
                        Value::Array(e.grid.iter().map(|&d| Value::Number(d as f64)).collect()),
                    ),
                    ("config".into(), Value::String(e.config.clone())),
                    ("par_threshold".into(), Value::Number(e.par_threshold as f64)),
                    ("superstep".into(), Value::Number(e.superstep as f64)),
                    ("modeled_ms".into(), Value::Number(e.modeled_ms)),
                    ("measured_ms".into(), Value::Number(e.measured_ms)),
                ])
            })
            .collect();
        let doc = Value::Object(vec![
            ("version".into(), Value::Number(CACHE_VERSION as f64)),
            ("entries".into(), Value::Array(entries)),
        ]);
        doc.render() + "\n"
    }

    /// Write the cache to `path` (overwriting).
    pub fn store(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn num(v: &Value) -> Result<f64, String> {
    match v {
        Value::Number(n) => Ok(*n),
        other => Err(format!("expected number, found {other:?}")),
    }
}

fn string(v: &Value) -> Result<String, String> {
    match v {
        Value::String(s) => Ok(s.clone()),
        other => Err(format!("expected string, found {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(key: &str) -> CacheEntry {
        CacheEntry {
            key: key.to_string(),
            grid: vec![2, 2],
            config: "threaded-bytecode".to_string(),
            par_threshold: 4096,
            superstep: 2,
            modeled_ms: 1.25,
            measured_ms: 0.5,
        }
    }

    #[test]
    fn fingerprint_is_deterministic_and_input_sensitive() {
        assert_eq!(fingerprint("abc"), fingerprint("abc"));
        assert_ne!(fingerprint("abc"), fingerprint("abd"));
        assert_eq!(fingerprint("").len(), 16);
        // Known FNV-1a 64 vector.
        assert_eq!(fingerprint(""), "cbf29ce484222325");
    }

    #[test]
    fn json_round_trip_preserves_entries() {
        let mut c = TuneCache::default();
        c.insert(entry("aaaa"));
        c.insert(entry("bbbb"));
        let parsed = TuneCache::from_value(&parse(&c.to_json()).unwrap()).unwrap();
        assert_eq!(parsed, c);
    }

    #[test]
    fn insert_replaces_same_key() {
        let mut c = TuneCache::default();
        c.insert(entry("k"));
        let mut e2 = entry("k");
        e2.grid = vec![4, 1];
        c.insert(e2.clone());
        assert_eq!(c.entries.len(), 1);
        assert_eq!(c.lookup("k"), Some(&e2));
    }

    #[test]
    fn corrupt_documents_are_errors_not_panics() {
        for bad in [
            "{",                                             // truncated
            "[]",                                            // wrong shape
            "{\"version\":99,\"entries\":[]}",               // future version
            "{\"version\":1,\"entries\":[]}",                // pre-superstep version
            "{\"version\":2}",                               // missing entries
            "{\"version\":2,\"entries\":[{\"key\":1}]}",     // wrong field type
            "{\"version\":2,\"entries\":[{\"key\":\"x\"}]}", // missing fields
        ] {
            let r = parse(bad).and_then(|v| TuneCache::from_value(&v));
            assert!(r.is_err(), "{bad} should be rejected");
        }
    }

    #[test]
    fn load_missing_file_is_empty_cache() {
        let path =
            std::env::temp_dir().join(format!("hpf-tune-missing-{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        assert_eq!(TuneCache::load(&path).unwrap(), TuneCache::default());
    }

    #[test]
    fn store_then_load_round_trips_on_disk() {
        let path = std::env::temp_dir().join(format!("hpf-tune-rt-{}.json", std::process::id()));
        let mut c = TuneCache::default();
        c.insert(entry("deadbeef01234567"));
        c.store(&path).unwrap();
        assert_eq!(TuneCache::load(&path).unwrap(), c);
        std::fs::remove_file(&path).unwrap();
    }
}
