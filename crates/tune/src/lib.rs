#![warn(missing_docs)]
//! Auto-tuning: cost-guided configuration search with a persistent
//! on-disk tuning cache.
//!
//! The compilation pipeline fixes *what* a stencil computes; this crate
//! picks *how to run it*. For a (kernel, machine, problem-size) triple the
//! [`Tuner`] enumerates the legal configuration space — every PE-grid
//! factorization of the core count, the full engine × backend matrix
//! (`seq`/`threaded`/`threaded-overlap` × `interp`/`bytecode`), and the
//! threaded-engine spawn threshold — prunes it with the machine's
//! analytic cost model (one cheap model probe per distinct modeled
//! configuration), then empirically times the top-K surviving candidates
//! with short warm-state plan runs (one warmup step, then min-of-R timed
//! steps, reusing [`hpf_exec::ExecPlan`] so schedules and bytecode kernels
//! compile once per candidate).
//!
//! The winner is persisted in an on-disk cache (default
//! [`cache::DEFAULT_CACHE_FILE`]) keyed by a deterministic kernel
//! [`fingerprint`], so subsequent runs of the same kernel on the same
//! machine shape skip the search entirely — a warm [`Tuner::best`] call
//! performs zero candidate timings. A corrupted cache file degrades to a
//! warning plus a fresh search, never an error.

pub mod cache;
pub mod space;

pub use cache::{fingerprint, CacheEntry, TuneCache, DEFAULT_CACHE_FILE};
pub use space::{enumerate, factorizations, grid_label, Candidate};

use hpf_exec::{Backend, Engine, ExecConfig, ExecPlan};
use hpf_passes::loopir::NodeProgram;
use hpf_runtime::{Machine, MachineConfig, RtError};
use std::path::PathBuf;
use std::time::Instant;

/// The result of one [`Tuner::best`] call.
#[derive(Clone, Debug)]
pub struct TuneOutcome {
    /// The winning candidate (measured on a cold search; carrying the
    /// cached measurement on a cache hit).
    pub best: Candidate,
    /// Every enumerated candidate, sorted by modeled time (ties broken by
    /// label), with measurements filled in for the timed top-K. Empty on a
    /// cache hit — nothing was enumerated.
    pub candidates: Vec<Candidate>,
    /// How many candidates were empirically timed (0 on a cache hit).
    pub timed: usize,
    /// Whether the result came straight from the tuning cache.
    pub cache_hit: bool,
    /// Wall time the whole call took (search or cache probe), nanoseconds.
    pub search_ns: u64,
    /// The kernel fingerprint the cache is keyed by.
    pub fingerprint: String,
}

impl TuneOutcome {
    /// The candidate table a cold search prints (`hpfsc --tune`): one row
    /// per enumerated candidate in modeled order, the winner marked `*`,
    /// un-timed candidates shown as `-`, failed builds as `build failed`.
    /// Empty on a cache hit — nothing was enumerated.
    pub fn render_table(&self) -> String {
        use hpf_trace::{Align, TextTable};
        let mut t = TextTable::new(&[
            ("", Align::Left),
            ("grid", Align::Left),
            ("config", Align::Left),
            ("pts", Align::Right),
            ("modeled ms", Align::Right),
            ("measured ms", Align::Right),
        ]);
        for c in &self.candidates {
            let modeled = if c.modeled_ms.is_finite() {
                format!("{:.4}", c.modeled_ms)
            } else {
                "build failed".to_string()
            };
            let measured = match c.measured_ms {
                Some(ms) => format!("{ms:.4}"),
                None => "-".to_string(),
            };
            t.row([
                if *c == self.best { "*".to_string() } else { String::new() },
                grid_label(&c.grid),
                c.exec_config().label(),
                c.par_threshold.to_string(),
                modeled,
                measured,
            ]);
        }
        t.render()
    }
}

/// Cost-guided configuration search over PE grids, engines, backends, and
/// spawn thresholds. Construct with [`Tuner::new`] around the base machine
/// configuration (which supplies the core count, mesh rank, halo width,
/// memory budget, and cost model — the parts the tuner does *not* search),
/// then call [`Tuner::best`].
#[derive(Clone, Debug)]
pub struct Tuner {
    base: MachineConfig,
    top_k: usize,
    reps: usize,
    cache: Option<PathBuf>,
    allow_overlap: bool,
    thresholds: Vec<u64>,
    supersteps: Vec<usize>,
}

impl Tuner {
    /// A tuner over `base`'s machine: empirically time the 8 best-modeled
    /// candidates with min-of-3 step timings, consider spawn thresholds
    /// {0, 4096} and communication-avoiding superstep depths {1, 2, 4, 8}
    /// (depths the kernel is ineligible for are dropped before the search),
    /// allow the split-phase overlap engine, and persist decisions in
    /// [`DEFAULT_CACHE_FILE`].
    pub fn new(base: MachineConfig) -> Tuner {
        Tuner {
            base,
            top_k: 8,
            reps: 3,
            cache: Some(PathBuf::from(DEFAULT_CACHE_FILE)),
            allow_overlap: true,
            thresholds: vec![0, 4096],
            supersteps: vec![1, 2, 4, 8],
        }
    }

    /// Empirically time the `k` best-modeled candidates (default 8).
    pub fn top_k(mut self, k: usize) -> Tuner {
        self.top_k = k.max(1);
        self
    }

    /// Time every step `r` times and keep the minimum (default 3).
    pub fn reps(mut self, r: usize) -> Tuner {
        self.reps = r.max(1);
        self
    }

    /// Persist decisions in `path` instead of [`DEFAULT_CACHE_FILE`].
    pub fn cache_path(mut self, path: impl Into<PathBuf>) -> Tuner {
        self.cache = Some(path.into());
        self
    }

    /// Disable the on-disk cache: always search, never read or write.
    pub fn no_cache(mut self) -> Tuner {
        self.cache = None;
        self
    }

    /// Gate the split-phase overlap engine (callers pass `false` when the
    /// kernel's halo-safety lints are not clean, exactly as they would for
    /// a manual [`Engine::ThreadedOverlap`] choice).
    pub fn allow_overlap(mut self, allow: bool) -> Tuner {
        self.allow_overlap = allow;
        self
    }

    /// Whether the split-phase overlap engine is currently in the search
    /// space (callers compose this with their own gates, e.g. the
    /// halo-safety lints).
    pub fn overlap_allowed(&self) -> bool {
        self.allow_overlap
    }

    /// The spawn thresholds to search (default `{0, 4096}`).
    pub fn thresholds(mut self, pts: Vec<u64>) -> Tuner {
        self.thresholds = pts;
        self
    }

    /// The communication-avoiding superstep depths to search (default
    /// `{1, 2, 4, 8}`). Depths the kernel's superstep planner rejects —
    /// wrong loop shape, non-shift communication, iteration-crossing data
    /// flow — are dropped before enumeration, so an ineligible kernel
    /// searches the classic depth-1 space only; callers whose plans are
    /// superstep-incompatible for plan-level reasons (e.g. per-step buffer
    /// swaps) pass `vec![1]`.
    pub fn supersteps(mut self, ks: Vec<usize>) -> Tuner {
        self.supersteps = ks;
        self
    }

    /// Time *every* candidate the model does not reject outright — the
    /// exhaustive search the default pruned search is benchmarked against.
    pub fn exhaustive(self) -> Tuner {
        self.top_k(usize::MAX)
    }

    /// Find the best configuration for `node`. `seed` is the
    /// caller-supplied kernel identity (normalized IR listing plus array
    /// shapes); the tuner extends it with the machine shape and hashes it
    /// into the cache key, so any change to kernel, problem size, PE
    /// count, or halo re-keys the search.
    ///
    /// Flow: probe the cache (hit → return immediately, zero timings);
    /// otherwise enumerate the space, prune with one cost-model probe per
    /// distinct modeled configuration, empirically time the top-K
    /// survivors, persist the winner, and return the full candidate table.
    /// Candidates whose plan cannot be built (e.g. an illegal distribution
    /// for that mesh) are kept in the table with infinite modeled time but
    /// never timed; if *no* candidate builds, the first build error is
    /// returned.
    pub fn best(&self, node: &NodeProgram, seed: &str) -> Result<TuneOutcome, RtError> {
        let t0 = Instant::now();
        let pes = self.base.grid.num_pes();
        let rank = self.base.grid.dims.len();
        // Drop superstep depths this kernel has no legal schedule for;
        // everything left deepens the halo to its own deep-fill depth
        // (candidates whose deep halo does not fit their subgrids fail to
        // build and prune themselves). The searched depth set is part of
        // the cache key: widening or narrowing it re-keys the search.
        let mut depths: Vec<usize> = self
            .supersteps
            .iter()
            .copied()
            .filter(|&k| k <= 1 || hpf_exec::superstep_halo(node, k).is_some())
            .collect();
        if depths.is_empty() {
            depths.push(1);
        }
        let key = fingerprint(&format!("{seed}|pes={pes}|halo={}|ss={depths:?}", self.base.halo));

        // Warm path: a cached decision for this fingerprint ends the call
        // before any candidate exists. A cache that fails to load is a
        // warning, not an error — fall through to the fresh search.
        if let Some(path) = &self.cache {
            match TuneCache::load(path) {
                Err(msg) => eprintln!(
                    "warning: tuning cache {}: {msg}; running a fresh search",
                    path.display()
                ),
                Ok(cache) => {
                    if let Some(best) = cache.lookup(&key).and_then(|e| self.cached_candidate(e)) {
                        return Ok(TuneOutcome {
                            best,
                            candidates: Vec::new(),
                            timed: 0,
                            cache_hit: true,
                            search_ns: t0.elapsed().as_nanos() as u64,
                            fingerprint: key,
                        });
                    }
                }
            }
        }

        let thresholds = if self.thresholds.is_empty() {
            vec![self.base.par_threshold]
        } else {
            self.thresholds.clone()
        };
        let mut candidates = enumerate(pes, rank, self.allow_overlap, &thresholds, &depths);

        // Model-probe pruning. The per-PE counters the cost model reads are
        // identical across backends, and across spawn thresholds for the
        // blocking engines; only the overlap engine's hidden-communication
        // credit depends on the threshold (a degraded window hides
        // nothing). One plan build + one step per distinct (grid, engine[,
        // threshold]) therefore models the whole space.
        let mut modeled: Vec<(String, f64)> = Vec::new();
        let mut first_err: Option<RtError> = None;
        for c in &mut candidates {
            let pk = probe_key(c);
            let ms = match modeled.iter().find(|(k, _)| *k == pk) {
                Some((_, ms)) => *ms,
                None => {
                    let ms = match self.model_probe(node, c) {
                        Ok(ms) => ms,
                        Err(e) => {
                            if first_err.is_none() {
                                first_err = Some(e);
                            }
                            f64::INFINITY
                        }
                    };
                    modeled.push((pk, ms));
                    ms
                }
            };
            c.modeled_ms = ms;
        }
        candidates.sort_by(|a, b| {
            a.modeled_ms
                .partial_cmp(&b.modeled_ms)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.label().cmp(&b.label()))
        });

        // Empirically time the top-K model survivors: fresh machine, one
        // plan build (schedules + bytecode kernels compile once), one
        // warmup step, then the best of `reps` timed steps.
        let mut timed = 0usize;
        for c in candidates.iter_mut().take(self.top_k) {
            if !c.modeled_ms.is_finite() {
                break; // sorted: everything from here on failed to build
            }
            let mut machine = Machine::new(self.candidate_machine(node, c));
            let mut plan = match ExecPlan::build(&mut machine, node, &c.exec_config()) {
                Ok(p) => p,
                Err(_) => continue, // model probe passed; backend-specific failure
            };
            plan.step(&mut machine);
            let mut best = f64::INFINITY;
            for _ in 0..self.reps {
                let t = Instant::now();
                plan.step(&mut machine);
                best = best.min(t.elapsed().as_secs_f64() * 1e3);
            }
            // A driver-stepped superstep plan covers k logical steps per
            // machine step; normalize so depths compete per logical step.
            c.measured_ms = Some(best / plan.logical_steps_per_step() as f64);
            timed += 1;
        }

        let best = candidates
            .iter()
            .filter(|c| c.measured_ms.is_some())
            .min_by(|a, b| a.measured_ms.partial_cmp(&b.measured_ms).unwrap())
            .cloned();
        let best = match best {
            Some(b) => b,
            None => {
                return Err(first_err.unwrap_or(RtError::BadDistribution(
                    "auto-tuner found no runnable configuration".to_string(),
                )))
            }
        };

        if let Some(path) = &self.cache {
            let mut cache = TuneCache::load(path).unwrap_or_default();
            cache.insert(CacheEntry {
                key: key.clone(),
                grid: best.grid.clone(),
                config: best.exec_config().label(),
                par_threshold: best.par_threshold,
                superstep: best.superstep as u64,
                modeled_ms: best.modeled_ms,
                measured_ms: best.measured_ms.unwrap_or(f64::INFINITY),
            });
            if let Err(e) = cache.store(path) {
                eprintln!("warning: could not write tuning cache {}: {e}", path.display());
            }
        }

        Ok(TuneOutcome {
            best,
            candidates,
            timed,
            cache_hit: false,
            search_ns: t0.elapsed().as_nanos() as u64,
            fingerprint: key,
        })
    }

    /// Reconstruct a winner from a cache entry; `None` when the entry does
    /// not fit this tuner's machine (stale core count or rank after a
    /// config change hashes to the same key only if the seed matched, so
    /// this is belt-and-braces) or its config label no longer parses.
    fn cached_candidate(&self, e: &CacheEntry) -> Option<Candidate> {
        let cfg = ExecConfig::from_cli_str(&e.config).ok()?;
        let fits = e.grid.len() == self.base.grid.dims.len()
            && e.grid.iter().product::<usize>() == self.base.grid.num_pes();
        if !fits {
            return None;
        }
        Some(Candidate {
            grid: e.grid.clone(),
            engine: cfg.engine,
            backend: cfg.backend,
            par_threshold: e.par_threshold,
            superstep: (e.superstep as usize).max(1),
            modeled_ms: e.modeled_ms,
            measured_ms: Some(e.measured_ms),
        })
    }

    /// The candidate's machine configuration with its halo deepened to the
    /// superstep deep-fill depth, exactly as the plan builder will require
    /// it. Depth 1 inherits the base halo unchanged.
    fn candidate_machine(&self, node: &NodeProgram, c: &Candidate) -> MachineConfig {
        let mut cfg = c.machine_config(&self.base);
        if c.superstep > 1 {
            if let Some(h) = hpf_exec::superstep_halo(node, c.superstep) {
                cfg.halo = cfg.halo.max(h);
            }
        }
        cfg
    }

    /// One cost-model probe: build the candidate's plan (interpreter
    /// backend — the counters the model reads are backend-independent),
    /// reset the counters so plan-build costs are excluded, run one step,
    /// and read the modeled per-step time, normalized per logical step so
    /// driver-stepped superstep plans compete fairly with depth 1.
    fn model_probe(&self, node: &NodeProgram, c: &Candidate) -> Result<f64, RtError> {
        let mut machine = Machine::new(self.candidate_machine(node, c));
        let cfg =
            ExecConfig::new().engine(c.engine).backend(Backend::Interp).superstep(c.superstep);
        let mut plan = ExecPlan::build(&mut machine, node, &cfg)?;
        machine.reset_stats();
        plan.step(&mut machine);
        Ok(machine.modeled_time_ms() / plan.logical_steps_per_step() as f64)
    }
}

/// The distinct modeled configuration a candidate belongs to: grid +
/// engine + superstep depth (deep schedules change both the communication
/// volume and the redundant-recompute term), plus the spawn threshold for
/// the overlap engine only (degraded windows change the
/// hidden-communication credit).
fn probe_key(c: &Candidate) -> String {
    let pts = if c.engine == Engine::ThreadedOverlap { c.par_threshold } else { 0 };
    format!("{}|{:?}|{pts}|ss{}", grid_label(&c.grid), c.engine, c.superstep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_passes::CompileOptions;

    fn node_for(n: usize) -> NodeProgram {
        let src = format!(
            r#"
PROGRAM jacobi
PARAM N = {n}
REAL U(N,N), T(N,N)
REAL C = 0.25
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T = C * (CSHIFT(U,1,1) + CSHIFT(U,-1,1) + CSHIFT(U,1,2) + CSHIFT(U,-1,2))
U = T
END
"#
        );
        let checked = hpf_frontend::compile_source(&src).unwrap();
        hpf_passes::compile(&checked, CompileOptions::full()).node
    }

    fn tmp(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("hpf-tune-{tag}-{}.json", std::process::id()))
    }

    #[test]
    fn cold_search_then_warm_cache_hit() {
        let node = node_for(16);
        let path = tmp("lib-warm");
        let _ = std::fs::remove_file(&path);
        let tuner = Tuner::new(MachineConfig::grid([2, 2])).cache_path(&path).top_k(4).reps(2);

        let cold = tuner.best(&node, "jacobi-16").unwrap();
        assert!(!cold.cache_hit);
        assert!(cold.timed > 0 && cold.timed <= 4);
        assert!(cold.best.measured_ms.is_some());
        assert!(!cold.candidates.is_empty());
        // The rendered table marks exactly the winning row.
        let table = cold.render_table();
        assert!(table.contains("modeled ms"), "{table}");
        let starred: Vec<&str> = table.lines().filter(|l| l.starts_with('*')).collect();
        assert_eq!(starred.len(), 1, "{table}");
        assert!(starred[0].contains(&grid_label(&cold.best.grid)), "{table}");
        // The table is sorted by modeled time.
        for w in cold.candidates.windows(2) {
            assert!(w[0].modeled_ms <= w[1].modeled_ms);
        }

        let warm = tuner.best(&node, "jacobi-16").unwrap();
        assert!(warm.cache_hit, "second run must come from the cache");
        assert_eq!(warm.timed, 0, "a cache hit performs zero candidate timings");
        assert!(warm.candidates.is_empty());
        assert_eq!(warm.fingerprint, cold.fingerprint);
        assert_eq!(warm.best.grid, cold.best.grid);
        assert_eq!(warm.best.exec_config().label(), cold.best.exec_config().label());

        // A different seed (problem size, kernel change) misses.
        let other = tuner.best(&node, "jacobi-32").unwrap();
        assert!(!other.cache_hit);

        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn no_cache_always_searches_and_touches_no_disk() {
        let node = node_for(12);
        let tuner = Tuner::new(MachineConfig::grid([2, 2])).no_cache().top_k(2).reps(1);
        let a = tuner.best(&node, "s").unwrap();
        let b = tuner.best(&node, "s").unwrap();
        assert!(!a.cache_hit && !b.cache_hit);
        assert_eq!(a.best.grid, b.best.grid, "search is deterministic in its winner set");
    }

    #[test]
    fn corrupt_cache_falls_back_to_fresh_search() {
        let node = node_for(12);
        let path = tmp("lib-corrupt");
        std::fs::write(&path, "{\"version\":1,\"entries\":[{tr").unwrap();
        let tuner = Tuner::new(MachineConfig::grid([2, 2])).cache_path(&path).top_k(2).reps(1);
        let out = tuner.best(&node, "s").unwrap();
        assert!(!out.cache_hit);
        // The search result overwrote the corrupt file with a valid cache.
        assert!(TuneCache::load(&path).is_ok());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn overlap_gate_removes_the_split_phase_engine() {
        let node = node_for(12);
        let tuner = Tuner::new(MachineConfig::grid([2, 2]))
            .no_cache()
            .allow_overlap(false)
            .exhaustive()
            .reps(1);
        let out = tuner.best(&node, "s").unwrap();
        assert!(out.candidates.iter().all(|c| c.engine != Engine::ThreadedOverlap));
        // Deep-superstep candidates whose halo cannot fit the 12-point
        // subgrids fail to build; exhaustive times everything buildable.
        let buildable = out.candidates.iter().filter(|c| c.modeled_ms.is_finite()).count();
        assert_eq!(out.timed, buildable, "exhaustive times every buildable candidate");
        assert!(buildable > 0);
    }

    #[test]
    fn superstep_depths_enter_the_search_and_ineligible_ones_are_dropped() {
        let node = node_for(16);
        let tuner = Tuner::new(MachineConfig::grid([2, 2])).no_cache().exhaustive().reps(1);
        let out = tuner.best(&node, "s").unwrap();
        // The flat Jacobi kernel is superstep-eligible: depths beyond 1
        // appear in the table, and the deep candidates that fit were timed.
        for k in [2usize, 4] {
            assert!(out.candidates.iter().any(|c| c.superstep == k), "depth {k} missing");
        }
        assert!(out.candidates.iter().any(|c| c.superstep > 1 && c.measured_ms.is_some()));
        // An EOSHIFT kernel has no legal superstep schedule at any depth:
        // the search space collapses back to the classic depth.
        let src = r#"
PROGRAM edge
PARAM N = 12
REAL U(N,N), T(N,N)
!HPF$ DISTRIBUTE U(BLOCK,BLOCK)
!HPF$ DISTRIBUTE T(BLOCK,BLOCK)
T = EOSHIFT(U,1,1) + EOSHIFT(U,-1,2)
END
"#;
        let checked = hpf_frontend::compile_source(src).unwrap();
        let edge = hpf_passes::compile(&checked, CompileOptions::full()).node;
        let out = tuner.best(&edge, "edge").unwrap();
        assert!(out.candidates.iter().all(|c| c.superstep == 1));
    }

    #[test]
    fn cache_key_folds_the_superstep_depth_set() {
        let node = node_for(16);
        let a = Tuner::new(MachineConfig::grid([2, 2])).no_cache().top_k(1).reps(1);
        let b = a.clone().supersteps(vec![1]);
        let ka = a.best(&node, "s").unwrap().fingerprint;
        let kb = b.best(&node, "s").unwrap().fingerprint;
        assert_ne!(ka, kb, "narrowing the searched depths must re-key the cache");
    }
}
