//! Normalized IR statements.

use crate::array::ArrayId;
use crate::expr::{Expr, OperandRef};
use crate::rsd::Rsd;
use crate::section::{Offsets, Section};
use crate::Dim;

/// Shift semantics: circular (`CSHIFT`) or end-off (`EOSHIFT`) with a
/// boundary fill value.
#[derive(Clone, Copy, PartialEq, Debug)]
pub enum ShiftKind {
    /// `CSHIFT`: elements wrap around circularly.
    Circular,
    /// `EOSHIFT`: elements shifted in from outside the array take the
    /// boundary value.
    EndOff(f64),
}

/// A statement of the normalized IR.
///
/// Programs arrive from normalization containing only [`Stmt::ShiftAssign`],
/// [`Stmt::Compute`] and [`Stmt::TimeLoop`]; the optimization passes
/// introduce [`Stmt::OverlapShift`] and (when an offset-array criterion is
/// violated) [`Stmt::Copy`].
#[derive(Clone, PartialEq, Debug)]
pub enum Stmt {
    /// `DST = CSHIFT(SRC, SHIFT=k, DIM=d)` on whole arrays — the normal-form
    /// communication statement, performing both the interprocessor and the
    /// intraprocessor component of the shift (paper §2.2).
    ShiftAssign {
        /// Destination array (often a compiler temporary).
        dst: ArrayId,
        /// Source array.
        src: ArrayId,
        /// Shift amount `k`: the result satisfies `dst(i) = src(i + k)`
        /// along `dim` (Fortran `CSHIFT` semantics).
        shift: i64,
        /// Shifted dimension (0-based).
        dim: Dim,
        /// Circular or end-off semantics.
        kind: ShiftKind,
    },

    /// `CALL OVERLAP_SHIFT(BASE<src_offsets>, SHIFT=k, DIM=d [, rsd])` —
    /// moves only off-processor data into the overlap area on the `sign(k)`
    /// side of dimension `d`; `|k|` ghost layers are filled. The optional
    /// RSD widens the transferred section into overlap areas of other
    /// dimensions (corner pickup, §3.3).
    OverlapShift {
        /// Base array whose overlap area is filled.
        array: ArrayId,
        /// Offset annotation of the source operand when it is itself a
        /// multi-offset array (`OVERLAP_SHIFT(U<+1,0>, …)`); all zero for a
        /// plain source. Communication unioning folds these into RSDs.
        src_offsets: Offsets,
        /// Shift amount; its sign selects which side's overlap area fills.
        shift: i64,
        /// Shifted dimension (0-based).
        dim: Dim,
        /// Optional section extension into other dimensions' overlap areas.
        rsd: Option<Rsd>,
        /// Circular or end-off semantics.
        kind: ShiftKind,
    },

    /// An aligned array assignment over a common iteration space: the
    /// compute component of a stencil. Operand references may carry offset
    /// annotations after the offset-array optimization.
    Compute {
        /// Assigned array.
        lhs: ArrayId,
        /// Iteration space (1-based global bounds, also the section of the
        /// left-hand side).
        space: Section,
        /// Right-hand-side expression over aligned operands.
        rhs: Expr,
    },

    /// Whole-array copy `DST = SRC<offsets>` — inserted as a repair when an
    /// offset-array criterion is violated (§3.1), or by the user program
    /// (e.g. the `U = T` step of a Jacobi sweep).
    Copy {
        /// Destination array.
        dst: ArrayId,
        /// Source operand (offsets refer to overlap-area data).
        src: OperandRef,
    },

    /// A counted serial loop around a block of statements (a time-stepping
    /// loop). The body is a basic block as far as the stencil pipeline is
    /// concerned; passes run on it independently.
    TimeLoop {
        /// Number of iterations.
        iters: usize,
        /// Loop body.
        body: Vec<Stmt>,
    },
}

/// A memory resource touched by a statement, at the granularity the
/// dependence graph needs: an array's interior (owned subgrid elements) or
/// one side of its overlap area in one dimension.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Resource {
    /// The owned elements of an array.
    Interior(ArrayId),
    /// The overlap (ghost) area of an array on the `i8` side (+1 high, -1
    /// low) of a dimension.
    Ghost(ArrayId, Dim, i8),
}

/// Push the ghost resources implied by an offset annotation: a reference
/// `U<a1,…,ar>` reads the overlap area of every dimension with a non-zero
/// offset, on the side of the offset's sign.
fn ghost_resources(array: ArrayId, offsets: &Offsets, out: &mut Vec<Resource>) {
    for (d, &o) in offsets.0.iter().enumerate() {
        if o != 0 {
            out.push(Resource::Ghost(array, d, o.signum() as i8));
        }
    }
}

impl Stmt {
    /// Resources read by the statement (over-approximate, for dependence
    /// construction). [`Stmt::TimeLoop`] reports the union of its body.
    pub fn reads(&self) -> Vec<Resource> {
        let mut out = Vec::new();
        match self {
            Stmt::ShiftAssign { src, .. } => out.push(Resource::Interior(*src)),
            Stmt::OverlapShift { array, src_offsets, rsd, .. } => {
                out.push(Resource::Interior(*array));
                ghost_resources(*array, src_offsets, &mut out);
                if let Some(rsd) = rsd {
                    for (d, &(lo, hi)) in rsd.ext.iter().enumerate() {
                        if lo > 0 {
                            out.push(Resource::Ghost(*array, d, -1));
                        }
                        if hi > 0 {
                            out.push(Resource::Ghost(*array, d, 1));
                        }
                    }
                }
            }
            Stmt::Compute { rhs, .. } => {
                rhs.for_each_ref(&mut |r| {
                    out.push(Resource::Interior(r.array));
                    ghost_resources(r.array, &r.offsets, &mut out);
                });
            }
            Stmt::Copy { src, .. } => {
                out.push(Resource::Interior(src.array));
                ghost_resources(src.array, &src.offsets, &mut out);
            }
            Stmt::TimeLoop { body, .. } => {
                for s in body {
                    out.extend(s.reads());
                }
            }
        }
        out.sort_unstable_by_key(|r| format!("{r:?}"));
        out.dedup();
        out
    }

    /// Resources written by the statement.
    pub fn writes(&self) -> Vec<Resource> {
        let mut out = Vec::new();
        match self {
            Stmt::ShiftAssign { dst, .. } => out.push(Resource::Interior(*dst)),
            Stmt::OverlapShift { array, shift, dim, .. } => {
                out.push(Resource::Ghost(*array, *dim, shift.signum() as i8));
            }
            Stmt::Compute { lhs, .. } => out.push(Resource::Interior(*lhs)),
            Stmt::Copy { dst, .. } => out.push(Resource::Interior(*dst)),
            Stmt::TimeLoop { body, .. } => {
                for s in body {
                    out.extend(s.writes());
                }
            }
        }
        out.sort_unstable_by_key(|r| format!("{r:?}"));
        out.dedup();
        out
    }

    /// True for communication statements (the "communication operations"
    /// congruence class of context partitioning).
    pub fn is_comm(&self) -> bool {
        matches!(self, Stmt::ShiftAssign { .. } | Stmt::OverlapShift { .. })
    }

    /// The arrays this statement assigns (interior writes only).
    pub fn assigned_arrays(&self) -> Vec<ArrayId> {
        self.writes()
            .into_iter()
            .filter_map(|r| match r {
                Resource::Interior(a) => Some(a),
                Resource::Ghost(..) => None,
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::BinOp;

    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);

    #[test]
    fn shift_assign_sets() {
        let s = Stmt::ShiftAssign { dst: T, src: U, shift: 1, dim: 0, kind: ShiftKind::Circular };
        assert_eq!(s.reads(), vec![Resource::Interior(U)]);
        assert_eq!(s.writes(), vec![Resource::Interior(T)]);
        assert!(s.is_comm());
        assert_eq!(s.assigned_arrays(), vec![T]);
    }

    #[test]
    fn overlap_shift_sets() {
        let s = Stmt::OverlapShift {
            array: U,
            src_offsets: Offsets::new([1, 0]),
            shift: -1,
            dim: 1,
            rsd: None,
            kind: ShiftKind::Circular,
        };
        // Reads U's interior plus the +1 ghost of dim 0 (multi-offset source).
        let reads = s.reads();
        assert!(reads.contains(&Resource::Interior(U)));
        assert!(reads.contains(&Resource::Ghost(U, 0, 1)));
        // Writes the low-side ghost of dim 1.
        assert_eq!(s.writes(), vec![Resource::Ghost(U, 1, -1)]);
        assert!(s.is_comm());
        assert!(s.assigned_arrays().is_empty());
    }

    #[test]
    fn overlap_shift_rsd_reads_corner_sources() {
        let mut rsd = Rsd::none(2);
        rsd.extend(0, -1);
        rsd.extend(0, 1);
        let s = Stmt::OverlapShift {
            array: U,
            src_offsets: Offsets::zero(2),
            shift: 1,
            dim: 1,
            rsd: Some(rsd),
            kind: ShiftKind::Circular,
        };
        let reads = s.reads();
        assert!(reads.contains(&Resource::Ghost(U, 0, -1)));
        assert!(reads.contains(&Resource::Ghost(U, 0, 1)));
    }

    #[test]
    fn compute_sets() {
        // T = U<+1,0> + U
        let rhs = Expr::bin(
            BinOp::Add,
            Expr::Ref(OperandRef::offset(U, Offsets::new([1, 0]))),
            Expr::Ref(OperandRef::aligned(U, 2)),
        );
        let s = Stmt::Compute { lhs: T, space: Section::new([(1, 4), (1, 4)]), rhs };
        let reads = s.reads();
        assert!(reads.contains(&Resource::Interior(U)));
        assert!(reads.contains(&Resource::Ghost(U, 0, 1)));
        assert_eq!(s.writes(), vec![Resource::Interior(T)]);
        assert!(!s.is_comm());
    }

    #[test]
    fn timeloop_unions_body() {
        let body = vec![
            Stmt::ShiftAssign { dst: T, src: U, shift: 1, dim: 0, kind: ShiftKind::Circular },
            Stmt::Copy { dst: U, src: OperandRef::aligned(T, 2) },
        ];
        let s = Stmt::TimeLoop { iters: 3, body };
        let reads = s.reads();
        let writes = s.writes();
        assert!(reads.contains(&Resource::Interior(U)));
        assert!(reads.contains(&Resource::Interior(T)));
        assert!(writes.contains(&Resource::Interior(T)));
        assert!(writes.contains(&Resource::Interior(U)));
    }
}
