//! Pretty printer rendering IR programs in the paper's surface notation.
//!
//! The output mirrors the figures of the paper: `TMP1 = CSHIFT(SRC,-1,1)`,
//! `CALL OVERLAP_CSHIFT(U,SHIFT=+1,DIM=1,[0:N+1,*])`, offset references as
//! `U<+1,0>`, etc. Used by the `problem9` example to reproduce Figures 12–16
//! and by tests asserting pass output shapes.

use crate::expr::{BinOp, Expr};
use crate::program::{Program, SymbolTable};
use crate::section::Section;
use crate::stmt::{ShiftKind, Stmt};
use std::fmt::Write;

/// Render a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for s in &p.body {
        stmt_into(&p.symbols, s, 0, &mut out);
    }
    out
}

/// Render one statement (and, for loops, its body) at an indent level.
pub fn stmt(symbols: &SymbolTable, s: &Stmt) -> String {
    let mut out = String::new();
    stmt_into(symbols, s, 0, &mut out);
    out.trim_end().to_string()
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn stmt_into(symbols: &SymbolTable, s: &Stmt, level: usize, out: &mut String) {
    indent(level, out);
    match s {
        Stmt::ShiftAssign { dst, src, shift, dim, kind } => {
            let intr = match kind {
                ShiftKind::Circular => "CSHIFT",
                ShiftKind::EndOff(_) => "EOSHIFT",
            };
            writeln!(
                out,
                "{} = {intr}({},SHIFT={:+},DIM={})",
                symbols.array(*dst).name,
                symbols.array(*src).name,
                shift,
                dim + 1
            )
            .unwrap();
        }
        Stmt::OverlapShift { array, src_offsets, shift, dim, rsd, kind } => {
            let intr = match kind {
                ShiftKind::Circular => "OVERLAP_CSHIFT",
                ShiftKind::EndOff(_) => "OVERLAP_EOSHIFT",
            };
            let src = if src_offsets.is_zero() {
                symbols.array(*array).name.clone()
            } else {
                format!("{}{:?}", symbols.array(*array).name, src_offsets)
            };
            write!(out, "CALL {intr}({src},SHIFT={:+},DIM={}", shift, dim + 1).unwrap();
            if let Some(rsd) = rsd {
                if !rsd.is_trivial() {
                    write!(out, ",{rsd:?}").unwrap();
                }
            }
            writeln!(out, ")").unwrap();
        }
        Stmt::Compute { lhs, space, rhs } => {
            let decl = symbols.array(*lhs);
            let full = Section::full(&decl.shape);
            if *space == full {
                write!(out, "{} = ", decl.name).unwrap();
            } else {
                write!(out, "{}{:?} = ", decl.name, space).unwrap();
            }
            expr_into(symbols, rhs, 0, out);
            out.push('\n');
        }
        Stmt::Copy { dst, src } => {
            let srcname = if src.offsets.is_zero() {
                symbols.array(src.array).name.clone()
            } else {
                format!("{}{:?}", symbols.array(src.array).name, src.offsets)
            };
            writeln!(out, "{} = {}", symbols.array(*dst).name, srcname).unwrap();
        }
        Stmt::TimeLoop { iters, body } => {
            writeln!(out, "DO {iters} TIMES").unwrap();
            for s in body {
                stmt_into(symbols, s, level + 1, out);
            }
            indent(level, out);
            writeln!(out, "ENDDO").unwrap();
        }
    }
}

fn prec(op: BinOp) -> u8 {
    match op {
        BinOp::Add | BinOp::Sub => 1,
        BinOp::Mul | BinOp::Div => 2,
    }
}

fn expr_into(symbols: &SymbolTable, e: &Expr, parent_prec: u8, out: &mut String) {
    match e {
        Expr::Const(c) => write!(out, "{c}").unwrap(),
        Expr::Scalar(s) => out.push_str(&symbols.scalar(*s).name),
        Expr::Ref(r) => {
            out.push_str(&symbols.array(r.array).name);
            if !r.offsets.is_zero() {
                write!(out, "{:?}", r.offsets).unwrap();
            }
        }
        Expr::Bin(op, a, b) => {
            let p = prec(*op);
            let need = p < parent_prec;
            if need {
                out.push('(');
            }
            expr_into(symbols, a, p, out);
            write!(out, " {} ", op.symbol()).unwrap();
            // Right operand needs parens at equal precedence for - and /.
            let rp = match op {
                BinOp::Sub | BinOp::Div => p + 1,
                _ => p,
            };
            expr_into(symbols, b, rp, out);
            if need {
                out.push(')');
            }
        }
        Expr::Neg(a) => {
            out.push('-');
            expr_into(symbols, a, 3, out);
        }
        Expr::Cmp(op, a, b) => {
            // Comparisons always parenthesized for clarity.
            out.push('(');
            expr_into(symbols, a, 0, out);
            write!(out, " {} ", op.symbol()).unwrap();
            expr_into(symbols, b, 0, out);
            out.push(')');
        }
        Expr::Select(c, t, e2) => {
            out.push_str("MERGE(");
            expr_into(symbols, t, 0, out);
            out.push_str(", ");
            expr_into(symbols, e2, 0, out);
            out.push_str(", ");
            expr_into(symbols, c, 0, out);
            out.push(')');
        }
    }
}

/// Render an expression alone.
pub fn expr(symbols: &SymbolTable, e: &Expr) -> String {
    let mut out = String::new();
    expr_into(symbols, e, 0, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayDecl, Distribution, ScalarDecl, Shape};
    use crate::expr::OperandRef;
    use crate::section::Offsets;

    fn setup() -> (SymbolTable, crate::ArrayId, crate::ArrayId, crate::ScalarId) {
        let mut t = SymbolTable::new();
        let u = t.add_array(ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2)));
        let v = t.add_array(ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2)));
        let c = t.add_scalar(ScalarDecl { name: "C1".into(), value: 1.0 });
        (t, u, v, c)
    }

    #[test]
    fn shift_assign_prints_like_paper() {
        let (t, u, v, _) = setup();
        let s = Stmt::ShiftAssign { dst: v, src: u, shift: -1, dim: 1, kind: ShiftKind::Circular };
        assert_eq!(stmt(&t, &s), "T = CSHIFT(U,SHIFT=-1,DIM=2)");
    }

    #[test]
    fn overlap_shift_with_offsets_and_rsd() {
        let (t, u, ..) = setup();
        let mut rsd = crate::Rsd::none(2);
        rsd.extend(0, -1);
        rsd.extend(0, 1);
        let s = Stmt::OverlapShift {
            array: u,
            src_offsets: Offsets::new([1, 0]),
            shift: -1,
            dim: 1,
            rsd: Some(rsd),
            kind: ShiftKind::Circular,
        };
        assert_eq!(stmt(&t, &s), "CALL OVERLAP_CSHIFT(U<+1,0>,SHIFT=-1,DIM=2,[1-1:n+1,*])");
    }

    #[test]
    fn compute_with_offsets() {
        let (t, u, v, c) = setup();
        let rhs = Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::Scalar(c),
                Expr::Ref(OperandRef::offset(u, Offsets::new([1, 0]))),
            ),
            Expr::Ref(OperandRef::aligned(u, 2)),
        );
        let s = Stmt::Compute { lhs: v, space: Section::full(&Shape::new([8, 8])), rhs };
        assert_eq!(stmt(&t, &s), "T = C1 * U<+1,0> + U");
    }

    #[test]
    fn sectioned_compute_prints_section() {
        let (t, u, v, _) = setup();
        let s = Stmt::Compute {
            lhs: v,
            space: Section::new([(2, 7), (2, 7)]),
            rhs: Expr::Ref(OperandRef::aligned(u, 2)),
        };
        assert_eq!(stmt(&t, &s), "T(2:7,2:7) = U");
    }

    #[test]
    fn parenthesization() {
        let (t, u, ..) = setup();
        // (U + U) * U needs parens; U + U * U does not.
        let sum = Expr::bin(
            BinOp::Add,
            Expr::Ref(OperandRef::aligned(u, 2)),
            Expr::Ref(OperandRef::aligned(u, 2)),
        );
        let e = Expr::bin(BinOp::Mul, sum.clone(), Expr::Ref(OperandRef::aligned(u, 2)));
        assert_eq!(expr(&t, &e), "(U + U) * U");
        let e2 = Expr::bin(BinOp::Sub, Expr::Ref(OperandRef::aligned(u, 2)), sum);
        assert_eq!(expr(&t, &e2), "U - (U + U)");
    }

    #[test]
    fn timeloop_indents() {
        let (t, u, v, _) = setup();
        let s = Stmt::TimeLoop {
            iters: 5,
            body: vec![Stmt::Copy { dst: v, src: OperandRef::aligned(u, 2) }],
        };
        assert_eq!(stmt(&t, &s), "DO 5 TIMES\n  T = U\nENDDO");
    }
}
