//! Statement-level data dependence graph (DDG) over a basic block.
//!
//! Context partitioning (paper §3.2) runs the Kennedy–McKinley typed-fusion
//! algorithm on this graph. Because the graph is built over the statements
//! of a basic block it contains only loop-independent dependences and is
//! therefore acyclic, which is the precondition the paper notes.

use crate::stmt::{Resource, Stmt};
use std::collections::{HashMap, HashSet};

/// Dependence classification.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DepKind {
    /// Flow (true) dependence: earlier statement writes, later reads.
    True,
    /// Anti dependence: earlier reads, later writes.
    Anti,
    /// Output dependence: both write.
    Output,
}

/// A dependence edge between two statements of a block, identified by their
/// indices; `src < dst` always holds (program order).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct DepEdge {
    /// Index of the earlier statement.
    pub src: usize,
    /// Index of the later statement.
    pub dst: usize,
    /// Dependence kind.
    pub kind: DepKind,
}

/// The dependence graph of one basic block.
#[derive(Clone, Debug, Default)]
pub struct DepGraph {
    /// Number of statements.
    pub n: usize,
    /// All dependence edges.
    pub edges: Vec<DepEdge>,
    succ: Vec<Vec<usize>>,
    pred: Vec<Vec<usize>>,
}

impl DepGraph {
    /// Build the dependence graph of a block from statement read/write sets.
    ///
    /// Overlap-area refills are idempotent: two `OVERLAP_SHIFT`s of the same
    /// array fill overlapping ghost cells with identical values (both derive
    /// them from the array's interior, and interior updates create their own
    /// `Interior` dependences). Following the paper — whose Problem 9 DDG
    /// contains only shift→use true dependences and the T chain (§4.3) —
    /// anti and output conflicts on ghost resources whose writer is an
    /// `OVERLAP_SHIFT` are therefore not edges, *unless* the block mixes
    /// shift kinds (circular vs end-off) on that array, where refills are
    /// not value-identical.
    pub fn build(block: &[Stmt]) -> DepGraph {
        let n = block.len();
        let reads: Vec<Vec<Resource>> = block.iter().map(|s| s.reads()).collect();
        let writes: Vec<Vec<Resource>> = block.iter().map(|s| s.writes()).collect();
        // Arrays whose overlap shifts in this block all share one kind.
        let mut kind_of: HashMap<crate::ArrayId, Option<crate::ShiftKind>> = HashMap::new();
        for s in block {
            if let Stmt::OverlapShift { array, kind, .. } = s {
                match kind_of.entry(*array).or_insert(Some(*kind)) {
                    Some(k) if *k == *kind => {}
                    slot => *slot = None, // mixed kinds: stay conservative
                }
            }
        }
        let idempotent_ghost_write = |stmt: &Stmt, r: &Resource| -> bool {
            match (stmt, r) {
                (Stmt::OverlapShift { array, .. }, Resource::Ghost(a, ..)) => {
                    a == array && matches!(kind_of.get(array), Some(Some(_)))
                }
                _ => false,
            }
        };
        let mut edges = Vec::new();
        let mut succ = vec![Vec::new(); n];
        let mut pred = vec![Vec::new(); n];
        let mut seen: HashSet<(usize, usize)> = HashSet::new();
        for j in 0..n {
            let rj: HashSet<&Resource> = reads[j].iter().collect();
            let wj: HashSet<&Resource> = writes[j].iter().collect();
            for i in 0..j {
                let wi: HashSet<&Resource> = writes[i].iter().collect();
                let ri: HashSet<&Resource> = reads[i].iter().collect();
                let mut kinds = Vec::new();
                if wi.iter().any(|r| rj.contains(*r)) {
                    kinds.push(DepKind::True);
                }
                if ri.iter().any(|r| wj.contains(*r) && !idempotent_ghost_write(&block[j], r)) {
                    kinds.push(DepKind::Anti);
                }
                if wi.iter().any(|r| {
                    wj.contains(*r)
                        && !(idempotent_ghost_write(&block[i], r)
                            && idempotent_ghost_write(&block[j], r))
                }) {
                    kinds.push(DepKind::Output);
                }
                for kind in kinds {
                    edges.push(DepEdge { src: i, dst: j, kind });
                }
                if edges.iter().any(|e| e.src == i && e.dst == j) && seen.insert((i, j)) {
                    succ[i].push(j);
                    pred[j].push(i);
                }
            }
        }
        DepGraph { n, edges, succ, pred }
    }

    /// Direct successors of a statement.
    pub fn succ(&self, i: usize) -> &[usize] {
        &self.succ[i]
    }

    /// Direct predecessors of a statement.
    pub fn pred(&self, i: usize) -> &[usize] {
        &self.pred[i]
    }

    /// True when an edge `src → dst` of any kind exists.
    pub fn has_edge(&self, src: usize, dst: usize) -> bool {
        self.succ[src].contains(&dst)
    }

    /// Transitive reachability: is `to` reachable from `from`?
    pub fn reaches(&self, from: usize, to: usize) -> bool {
        if from == to {
            return true;
        }
        let mut stack = vec![from];
        let mut visited = vec![false; self.n];
        while let Some(v) = stack.pop() {
            for &s in &self.succ[v] {
                if s == to {
                    return true;
                }
                if !visited[s] {
                    visited[s] = true;
                    stack.push(s);
                }
            }
        }
        false
    }

    /// A topological order of the statements (program order is always one
    /// because edges only point forward, but this validates acyclicity).
    pub fn topo_order(&self) -> Vec<usize> {
        let mut indeg: Vec<usize> = (0..self.n).map(|i| self.pred[i].len()).collect();
        let mut ready: Vec<usize> = (0..self.n).filter(|&i| indeg[i] == 0).collect();
        ready.reverse();
        let mut out = Vec::with_capacity(self.n);
        while let Some(v) = ready.pop() {
            out.push(v);
            for &s in &self.succ[v] {
                indeg[s] -= 1;
                if indeg[s] == 0 {
                    ready.push(s);
                }
            }
        }
        assert_eq!(out.len(), self.n, "dependence graph must be acyclic");
        out
    }

    /// Check whether a permutation of the block preserves every dependence
    /// (each edge's source is placed before its destination).
    pub fn order_is_valid(&self, order: &[usize]) -> bool {
        if order.len() != self.n {
            return false;
        }
        let mut pos: HashMap<usize, usize> = HashMap::new();
        for (p, &s) in order.iter().enumerate() {
            if pos.insert(s, p).is_some() {
                return false;
            }
        }
        self.edges.iter().all(|e| pos.get(&e.src).zip(pos.get(&e.dst)).is_some_and(|(a, b)| a < b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::expr::{BinOp, Expr, OperandRef};
    use crate::section::{Offsets, Section};
    use crate::stmt::ShiftKind;

    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);
    const RIP: ArrayId = ArrayId(2);

    fn space() -> Section {
        Section::new([(1, 8), (1, 8)])
    }

    /// RIP = CSHIFT(U,+1,1); T = U + RIP; T = T + CSHIFT-style use.
    fn sample_block() -> Vec<Stmt> {
        vec![
            Stmt::ShiftAssign { dst: RIP, src: U, shift: 1, dim: 0, kind: ShiftKind::Circular },
            Stmt::Compute {
                lhs: T,
                space: space(),
                rhs: Expr::bin(
                    BinOp::Add,
                    Expr::Ref(OperandRef::aligned(U, 2)),
                    Expr::Ref(OperandRef::aligned(RIP, 2)),
                ),
            },
            Stmt::Compute {
                lhs: T,
                space: space(),
                rhs: Expr::bin(
                    BinOp::Add,
                    Expr::Ref(OperandRef::aligned(T, 2)),
                    Expr::Ref(OperandRef::aligned(RIP, 2)),
                ),
            },
        ]
    }

    #[test]
    fn true_anti_output_edges() {
        let g = DepGraph::build(&sample_block());
        // shift -> first compute: true dep on RIP.
        assert!(g.edges.iter().any(|e| e.src == 0 && e.dst == 1 && e.kind == DepKind::True));
        // compute1 -> compute2: true (T), output (T).
        assert!(g.edges.iter().any(|e| e.src == 1 && e.dst == 2 && e.kind == DepKind::True));
        assert!(g.edges.iter().any(|e| e.src == 1 && e.dst == 2 && e.kind == DepKind::Output));
        assert!(g.has_edge(0, 1));
        assert!(g.reaches(0, 2));
    }

    #[test]
    fn anti_dependence_detected() {
        // T = U ; U = CSHIFT(T): read of U before write of U.
        let block = vec![
            Stmt::Compute { lhs: T, space: space(), rhs: Expr::Ref(OperandRef::aligned(U, 2)) },
            Stmt::ShiftAssign { dst: U, src: T, shift: 1, dim: 0, kind: ShiftKind::Circular },
        ];
        let g = DepGraph::build(&block);
        assert!(g.edges.iter().any(|e| e.src == 0 && e.dst == 1 && e.kind == DepKind::Anti));
        // Also a true dep (T written then read).
        assert!(g.edges.iter().any(|e| e.src == 0 && e.dst == 1 && e.kind == DepKind::True));
    }

    #[test]
    fn independent_statements_have_no_edge() {
        let block = vec![
            Stmt::ShiftAssign { dst: RIP, src: U, shift: 1, dim: 0, kind: ShiftKind::Circular },
            Stmt::ShiftAssign { dst: T, src: U, shift: -1, dim: 0, kind: ShiftKind::Circular },
        ];
        let g = DepGraph::build(&block);
        assert!(!g.has_edge(0, 1));
        assert!(!g.reaches(0, 1));
    }

    #[test]
    fn overlap_shift_then_offset_use_is_true_dep() {
        let block = vec![
            Stmt::OverlapShift {
                array: U,
                src_offsets: Offsets::zero(2),
                shift: 1,
                dim: 0,
                rsd: None,
                kind: ShiftKind::Circular,
            },
            Stmt::Compute {
                lhs: T,
                space: space(),
                rhs: Expr::Ref(OperandRef::offset(U, Offsets::new([1, 0]))),
            },
        ];
        let g = DepGraph::build(&block);
        assert!(g.edges.iter().any(|e| e.src == 0 && e.dst == 1 && e.kind == DepKind::True));
    }

    #[test]
    fn mixed_kind_overlap_shifts_keep_conservative_deps() {
        // Circular and end-off fills of the same ghost region are NOT
        // value-identical: the idempotent-refill exception must not apply.
        let mk = |kind: ShiftKind| Stmt::OverlapShift {
            array: U,
            src_offsets: Offsets::zero(2),
            shift: 1,
            dim: 0,
            rsd: None,
            kind,
        };
        let read = Stmt::Compute {
            lhs: T,
            space: space(),
            rhs: Expr::Ref(OperandRef::offset(U, Offsets::new([1, 0]))),
        };
        let block = vec![mk(ShiftKind::Circular), read, mk(ShiftKind::EndOff(0.0))];
        let g = DepGraph::build(&block);
        // The anti dependence (read of the ghost before the end-off refill)
        // must be present, pinning the refill after the read.
        assert!(g.edges.iter().any(|e| e.src == 1 && e.dst == 2 && e.kind == DepKind::Anti));
        // And the two fills carry an output dependence.
        assert!(g.edges.iter().any(|e| e.src == 0 && e.dst == 2 && e.kind == DepKind::Output));
        // Same-kind refills stay exempt.
        let block2 = vec![mk(ShiftKind::Circular), block[1].clone(), mk(ShiftKind::Circular)];
        let g2 = DepGraph::build(&block2);
        assert!(!g2.edges.iter().any(|e| e.dst == 2 && e.kind != DepKind::True));
    }

    #[test]
    fn overlap_shifts_different_sides_independent() {
        let mk = |shift: i64| Stmt::OverlapShift {
            array: U,
            src_offsets: Offsets::zero(2),
            shift,
            dim: 0,
            rsd: None,
            kind: ShiftKind::Circular,
        };
        let g = DepGraph::build(&[mk(1), mk(-1)]);
        assert!(!g.has_edge(0, 1));
    }

    #[test]
    fn topo_order_and_validity() {
        let g = DepGraph::build(&sample_block());
        let order = g.topo_order();
        assert!(g.order_is_valid(&order));
        assert!(g.order_is_valid(&[0, 1, 2]));
        assert!(!g.order_is_valid(&[1, 0, 2])); // violates shift->use
        assert!(!g.order_is_valid(&[0, 2, 1])); // violates T chain
        assert!(!g.order_is_valid(&[0, 0, 1])); // duplicate
        assert!(!g.order_is_valid(&[0, 1])); // wrong length
    }
}
