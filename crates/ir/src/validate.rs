//! IR validation: structural well-formedness checks run between passes.

use crate::array::ArrayId;
use crate::program::{Program, SymbolTable};
use crate::section::Section;
use crate::stmt::Stmt;

/// A validation failure.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateError(pub String);

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR validation error: {}", self.0)
    }
}

impl std::error::Error for ValidateError {}

fn err(msg: String) -> Result<(), ValidateError> {
    Err(ValidateError(msg))
}

fn check_array(symbols: &SymbolTable, id: ArrayId) -> Result<(), ValidateError> {
    if (id.0 as usize) < symbols.num_arrays() {
        Ok(())
    } else {
        err(format!("dangling array id {id:?}"))
    }
}

/// Validate a program against the normal-form invariants:
///
/// * every referenced array/scalar id is declared;
/// * shift dimensions are within rank and operand ranks agree;
/// * compute iteration spaces lie within the LHS array bounds;
/// * operand references inside a compute statement have the rank of their
///   array and, translated by their offsets, the referenced section lies
///   within the array extended by the given overlap width;
/// * offset annotations never exceed the machine's overlap width.
pub fn validate(p: &Program, overlap_width: i64) -> Result<(), ValidateError> {
    let mut result = Ok(());
    p.for_each_stmt(&mut |s| {
        if result.is_err() {
            return;
        }
        result = validate_stmt(&p.symbols, s, overlap_width);
    });
    result
}

fn validate_stmt(symbols: &SymbolTable, s: &Stmt, w: i64) -> Result<(), ValidateError> {
    match s {
        Stmt::ShiftAssign { dst, src, dim, .. } => {
            check_array(symbols, *dst)?;
            check_array(symbols, *src)?;
            let d = symbols.array(*dst);
            let r = symbols.array(*src);
            if d.shape != r.shape {
                return err(format!(
                    "shift assign shape mismatch: {} {:?} vs {} {:?}",
                    d.name, d.shape, r.name, r.shape
                ));
            }
            if *dim >= d.rank() {
                return err(format!("shift dim {} out of rank {}", dim + 1, d.rank()));
            }
            Ok(())
        }
        Stmt::OverlapShift { array, src_offsets, shift, dim, rsd, .. } => {
            check_array(symbols, *array)?;
            let a = symbols.array(*array);
            if *dim >= a.rank() {
                return err(format!("overlap shift dim {} out of rank {}", dim + 1, a.rank()));
            }
            if src_offsets.rank() != a.rank() {
                return err(format!("offset annotation rank mismatch on {}", a.name));
            }
            if shift.abs() > w {
                return err(format!(
                    "overlap shift amount {shift} exceeds overlap width {w} on {}",
                    a.name
                ));
            }
            if let Some(rsd) = rsd {
                if rsd.rank() != a.rank() {
                    return err(format!("RSD rank mismatch on {}", a.name));
                }
                if rsd.ext.iter().any(|&(lo, hi)| lo as i64 > w || hi as i64 > w) {
                    return err(format!("RSD extension exceeds overlap width on {}", a.name));
                }
                if rsd.ext[*dim] != (0, 0) {
                    return err(format!(
                        "RSD must not extend the shifted dimension itself on {}",
                        a.name
                    ));
                }
            }
            Ok(())
        }
        Stmt::Compute { lhs, space, rhs } => {
            check_array(symbols, *lhs)?;
            let l = symbols.array(*lhs);
            if space.rank() != l.rank() {
                return err(format!("iteration space rank mismatch on {}", l.name));
            }
            if !space.within(&l.shape) {
                return err(format!(
                    "iteration space {space:?} outside bounds of {} {:?}",
                    l.name, l.shape
                ));
            }
            let mut inner = Ok(());
            rhs.for_each_ref(&mut |r| {
                if inner.is_err() {
                    return;
                }
                if let Err(e) = check_array(symbols, r.array) {
                    inner = Err(e);
                    return;
                }
                let a = symbols.array(r.array);
                if r.offsets.rank() != a.rank() {
                    inner = err(format!("operand offset rank mismatch on {}", a.name));
                    return;
                }
                if r.offsets.max_abs() > w {
                    inner = err(format!(
                        "operand offset {:?} exceeds overlap width {w} on {}",
                        r.offsets, a.name
                    ));
                    return;
                }
                if a.shape != l.shape {
                    inner = err(format!("operand {} not conformant with LHS {}", a.name, l.name));
                }
            });
            inner
        }
        Stmt::Copy { dst, src } => {
            check_array(symbols, *dst)?;
            check_array(symbols, src.array)?;
            let d = symbols.array(*dst);
            let s = symbols.array(src.array);
            if d.shape != s.shape {
                return err(format!("copy shape mismatch {} vs {}", d.name, s.name));
            }
            if src.offsets.rank() != s.rank() {
                return err(format!("copy offset rank mismatch on {}", s.name));
            }
            if src.offsets.max_abs() > w {
                return err(format!("copy offset exceeds overlap width on {}", s.name));
            }
            Ok(())
        }
        Stmt::TimeLoop { .. } => Ok(()), // bodies visited by the caller
    }
}

/// Check the *normal form* property of §2.1: every shift is a singleton
/// whole-array assignment (guaranteed by construction here), and every
/// compute statement's operands are declared with identical distributions as
/// the LHS (perfect alignment ⇒ no communication).
pub fn check_normal_form(p: &Program) -> Result<(), ValidateError> {
    let mut result = Ok(());
    p.for_each_stmt(&mut |s| {
        if result.is_err() {
            return;
        }
        if let Stmt::Compute { lhs, rhs, .. } = s {
            let ldist = &p.symbols.array(*lhs).dist;
            rhs.for_each_ref(&mut |r| {
                if result.is_err() {
                    return;
                }
                let rd = &p.symbols.array(r.array).dist;
                if rd != ldist {
                    result = err(format!(
                        "compute operand {} not aligned with {} (distributions differ)",
                        p.symbols.array(r.array).name,
                        p.symbols.array(*lhs).name
                    ));
                }
            });
        }
    });
    result
}

/// Full iteration space of an array (used by kill analysis and validation).
pub fn full_space(symbols: &SymbolTable, id: ArrayId) -> Section {
    Section::full(&symbols.array(id).shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayDecl, Distribution, Shape};
    use crate::expr::{Expr, OperandRef};
    use crate::section::Offsets;
    use crate::stmt::ShiftKind;

    fn prog() -> (Program, ArrayId, ArrayId) {
        let mut t = SymbolTable::new();
        let u = t.add_array(ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2)));
        let v = t.add_array(ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2)));
        (Program::new(t), u, v)
    }

    #[test]
    fn valid_program_passes() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::ShiftAssign {
            dst: v,
            src: u,
            shift: 1,
            dim: 0,
            kind: ShiftKind::Circular,
        });
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(2, 7), (2, 7)]),
            rhs: Expr::Ref(OperandRef::offset(u, Offsets::new([1, -1]))),
        });
        assert!(validate(&p, 1).is_ok());
        assert!(check_normal_form(&p).is_ok());
    }

    #[test]
    fn shift_dim_out_of_rank_fails() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::ShiftAssign {
            dst: v,
            src: u,
            shift: 1,
            dim: 2,
            kind: ShiftKind::Circular,
        });
        assert!(validate(&p, 1).is_err());
    }

    #[test]
    fn offset_exceeding_overlap_fails() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(3, 6), (1, 8)]),
            rhs: Expr::Ref(OperandRef::offset(u, Offsets::new([2, 0]))),
        });
        assert!(validate(&p, 1).is_err());
        assert!(validate(&p, 2).is_ok());
    }

    #[test]
    fn space_outside_bounds_fails() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(0, 8), (1, 8)]),
            rhs: Expr::Ref(OperandRef::aligned(u, 2)),
        });
        assert!(validate(&p, 1).is_err());
    }

    #[test]
    fn misaligned_operand_fails_normal_form() {
        let mut t = SymbolTable::new();
        let u = t.add_array(ArrayDecl::user(
            "U",
            Shape::new([8, 8]),
            Distribution(vec![crate::DimDist::Block, crate::DimDist::Collapsed]),
        ));
        let v = t.add_array(ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2)));
        let mut p = Program::new(t);
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(1, 8), (1, 8)]),
            rhs: Expr::Ref(OperandRef::aligned(u, 2)),
        });
        assert!(validate(&p, 1).is_ok(), "structurally fine");
        assert!(check_normal_form(&p).is_err(), "but not aligned");
    }

    #[test]
    fn rsd_must_not_extend_shift_dim() {
        let (mut p, u, _) = prog();
        let mut rsd = crate::Rsd::none(2);
        rsd.extend(1, 1);
        p.body.push(Stmt::OverlapShift {
            array: u,
            src_offsets: Offsets::zero(2),
            shift: 1,
            dim: 1,
            rsd: Some(rsd),
            kind: ShiftKind::Circular,
        });
        assert!(validate(&p, 1).is_err());
    }
}
