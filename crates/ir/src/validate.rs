//! IR validation: structural well-formedness checks run between passes.
//!
//! [`check`] walks the whole program and collects *every* violation as a
//! [`Diagnostic`] (code `IR0xx`, with a source span where the offending
//! construct still carries one); [`validate`] is the `Result`-shaped wrapper
//! most callers use. Normal-form alignment (§2.1) is checked separately by
//! [`normal_form_diagnostics`] / [`check_normal_form`] because passes that
//! run before alignment is established still want the structural checks.

use crate::array::ArrayId;
use crate::diag::Diagnostic;
use crate::program::{Program, SymbolTable};
use crate::section::Section;
use crate::stmt::Stmt;

/// Dangling array/scalar id.
pub const IR001: &str = "IR001";
/// Shape/conformance mismatch between operands.
pub const IR002: &str = "IR002";
/// Dimension index out of rank.
pub const IR003: &str = "IR003";
/// Shift amount or offset annotation exceeds the overlap width.
pub const IR004: &str = "IR004";
/// Malformed RSD (rank, width, or extension along the shifted dimension).
pub const IR005: &str = "IR005";
/// Iteration space rank mismatch or outside array bounds.
pub const IR006: &str = "IR006";
/// Offset annotation rank mismatch.
pub const IR007: &str = "IR007";
/// Normal-form violation: compute operand not aligned with the LHS.
pub const NF001: &str = "NF001";

/// A validation failure: the collected diagnostics for every violation.
#[derive(Clone, Debug, PartialEq)]
pub struct ValidateError(pub Vec<Diagnostic>);

impl std::fmt::Display for ValidateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "IR validation error: ")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "; ")?;
            }
            write!(f, "{}", d.message)?;
        }
        Ok(())
    }
}

impl std::error::Error for ValidateError {}

fn check_array(symbols: &SymbolTable, id: ArrayId, out: &mut Vec<Diagnostic>) -> bool {
    if (id.0 as usize) < symbols.num_arrays() {
        true
    } else {
        out.push(Diagnostic::error(IR001, format!("dangling array id {id:?}")));
        false
    }
}

/// Validate a program against the normal-form invariants:
///
/// * every referenced array/scalar id is declared;
/// * shift dimensions are within rank and operand ranks agree;
/// * compute iteration spaces lie within the LHS array bounds;
/// * operand references inside a compute statement have the rank of their
///   array and, translated by their offsets, the referenced section lies
///   within the array extended by the given overlap width;
/// * offset annotations never exceed the machine's overlap width.
///
/// Returns `Err` with **all** violations, not just the first.
pub fn validate(p: &Program, overlap_width: i64) -> Result<(), ValidateError> {
    let diags = check(p, overlap_width);
    if diags.is_empty() {
        Ok(())
    } else {
        Err(ValidateError(diags))
    }
}

/// Collect every structural violation in the program as diagnostics.
pub fn check(p: &Program, overlap_width: i64) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    p.for_each_stmt(&mut |s| check_stmt(&p.symbols, s, overlap_width, &mut out));
    out
}

fn check_stmt(symbols: &SymbolTable, s: &Stmt, w: i64, out: &mut Vec<Diagnostic>) {
    match s {
        Stmt::ShiftAssign { dst, src, dim, .. } => {
            if !check_array(symbols, *dst, out) || !check_array(symbols, *src, out) {
                return;
            }
            let d = symbols.array(*dst);
            let r = symbols.array(*src);
            if d.shape != r.shape {
                out.push(Diagnostic::error(
                    IR002,
                    format!(
                        "shift assign shape mismatch: {} {:?} vs {} {:?}",
                        d.name, d.shape, r.name, r.shape
                    ),
                ));
            }
            if *dim >= d.rank() {
                out.push(Diagnostic::error(
                    IR003,
                    format!("shift dim {} out of rank {}", dim + 1, d.rank()),
                ));
            }
        }
        Stmt::OverlapShift { array, src_offsets, shift, dim, rsd, .. } => {
            if !check_array(symbols, *array, out) {
                return;
            }
            let a = symbols.array(*array);
            if *dim >= a.rank() {
                out.push(Diagnostic::error(
                    IR003,
                    format!("overlap shift dim {} out of rank {}", dim + 1, a.rank()),
                ));
            }
            if src_offsets.rank() != a.rank() {
                out.push(Diagnostic::error(
                    IR007,
                    format!("offset annotation rank mismatch on {}", a.name),
                ));
            }
            if shift.abs() > w {
                out.push(Diagnostic::error(
                    IR004,
                    format!("overlap shift amount {shift} exceeds overlap width {w} on {}", a.name),
                ));
            }
            if let Some(rsd) = rsd {
                if rsd.rank() != a.rank() {
                    out.push(Diagnostic::error(IR005, format!("RSD rank mismatch on {}", a.name)));
                    return;
                }
                if rsd.ext.iter().any(|&(lo, hi)| lo as i64 > w || hi as i64 > w) {
                    out.push(Diagnostic::error(
                        IR005,
                        format!("RSD extension exceeds overlap width on {}", a.name),
                    ));
                }
                if *dim < a.rank() && rsd.ext[*dim] != (0, 0) {
                    out.push(Diagnostic::error(
                        IR005,
                        format!("RSD must not extend the shifted dimension itself on {}", a.name),
                    ));
                }
            }
        }
        Stmt::Compute { lhs, space, rhs } => {
            if !check_array(symbols, *lhs, out) {
                return;
            }
            let l = symbols.array(*lhs);
            if space.rank() != l.rank() {
                out.push(Diagnostic::error(
                    IR006,
                    format!("iteration space rank mismatch on {}", l.name),
                ));
                return;
            }
            if !space.within(&l.shape) {
                out.push(Diagnostic::error(
                    IR006,
                    format!("iteration space {space:?} outside bounds of {} {:?}", l.name, l.shape),
                ));
            }
            rhs.for_each_ref(&mut |r| {
                if !check_array(symbols, r.array, out) {
                    return;
                }
                let a = symbols.array(r.array);
                if r.offsets.rank() != a.rank() {
                    out.push(
                        Diagnostic::error(
                            IR007,
                            format!("operand offset rank mismatch on {}", a.name),
                        )
                        .at_opt(r.span),
                    );
                    return;
                }
                if r.offsets.max_abs() > w {
                    out.push(
                        Diagnostic::error(
                            IR004,
                            format!(
                                "operand offset {:?} exceeds overlap width {w} on {}",
                                r.offsets, a.name
                            ),
                        )
                        .at_opt(r.span),
                    );
                }
                if a.shape != l.shape {
                    out.push(
                        Diagnostic::error(
                            IR002,
                            format!("operand {} not conformant with LHS {}", a.name, l.name),
                        )
                        .at_opt(r.span),
                    );
                }
            });
        }
        Stmt::Copy { dst, src } => {
            if !check_array(symbols, *dst, out) || !check_array(symbols, src.array, out) {
                return;
            }
            let d = symbols.array(*dst);
            let s = symbols.array(src.array);
            if d.shape != s.shape {
                out.push(Diagnostic::error(
                    IR002,
                    format!("copy shape mismatch {} vs {}", d.name, s.name),
                ));
            }
            if src.offsets.rank() != s.rank() {
                out.push(
                    Diagnostic::error(IR007, format!("copy offset rank mismatch on {}", s.name))
                        .at_opt(src.span),
                );
                return;
            }
            if src.offsets.max_abs() > w {
                out.push(
                    Diagnostic::error(
                        IR004,
                        format!("copy offset exceeds overlap width on {}", s.name),
                    )
                    .at_opt(src.span),
                );
            }
        }
        Stmt::TimeLoop { .. } => {} // bodies visited by the caller
    }
}

/// Collect every *normal form* (§2.1) violation: every compute statement's
/// operands must be declared with a distribution identical to the LHS
/// (perfect alignment ⇒ no communication).
pub fn normal_form_diagnostics(p: &Program) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    p.for_each_stmt(&mut |s| {
        if let Stmt::Compute { lhs, rhs, .. } = s {
            let ldist = &p.symbols.array(*lhs).dist;
            rhs.for_each_ref(&mut |r| {
                let rd = &p.symbols.array(r.array).dist;
                if rd != ldist {
                    out.push(
                        Diagnostic::error(
                            NF001,
                            format!(
                                "compute operand {} not aligned with {} (distributions differ)",
                                p.symbols.array(r.array).name,
                                p.symbols.array(*lhs).name
                            ),
                        )
                        .at_opt(r.span),
                    );
                }
            });
        }
    });
    out
}

/// Check the *normal form* property of §2.1: every shift is a singleton
/// whole-array assignment (guaranteed by construction here), and every
/// compute statement's operands are declared with identical distributions as
/// the LHS. Returns `Err` with **all** violations.
pub fn check_normal_form(p: &Program) -> Result<(), ValidateError> {
    let diags = normal_form_diagnostics(p);
    if diags.is_empty() {
        Ok(())
    } else {
        Err(ValidateError(diags))
    }
}

/// Full iteration space of an array (used by kill analysis and validation).
pub fn full_space(symbols: &SymbolTable, id: ArrayId) -> Section {
    Section::full(&symbols.array(id).shape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayDecl, Distribution, Shape};
    use crate::expr::{BinOp, Expr, OperandRef};
    use crate::section::Offsets;
    use crate::span::Span;
    use crate::stmt::ShiftKind;

    fn prog() -> (Program, ArrayId, ArrayId) {
        let mut t = SymbolTable::new();
        let u = t.add_array(ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2)));
        let v = t.add_array(ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2)));
        (Program::new(t), u, v)
    }

    #[test]
    fn valid_program_passes() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::ShiftAssign {
            dst: v,
            src: u,
            shift: 1,
            dim: 0,
            kind: ShiftKind::Circular,
        });
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(2, 7), (2, 7)]),
            rhs: Expr::Ref(OperandRef::offset(u, Offsets::new([1, -1]))),
        });
        assert!(validate(&p, 1).is_ok());
        assert!(check_normal_form(&p).is_ok());
    }

    #[test]
    fn shift_dim_out_of_rank_fails() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::ShiftAssign {
            dst: v,
            src: u,
            shift: 1,
            dim: 2,
            kind: ShiftKind::Circular,
        });
        assert!(validate(&p, 1).is_err());
    }

    #[test]
    fn offset_exceeding_overlap_fails() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(3, 6), (1, 8)]),
            rhs: Expr::Ref(OperandRef::offset(u, Offsets::new([2, 0]))),
        });
        assert!(validate(&p, 1).is_err());
        assert!(validate(&p, 2).is_ok());
    }

    #[test]
    fn space_outside_bounds_fails() {
        let (mut p, u, v) = prog();
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(0, 8), (1, 8)]),
            rhs: Expr::Ref(OperandRef::aligned(u, 2)),
        });
        assert!(validate(&p, 1).is_err());
    }

    #[test]
    fn misaligned_operand_fails_normal_form() {
        let mut t = SymbolTable::new();
        let u = t.add_array(ArrayDecl::user(
            "U",
            Shape::new([8, 8]),
            Distribution(vec![crate::DimDist::Block, crate::DimDist::Collapsed]),
        ));
        let v = t.add_array(ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2)));
        let mut p = Program::new(t);
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(1, 8), (1, 8)]),
            rhs: Expr::Ref(OperandRef::aligned(u, 2)),
        });
        assert!(validate(&p, 1).is_ok(), "structurally fine");
        assert!(check_normal_form(&p).is_err(), "but not aligned");
    }

    #[test]
    fn rsd_must_not_extend_shift_dim() {
        let (mut p, u, _) = prog();
        let mut rsd = crate::Rsd::none(2);
        rsd.extend(1, 1);
        p.body.push(Stmt::OverlapShift {
            array: u,
            src_offsets: Offsets::zero(2),
            shift: 1,
            dim: 1,
            rsd: Some(rsd),
            kind: ShiftKind::Circular,
        });
        assert!(validate(&p, 1).is_err());
    }

    #[test]
    fn collects_all_violations_not_just_first() {
        let (mut p, u, v) = prog();
        // Two independent violations in one statement: oversized offsets on
        // two distinct operands, plus a bad shift dim in a second statement.
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(3, 6), (3, 6)]),
            rhs: Expr::bin(
                BinOp::Add,
                Expr::Ref(OperandRef::offset(u, Offsets::new([2, 0])).at(Span::new(3, 5))),
                Expr::Ref(OperandRef::offset(u, Offsets::new([0, -3]))),
            ),
        });
        p.body.push(Stmt::ShiftAssign {
            dst: v,
            src: u,
            shift: 1,
            dim: 5,
            kind: ShiftKind::Circular,
        });
        let diags = check(&p, 1);
        assert_eq!(diags.len(), 3, "all violations collected: {diags:?}");
        assert_eq!(diags[0].code, IR004);
        assert_eq!(diags[0].span, Some(Span::new(3, 5)));
        assert_eq!(diags[1].code, IR004);
        assert_eq!(diags[2].code, IR003);
        let err = validate(&p, 1).unwrap_err();
        assert_eq!(err.0.len(), 3);
        assert!(err.to_string().contains("exceeds overlap width"));
    }
}
