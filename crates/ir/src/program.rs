//! Whole-program container and symbol table.

use crate::array::{ArrayDecl, ArrayId, ScalarDecl, ScalarId};
use crate::stmt::Stmt;

/// Symbol table holding array and scalar declarations.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SymbolTable {
    arrays: Vec<ArrayDecl>,
    scalars: Vec<ScalarDecl>,
}

impl SymbolTable {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add an array declaration, returning its id.
    pub fn add_array(&mut self, decl: ArrayDecl) -> ArrayId {
        assert!(self.lookup_array(&decl.name).is_none(), "duplicate array {}", decl.name);
        let id = ArrayId(self.arrays.len() as u32);
        self.arrays.push(decl);
        id
    }

    /// Add a scalar declaration, returning its id.
    pub fn add_scalar(&mut self, decl: ScalarDecl) -> ScalarId {
        assert!(self.lookup_scalar(&decl.name).is_none(), "duplicate scalar {}", decl.name);
        let id = ScalarId(self.scalars.len() as u32);
        self.scalars.push(decl);
        id
    }

    /// Declaration of an array id.
    pub fn array(&self, id: ArrayId) -> &ArrayDecl {
        &self.arrays[id.0 as usize]
    }

    /// Declaration of a scalar id.
    pub fn scalar(&self, id: ScalarId) -> &ScalarDecl {
        &self.scalars[id.0 as usize]
    }

    /// Find an array by name.
    pub fn lookup_array(&self, name: &str) -> Option<ArrayId> {
        self.arrays.iter().position(|a| a.name == name).map(|i| ArrayId(i as u32))
    }

    /// Find a scalar by name.
    pub fn lookup_scalar(&self, name: &str) -> Option<ScalarId> {
        self.scalars.iter().position(|s| s.name == name).map(|i| ScalarId(i as u32))
    }

    /// All array ids.
    pub fn array_ids(&self) -> impl Iterator<Item = ArrayId> {
        (0..self.arrays.len() as u32).map(ArrayId)
    }

    /// All scalar ids.
    pub fn scalar_ids(&self) -> impl Iterator<Item = ScalarId> {
        (0..self.scalars.len() as u32).map(ScalarId)
    }

    /// Number of arrays.
    pub fn num_arrays(&self) -> usize {
        self.arrays.len()
    }

    /// Number of scalars.
    pub fn num_scalars(&self) -> usize {
        self.scalars.len()
    }

    /// Generate a fresh compiler temporary name not colliding with any
    /// existing array.
    pub fn fresh_temp_name(&self) -> String {
        let mut k = 1;
        loop {
            let name = format!("TMP{k}");
            if self.lookup_array(&name).is_none() {
                return name;
            }
            k += 1;
        }
    }
}

/// A normalized stencil program: symbols plus a statement list (the body may
/// contain [`Stmt::TimeLoop`] nests whose bodies are basic blocks).
#[derive(Clone, Debug, PartialEq)]
pub struct Program {
    /// Array and scalar declarations.
    pub symbols: SymbolTable,
    /// Statement list.
    pub body: Vec<Stmt>,
}

impl Program {
    /// Empty program over a symbol table.
    pub fn new(symbols: SymbolTable) -> Self {
        Program { symbols, body: Vec::new() }
    }

    /// Apply `f` to every basic block of the program (the top-level block
    /// and each time-loop body, recursively).
    pub fn for_each_block_mut(&mut self, f: &mut impl FnMut(&mut Vec<Stmt>, &mut SymbolTable)) {
        fn walk(
            block: &mut Vec<Stmt>,
            symbols: &mut SymbolTable,
            f: &mut impl FnMut(&mut Vec<Stmt>, &mut SymbolTable),
        ) {
            // Visit inner blocks first so the callback sees loop bodies in
            // their final shape before reordering the enclosing block.
            for s in block.iter_mut() {
                if let Stmt::TimeLoop { body, .. } = s {
                    walk(body, symbols, f);
                }
            }
            f(block, symbols);
        }
        let mut body = std::mem::take(&mut self.body);
        walk(&mut body, &mut self.symbols, f);
        self.body = body;
    }

    /// Visit every statement (including inside time loops).
    pub fn for_each_stmt(&self, f: &mut impl FnMut(&Stmt)) {
        fn walk(block: &[Stmt], f: &mut impl FnMut(&Stmt)) {
            for s in block {
                f(s);
                if let Stmt::TimeLoop { body, .. } = s {
                    walk(body, f);
                }
            }
        }
        walk(&self.body, f);
    }

    /// Count statements satisfying a predicate (recursively).
    pub fn count_stmts(&self, pred: impl Fn(&Stmt) -> bool) -> usize {
        let mut n = 0;
        self.for_each_stmt(&mut |s| {
            if pred(s) {
                n += 1;
            }
        });
        n
    }

    /// Arrays that are still referenced anywhere in the program (assigned or
    /// read). Temporaries absent from this set need not be allocated — the
    /// storage reduction the paper reports in §4.2.
    pub fn live_arrays(&self) -> Vec<ArrayId> {
        let mut live = Vec::new();
        self.for_each_stmt(&mut |s| {
            for r in s.reads().into_iter().chain(s.writes()) {
                let a = match r {
                    crate::stmt::Resource::Interior(a) => a,
                    crate::stmt::Resource::Ghost(a, ..) => a,
                };
                if !live.contains(&a) {
                    live.push(a);
                }
            }
        });
        live.sort_unstable();
        live
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::{ArrayDecl, Distribution, ScalarDecl, Shape};
    use crate::expr::{Expr, OperandRef};
    use crate::section::Section;
    use crate::stmt::ShiftKind;

    fn table() -> (SymbolTable, ArrayId, ArrayId) {
        let mut t = SymbolTable::new();
        let u = t.add_array(ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2)));
        let v = t.add_array(ArrayDecl::user("T", Shape::new([8, 8]), Distribution::block(2)));
        (t, u, v)
    }

    #[test]
    fn lookup_roundtrip() {
        let (mut t, u, v) = table();
        assert_eq!(t.lookup_array("U"), Some(u));
        assert_eq!(t.lookup_array("T"), Some(v));
        assert_eq!(t.lookup_array("X"), None);
        let c = t.add_scalar(ScalarDecl { name: "C1".into(), value: 0.5 });
        assert_eq!(t.lookup_scalar("C1"), Some(c));
        assert_eq!(t.scalar(c).value, 0.5);
        assert_eq!(t.num_arrays(), 2);
        assert_eq!(t.num_scalars(), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate array")]
    fn duplicate_array_panics() {
        let (mut t, ..) = table();
        t.add_array(ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2)));
    }

    #[test]
    fn fresh_temp_names_skip_taken() {
        let (mut t, ..) = table();
        assert_eq!(t.fresh_temp_name(), "TMP1");
        t.add_array(ArrayDecl::user("TMP1", Shape::new([8, 8]), Distribution::block(2)));
        assert_eq!(t.fresh_temp_name(), "TMP2");
    }

    #[test]
    fn live_arrays_and_block_walk() {
        let (mut t, u, v) = table();
        let dead = t.add_array(ArrayDecl::user("DEAD", Shape::new([8, 8]), Distribution::block(2)));
        let mut p = Program::new(t);
        p.body.push(Stmt::TimeLoop {
            iters: 2,
            body: vec![
                Stmt::ShiftAssign { dst: v, src: u, shift: 1, dim: 0, kind: ShiftKind::Circular },
                Stmt::Copy { dst: u, src: OperandRef::aligned(v, 2) },
            ],
        });
        let live = p.live_arrays();
        assert!(live.contains(&u) && live.contains(&v));
        assert!(!live.contains(&dead));

        let mut blocks = 0;
        p.for_each_block_mut(&mut |_, _| blocks += 1);
        assert_eq!(blocks, 2); // top level + loop body

        assert_eq!(p.count_stmts(|s| s.is_comm()), 1);
    }

    #[test]
    fn for_each_stmt_recurses() {
        let (t, u, v) = table();
        let mut p = Program::new(t);
        p.body.push(Stmt::Compute {
            lhs: v,
            space: Section::new([(1, 8), (1, 8)]),
            rhs: Expr::Ref(OperandRef::aligned(u, 2)),
        });
        p.body.push(Stmt::TimeLoop {
            iters: 1,
            body: vec![Stmt::Copy { dst: u, src: OperandRef::aligned(v, 2) }],
        });
        let mut n = 0;
        p.for_each_stmt(&mut |_| n += 1);
        assert_eq!(n, 3); // compute, timeloop, copy
    }
}
