//! Def-use scanning within a basic block.
//!
//! The offset-array optimization (paper §3.1) is driven by an SSA-style
//! def-use analysis: given a shift definition `DST = CSHIFT(SRC, …)` it must
//! find the uses of `DST` reached by that definition and verify that neither
//! `SRC` nor `DST` is destructively updated between the definition and each
//! use. This module provides those scans over a basic block, including the
//! wrap-around scan needed when the block is the body of a time loop (a
//! definition at the end of one iteration reaches uses at the start of the
//! next).

use crate::array::ArrayId;
use crate::stmt::{Resource, Stmt};

/// True when `stmt` reads the interior elements of `array`.
pub fn reads_interior(stmt: &Stmt, array: ArrayId) -> bool {
    stmt.reads().contains(&Resource::Interior(array))
}

/// True when `stmt` writes the interior elements of `array`.
pub fn writes_interior(stmt: &Stmt, array: ArrayId) -> bool {
    stmt.writes().contains(&Resource::Interior(array))
}

/// True when `stmt` *completely* redefines `array` (whole-array write), i.e.
/// kills any earlier definition. Compute statements over partial sections do
/// not kill.
pub fn kills(stmt: &Stmt, array: ArrayId, full_space: &crate::Section) -> bool {
    match stmt {
        Stmt::ShiftAssign { dst, .. } | Stmt::Copy { dst, .. } => *dst == array,
        Stmt::Compute { lhs, space, .. } => *lhs == array && space == full_space,
        _ => false,
    }
}

/// One use site of a definition inside a block.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UseSite {
    /// Index of the using statement within the block.
    pub stmt: usize,
    /// True when this use is reached around the loop back-edge (it appears
    /// *before* the definition in the block, which is a time-loop body).
    pub wrapped: bool,
}

/// The uses of array `dst` reached by the definition at `def_idx`.
///
/// Walks forward from the definition; stops at the first statement that
/// kills `dst`. With `wrap` (time-loop bodies) the walk continues from the
/// top of the block up to (but excluding) the definition, again stopping at
/// a kill. Partial writes to `dst` (section computes) conservatively
/// terminate the walk as well — a later use might read a mix of values.
pub fn reached_uses(
    block: &[Stmt],
    def_idx: usize,
    dst: ArrayId,
    full_space: &crate::Section,
    wrap: bool,
) -> Vec<UseSite> {
    let mut out = Vec::new();
    let n = block.len();
    let positions: Vec<(usize, bool)> = if wrap {
        (def_idx + 1..n).map(|i| (i, false)).chain((0..def_idx).map(|i| (i, true))).collect()
    } else {
        (def_idx + 1..n).map(|i| (i, false)).collect()
    };
    for (i, wrapped) in positions {
        let s = &block[i];
        if reads_interior(s, dst) {
            out.push(UseSite { stmt: i, wrapped });
        }
        if kills(s, dst, full_space) {
            break;
        }
        // A partial write makes further uses see mixed definitions; stop.
        if writes_interior(s, dst) {
            break;
        }
    }
    out
}

/// Index (within the same traversal order as [`reached_uses`]) of the first
/// statement strictly between `def_idx` and `use_site` that writes the
/// interior of `array`, if any. Used to check the offset-array safety
/// criterion "no destructive update of the source between the shift and the
/// use".
pub fn write_between(
    block: &[Stmt],
    def_idx: usize,
    use_site: UseSite,
    array: ArrayId,
) -> Option<usize> {
    let positions: Vec<usize> = if use_site.wrapped {
        (def_idx + 1..block.len()).chain(0..use_site.stmt).collect()
    } else {
        (def_idx + 1..use_site.stmt).collect()
    };
    positions.into_iter().find(|&i| writes_interior(&block[i], array))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::ArrayId;
    use crate::expr::{Expr, OperandRef};
    use crate::section::Section;
    use crate::stmt::ShiftKind;

    const U: ArrayId = ArrayId(0);
    const T: ArrayId = ArrayId(1);
    const R: ArrayId = ArrayId(2);

    fn full() -> Section {
        Section::new([(1, 8), (1, 8)])
    }

    fn shift(dst: ArrayId, src: ArrayId) -> Stmt {
        Stmt::ShiftAssign { dst, src, shift: 1, dim: 0, kind: ShiftKind::Circular }
    }

    fn compute_use(lhs: ArrayId, used: ArrayId) -> Stmt {
        Stmt::Compute { lhs, space: full(), rhs: Expr::Ref(OperandRef::aligned(used, 2)) }
    }

    #[test]
    fn reads_and_writes_interior() {
        let s = shift(R, U);
        assert!(reads_interior(&s, U));
        assert!(!reads_interior(&s, R));
        assert!(writes_interior(&s, R));
        assert!(!writes_interior(&s, U));
    }

    #[test]
    fn kills_whole_array_writes_only() {
        assert!(kills(&shift(R, U), R, &full()));
        assert!(!kills(&shift(R, U), U, &full()));
        let partial =
            Stmt::Compute { lhs: R, space: Section::new([(2, 7), (2, 7)]), rhs: Expr::Const(0.0) };
        assert!(!kills(&partial, R, &full()));
        let whole = compute_use(R, U);
        assert!(kills(&whole, R, &full()));
    }

    #[test]
    fn reached_uses_stop_at_kill() {
        let block = vec![
            shift(R, U),       // 0: def of R
            compute_use(T, R), // 1: use
            shift(R, T),       // 2: kill of R
            compute_use(T, R), // 3: use of the *new* R
        ];
        let uses = reached_uses(&block, 0, R, &full(), false);
        assert_eq!(uses, vec![UseSite { stmt: 1, wrapped: false }]);
        // A statement can both use and kill: index 2 reads T, not R.
        let uses2 = reached_uses(&block, 2, R, &full(), false);
        assert_eq!(uses2, vec![UseSite { stmt: 3, wrapped: false }]);
    }

    #[test]
    fn reached_uses_wrap_around_loop() {
        // Loop body: T = R ; R = CSHIFT(U). The def of R at index 1 reaches
        // the use at index 0 of the *next* iteration.
        let block = vec![compute_use(T, R), shift(R, U)];
        let uses = reached_uses(&block, 1, R, &full(), true);
        assert_eq!(uses, vec![UseSite { stmt: 0, wrapped: true }]);
        // Without wrap, no uses.
        assert!(reached_uses(&block, 1, R, &full(), false).is_empty());
    }

    #[test]
    fn partial_write_terminates_walk() {
        let partial =
            Stmt::Compute { lhs: R, space: Section::new([(2, 7), (2, 7)]), rhs: Expr::Const(0.0) };
        let block = vec![shift(R, U), partial, compute_use(T, R)];
        let uses = reached_uses(&block, 0, R, &full(), false);
        assert!(uses.is_empty(), "use after partial redefinition must not be attributed");
    }

    #[test]
    fn write_between_detects_source_update() {
        let block = vec![
            shift(R, U),       // 0: R = cshift(U)
            compute_use(U, T), // 1: U destructively updated
            compute_use(T, R), // 2: use of R
        ];
        let site = UseSite { stmt: 2, wrapped: false };
        assert_eq!(write_between(&block, 0, site, U), Some(1));
        assert_eq!(write_between(&block, 0, site, T), None);
    }

    #[test]
    fn write_between_wrapped_path() {
        // body: T = R (0) ; U = T (1) ; R = cshift(U) (2)
        // def at 2 reaches use at 0 via back edge; U is written at 1 which is
        // NOT between (path is 2 -> end -> 0). T is written at 0 itself —
        // also not between.
        let block = vec![compute_use(T, R), compute_use(U, T), shift(R, U)];
        let site = UseSite { stmt: 0, wrapped: true };
        assert_eq!(write_between(&block, 2, site, U), None);
        // Extend the body: 2 -> 3 writes U -> wraps to 0.
        let block2 = vec![compute_use(T, R), compute_use(U, T), shift(R, U), compute_use(U, T)];
        assert_eq!(write_between(&block2, 2, site, U), Some(3));
    }
}
