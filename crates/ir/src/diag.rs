//! Structured diagnostics.
//!
//! Every problem the compiler or the static analyzer can report — an IR
//! validation failure, a halo-safety lint, a missed-optimization warning —
//! is a [`Diagnostic`]: a severity, a stable code (e.g. `HS001`), an
//! optional source [`Span`], a human message, and zero or more notes.
//!
//! Diagnostics render two ways: [`render_text`] for terminals and
//! [`render_json`] for tooling (`hpfsc --emit diag-json`). The JSON encoder
//! is hand-rolled so the crate stays dependency-free.

use crate::span::Span;
use std::fmt;

/// How bad a diagnostic is.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum Severity {
    /// Suspicious but not known-wrong (missed optimization, dead code).
    Warning,
    /// The program is wrong: it will read poison, crash, or was rejected.
    Error,
}

impl Severity {
    /// Lower-case label used in both text and JSON rendering.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One problem found in a program.
#[derive(Clone, PartialEq, Debug)]
pub struct Diagnostic {
    /// Error or warning.
    pub severity: Severity,
    /// Stable machine-readable code (`HS001`, `IR003`, ...).
    pub code: &'static str,
    /// Source position, when the offending construct still carries one.
    pub span: Option<Span>,
    /// One-line human description.
    pub message: String,
    /// Extra context lines ("help: run unioning", ...).
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// New error diagnostic with no span or notes.
    pub fn error(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic {
            severity: Severity::Error,
            code,
            span: None,
            message: message.into(),
            notes: Vec::new(),
        }
    }

    /// New warning diagnostic with no span or notes.
    pub fn warning(code: &'static str, message: impl Into<String>) -> Self {
        Diagnostic { severity: Severity::Warning, ..Self::error(code, message) }
    }

    /// Attach a span (builder style).
    pub fn at(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach an optional span (builder style).
    pub fn at_opt(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }

    /// Append a note line (builder style).
    pub fn note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Render as `severity[CODE] line:col: message` plus indented notes.
    pub fn render(&self) -> String {
        let mut out = match self.span {
            Some(s) => format!("{}[{}] {}: {}", self.severity, self.code, s, self.message),
            None => format!("{}[{}] {}", self.severity, self.code, self.message),
        };
        for n in &self.notes {
            out.push_str("\n  note: ");
            out.push_str(n);
        }
        out
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

/// Sort diagnostics for stable presentation: errors first, then by span
/// (spanless last), then by code and message.
pub fn sort(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        let key = |d: &Diagnostic| {
            (
                std::cmp::Reverse(d.severity),
                d.span.is_none(),
                d.span.map(|s| (s.line, s.col)).unwrap_or((0, 0)),
                d.code,
                d.message.clone(),
            )
        };
        key(a).cmp(&key(b))
    });
}

/// Render a batch of diagnostics as newline-separated text, with a trailing
/// summary line (`N error(s), M warning(s)`). Empty input renders empty.
pub fn render_text(diags: &[Diagnostic]) -> String {
    if diags.is_empty() {
        return String::new();
    }
    let mut out = String::new();
    for d in diags {
        out.push_str(&d.render());
        out.push('\n');
    }
    let errors = diags.iter().filter(|d| d.severity == Severity::Error).count();
    let warnings = diags.len() - errors;
    out.push_str(&format!("{errors} error(s), {warnings} warning(s)\n"));
    out
}

/// Render a batch of diagnostics as a JSON array (machine-readable twin of
/// [`render_text`]). Schema per element:
/// `{"severity", "code", "span": {"line", "col"} | null, "message", "notes"}`.
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut out = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {");
        out.push_str(&format!("\"severity\":\"{}\",", d.severity.label()));
        out.push_str(&format!("\"code\":{},", json_string(d.code)));
        match d.span {
            Some(s) => {
                out.push_str(&format!("\"span\":{{\"line\":{},\"col\":{}}},", s.line, s.col))
            }
            None => out.push_str("\"span\":null,"),
        }
        out.push_str(&format!("\"message\":{},", json_string(&d.message)));
        out.push_str("\"notes\":[");
        for (j, n) in d.notes.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str(&json_string(n));
        }
        out.push_str("]}");
    }
    if !diags.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}

/// Encode a string as a JSON string literal (with escaping).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_text_with_span_and_notes() {
        let d = Diagnostic::error("HS001", "uncovered ghost read of U")
            .at(Span::new(4, 9))
            .note("no preceding OVERLAP_SHIFT covers offset <1,0>");
        assert_eq!(
            d.render(),
            "error[HS001] 4:9: uncovered ghost read of U\n  note: no preceding OVERLAP_SHIFT covers offset <1,0>"
        );
    }

    #[test]
    fn renders_text_without_span() {
        let d = Diagnostic::warning("DF002", "temp never read");
        assert_eq!(d.render(), "warning[DF002] temp never read");
    }

    #[test]
    fn sorts_errors_before_warnings_then_by_span() {
        let mut v = vec![
            Diagnostic::warning("CU001", "b").at(Span::new(1, 1)),
            Diagnostic::error("HS001", "c").at(Span::new(9, 1)),
            Diagnostic::error("HS001", "a").at(Span::new(2, 3)),
            Diagnostic::error("DF001", "d"),
        ];
        sort(&mut v);
        let order: Vec<_> = v.iter().map(|d| d.message.as_str()).collect();
        assert_eq!(order, ["a", "c", "d", "b"]);
    }

    #[test]
    fn json_escapes_and_structures() {
        let d = Diagnostic::error("IR001", "bad \"name\"\nline2").at(Span::new(1, 2)).note("n1");
        let j = render_json(std::slice::from_ref(&d));
        assert!(j.contains("\"code\":\"IR001\""));
        assert!(j.contains("\"span\":{\"line\":1,\"col\":2}"));
        assert!(j.contains("bad \\\"name\\\"\\nline2"));
        assert!(j.contains("\"notes\":[\"n1\"]"));
        assert_eq!(render_json(&[]), "[]");
    }
}
