//! Iteration spaces (array sections) and offset annotations.

use crate::array::Shape;
use std::fmt;

/// A rectangular array section / iteration space: per-dimension inclusive
/// 1-based bounds, the IR analogue of `A(lo1:hi1, lo2:hi2, ...)`.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Section(pub Vec<(i64, i64)>);

impl Section {
    /// Section covering a whole array of the given shape: `(1:n1, 1:n2, …)`.
    pub fn full(shape: &Shape) -> Self {
        Section(shape.0.iter().map(|&e| (1, e as i64)).collect())
    }

    /// Section from explicit per-dimension bounds.
    pub fn new(bounds: impl Into<Vec<(i64, i64)>>) -> Self {
        Section(bounds.into())
    }

    /// Interior section of a shape, shrunk by `margin` on every side:
    /// `(1+margin : n-margin, …)`.
    pub fn interior(shape: &Shape, margin: i64) -> Self {
        Section(shape.0.iter().map(|&e| (1 + margin, e as i64 - margin)).collect())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Bounds of dimension `d`.
    pub fn dim(&self, d: usize) -> (i64, i64) {
        self.0[d]
    }

    /// Extent of dimension `d` (zero when empty).
    pub fn extent(&self, d: usize) -> i64 {
        let (lo, hi) = self.0[d];
        (hi - lo + 1).max(0)
    }

    /// Number of points in the section.
    pub fn num_points(&self) -> i64 {
        self.0.iter().map(|&(lo, hi)| (hi - lo + 1).max(0)).product()
    }

    /// True when some dimension is empty.
    pub fn is_empty(&self) -> bool {
        self.0.iter().any(|&(lo, hi)| hi < lo)
    }

    /// Section translated by `off` (element-wise).
    pub fn translate(&self, off: &Offsets) -> Section {
        assert_eq!(self.rank(), off.rank());
        Section(self.0.iter().zip(&off.0).map(|(&(lo, hi), &o)| (lo + o, hi + o)).collect())
    }

    /// Intersection with another section of the same rank.
    pub fn intersect(&self, other: &Section) -> Section {
        assert_eq!(self.rank(), other.rank());
        Section(
            self.0.iter().zip(&other.0).map(|(&(a, b), &(c, d))| (a.max(c), b.min(d))).collect(),
        )
    }

    /// True when the section lies within the array bounds of `shape`.
    pub fn within(&self, shape: &Shape) -> bool {
        self.rank() == shape.rank()
            && self.0.iter().zip(&shape.0).all(|(&(lo, hi), &e)| lo >= 1 && hi <= e as i64)
    }

    /// True when `point` (1-based per-dim indices) lies inside the section.
    pub fn contains(&self, point: &[i64]) -> bool {
        point.len() == self.rank()
            && point.iter().zip(&self.0).all(|(&p, &(lo, hi))| p >= lo && p <= hi)
    }

    /// Iterate all points of the section in row-major (last dim fastest)
    /// order. Intended for tests and the reference interpreter; the node
    /// executor uses explicit loop nests instead.
    pub fn points(&self) -> SectionPoints {
        SectionPoints {
            section: self.clone(),
            cur: self.0.iter().map(|&(lo, _)| lo).collect(),
            done: self.is_empty(),
        }
    }
}

impl fmt::Debug for Section {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, (lo, hi)) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{lo}:{hi}")?;
        }
        write!(f, ")")
    }
}

/// Iterator over the points of a [`Section`].
pub struct SectionPoints {
    section: Section,
    cur: Vec<i64>,
    done: bool,
}

impl Iterator for SectionPoints {
    type Item = Vec<i64>;

    fn next(&mut self) -> Option<Vec<i64>> {
        if self.done {
            return None;
        }
        let out = self.cur.clone();
        // Advance row-major: last dimension fastest.
        let rank = self.cur.len();
        let mut d = rank;
        loop {
            if d == 0 {
                self.done = true;
                break;
            }
            d -= 1;
            self.cur[d] += 1;
            if self.cur[d] <= self.section.0[d].1 {
                break;
            }
            self.cur[d] = self.section.0[d].0;
        }
        Some(out)
    }
}

/// An offset annotation on an array reference — the paper's `U<a1,…,ar>`
/// notation. `U<+1,0>(i,j)` denotes `U(i+1, j)` with off-processor elements
/// found in the overlap area.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Offsets(pub Vec<i64>);

impl Offsets {
    /// All-zero offsets of the given rank (a plain reference).
    pub fn zero(rank: usize) -> Self {
        Offsets(vec![0; rank])
    }

    /// Offsets from explicit per-dimension values.
    pub fn new(v: impl Into<Vec<i64>>) -> Self {
        Offsets(v.into())
    }

    /// A unit offset of `amount` in dimension `dim` (0-based), rank `rank`.
    pub fn unit(rank: usize, dim: usize, amount: i64) -> Self {
        let mut v = vec![0; rank];
        v[dim] = amount;
        Offsets(v)
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Offset in dimension `d`.
    pub fn dim(&self, d: usize) -> i64 {
        self.0[d]
    }

    /// True when every component is zero.
    pub fn is_zero(&self) -> bool {
        self.0.iter().all(|&o| o == 0)
    }

    /// Component-wise sum — composing two shifts (`CSHIFT` is commutative
    /// and composes additively per dimension, §3.3 of the paper).
    pub fn compose(&self, other: &Offsets) -> Offsets {
        assert_eq!(self.rank(), other.rank());
        Offsets(self.0.iter().zip(&other.0).map(|(a, b)| a + b).collect())
    }

    /// Largest absolute component — determines the overlap width needed.
    pub fn max_abs(&self) -> i64 {
        self.0.iter().map(|o| o.abs()).max().unwrap_or(0)
    }
}

impl fmt::Debug for Offsets {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<")?;
        for (i, o) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if *o > 0 {
                write!(f, "+{o}")?;
            } else {
                write!(f, "{o}")?;
            }
        }
        write!(f, ">")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn shape44() -> Shape {
        Shape::new([4, 4])
    }

    #[test]
    fn full_and_interior() {
        let s = Section::full(&shape44());
        assert_eq!(s.0, vec![(1, 4), (1, 4)]);
        let i = Section::interior(&shape44(), 1);
        assert_eq!(i.0, vec![(2, 3), (2, 3)]);
        assert_eq!(i.num_points(), 4);
    }

    #[test]
    fn translate_and_intersect() {
        let s = Section::new([(2, 3), (2, 3)]);
        let t = s.translate(&Offsets::new([-1, 2]));
        assert_eq!(t.0, vec![(1, 2), (4, 5)]);
        let i = s.intersect(&t);
        assert_eq!(i.0, vec![(2, 2), (4, 3)]);
        assert!(i.is_empty());
        assert_eq!(i.num_points(), 0);
    }

    #[test]
    fn within_and_contains() {
        let s = Section::new([(1, 4), (2, 3)]);
        assert!(s.within(&shape44()));
        assert!(!Section::new([(0, 4), (1, 4)]).within(&shape44()));
        assert!(!Section::new([(1, 5), (1, 4)]).within(&shape44()));
        assert!(s.contains(&[1, 2]));
        assert!(!s.contains(&[1, 1]));
    }

    #[test]
    fn points_row_major() {
        let s = Section::new([(1, 2), (5, 6)]);
        let pts: Vec<_> = s.points().collect();
        assert_eq!(pts, vec![vec![1, 5], vec![1, 6], vec![2, 5], vec![2, 6]]);
    }

    #[test]
    fn points_empty() {
        let s = Section::new([(2, 1)]);
        assert_eq!(s.points().count(), 0);
    }

    #[test]
    fn offsets_compose() {
        let a = Offsets::unit(2, 0, 1);
        let b = Offsets::unit(2, 1, -1);
        let c = a.compose(&b);
        assert_eq!(c.0, vec![1, -1]);
        assert_eq!(c.max_abs(), 1);
        assert!(!c.is_zero());
        assert!(Offsets::zero(3).is_zero());
    }

    #[test]
    fn offsets_debug_matches_paper_notation() {
        assert_eq!(format!("{:?}", Offsets::new([1, -1])), "<+1,-1>");
        assert_eq!(format!("{:?}", Offsets::new([0, 0])), "<0,0>");
    }

    #[test]
    fn extent_handles_empty() {
        let s = Section::new([(3, 1)]);
        assert_eq!(s.extent(0), 0);
    }
}
