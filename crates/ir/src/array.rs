//! Array and scalar symbol declarations, shapes, and HPF distributions.

use std::fmt;

/// Identifier of an array in a [`crate::SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArrayId(pub u32);

impl fmt::Debug for ArrayId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

/// Identifier of a scalar in a [`crate::SymbolTable`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ScalarId(pub u32);

impl fmt::Debug for ScalarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// Extents of an array, one per dimension (Fortran-style, indices are
/// 1-based and run to the extent inclusive).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Shape(pub Vec<usize>);

impl Shape {
    /// A new shape from per-dimension extents.
    pub fn new(extents: impl Into<Vec<usize>>) -> Self {
        Shape(extents.into())
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Extent of dimension `d` (0-based).
    pub fn extent(&self, d: usize) -> usize {
        self.0[d]
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// True when any extent is zero.
    pub fn is_empty(&self) -> bool {
        self.0.contains(&0)
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

/// Per-dimension distribution directive.
///
/// Only the two forms the paper uses: `BLOCK` and `*` (collapsed /
/// replicated along that dimension).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum DimDist {
    /// `BLOCK`: the dimension is split into contiguous blocks, one per
    /// processor along the corresponding axis of the PE grid.
    Block,
    /// `*`: the dimension is not distributed; every PE holds it whole.
    Collapsed,
}

/// An HPF `DISTRIBUTE` descriptor: one [`DimDist`] per array dimension.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Distribution(pub Vec<DimDist>);

impl Distribution {
    /// `(BLOCK,...,BLOCK)` over `rank` dimensions.
    pub fn block(rank: usize) -> Self {
        Distribution(vec![DimDist::Block; rank])
    }

    /// Fully collapsed (replicated on every PE).
    pub fn replicated(rank: usize) -> Self {
        Distribution(vec![DimDist::Collapsed; rank])
    }

    /// Number of dimensions covered by the descriptor.
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Distribution of dimension `d`.
    pub fn dim(&self, d: usize) -> DimDist {
        self.0[d]
    }

    /// Indices of the distributed (BLOCK) dimensions.
    pub fn block_dims(&self) -> impl Iterator<Item = usize> + '_ {
        self.0.iter().enumerate().filter(|(_, d)| **d == DimDist::Block).map(|(i, _)| i)
    }
}

impl fmt::Debug for Distribution {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            match d {
                DimDist::Block => write!(f, "BLOCK")?,
                DimDist::Collapsed => write!(f, "*")?,
            }
        }
        write!(f, ")")
    }
}

/// Declaration of a (distributed) array.
#[derive(Clone, Debug, PartialEq)]
pub struct ArrayDecl {
    /// Source-level name (`U`, `TMP1`, ...).
    pub name: String,
    /// Per-dimension extents.
    pub shape: Shape,
    /// HPF distribution descriptor; must have the same rank as `shape`.
    pub dist: Distribution,
    /// True for compiler-generated temporaries (eligible for elimination
    /// once the offset-array optimization removes their uses).
    pub temp: bool,
}

impl ArrayDecl {
    /// Declare a user array.
    pub fn user(name: impl Into<String>, shape: Shape, dist: Distribution) -> Self {
        assert_eq!(shape.rank(), dist.rank(), "shape/distribution rank mismatch");
        ArrayDecl { name: name.into(), shape, dist, temp: false }
    }

    /// Declare a compiler temporary with the same shape/distribution as a
    /// source array.
    pub fn temp_like(name: impl Into<String>, other: &ArrayDecl) -> Self {
        ArrayDecl {
            name: name.into(),
            shape: other.shape.clone(),
            dist: other.dist.clone(),
            temp: true,
        }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.shape.rank()
    }
}

/// Declaration of a scalar coefficient (`C1`, ... in the paper's examples).
#[derive(Clone, Debug, PartialEq)]
pub struct ScalarDecl {
    /// Source-level name.
    pub name: String,
    /// Initial value (set by the program or its runtime environment).
    pub value: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shape_basics() {
        let s = Shape::new([4, 6]);
        assert_eq!(s.rank(), 2);
        assert_eq!(s.extent(0), 4);
        assert_eq!(s.extent(1), 6);
        assert_eq!(s.len(), 24);
        assert!(!s.is_empty());
        assert!(Shape::new([4, 0]).is_empty());
    }

    #[test]
    fn distribution_block_dims() {
        let d = Distribution(vec![DimDist::Block, DimDist::Collapsed, DimDist::Block]);
        assert_eq!(d.block_dims().collect::<Vec<_>>(), vec![0, 2]);
        assert_eq!(format!("{d:?}"), "(BLOCK,*,BLOCK)");
    }

    #[test]
    fn distribution_constructors() {
        assert_eq!(Distribution::block(2).0, vec![DimDist::Block; 2]);
        assert_eq!(Distribution::replicated(3).0, vec![DimDist::Collapsed; 3]);
    }

    #[test]
    #[should_panic(expected = "rank mismatch")]
    fn array_decl_rank_mismatch_panics() {
        ArrayDecl::user("A", Shape::new([4, 4]), Distribution::block(3));
    }

    #[test]
    fn temp_like_copies_shape_and_dist() {
        let u = ArrayDecl::user("U", Shape::new([8, 8]), Distribution::block(2));
        let t = ArrayDecl::temp_like("TMP1", &u);
        assert!(t.temp);
        assert_eq!(t.shape, u.shape);
        assert_eq!(t.dist, u.dist);
        assert_eq!(t.rank(), 2);
    }
}
