//! Regular section descriptors (RSDs) for `OVERLAP_SHIFT`.
//!
//! Communication unioning (paper §3.3) attaches an RSD as an optional fourth
//! argument to `OVERLAP_SHIFT` when the shifted array is a *multi-offset*
//! array. The RSD widens the transferred section into the overlap areas of
//! lower dimensions so that a later shift picks "corner" elements up out of
//! overlap areas already filled by earlier shifts — e.g. the paper's
//! `CALL OVERLAP_SHIFT(U,-1,2,[0:N+1,*])`, whose first dimension has been
//! extended from `1:N` to `0:N+1`.

use std::fmt;

/// Per-dimension extension amounts of the transferred section into the
/// overlap areas: `ext[d] = (lo, hi)` extends dimension `d` by `lo` ghost
/// layers below the subgrid and `hi` layers above it. The shifted dimension
/// itself always has `(0, 0)` (printed `*` like the paper).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Rsd {
    /// Extension (below, above) per dimension.
    pub ext: Vec<(u32, u32)>,
}

impl Rsd {
    /// An RSD with no extension anywhere (equivalent to omitting it).
    pub fn none(rank: usize) -> Self {
        Rsd { ext: vec![(0, 0); rank] }
    }

    /// Number of dimensions.
    pub fn rank(&self) -> usize {
        self.ext.len()
    }

    /// True when no dimension is extended.
    pub fn is_trivial(&self) -> bool {
        self.ext.iter().all(|&(l, h)| l == 0 && h == 0)
    }

    /// Record that the transferred data must include `amount` overlap layers
    /// of dimension `d`: negative amounts extend the lower bound, positive
    /// amounts the upper bound (paper §3.3: "the annotation is added to the
    /// lower bound of the RSD if the shift amount is negative, otherwise it
    /// is added to the upper bound").
    pub fn extend(&mut self, d: usize, amount: i64) {
        if amount < 0 {
            self.ext[d].0 = self.ext[d].0.max((-amount) as u32);
        } else if amount > 0 {
            self.ext[d].1 = self.ext[d].1.max(amount as u32);
        }
    }

    /// Union with another RSD: larger RSDs subsume smaller ones.
    pub fn union(&self, other: &Rsd) -> Rsd {
        assert_eq!(self.rank(), other.rank());
        Rsd {
            ext: self
                .ext
                .iter()
                .zip(&other.ext)
                .map(|(&(al, ah), &(bl, bh))| (al.max(bl), ah.max(bh)))
                .collect(),
        }
    }

    /// True when this RSD covers (subsumes) `other` in every dimension.
    pub fn covers(&self, other: &Rsd) -> bool {
        self.rank() == other.rank()
            && self.ext.iter().zip(&other.ext).all(|(&(al, ah), &(bl, bh))| al >= bl && ah >= bh)
    }
}

impl fmt::Debug for Rsd {
    /// Renders in the paper's style for a shift along `*` dimensions:
    /// `[1-lo : n+hi, ...]` is abbreviated as `[-lo:+hi, ...]` extension
    /// amounts; unextended dims print `*`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, (lo, hi)) in self.ext.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            if *lo == 0 && *hi == 0 {
                write!(f, "*")?;
            } else {
                write!(f, "1-{lo}:n+{hi}")?;
            }
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extend_tracks_signs() {
        let mut r = Rsd::none(2);
        assert!(r.is_trivial());
        r.extend(0, -1);
        r.extend(0, 1);
        r.extend(0, -1); // repeated, no growth
        assert_eq!(r.ext[0], (1, 1));
        assert_eq!(r.ext[1], (0, 0));
        assert!(!r.is_trivial());
    }

    #[test]
    fn extend_keeps_max() {
        let mut r = Rsd::none(1);
        r.extend(0, -2);
        r.extend(0, -1);
        assert_eq!(r.ext[0], (2, 0));
        r.extend(0, 3);
        r.extend(0, 2);
        assert_eq!(r.ext[0], (2, 3));
    }

    #[test]
    fn union_and_covers() {
        let mut a = Rsd::none(2);
        a.extend(0, -1);
        let mut b = Rsd::none(2);
        b.extend(0, 2);
        b.extend(1, -1);
        let u = a.union(&b);
        assert_eq!(u.ext, vec![(1, 2), (1, 0)]);
        assert!(u.covers(&a));
        assert!(u.covers(&b));
        assert!(!a.covers(&b));
    }

    #[test]
    fn debug_format() {
        let mut r = Rsd::none(2);
        r.extend(0, -1);
        r.extend(0, 1);
        assert_eq!(format!("{r:?}"), "[1-1:n+1,*]");
    }
}
