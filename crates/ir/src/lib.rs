#![warn(missing_docs)]

//! # hpf-ir — normalized stencil intermediate representation
//!
//! This crate defines the intermediate representation used by the SC'97
//! stencil compilation pipeline (Roth, Mellor-Crummey, Kennedy, Brickner:
//! *Compiling Stencils in High Performance Fortran*).
//!
//! The IR models programs in the paper's *normal form* (§2.1):
//!
//! * every `CSHIFT`/`EOSHIFT` occurs as a singleton operation on the
//!   right-hand side of an array assignment applied to a whole array
//!   ([`Stmt::ShiftAssign`]);
//! * compute statements ([`Stmt::Compute`]) operate on perfectly aligned
//!   operands over a common iteration space, so they need no communication;
//! * after the offset-array optimization, shift assignments become
//!   [`Stmt::OverlapShift`] operations that move only off-processor data into
//!   overlap areas, and operand references carry *offset annotations*
//!   (`U<+1,0>` in the paper's notation, [`Offsets`] here).
//!
//! The crate also provides:
//!
//! * array/scalar symbol tables with HPF `BLOCK` distribution descriptors
//!   ([`ArrayDecl`], [`Distribution`]);
//! * regular section descriptors ([`rsd::Rsd`]) used as the optional fourth
//!   argument of `OVERLAP_SHIFT` to pick up stencil corner elements;
//! * a statement-level data dependence graph ([`ddg`]) over which the
//!   context-partitioning pass runs its typed fusion;
//! * reaching-definition / def-use analysis ([`defuse`]) used by the
//!   offset-array optimization;
//! * an IR validator ([`validate`]) and a pretty printer ([`pretty`]) that
//!   renders programs in the paper's surface notation.

pub mod array;
pub mod ddg;
pub mod defuse;
pub mod diag;
pub mod expr;
pub mod pretty;
pub mod program;
pub mod rsd;
pub mod section;
pub mod span;
pub mod stmt;
pub mod validate;

pub use array::{ArrayDecl, ArrayId, DimDist, Distribution, ScalarDecl, ScalarId, Shape};
pub use ddg::{DepGraph, DepKind};
pub use diag::{Diagnostic, Severity};
pub use expr::{BinOp, Expr, OperandRef};
pub use program::{Program, SymbolTable};
pub use rsd::Rsd;
pub use section::{Offsets, Section};
pub use span::Span;
pub use stmt::{ShiftKind, Stmt};

/// Dimension index (0-based internally; printed 1-based like Fortran).
pub type Dim = usize;
