//! Source locations.
//!
//! [`Span`] lives in the IR crate (not the frontend) so that IR-level
//! diagnostics — validation failures, analyzer lints — can point back at the
//! source position an operand came from. The frontend re-exports it.

use std::fmt;

/// A source location: line and column (both 1-based).
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct Span {
    /// Line number, 1-based.
    pub line: u32,
    /// Column number, 1-based.
    pub col: u32,
}

impl Span {
    /// Construct a span.
    pub fn new(line: u32, col: u32) -> Self {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_line_colon_col() {
        assert_eq!(Span::new(3, 7).to_string(), "3:7");
        assert_eq!(Span::default().to_string(), "0:0");
    }
}
