//! Right-hand-side expressions of compute statements.

use crate::array::{ArrayId, ScalarId};
use crate::section::Offsets;
use crate::span::Span;

/// Binary arithmetic operators available in stencil expressions.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BinOp {
    /// Addition.
    Add,
    /// Subtraction.
    Sub,
    /// Multiplication.
    Mul,
    /// Division.
    Div,
}

impl BinOp {
    /// Apply the operator to two values.
    pub fn apply(self, a: f64, b: f64) -> f64 {
        match self {
            BinOp::Add => a + b,
            BinOp::Sub => a - b,
            BinOp::Mul => a * b,
            BinOp::Div => a / b,
        }
    }

    /// Fortran source token.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
        }
    }
}

/// A reference to an array operand inside a compute statement.
///
/// In normal form the reference is perfectly aligned with the statement's
/// iteration space; `offsets` is the paper's `<a1,…,ar>` annotation
/// introduced by the offset-array optimization. An all-zero annotation is a
/// plain aligned reference.
#[derive(Clone, Debug)]
pub struct OperandRef {
    /// Referenced array.
    pub array: ArrayId,
    /// Offset annotation (`U<+1,0>` reads `U(i+1,j)`).
    pub offsets: Offsets,
    /// Source position of the reference this operand descends from, if the
    /// passes could preserve one. Diagnostics use it; semantics ignore it.
    pub span: Option<Span>,
}

/// Equality is semantic: the span is provenance metadata and is ignored, so
/// passes and tests can compare rewritten references against literals.
impl PartialEq for OperandRef {
    fn eq(&self, other: &Self) -> bool {
        self.array == other.array && self.offsets == other.offsets
    }
}

impl OperandRef {
    /// Aligned (zero-offset) reference.
    pub fn aligned(array: ArrayId, rank: usize) -> Self {
        OperandRef { array, offsets: Offsets::zero(rank), span: None }
    }

    /// Offset reference.
    pub fn offset(array: ArrayId, offsets: Offsets) -> Self {
        OperandRef { array, offsets, span: None }
    }

    /// Attach a source span (builder style).
    pub fn at(mut self, span: Span) -> Self {
        self.span = Some(span);
        self
    }

    /// Attach an optional source span (builder style).
    pub fn at_opt(mut self, span: Option<Span>) -> Self {
        self.span = span;
        self
    }
}

/// Comparison operators (used by `WHERE` masks; the result is 1.0 for true and
/// 0.0 for false).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum CmpOp {
    /// `>`
    Gt,
    /// `<`
    Lt,
    /// `>=`
    Ge,
    /// `<=`
    Le,
    /// `==`
    Eq,
    /// `/=`
    Ne,
}

impl CmpOp {
    /// Apply the comparison, returning 1.0 (true) or 0.0 (false).
    pub fn apply(self, a: f64, b: f64) -> f64 {
        let t = match self {
            CmpOp::Gt => a > b,
            CmpOp::Lt => a < b,
            CmpOp::Ge => a >= b,
            CmpOp::Le => a <= b,
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
        };
        if t {
            1.0
        } else {
            0.0
        }
    }

    /// Fortran source token.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Gt => ">",
            CmpOp::Lt => "<",
            CmpOp::Ge => ">=",
            CmpOp::Le => "<=",
            CmpOp::Eq => "==",
            CmpOp::Ne => "/=",
        }
    }
}

/// Expression tree for the right-hand side of a compute statement.
///
/// All array operands are aligned to the statement's iteration space
/// (modulo their offset annotations), so evaluating the expression requires
/// no communication — the defining property of the paper's normal form.
#[derive(Clone, PartialEq, Debug)]
pub enum Expr {
    /// Floating-point literal.
    Const(f64),
    /// Scalar coefficient reference.
    Scalar(ScalarId),
    /// Array operand reference.
    Ref(OperandRef),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary negation.
    Neg(Box<Expr>),
    /// Element-wise comparison yielding 1.0 / 0.0 (from `WHERE` masks).
    Cmp(CmpOp, Box<Expr>, Box<Expr>),
    /// Element-wise selection: `cond != 0 ? then : else` — the lowering of
    /// a masked (`WHERE`) assignment.
    Select(Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary node.
    pub fn bin(op: BinOp, lhs: Expr, rhs: Expr) -> Expr {
        Expr::Bin(op, Box::new(lhs), Box::new(rhs))
    }

    /// Visit every operand reference in the expression.
    pub fn for_each_ref<'a>(&'a self, f: &mut impl FnMut(&'a OperandRef)) {
        match self {
            Expr::Const(_) | Expr::Scalar(_) => {}
            Expr::Ref(r) => f(r),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.for_each_ref(f);
                b.for_each_ref(f);
            }
            Expr::Neg(a) => a.for_each_ref(f),
            Expr::Select(c, t, e) => {
                c.for_each_ref(f);
                t.for_each_ref(f);
                e.for_each_ref(f);
            }
        }
    }

    /// Visit every operand reference mutably.
    pub fn for_each_ref_mut(&mut self, f: &mut impl FnMut(&mut OperandRef)) {
        match self {
            Expr::Const(_) | Expr::Scalar(_) => {}
            Expr::Ref(r) => f(r),
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => {
                a.for_each_ref_mut(f);
                b.for_each_ref_mut(f);
            }
            Expr::Neg(a) => a.for_each_ref_mut(f),
            Expr::Select(c, t, e) => {
                c.for_each_ref_mut(f);
                t.for_each_ref_mut(f);
                e.for_each_ref_mut(f);
            }
        }
    }

    /// Collect the distinct arrays referenced by the expression.
    pub fn referenced_arrays(&self) -> Vec<ArrayId> {
        let mut out = Vec::new();
        self.for_each_ref(&mut |r| {
            if !out.contains(&r.array) {
                out.push(r.array);
            }
        });
        out
    }

    /// Count the operand references (with multiplicity).
    pub fn ref_count(&self) -> usize {
        let mut n = 0;
        self.for_each_ref(&mut |_| n += 1);
        n
    }

    /// Number of arithmetic operations in the tree.
    pub fn op_count(&self) -> usize {
        match self {
            Expr::Const(_) | Expr::Scalar(_) | Expr::Ref(_) => 0,
            Expr::Bin(_, a, b) | Expr::Cmp(_, a, b) => 1 + a.op_count() + b.op_count(),
            Expr::Neg(a) => 1 + a.op_count(),
            Expr::Select(c, t, e) => 1 + c.op_count() + t.op_count() + e.op_count(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Expr {
        // C1 * U<+1,0> + U<0,0>
        Expr::bin(
            BinOp::Add,
            Expr::bin(
                BinOp::Mul,
                Expr::Scalar(ScalarId(0)),
                Expr::Ref(OperandRef::offset(ArrayId(0), Offsets::new([1, 0]))),
            ),
            Expr::Ref(OperandRef::aligned(ArrayId(0), 2)),
        )
    }

    #[test]
    fn binop_apply() {
        assert_eq!(BinOp::Add.apply(2.0, 3.0), 5.0);
        assert_eq!(BinOp::Sub.apply(2.0, 3.0), -1.0);
        assert_eq!(BinOp::Mul.apply(2.0, 3.0), 6.0);
        assert_eq!(BinOp::Div.apply(3.0, 2.0), 1.5);
    }

    #[test]
    fn walk_refs() {
        let e = sample();
        assert_eq!(e.ref_count(), 2);
        assert_eq!(e.referenced_arrays(), vec![ArrayId(0)]);
        assert_eq!(e.op_count(), 2);
    }

    #[test]
    fn mutate_refs() {
        let mut e = sample();
        e.for_each_ref_mut(&mut |r| r.array = ArrayId(7));
        assert_eq!(e.referenced_arrays(), vec![ArrayId(7)]);
    }
}
