#![allow(clippy::needless_range_loop)] // index-based dimension math reads clearer here
#![warn(missing_docs)]

//! # hpf-passes — the SC'97 stencil compilation pipeline
//!
//! Implements the four orchestrated optimizations of Roth et al. plus the
//! normalization front and the scalarization back:
//!
//! 1. [`mod@normalize`] — translate any stencil specification (array syntax,
//!    `CSHIFT` intrinsics, single- or multi-statement) into the paper's
//!    normal form (§2.1): every shift a singleton whole-array assignment,
//!    compute statements over perfectly aligned operands.
//! 2. [`offset`] — the *offset array* optimization (§3.1): eliminate the
//!    intraprocessor component of shifts by letting source and destination
//!    share storage, moving off-processor data into overlap areas
//!    (`OVERLAP_SHIFT`) and rewriting uses as annotated offset references.
//! 3. [`partition`] — *context partitioning* (§3.2): Kennedy–McKinley typed
//!    fusion over the statement dependence graph groups congruent array
//!    statements (enabling maximal legal loop fusion) and groups
//!    communication operations (enabling unioning).
//! 4. [`unioning`] — *communication unioning* (§3.3): commutativity
//!    reordering + subsumption reduce the overlap shifts to at most one
//!    message per direction per dimension, with RSD extensions picking up
//!    stencil corner elements from already-filled overlap areas.
//! 5. [`scalarize`] — scalarization + loop fusion (§3.4/§4.5): lower each
//!    congruent compute group to a single SPMD subgrid loop nest in the
//!    [`loopir`] node-program representation.
//! 6. [`memopt`] — loop-level memory optimizations (§3.4): scalar
//!    replacement, unroll-and-jam, and loop permutation on the node program.
//!
//! [`pipeline`] drives the whole thing with per-stage toggles, which is how
//! the benches regenerate the paper's staged Figure 17.

pub mod loopir;
pub mod memopt;
pub mod nodepretty;
pub mod normalize;
pub mod offset;
pub mod partition;
pub mod pipeline;
pub mod scalarize;
pub mod unioning;

pub use loopir::{Instr, LoopNest, NodeItem, NodeProgram, Reg};
pub use normalize::{normalize, TempPolicy};
pub use pipeline::{
    compile, CompileOptions, Compiled, PassTiming, PipelineStats, Stage, NUM_PASSES, PASS_NAMES,
};
