//! Loop-level memory optimizations (paper §3.4): scalar replacement,
//! unroll-and-jam, and loop permutation on the node program.
//!
//! Stencil subgrid loops are memory-bound (§2.2); these transformations
//! exploit value reuse. The fused Problem 9 nest stores and reloads `T`
//! seven times per point — scalar replacement collapses that chain to a
//! single store. Unroll-and-jam clones the body across outer-loop
//! iterations so loads shared between neighbouring rows (e.g. `U(i,j)` and
//! `U(i+1,j)` of a 9-point stencil) are fetched once — the counterpart of
//! the CM-2 stencil compiler's "multi-stencil swath" (§6).

use crate::loopir::{Instr, LoopNest, NodeItem, NodeProgram, Reg, Unroll};
use std::collections::HashMap;

/// Which memory optimizations to apply.
#[derive(Clone, Copy, Debug)]
pub struct MemOptOptions {
    /// Scalar replacement (CSE of loads, store-to-load forwarding, dead
    /// store elimination).
    pub scalar_replacement: bool,
    /// Unroll-and-jam factor for the outermost loop (1 = off).
    pub unroll_factor: usize,
    /// Permute loops so the storage-contiguous dimension is innermost.
    pub permute: bool,
}

impl Default for MemOptOptions {
    fn default() -> Self {
        MemOptOptions { scalar_replacement: true, unroll_factor: 2, permute: true }
    }
}

/// Per-point instruction counts before/after, summed over all nests.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MemOptStats {
    /// Loads per point before / after (unit bodies).
    pub loads_before: usize,
    /// Loads after.
    pub loads_after: usize,
    /// Stores before.
    pub stores_before: usize,
    /// Stores after.
    pub stores_after: usize,
    /// Nests unrolled.
    pub unrolled: usize,
    /// Nests permuted (order actually changed).
    pub permuted: usize,
}

/// Run the memory optimizer over every nest of the node program.
pub fn run(node: &mut NodeProgram, opts: MemOptOptions) -> MemOptStats {
    let mut stats = MemOptStats::default();
    fn walk(items: &mut [NodeItem], opts: MemOptOptions, stats: &mut MemOptStats) {
        for it in items {
            match it {
                NodeItem::Nest(nest) => optimize_nest(nest, opts, stats),
                NodeItem::TimeLoop { body, .. } => walk(body, opts, stats),
                NodeItem::Comm(_) => {}
            }
        }
    }
    walk(&mut node.items, opts, &mut stats);
    stats
}

fn optimize_nest(nest: &mut LoopNest, opts: MemOptOptions, stats: &mut MemOptStats) {
    stats.loads_before += nest.loads_per_point();
    stats.stores_before += nest.stores_per_point();
    if opts.permute && permute(nest) {
        stats.permuted += 1;
    }
    if opts.scalar_replacement {
        scalar_replace(nest);
    }
    if opts.unroll_factor > 1 && unroll_and_jam(nest, opts.unroll_factor) {
        stats.unrolled += 1;
        if opts.scalar_replacement {
            // Jam enables cross-iteration reuse; rerun scalar replacement on
            // the jammed body.
            let (body, regs) = scalar_replace_body(&nest.body, nest.regs);
            nest.body = body;
            nest.regs = regs;
        }
    }
    stats.loads_after += nest.loads_per_point();
    stats.stores_after += nest.stores_per_point();
}

/// True when every dependence carried by the body is iteration-local:
/// for each array the body stores into, all of its accesses (loads and
/// stores) use one common offset vector. Under that condition iterations
/// are independent, so the nest is fully permutable and unroll-and-jam's
/// iteration interleaving is legal. Every nest scalarization produces from
/// the pipeline satisfies this (fusion legality forbids write/read pairs at
/// differing offsets), but the check makes the transformations safe to call
/// on arbitrary nests.
pub fn iteration_local(body: &[Instr]) -> bool {
    use std::collections::HashMap;
    let mut stored: HashMap<u32, &Vec<i64>> = HashMap::new();
    for i in body {
        if let Instr::Store { array, offsets, .. } = i {
            if let Some(prev) = stored.insert(array.0, offsets) {
                if prev != offsets {
                    return false;
                }
            }
        }
    }
    if stored.is_empty() {
        return true;
    }
    body.iter().all(|i| match i {
        Instr::Load { array, offsets, .. } => stored.get(&array.0).is_none_or(|s| *s == offsets),
        _ => true,
    })
}

/// Permute loops into natural (row-major-friendly) order: dimension indices
/// ascending, so the contiguous dimension runs innermost. Only applied when
/// the nest is fully permutable ([`iteration_local`]). Returns true when
/// the order changed.
pub fn permute(nest: &mut LoopNest) -> bool {
    let natural: Vec<usize> = (0..nest.space.rank()).collect();
    if nest.order == natural || !iteration_local(&nest.body) {
        false
    } else {
        nest.order = natural;
        true
    }
}

/// Scalar replacement over a straight-line body.
pub fn scalar_replace(nest: &mut LoopNest) {
    let (body, regs) = scalar_replace_body(&nest.body, nest.regs);
    nest.body = body;
    nest.regs = regs;
}

/// Value-number a body: CSE loads/scalars/constants/arithmetic, forward
/// stores to subsequent loads of the same element, and eliminate stores that
/// are overwritten before any other iteration can observe them (iterations
/// execute sequentially, so a same-iteration overwrite is unobservable).
/// Returns the new body and register count.
pub fn scalar_replace_body(body: &[Instr], regs: usize) -> (Vec<Instr>, usize) {
    let mut alias: Vec<Reg> = (0..regs as Reg).collect();
    let resolve = |alias: &[Reg], mut r: Reg| -> Reg {
        while alias[r as usize] != r {
            r = alias[r as usize];
        }
        r
    };
    let mut avail_mem: HashMap<(u32, Vec<i64>), Reg> = HashMap::new();
    let mut avail_scalar: HashMap<u32, Reg> = HashMap::new();
    let mut avail_const: HashMap<u64, Reg> = HashMap::new();
    let mut avail_expr: HashMap<(u8, Reg, Reg), Reg> = HashMap::new();
    // Pending (possibly dead) store per element: index into `out`.
    let mut pending_store: HashMap<(u32, Vec<i64>), usize> = HashMap::new();
    let mut dead: Vec<bool> = Vec::new();
    let mut out: Vec<Instr> = Vec::new();

    for instr in body {
        let mut instr = instr.clone();
        instr.remap(&mut |r| resolve(&alias, r));
        match &instr {
            Instr::Load { dst, array, offsets } => {
                let key = (array.0, offsets.clone());
                if let Some(&have) = avail_mem.get(&key) {
                    alias[*dst as usize] = have;
                    continue; // load elided
                }
                avail_mem.insert(key, *dst);
            }
            Instr::LoadScalar { dst, id } => {
                if let Some(&have) = avail_scalar.get(&id.0) {
                    alias[*dst as usize] = have;
                    continue;
                }
                avail_scalar.insert(id.0, *dst);
            }
            Instr::Const { dst, value } => {
                let bits = value.to_bits();
                if let Some(&have) = avail_const.get(&bits) {
                    alias[*dst as usize] = have;
                    continue;
                }
                avail_const.insert(bits, *dst);
            }
            Instr::Bin { op, dst, a, b } => {
                let key = (*op as u8, *a, *b);
                if let Some(&have) = avail_expr.get(&key) {
                    alias[*dst as usize] = have;
                    continue;
                }
                avail_expr.insert(key, *dst);
            }
            Instr::Store { array, offsets, src } => {
                let key = (array.0, offsets.clone());
                if let Some(&prev) = pending_store.get(&key) {
                    dead[prev] = true; // overwritten within the iteration
                }
                pending_store.insert(key.clone(), out.len());
                avail_mem.insert(key, *src);
            }
            Instr::Cmp { op, dst, a, b } => {
                // Comparison opcodes share the expression table with an
                // offset so they never collide with BinOp keys.
                let key = (16 + *op as u8, *a, *b);
                if let Some(&have) = avail_expr.get(&key) {
                    alias[*dst as usize] = have;
                    continue;
                }
                avail_expr.insert(key, *dst);
            }
            Instr::Neg { .. } | Instr::Copy { .. } | Instr::Select { .. } => {}
        }
        dead.push(false);
        out.push(instr);
    }
    let out: Vec<Instr> =
        out.into_iter().zip(dead).filter_map(|(i, d)| if d { None } else { Some(i) }).collect();
    let out = eliminate_dead_defs(out);
    renumber(out)
}

/// Remove instructions whose destination register is never read and which
/// have no memory effect.
fn eliminate_dead_defs(body: Vec<Instr>) -> Vec<Instr> {
    let mut used: HashMap<Reg, bool> = HashMap::new();
    for i in &body {
        for s in i.sources() {
            used.insert(s, true);
        }
    }
    body.into_iter()
        .rev()
        .filter(|i| match i.dst() {
            None => true,
            Some(d) => used.get(&d).copied().unwrap_or(false),
        })
        .collect::<Vec<_>>()
        .into_iter()
        .rev()
        .collect()
}

/// Compact register numbers.
fn renumber(mut body: Vec<Instr>) -> (Vec<Instr>, usize) {
    let mut map: HashMap<Reg, Reg> = HashMap::new();
    let mut next: Reg = 0;
    for i in &mut body {
        i.remap(&mut |r| {
            *map.entry(r).or_insert_with(|| {
                let v = next;
                next += 1;
                v
            })
        });
    }
    (body, next as usize)
}

/// Unroll the outermost loop by `factor` and jam the copies into one body.
/// Jamming interleaves iterations of the outer loop (the body covers
/// `factor` consecutive outer indices per inner-loop trip), which is legal
/// exactly when all dependences are iteration-local ([`iteration_local`]);
/// illegal nests are refused. Returns false (and leaves the nest alone)
/// when refused, for factor < 2, or when the nest is already unrolled.
pub fn unroll_and_jam(nest: &mut LoopNest, factor: usize) -> bool {
    if factor < 2 || nest.unroll.is_some() || nest.space.is_empty() {
        return false;
    }
    if !iteration_local(&nest.body) {
        return false;
    }
    let dim = nest.order[0];
    let unit_body = nest.body.clone();
    let unit_regs = nest.regs;
    let mut jammed = Vec::with_capacity(unit_body.len() * factor);
    for k in 0..factor {
        for instr in &unit_body {
            let mut c = instr.clone();
            c.remap(&mut |r| r + (k * unit_regs) as Reg);
            c.shift_dim(dim, k as i64);
            jammed.push(c);
        }
    }
    nest.body = jammed;
    nest.regs = unit_regs * factor;
    nest.unroll = Some(Unroll { dim, factor, unit_body, unit_regs });
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, TempPolicy};
    use crate::scalarize::{self, ScalarizeOptions};
    use crate::{offset, partition, unioning};
    use hpf_frontend::compile_source;
    use hpf_ir::Section;

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    fn problem9_node() -> NodeProgram {
        let checked = compile_source(PROBLEM9).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        partition::run(&mut p);
        unioning::run(&mut p);
        scalarize::run(&p, ScalarizeOptions::default()).0
    }

    fn the_nest(node: &NodeProgram) -> LoopNest {
        let mut nest = None;
        node.for_each_item(&mut |it| {
            if let NodeItem::Nest(n) = it {
                nest = Some(n.clone());
            }
        });
        nest.expect("one nest")
    }

    /// Scalar replacement collapses the fused Problem 9 chain: 7 stores of T
    /// with 6 reloads become a single store, and the 9 distinct U loads stay.
    #[test]
    fn problem9_scalar_replacement_collapses_t_chain() {
        let mut node = problem9_node();
        let before = the_nest(&node);
        assert_eq!(before.stores_per_point(), 7);
        assert_eq!(before.loads_per_point(), 9 + 6, "9 U loads + 6 T reloads");
        run(&mut node, MemOptOptions { scalar_replacement: true, unroll_factor: 1, permute: true });
        let after = the_nest(&node);
        assert_eq!(after.stores_per_point(), 1, "dead stores eliminated");
        assert_eq!(after.loads_per_point(), 9, "T reloads forwarded");
    }

    /// Unroll-and-jam by 2 shares the loads of adjacent rows: a 9-point
    /// stencil re-uses 6 of the 9 loads from the previous row.
    #[test]
    fn problem9_unroll_and_jam_shares_row_loads() {
        let mut node = problem9_node();
        let stats = run(&mut node, MemOptOptions::default());
        assert_eq!(stats.unrolled, 1);
        let nest = the_nest(&node);
        let u = nest.unroll.as_ref().unwrap();
        assert_eq!(u.factor, 2);
        assert_eq!(u.dim, 0);
        // Jammed body covers 2 points: without reuse it would need 18
        // loads; sharing rows i,i+1 of a 3-row stencil leaves 12.
        let jammed_loads = nest.body.iter().filter(|i| matches!(i, Instr::Load { .. })).count();
        assert_eq!(jammed_loads, 12, "6 loads shared between the two copies");
        // The unit body (remainder loop) is the scalar-replaced one.
        assert_eq!(u.unit_body.iter().filter(|i| matches!(i, Instr::Load { .. })).count(), 9);
    }

    #[test]
    fn permute_fixes_fortran_order() {
        let checked = compile_source("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = B\n").unwrap();
        let (p, _) = normalize(&checked, TempPolicy::Reuse);
        let (mut node, _) =
            scalarize::run(&p, ScalarizeOptions { fuse: true, fortran_order: true });
        let stats = run(
            &mut node,
            MemOptOptions { scalar_replacement: false, unroll_factor: 1, permute: true },
        );
        assert_eq!(stats.permuted, 1);
        assert_eq!(the_nest(&node).order, vec![0, 1]);
    }

    #[test]
    fn store_load_forwarding_within_body() {
        use hpf_ir::{ArrayId, BinOp};
        let body = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::Store { array: ArrayId(0), offsets: vec![0, 0], src: 0 },
            Instr::Load { dst: 1, array: ArrayId(0), offsets: vec![0, 0] },
            Instr::Bin { op: BinOp::Add, dst: 2, a: 1, b: 1 },
            Instr::Store { array: ArrayId(1), offsets: vec![0, 0], src: 2 },
        ];
        let (out, _) = scalar_replace_body(&body, 3);
        // The load is forwarded from the store.
        assert!(!out.iter().any(|i| matches!(i, Instr::Load { array: ArrayId(0), .. })));
        // Both stores remain (different arrays).
        assert_eq!(out.iter().filter(|i| matches!(i, Instr::Store { .. })).count(), 2);
    }

    #[test]
    fn dead_store_elimination_same_element() {
        use hpf_ir::ArrayId;
        let body = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::Store { array: ArrayId(0), offsets: vec![0], src: 0 },
            Instr::Const { dst: 1, value: 2.0 },
            Instr::Store { array: ArrayId(0), offsets: vec![0], src: 1 },
        ];
        let (out, _) = scalar_replace_body(&body, 2);
        let stores: Vec<_> = out.iter().filter(|i| matches!(i, Instr::Store { .. })).collect();
        assert_eq!(stores.len(), 1, "first store is dead");
    }

    #[test]
    fn stores_to_different_elements_both_survive() {
        use hpf_ir::ArrayId;
        let body = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::Store { array: ArrayId(0), offsets: vec![0], src: 0 },
            Instr::Store { array: ArrayId(0), offsets: vec![1], src: 0 },
        ];
        let (out, _) = scalar_replace_body(&body, 1);
        assert_eq!(out.iter().filter(|i| matches!(i, Instr::Store { .. })).count(), 2);
    }

    #[test]
    fn cse_of_repeated_loads_and_exprs() {
        use hpf_ir::{ArrayId, BinOp};
        let body = vec![
            Instr::Load { dst: 0, array: ArrayId(0), offsets: vec![1] },
            Instr::Load { dst: 1, array: ArrayId(0), offsets: vec![1] },
            Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 1 },
            Instr::Load { dst: 3, array: ArrayId(0), offsets: vec![1] },
            Instr::Bin { op: BinOp::Add, dst: 4, a: 0, b: 3 },
            Instr::Bin { op: BinOp::Mul, dst: 5, a: 2, b: 4 },
            Instr::Store { array: ArrayId(1), offsets: vec![0], src: 5 },
        ];
        let (out, regs) = scalar_replace_body(&body, 6);
        assert_eq!(out.iter().filter(|i| matches!(i, Instr::Load { .. })).count(), 1);
        // a+a CSEd once, so: load, add, mul, store.
        assert_eq!(out.len(), 4);
        assert!(regs <= 3);
    }

    #[test]
    fn unroll_respects_remainder_body() {
        let mut nest = LoopNest {
            space: Section::new([(1, 5), (1, 4)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: hpf_ir::ArrayId(0), offsets: vec![0, 0] },
                Instr::Store { array: hpf_ir::ArrayId(1), offsets: vec![0, 0], src: 0 },
            ],
            regs: 1,
            unroll: None,
        };
        assert!(unroll_and_jam(&mut nest, 3));
        let u = nest.unroll.as_ref().unwrap();
        assert_eq!(u.factor, 3);
        assert_eq!(u.unit_body.len(), 2);
        assert_eq!(nest.body.len(), 6);
        // Copies access rows i, i+1, i+2.
        let row_offsets: Vec<i64> = nest
            .body
            .iter()
            .filter_map(|i| match i {
                Instr::Load { offsets, .. } => Some(offsets[0]),
                _ => None,
            })
            .collect();
        assert_eq!(row_offsets, vec![0, 1, 2]);
        // Second unroll attempt is refused.
        assert!(!unroll_and_jam(&mut nest, 2));
    }

    #[test]
    fn dead_def_elimination() {
        use hpf_ir::ArrayId;
        let body = vec![
            Instr::Const { dst: 0, value: 1.0 },
            Instr::Const { dst: 1, value: 2.0 }, // never used
            Instr::Store { array: ArrayId(0), offsets: vec![0], src: 0 },
        ];
        let (out, regs) = scalar_replace_body(&body, 2);
        assert_eq!(out.len(), 2);
        assert_eq!(regs, 1);
    }
}
