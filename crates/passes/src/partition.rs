//! Context partitioning (paper §3.2): statement reordering by typed fusion.
//!
//! Partitions each basic block into groups of *congruent* array statements
//! and groups of communication operations, using the Kennedy–McKinley typed
//! fusion algorithm over the (acyclic) statement-level data dependence
//! graph. Reordering makes congruent compute statements adjacent — so
//! scalarization can fuse them into a single subgrid loop nest without
//! over-fusing — and makes communication operations adjacent, which is what
//! communication unioning needs.

use hpf_ir::stmt::Resource;
use hpf_ir::{ArrayId, DepGraph, Distribution, Program, Section, Stmt, SymbolTable};

/// Congruence class of a statement (paper footnote 2: congruent array
/// statements operate on identically distributed arrays over the same
/// iteration space).
#[derive(Clone, PartialEq, Debug)]
pub enum StmtClass {
    /// Communication operations (shift assignments and overlap shifts).
    Comm,
    /// Array compute statements keyed by iteration space + distribution.
    Compute(Section, Distribution),
    /// Statements that never share a group (time loops).
    Single,
}

/// Statistics reported by the pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PartitionStats {
    /// Number of groups after partitioning (across all blocks).
    pub groups: usize,
    /// Statements that changed position.
    pub moved: usize,
}

/// Classify a statement.
pub fn classify(symbols: &SymbolTable, s: &Stmt) -> StmtClass {
    match s {
        Stmt::ShiftAssign { .. } | Stmt::OverlapShift { .. } => StmtClass::Comm,
        Stmt::Compute { lhs, space, .. } => {
            StmtClass::Compute(space.clone(), symbols.array(*lhs).dist.clone())
        }
        Stmt::Copy { dst, .. } => {
            let decl = symbols.array(*dst);
            StmtClass::Compute(Section::full(&decl.shape), decl.dist.clone())
        }
        Stmt::TimeLoop { .. } => StmtClass::Single,
    }
}

/// True when fusing `earlier` and `later` into one loop nest would turn a
/// loop-independent dependence into a loop-carried one (the paper's
/// over-fusion guard): some array is written by one statement and read at a
/// non-zero offset by the other.
pub fn fusion_preventing(earlier: &Stmt, later: &Stmt) -> bool {
    offset_conflict(earlier, later) || offset_conflict(later, earlier)
}

fn offset_conflict(writer: &Stmt, reader: &Stmt) -> bool {
    let writes: Vec<ArrayId> = writer
        .writes()
        .into_iter()
        .filter_map(|r| match r {
            Resource::Interior(a) => Some(a),
            _ => None,
        })
        .collect();
    let mut conflict = false;
    let mut check = |array: ArrayId, offsets: &hpf_ir::Offsets| {
        if writes.contains(&array) && !offsets.is_zero() {
            conflict = true;
        }
    };
    match reader {
        Stmt::Compute { rhs, .. } => rhs.for_each_ref(&mut |r| check(r.array, &r.offsets)),
        Stmt::Copy { src, .. } => check(src.array, &src.offsets),
        _ => {}
    }
    conflict
}

/// Post-conditions of context partitioning, checked by the pipeline when
/// `CompileOptions::check_invariants` is set. Group legality (FP001 over the
/// member lists the pass actually built) is checked inline by
/// [`run_checked`] because it needs the groups, not just the reordered IR.
pub fn post_conditions() -> &'static [hpf_analysis::Check] {
    &[hpf_analysis::Check::Validate]
}

/// Partition (reorder) every basic block of the program.
pub fn run(program: &mut Program) -> PartitionStats {
    let mut diags = Vec::new();
    run_checked(program, &mut diags)
}

/// Like [`run`], but appends an FP001 diagnostic to `diags` for every pair
/// of statements the pass grouped whose fusion would be illegal — the
/// pass's own post-condition over the grouping it actually built.
pub fn run_checked(program: &mut Program, diags: &mut Vec<hpf_ir::Diagnostic>) -> PartitionStats {
    let mut stats = PartitionStats::default();
    let symbols = program.symbols.clone();
    program.for_each_block_mut(&mut |block, _| {
        let (reordered, groups) = partition_block_groups(&symbols, block);
        stats.groups += groups.len();
        for (i, s) in reordered.iter().enumerate() {
            if *s != block[i] {
                stats.moved += 1;
            }
        }
        diags.extend(hpf_analysis::check_partition_groups(&symbols, &reordered, &groups));
        *block = reordered;
    });
    stats
}

/// Typed fusion over one block: returns the reordered statements and the
/// number of groups formed. Dependences are preserved (asserted in debug
/// builds via [`DepGraph::order_is_valid`]).
pub fn partition_block(symbols: &SymbolTable, block: &[Stmt]) -> (Vec<Stmt>, usize) {
    let (out, groups) = partition_block_groups(symbols, block);
    (out, groups.len())
}

/// [`partition_block`], also returning each group's member positions in the
/// *returned* statement order (groups are emitted contiguously).
pub fn partition_block_groups(
    symbols: &SymbolTable,
    block: &[Stmt],
) -> (Vec<Stmt>, Vec<Vec<usize>>) {
    let n = block.len();
    if n == 0 {
        return (Vec::new(), Vec::new());
    }
    let graph = DepGraph::build(block);
    let classes: Vec<StmtClass> = block.iter().map(|s| classify(symbols, s)).collect();

    // groups[g] = (class, member statement indices in insertion order)
    let mut groups: Vec<(StmtClass, Vec<usize>)> = Vec::new();
    let mut group_of: Vec<usize> = vec![usize::MAX; n];

    for s in 0..n {
        // Earliest group index this statement may join: after every
        // predecessor's group, strictly after when the predecessor is of a
        // different class or fusion with it is illegal.
        let mut earliest = 0usize;
        for &p in graph.pred(s) {
            let g = group_of[p];
            let bump = classes[p] != classes[s] || fusion_preventing(&block[p], &block[s]);
            earliest = earliest.max(if bump { g + 1 } else { g });
        }
        // Join the first same-class group at or after `earliest` whose
        // members all fuse legally with this statement.
        let mut placed = false;
        for g in earliest..groups.len() {
            if groups[g].0 == classes[s]
                && !matches!(classes[s], StmtClass::Single)
                && groups[g].1.iter().all(|&m| !fusion_preventing(&block[m], &block[s]))
            {
                groups[g].1.push(s);
                group_of[s] = g;
                placed = true;
                break;
            }
        }
        if !placed {
            groups.push((classes[s].clone(), vec![s]));
            group_of[s] = groups.len() - 1;
        }
    }

    let order: Vec<usize> = groups.iter().flat_map(|(_, m)| m.iter().copied()).collect();
    debug_assert!(graph.order_is_valid(&order), "partition broke a dependence");
    let out = order.iter().map(|&i| block[i].clone()).collect();
    // Re-index member lists to positions in the reordered output, where each
    // group occupies a contiguous range.
    let mut member_lists = Vec::with_capacity(groups.len());
    let mut pos = 0usize;
    for (_, m) in &groups {
        member_lists.push((pos..pos + m.len()).collect());
        pos += m.len();
    }
    (out, member_lists)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, TempPolicy};
    use crate::offset;
    use hpf_frontend::compile_source;

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    /// The paper's Figure 13 → Figure 14 transformation: after offset
    /// arrays, the block partitions into exactly two groups — all the
    /// overlap shifts, then all the congruent compute statements.
    #[test]
    fn problem9_partitions_into_two_groups() {
        let checked = compile_source(PROBLEM9).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        let stats = run(&mut p);
        assert_eq!(stats.groups, 2);
        // All comm first, all compute after.
        let first_compute = p.body.iter().position(|s| !s.is_comm()).unwrap();
        assert_eq!(first_compute, 8);
        assert!(p.body[first_compute..].iter().all(|s| !s.is_comm()));
        hpf_ir::validate::validate(&p, 1).unwrap();
    }

    /// Without offset arrays the full shifts write real destination arrays,
    /// creating true dependences that keep comm and compute interleaved —
    /// but typed fusion still hoists independent shifts together.
    #[test]
    fn problem9_without_offset_still_partitions() {
        let checked = compile_source(PROBLEM9).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::FreshPerShift);
        let stats = run(&mut p);
        // All 8 shifts are independent of each other (they read only U,
        // RIP, RIN which are shift results… RIP/RIN defined by the first
        // two). The computes chain on T. Group count must be small but >2 is
        // fine; key property: dependences hold.
        assert!(stats.groups >= 2);
        let g = DepGraph::build(&p.body);
        let ident: Vec<usize> = (0..p.body.len()).collect();
        assert!(g.order_is_valid(&ident));
    }

    #[test]
    fn fusion_preventing_detects_offset_read_after_write() {
        let checked =
            compile_source("PARAM N = 8\nREAL A(N,N), B(N,N), C(N,N)\nA = B\nC = A\n").unwrap();
        let (p, _) = normalize(&checked, TempPolicy::Reuse);
        // Zero-offset chain: fusable.
        assert!(!fusion_preventing(&p.body[0], &p.body[1]));
    }

    #[test]
    fn fusion_preventing_with_nonzero_offset() {
        use hpf_ir::{ArrayDecl, Distribution, Expr, Offsets, OperandRef, Shape};
        let mut sym = SymbolTable::new();
        let a = sym.add_array(ArrayDecl::user("A", Shape::new([8, 8]), Distribution::block(2)));
        let b = sym.add_array(ArrayDecl::user("B", Shape::new([8, 8]), Distribution::block(2)));
        let space = Section::new([(2, 7), (2, 7)]);
        let w = Stmt::Compute { lhs: a, space: space.clone(), rhs: Expr::Const(1.0) };
        let r = Stmt::Compute {
            lhs: b,
            space,
            rhs: Expr::Ref(OperandRef::offset(a, Offsets::new([1, 0]))),
        };
        assert!(fusion_preventing(&w, &r));
        assert!(fusion_preventing(&r, &w), "anti direction too");
        let r0 = Stmt::Compute {
            lhs: b,
            space: Section::new([(2, 7), (2, 7)]),
            rhs: Expr::Ref(OperandRef::aligned(a, 2)),
        };
        assert!(!fusion_preventing(&w, &r0));
    }

    #[test]
    fn different_spaces_do_not_group() {
        let checked = compile_source(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nA(2:N-1,2:N-1) = 1\nB(1:N,1:N) = 2\n",
        )
        .unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        let stats = run(&mut p);
        assert_eq!(stats.groups, 2, "not congruent: different spaces");
    }

    #[test]
    fn congruent_independent_statements_group() {
        let checked =
            compile_source("PARAM N = 8\nREAL A(N,N), B(N,N), C(N,N), D(N,N)\nA = C\nB = D\n")
                .unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        let stats = run(&mut p);
        assert_eq!(stats.groups, 1);
    }

    #[test]
    fn time_loops_stay_single() {
        let checked = compile_source(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nDO 2 TIMES\nA = B\nENDDO\nDO 3 TIMES\nB = A\nENDDO\n",
        )
        .unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        let stats = run(&mut p);
        // Two loop groups at top level + one group inside each body.
        assert_eq!(stats.groups, 4);
        assert_eq!(p.body.len(), 2);
    }

    #[test]
    fn reordering_preserves_dependences_randomly() {
        // A chain with interleaved comm and compute; the reorder must be a
        // valid topological order of the original DDG.
        let checked = compile_source(
            r#"
PARAM N = 8
REAL A(N,N), B(N,N), C(N,N), T(N,N)
T = CSHIFT(A,1,1)
B = T + A
T = CSHIFT(A,-1,1)
C = T + B
B = B + C
"#,
        )
        .unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        let original = p.body.clone();
        let g = DepGraph::build(&original);
        run(&mut p);
        // Map reordered statements back to original indices.
        let mut used = vec![false; original.len()];
        let order: Vec<usize> = p
            .body
            .iter()
            .map(|s| {
                let i = original.iter().enumerate().position(|(i, o)| !used[i] && o == s).unwrap();
                used[i] = true;
                i
            })
            .collect();
        assert!(g.order_is_valid(&order));
    }
}
