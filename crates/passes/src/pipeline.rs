//! The pass pipeline with per-stage toggles.
//!
//! [`CompileOptions::upto`] reproduces the staged configurations of the
//! paper's Figure 17: *original* (naive Fortran77+MPI translation), then
//! cumulatively offset arrays, context partitioning, communication
//! unioning, and memory optimizations.

use crate::loopir::NodeProgram;
use crate::memopt::{self, MemOptOptions, MemOptStats};
use crate::normalize::{self, NormalizeStats, TempPolicy};
use crate::offset::{self, OffsetStats};
use crate::partition::{self, PartitionStats};
use crate::scalarize::{self, ScalarizeOptions, ScalarizeStats};
use crate::unioning::{self, UnioningStats};
use hpf_frontend::Checked;
use hpf_ir::Program;

/// Cumulative pipeline stages matching Figure 17's x-axis.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Stage {
    /// Naive translation: full shifts, one loop per statement.
    Original,
    /// + offset arrays (§3.1).
    OffsetArrays,
    /// + context partitioning (§3.2), which enables loop fusion.
    Partition,
    /// + communication unioning (§3.3).
    Unioning,
    /// + memory optimizations (§3.4): scalar replacement & unroll-and-jam.
    MemOpt,
}

impl Stage {
    /// All stages in pipeline order.
    pub fn all() -> [Stage; 5] {
        [Stage::Original, Stage::OffsetArrays, Stage::Partition, Stage::Unioning, Stage::MemOpt]
    }

    /// Display label used by the experiment harness.
    pub fn label(&self) -> &'static str {
        match self {
            Stage::Original => "original",
            Stage::OffsetArrays => "+offset-arrays",
            Stage::Partition => "+context-partitioning",
            Stage::Unioning => "+comm-unioning",
            Stage::MemOpt => "+memory-opts",
        }
    }
}

/// Pipeline configuration.
#[derive(Clone, Copy, Debug)]
pub struct CompileOptions {
    /// Temporary allocation policy during normalization.
    pub temp_policy: TempPolicy,
    /// Offset-array optimization.
    pub offset_arrays: bool,
    /// Context partitioning.
    pub partition: bool,
    /// Communication unioning.
    pub unioning: bool,
    /// Fuse adjacent congruent statements during scalarization.
    pub fuse: bool,
    /// Scalar replacement.
    pub scalar_replacement: bool,
    /// Unroll-and-jam factor (1 = off).
    pub unroll_factor: usize,
    /// Loop permutation.
    pub permute: bool,
    /// Emit naive Fortran scalarization loop order (permutation then fixes
    /// it); used by the permutation ablation.
    pub fortran_order: bool,
    /// Overlap-area width of the target machine.
    pub halo: usize,
    /// Check each pass's declared post-conditions between stages and panic
    /// with rendered diagnostics on violation. On by default in debug builds
    /// (and therefore under `cargo test`); release builds skip the checks.
    pub check_invariants: bool,
}

impl CompileOptions {
    /// Everything on — the paper's full strategy.
    pub fn full() -> Self {
        CompileOptions {
            temp_policy: TempPolicy::Reuse,
            offset_arrays: true,
            partition: true,
            unioning: true,
            fuse: true,
            scalar_replacement: true,
            unroll_factor: 2,
            permute: true,
            fortran_order: false,
            halo: 1,
            check_invariants: cfg!(debug_assertions),
        }
    }

    /// Everything off: the hand-translated Fortran77+MPI starting point of
    /// Figure 17 (sane loop order, reused temporaries, but full shifts and
    /// one loop nest per statement).
    pub fn original() -> Self {
        CompileOptions {
            temp_policy: TempPolicy::Reuse,
            offset_arrays: false,
            partition: false,
            unioning: false,
            fuse: true, // fusion of *adjacent* congruent statements only
            scalar_replacement: false,
            unroll_factor: 1,
            permute: true,
            fortran_order: false,
            halo: 1,
            check_invariants: cfg!(debug_assertions),
        }
    }

    /// The cumulative configuration for a Figure 17 stage.
    pub fn upto(stage: Stage) -> Self {
        let mut o = Self::original();
        if stage >= Stage::OffsetArrays {
            o.offset_arrays = true;
        }
        if stage >= Stage::Partition {
            o.partition = true;
        }
        if stage >= Stage::Unioning {
            o.unioning = true;
        }
        if stage >= Stage::MemOpt {
            o.scalar_replacement = true;
            o.unroll_factor = 2;
        }
        o
    }

    /// Set the overlap width.
    pub fn halo(mut self, halo: usize) -> Self {
        self.halo = halo;
        self
    }

    /// Enable or disable inter-stage post-condition checking.
    pub fn check_invariants(mut self, on: bool) -> Self {
        self.check_invariants = on;
        self
    }
}

impl Default for CompileOptions {
    fn default() -> Self {
        Self::full()
    }
}

/// Number of timed pipeline passes (the fixed pipeline order).
pub const NUM_PASSES: usize = 6;

/// Pass names, in pipeline order — indexes [`PipelineStats::pass_timings`].
pub const PASS_NAMES: [&str; NUM_PASSES] =
    ["normalize", "offset-arrays", "context-partitioning", "comm-unioning", "scalarize", "memopt"];

/// Wall time and post-condition checking effort of one pipeline pass.
/// `PipelineStats` is `Copy`, so these live in a fixed-size array rather
/// than a `Vec`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PassTiming {
    /// Wall nanoseconds spent in the pass, post-condition checks included.
    /// Zero when the pass was disabled by the options.
    pub wall_ns: u64,
    /// Post-condition checks evaluated after the pass (zero when
    /// `check_invariants` is off).
    pub checks: u32,
    /// Diagnostics those checks produced. Nonzero means the pass broke an
    /// invariant; `compile` panics right after counting, so a value you
    /// can observe is always zero.
    pub diagnostics: u32,
}

/// Statistics from every pass that ran.
#[derive(Clone, Copy, Debug, Default)]
pub struct PipelineStats {
    /// Normalization.
    pub normalize: NormalizeStats,
    /// Offset arrays (zeroed when disabled).
    pub offset: OffsetStats,
    /// Context partitioning (zeroed when disabled).
    pub partition: PartitionStats,
    /// Communication unioning (zeroed when disabled).
    pub unioning: UnioningStats,
    /// Scalarization.
    pub scalarize: ScalarizeStats,
    /// Memory optimizations.
    pub memopt: MemOptStats,
    /// Static communication statements in the final node program.
    pub comm_ops: usize,
    /// Loop nests in the final node program.
    pub nests: usize,
    /// Arrays the node program allocates.
    pub arrays_allocated: usize,
    /// Per-pass wall time and checking effort, indexed like [`PASS_NAMES`].
    pub pass_timings: [PassTiming; NUM_PASSES],
}

impl PipelineStats {
    /// Total wall nanoseconds across all passes.
    pub fn total_pass_ns(&self) -> u64 {
        self.pass_timings.iter().map(|t| t.wall_ns).sum()
    }
}

/// A compiled kernel: the optimized array-level IR (for inspection and the
/// paper-style listings) plus the executable node program.
#[derive(Clone, Debug)]
pub struct Compiled {
    /// Array-level IR after the enabled array passes.
    pub array_ir: Program,
    /// Lowered node program.
    pub node: NodeProgram,
    /// Per-pass statistics.
    pub stats: PipelineStats,
    /// The options used.
    pub options: CompileOptions,
}

impl Compiled {
    /// The overlap-area width the node program needs at run time: the
    /// largest overlap-shift amount / RSD extension, and the largest
    /// absolute load offset of any subgrid loop body.
    pub fn required_halo(&self) -> usize {
        use crate::loopir::{CommOp, Instr, NodeItem};
        let mut need = 0usize;
        self.node.for_each_item(&mut |item| match item {
            NodeItem::Comm(CommOp::Overlap { shift, rsd, .. }) => {
                need = need.max(shift.unsigned_abs() as usize);
                if let Some(r) = rsd {
                    for &(lo, hi) in &r.ext {
                        need = need.max(lo as usize).max(hi as usize);
                    }
                }
            }
            NodeItem::Nest(nest) => {
                // The unit body's offsets bound the halo need: a jammed
                // copy's extra +k along the unrolled dimension indexes owned
                // rows of later iterations (the main loop stops while
                // i+factor-1 is in range), not the overlap area.
                let unit = nest.unroll.as_ref().map_or(&nest.body, |u| &u.unit_body);
                for i in unit {
                    if let Instr::Load { offsets, .. } | Instr::Store { offsets, .. } = i {
                        for &o in offsets {
                            need = need.max(o.unsigned_abs() as usize);
                        }
                    }
                }
            }
            _ => {}
        });
        need
    }
}

/// Panic with rendered diagnostics when a pass's post-conditions fail: any
/// diagnostic here means the *compiler* broke its own invariants, not that
/// the user program is wrong.
fn enforce(stage: &str, diags: &[hpf_ir::Diagnostic]) {
    assert!(
        diags.is_empty(),
        "internal compiler error: post-condition violated after {stage}:\n{}",
        hpf_analysis::render_text(diags)
    );
}

/// Run post-condition checks for one pass, recording how many checks ran
/// and how many diagnostics they produced before enforcing (which panics
/// on any diagnostic).
fn check_pass(
    timing: &mut PassTiming,
    stage: &str,
    program: &Program,
    halo: i64,
    checks: &[hpf_analysis::Check],
) {
    let diags = hpf_analysis::run_checks(program, halo, checks);
    timing.checks += checks.len() as u32;
    timing.diagnostics += diags.len() as u32;
    enforce(stage, &diags);
}

/// Run the pipeline on a checked source program.
pub fn compile(checked: &Checked, options: CompileOptions) -> Compiled {
    let halo = options.halo as i64;
    let checking = options.check_invariants;
    let mut stats = PipelineStats::default();
    let mut clock = std::time::Instant::now();
    // Lap: wall time since the previous pass boundary.
    let mut lap = move || {
        let ns = clock.elapsed().as_nanos() as u64;
        clock = std::time::Instant::now();
        ns
    };
    let (mut program, nstats) = normalize::normalize(checked, options.temp_policy);
    stats.normalize = nstats;
    if checking {
        check_pass(
            &mut stats.pass_timings[0],
            "normalize",
            &program,
            halo,
            normalize::post_conditions(),
        );
    }
    stats.pass_timings[0].wall_ns = lap();
    if options.offset_arrays {
        stats.offset = offset::run(&mut program, halo);
        if checking {
            check_pass(
                &mut stats.pass_timings[1],
                "offset-arrays",
                &program,
                halo,
                offset::post_conditions(),
            );
        }
        stats.pass_timings[1].wall_ns = lap();
    }
    if options.partition {
        if checking {
            // Group legality needs the member lists the pass actually built,
            // so the check rides along inside the pass.
            let mut diags = Vec::new();
            stats.partition = partition::run_checked(&mut program, &mut diags);
            diags.extend(hpf_analysis::run_checks(&program, halo, partition::post_conditions()));
            stats.pass_timings[2].checks += 1 + partition::post_conditions().len() as u32;
            stats.pass_timings[2].diagnostics += diags.len() as u32;
            enforce("context-partitioning", &diags);
        } else {
            stats.partition = partition::run(&mut program);
        }
        stats.pass_timings[2].wall_ns = lap();
    }
    if options.unioning {
        stats.unioning = unioning::run(&mut program);
        if checking {
            check_pass(
                &mut stats.pass_timings[3],
                "comm-unioning",
                &program,
                halo,
                unioning::post_conditions(),
            );
        }
        stats.pass_timings[3].wall_ns = lap();
    }
    if checking {
        check_pass(
            &mut stats.pass_timings[4],
            "array passes",
            &program,
            halo,
            scalarize::pre_conditions(),
        );
    }
    let (mut node, sstats) = scalarize::run(
        &program,
        ScalarizeOptions { fuse: options.fuse, fortran_order: options.fortran_order },
    );
    stats.scalarize = sstats;
    stats.pass_timings[4].wall_ns = lap();
    stats.memopt = memopt::run(
        &mut node,
        MemOptOptions {
            scalar_replacement: options.scalar_replacement,
            unroll_factor: options.unroll_factor,
            permute: options.permute,
        },
    );
    stats.pass_timings[5].wall_ns = lap();
    stats.comm_ops = node.comm_count();
    stats.nests = node.nest_count();
    stats.arrays_allocated = node.live_arrays.len();
    let compiled = Compiled { array_ir: program, node, stats, options };
    if checking {
        let need = compiled.required_halo();
        assert!(
            need <= options.halo,
            "internal compiler error: node program needs a halo of {need} \
             but the target provides {}",
            options.halo
        );
    }
    compiled
}

#[cfg(test)]
mod tests {
    use super::*;
    use hpf_frontend::compile_source;

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    #[test]
    fn staged_options_are_cumulative() {
        let o0 = CompileOptions::upto(Stage::Original);
        assert!(!o0.offset_arrays && !o0.partition && !o0.unioning && !o0.scalar_replacement);
        let o1 = CompileOptions::upto(Stage::OffsetArrays);
        assert!(o1.offset_arrays && !o1.partition);
        let o4 = CompileOptions::upto(Stage::MemOpt);
        assert!(o4.offset_arrays && o4.partition && o4.unioning && o4.scalar_replacement);
        assert!(o4.unroll_factor > 1);
    }

    #[test]
    fn problem9_staged_comm_and_nest_counts() {
        let checked = compile_source(PROBLEM9).unwrap();
        let by_stage: Vec<(usize, usize)> = Stage::all()
            .iter()
            .map(|s| {
                let c = compile(&checked, CompileOptions::upto(*s));
                (c.stats.comm_ops, c.stats.nests)
            })
            .collect();
        // Original: 8 full shifts, computes split by the interleaved comm.
        assert_eq!(by_stage[0].0, 8);
        assert!(by_stage[0].1 >= 6);
        // Offset arrays: still 8 comm ops, now overlap shifts.
        assert_eq!(by_stage[1].0, 8);
        // Partitioning: comm grouped; single fused nest.
        assert_eq!(by_stage[2].0, 8);
        assert_eq!(by_stage[2].1, 1);
        // Unioning: 4 comm ops (the paper's Figure 15).
        assert_eq!(by_stage[3].0, 4);
        assert_eq!(by_stage[3].1, 1);
        // Memory opts don't change either count.
        assert_eq!(by_stage[4], (4, 1));
    }

    #[test]
    fn problem9_storage_shrinks_with_offset_arrays() {
        let checked = compile_source(PROBLEM9).unwrap();
        let orig = compile(&checked, CompileOptions::upto(Stage::Original));
        let opt = compile(&checked, CompileOptions::full());
        // Original allocates U, T, RIP, RIN, TMP = 5 arrays; optimized only
        // U and T (§4.2: temporaries need not be allocated).
        assert_eq!(orig.stats.arrays_allocated, 5);
        assert_eq!(opt.stats.arrays_allocated, 2);
    }

    #[test]
    fn full_pipeline_monotone_improvements() {
        let checked = compile_source(PROBLEM9).unwrap();
        let full = compile(&checked, CompileOptions::full());
        assert!(full.stats.memopt.loads_after < full.stats.memopt.loads_before);
        assert!(full.stats.memopt.stores_after < full.stats.memopt.stores_before);
        assert_eq!(full.stats.unioning.before, 8);
        assert_eq!(full.stats.unioning.after, 4);
        assert_eq!(full.stats.offset.converted, 8);
    }

    #[test]
    fn pass_timings_track_enabled_passes() {
        let checked = compile_source(PROBLEM9).unwrap();
        let full = compile(&checked, CompileOptions::full().check_invariants(true));
        // Every pass enabled: normalize/scalarize/memopt always run and the
        // three optional array passes are on.
        let t = &full.stats.pass_timings;
        assert!(t[0].checks > 0, "normalize post-conditions ran");
        assert!(t[1].checks > 0 && t[2].checks > 0 && t[3].checks > 0);
        assert_eq!(t.iter().map(|p| p.diagnostics).sum::<u32>(), 0, "healthy pipeline");
        assert!(full.stats.total_pass_ns() >= t[0].wall_ns);
        // Disabled passes report zero time and zero checks.
        let orig = compile(&checked, CompileOptions::original());
        assert_eq!(orig.stats.pass_timings[1], PassTiming::default());
        assert_eq!(orig.stats.pass_timings[2], PassTiming::default());
        assert_eq!(orig.stats.pass_timings[3], PassTiming::default());
    }

    #[test]
    fn pass_names_cover_all_slots() {
        assert_eq!(PASS_NAMES.len(), NUM_PASSES);
        let stats = PipelineStats::default();
        assert_eq!(stats.pass_timings.len(), NUM_PASSES);
    }

    #[test]
    fn all_three_nine_point_specs_reach_same_final_shape() {
        let single_cshift = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
DST = CSHIFT(CSHIFT(SRC,-1,1),-1,2) + CSHIFT(SRC,-1,1) &
    + CSHIFT(CSHIFT(SRC,-1,1),+1,2) + CSHIFT(SRC,-1,2) &
    + SRC + CSHIFT(SRC,+1,2) &
    + CSHIFT(CSHIFT(SRC,+1,1),-1,2) + CSHIFT(SRC,+1,1) &
    + CSHIFT(CSHIFT(SRC,+1,1),+1,2)
"#;
        let array_syntax = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
DST(2:N-1,2:N-1) = SRC(1:N-2,1:N-2) + SRC(1:N-2,2:N-1) + SRC(1:N-2,3:N) &
                 + SRC(2:N-1,1:N-2) + SRC(2:N-1,2:N-1) + SRC(2:N-1,3:N) &
                 + SRC(3:N,1:N-2) + SRC(3:N,2:N-1) + SRC(3:N,3:N)
"#;
        for src in [single_cshift, array_syntax, PROBLEM9] {
            let c = compile(&compile_source(src).unwrap(), CompileOptions::full());
            assert_eq!(c.stats.comm_ops, 4, "every specification reaches 4 messages");
            assert_eq!(c.stats.nests, 1, "and a single fused subgrid nest");
        }
    }
}
