//! Pretty printer for the node program — the paper's Figure 16 view: the
//! communication calls followed by the scalarized subgrid loop nest, with
//! loop bounds and per-dimension induction variables.

use crate::loopir::{CommOp, Instr, LoopNest, NodeItem, NodeProgram};
use hpf_ir::{ShiftKind, SymbolTable};
use std::fmt::Write;

/// Render a whole node program.
pub fn node_program(p: &NodeProgram) -> String {
    let mut out = String::new();
    items_into(&p.symbols, &p.items, 0, &mut out);
    out
}

fn indent(level: usize, out: &mut String) {
    for _ in 0..level {
        out.push_str("  ");
    }
}

fn items_into(symbols: &SymbolTable, items: &[NodeItem], level: usize, out: &mut String) {
    for item in items {
        match item {
            NodeItem::Comm(CommOp::FullShift { dst, src, shift, dim, kind }) => {
                indent(level, out);
                let intr = match kind {
                    ShiftKind::Circular => "CSHIFT",
                    ShiftKind::EndOff(_) => "EOSHIFT",
                };
                writeln!(
                    out,
                    "{} = {intr}({},SHIFT={:+},DIM={})",
                    symbols.array(*dst).name,
                    symbols.array(*src).name,
                    shift,
                    dim + 1
                )
                .unwrap();
            }
            NodeItem::Comm(CommOp::Overlap { array, shift, dim, rsd, kind }) => {
                indent(level, out);
                let intr = match kind {
                    ShiftKind::Circular => "OVERLAP_CSHIFT",
                    ShiftKind::EndOff(_) => "OVERLAP_EOSHIFT",
                };
                write!(
                    out,
                    "CALL {intr}({},SHIFT={:+},DIM={}",
                    symbols.array(*array).name,
                    shift,
                    dim + 1
                )
                .unwrap();
                if let Some(r) = rsd {
                    if !r.is_trivial() {
                        write!(out, ",{r:?}").unwrap();
                    }
                }
                writeln!(out, ")").unwrap();
            }
            NodeItem::Nest(nest) => nest_into(symbols, nest, level, out),
            NodeItem::TimeLoop { iters, body } => {
                indent(level, out);
                writeln!(out, "DO {iters} TIMES").unwrap();
                items_into(symbols, body, level + 1, out);
                indent(level, out);
                writeln!(out, "ENDDO").unwrap();
            }
        }
    }
}

/// Induction-variable name for a dimension.
fn ivar(d: usize) -> String {
    match d {
        0 => "i".to_string(),
        1 => "j".to_string(),
        2 => "k".to_string(),
        other => format!("i{}", other + 1),
    }
}

fn subscript(offsets: &[i64]) -> String {
    let parts: Vec<String> = offsets
        .iter()
        .enumerate()
        .map(|(d, &o)| {
            if o == 0 {
                ivar(d)
            } else if o > 0 {
                format!("{}+{o}", ivar(d))
            } else {
                format!("{}{o}", ivar(d))
            }
        })
        .collect();
    format!("({})", parts.join(","))
}

fn nest_into(symbols: &SymbolTable, nest: &LoopNest, level: usize, out: &mut String) {
    // Loop headers, outermost first (paper Figure 16 prints global bounds;
    // the executor reduces them per PE).
    for (depth, &d) in nest.order.iter().enumerate() {
        indent(level + depth, out);
        let (lo, hi) = nest.space.dim(d);
        let step = match &nest.unroll {
            Some(u) if u.dim == d => format!(", {}", u.factor),
            _ => String::new(),
        };
        writeln!(out, "DO {} = {lo}, {hi}{step}", ivar(d)).unwrap();
    }
    let body_level = level + nest.order.len();
    body_into(symbols, &nest.body, body_level, out);
    if let Some(u) = &nest.unroll {
        indent(body_level, out);
        writeln!(out, "! remainder iterations ({}-unrolled dim {}):", u.factor, ivar(u.dim))
            .unwrap();
        body_into(symbols, &u.unit_body, body_level, out);
    }
    for depth in (0..nest.order.len()).rev() {
        indent(level + depth, out);
        writeln!(out, "ENDDO").unwrap();
    }
}

fn body_into(symbols: &SymbolTable, body: &[Instr], level: usize, out: &mut String) {
    for instr in body {
        indent(level, out);
        match instr {
            Instr::Const { dst, value } => writeln!(out, "r{dst} = {value}").unwrap(),
            Instr::LoadScalar { dst, id } => {
                writeln!(out, "r{dst} = {}", symbols.scalar(*id).name).unwrap();
            }
            Instr::Load { dst, array, offsets } => {
                writeln!(out, "r{dst} = {}{}", symbols.array(*array).name, subscript(offsets))
                    .unwrap();
            }
            Instr::Store { array, offsets, src } => {
                writeln!(out, "{}{} = r{src}", symbols.array(*array).name, subscript(offsets))
                    .unwrap();
            }
            Instr::Bin { op, dst, a, b } => {
                writeln!(out, "r{dst} = r{a} {} r{b}", op.symbol()).unwrap();
            }
            Instr::Neg { dst, src } => writeln!(out, "r{dst} = -r{src}").unwrap(),
            Instr::Copy { dst, src } => writeln!(out, "r{dst} = r{src}").unwrap(),
            Instr::Cmp { op, dst, a, b } => {
                writeln!(out, "r{dst} = (r{a} {} r{b})", op.symbol()).unwrap();
            }
            Instr::Select { dst, c, t, e } => {
                writeln!(out, "r{dst} = MERGE(r{t}, r{e}, r{c})").unwrap();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, TempPolicy};
    use crate::scalarize::{self, ScalarizeOptions};
    use crate::{memopt, offset, partition, unioning};
    use hpf_frontend::compile_source;

    fn render(src: &str, with_memopt: bool) -> String {
        let checked = compile_source(src).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        partition::run(&mut p);
        unioning::run(&mut p);
        let (mut node, _) = scalarize::run(&p, ScalarizeOptions::default());
        if with_memopt {
            memopt::run(&mut node, memopt::MemOptOptions::default());
        }
        node_program(&node)
    }

    const FIVE_POINT: &str = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
DST(2:N-1,2:N-1) = SRC(1:N-2,2:N-1) + SRC(2:N-1,1:N-2) &
                 + SRC(2:N-1,2:N-1) + SRC(3:N,2:N-1) + SRC(2:N-1,3:N)
"#;

    #[test]
    fn figure_16_shape() {
        let s = render(FIVE_POINT, false);
        assert!(s.contains("CALL OVERLAP_CSHIFT(SRC,SHIFT=-1,DIM=1)"), "{s}");
        assert!(s.contains("DO i = 2, 7"), "{s}");
        assert!(s.contains("DO j = 2, 7"), "{s}");
        assert!(s.contains("r0 = SRC(i-1,j)"), "{s}");
        assert!(s.contains("DST(i,j) ="), "{s}");
        assert_eq!(s.matches("ENDDO").count(), 2);
    }

    #[test]
    fn unrolled_nest_prints_step_and_remainder() {
        let s = render(FIVE_POINT, true);
        assert!(s.contains("DO i = 2, 7, 2"), "{s}");
        assert!(s.contains("remainder iterations"), "{s}");
        assert!(s.contains("SRC(i+1,j)"), "{s}");
    }

    #[test]
    fn time_loop_and_full_shift_print() {
        let s = render(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nDO 3 TIMES\nB = CSHIFT(A,2,1)\nA = B\nENDDO\n",
            false,
        );
        assert!(s.contains("DO 3 TIMES"), "{s}");
        assert!(s.contains("B = CSHIFT(A,SHIFT=+2,DIM=1)"), "{s}");
        assert!(s.trim_end().ends_with("ENDDO"), "{s}");
    }
}
