//! The node-program (loop) IR produced by scalarization.
//!
//! After the array-level passes, the program is lowered to the form each PE
//! executes: communication operations interleaved with *subgrid loop nests*
//! (paper §2.2, §4.5). A loop nest iterates a global iteration space (each
//! PE intersects it with the region it owns — the SPMD bounds reduction) and
//! executes a register-machine body per point. Memory optimizations
//! (scalar replacement, unroll-and-jam, permutation) rewrite this IR.

use hpf_ir::expr::CmpOp;
use hpf_ir::{ArrayId, BinOp, Rsd, ScalarId, Section, ShiftKind, SymbolTable};

/// Virtual register index within a loop body.
pub type Reg = u16;

/// One instruction of a loop-nest body, executed per iteration point.
/// `offsets` are added to the current point to form the accessed element
/// (reads may land in overlap areas).
#[derive(Clone, Debug, PartialEq)]
pub enum Instr {
    /// `r[dst] = value`
    Const {
        /// Destination register.
        dst: Reg,
        /// Literal value.
        value: f64,
    },
    /// `r[dst] = scalars[id]`
    LoadScalar {
        /// Destination register.
        dst: Reg,
        /// Scalar coefficient.
        id: ScalarId,
    },
    /// `r[dst] = array[point + offsets]`
    Load {
        /// Destination register.
        dst: Reg,
        /// Loaded array.
        array: ArrayId,
        /// Per-dimension offsets from the iteration point.
        offsets: Vec<i64>,
    },
    /// `array[point + offsets] = r[src]`
    Store {
        /// Stored array.
        array: ArrayId,
        /// Per-dimension offsets from the iteration point.
        offsets: Vec<i64>,
        /// Source register.
        src: Reg,
    },
    /// `r[dst] = r[a] op r[b]`
    Bin {
        /// Operator.
        op: BinOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r[dst] = -r[src]`
    Neg {
        /// Destination register.
        dst: Reg,
        /// Operand.
        src: Reg,
    },
    /// `r[dst] = r[src]` (introduced by store-to-load forwarding).
    Copy {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `r[dst] = r[a] cmp r[b] ? 1.0 : 0.0` (`WHERE` masks).
    Cmp {
        /// Comparison operator.
        op: CmpOp,
        /// Destination register.
        dst: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `r[dst] = r[c] != 0 ? r[t] : r[e]` (masked assignment lowering).
    Select {
        /// Destination register.
        dst: Reg,
        /// Condition register.
        c: Reg,
        /// Value when the condition is non-zero.
        t: Reg,
        /// Value when the condition is zero.
        e: Reg,
    },
}

impl Instr {
    /// Destination register, if the instruction defines one.
    pub fn dst(&self) -> Option<Reg> {
        match self {
            Instr::Const { dst, .. }
            | Instr::LoadScalar { dst, .. }
            | Instr::Load { dst, .. }
            | Instr::Bin { dst, .. }
            | Instr::Neg { dst, .. }
            | Instr::Copy { dst, .. }
            | Instr::Cmp { dst, .. }
            | Instr::Select { dst, .. } => Some(*dst),
            Instr::Store { .. } => None,
        }
    }

    /// Registers the instruction reads.
    pub fn sources(&self) -> Vec<Reg> {
        match self {
            Instr::Const { .. } | Instr::LoadScalar { .. } | Instr::Load { .. } => vec![],
            Instr::Store { src, .. } => vec![*src],
            Instr::Bin { a, b, .. } | Instr::Cmp { a, b, .. } => vec![*a, *b],
            Instr::Neg { src, .. } | Instr::Copy { src, .. } => vec![*src],
            Instr::Select { c, t, e, .. } => vec![*c, *t, *e],
        }
    }

    /// Remap register operands through `f`.
    pub fn remap(&mut self, f: &mut impl FnMut(Reg) -> Reg) {
        match self {
            Instr::Const { dst, .. } | Instr::LoadScalar { dst, .. } | Instr::Load { dst, .. } => {
                *dst = f(*dst);
            }
            Instr::Store { src, .. } => *src = f(*src),
            Instr::Bin { dst, a, b, .. } | Instr::Cmp { dst, a, b, .. } => {
                *dst = f(*dst);
                *a = f(*a);
                *b = f(*b);
            }
            Instr::Neg { dst, src } | Instr::Copy { dst, src } => {
                *dst = f(*dst);
                *src = f(*src);
            }
            Instr::Select { dst, c, t, e } => {
                *dst = f(*dst);
                *c = f(*c);
                *t = f(*t);
                *e = f(*e);
            }
        }
    }

    /// Shift the array-access offsets of loads/stores along one dimension
    /// (used when unrolling a loop by cloning its body).
    pub fn shift_dim(&mut self, dim: usize, by: i64) {
        match self {
            Instr::Load { offsets, .. } | Instr::Store { offsets, .. } => offsets[dim] += by,
            _ => {}
        }
    }
}

/// Unroll-and-jam annotation of a loop nest.
#[derive(Clone, Debug, PartialEq)]
pub struct Unroll {
    /// Which loop (a dimension index) is unrolled.
    pub dim: usize,
    /// Unroll factor (≥ 2).
    pub factor: usize,
    /// The original (unit) body, used for remainder iterations on PEs whose
    /// local extent is not a multiple of the factor.
    pub unit_body: Vec<Instr>,
    /// Register count of the unit body.
    pub unit_regs: usize,
}

/// A subgrid loop nest over a global iteration space.
#[derive(Clone, Debug, PartialEq)]
pub struct LoopNest {
    /// Global iteration space (1-based, inclusive). Each PE intersects this
    /// with its owned region.
    pub space: Section,
    /// Loop order, outermost first (dimension indices).
    pub order: Vec<usize>,
    /// Body executed per point (jammed body when `unroll` is present).
    pub body: Vec<Instr>,
    /// Number of virtual registers used by `body`.
    pub regs: usize,
    /// Optional unroll-and-jam of one loop.
    pub unroll: Option<Unroll>,
}

impl LoopNest {
    /// Arithmetic operations per point of the (unit) body.
    pub fn flops_per_point(&self) -> usize {
        let body = self.unroll.as_ref().map_or(&self.body, |u| &u.unit_body);
        body.iter()
            .filter(|i| {
                matches!(
                    i,
                    Instr::Bin { .. }
                        | Instr::Neg { .. }
                        | Instr::Cmp { .. }
                        | Instr::Select { .. }
                )
            })
            .count()
    }

    /// Loads per point of the (unit) body.
    pub fn loads_per_point(&self) -> usize {
        let body = self.unroll.as_ref().map_or(&self.body, |u| &u.unit_body);
        body.iter().filter(|i| matches!(i, Instr::Load { .. })).count()
    }

    /// Stores per point of the (unit) body.
    pub fn stores_per_point(&self) -> usize {
        let body = self.unroll.as_ref().map_or(&self.body, |u| &u.unit_body);
        body.iter().filter(|i| matches!(i, Instr::Store { .. })).count()
    }
}

/// A communication operation in the node program.
#[derive(Clone, Debug, PartialEq)]
pub enum CommOp {
    /// Full `DST = CSHIFT(SRC, …)`: interprocessor + intraprocessor movement.
    FullShift {
        /// Destination array.
        dst: ArrayId,
        /// Source array.
        src: ArrayId,
        /// Shift amount.
        shift: i64,
        /// Shifted dimension.
        dim: usize,
        /// Circular or end-off.
        kind: ShiftKind,
    },
    /// `CALL OVERLAP_SHIFT(A, …)`: interprocessor only.
    Overlap {
        /// Array whose overlap area is filled.
        array: ArrayId,
        /// Shift amount.
        shift: i64,
        /// Shifted dimension.
        dim: usize,
        /// Optional corner-pickup extension.
        rsd: Option<Rsd>,
        /// Circular or end-off.
        kind: ShiftKind,
    },
}

/// One step of the node program.
#[derive(Clone, Debug, PartialEq)]
pub enum NodeItem {
    /// A communication operation (globally synchronised).
    Comm(CommOp),
    /// A subgrid loop nest (purely local).
    Nest(LoopNest),
    /// A counted serial loop.
    TimeLoop {
        /// Iterations.
        iters: usize,
        /// Body items.
        body: Vec<NodeItem>,
    },
}

/// The lowered program: what every PE executes.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeProgram {
    /// Symbols (arrays to allocate, scalar values).
    pub symbols: SymbolTable,
    /// Arrays that must be allocated (referenced by the items).
    pub live_arrays: Vec<ArrayId>,
    /// The steps.
    pub items: Vec<NodeItem>,
}

impl NodeProgram {
    /// Visit every item recursively.
    pub fn for_each_item(&self, f: &mut impl FnMut(&NodeItem)) {
        fn walk(items: &[NodeItem], f: &mut impl FnMut(&NodeItem)) {
            for it in items {
                f(it);
                if let NodeItem::TimeLoop { body, .. } = it {
                    walk(body, f);
                }
            }
        }
        walk(&self.items, f);
    }

    /// Count communication operations (statically, not iteration-weighted).
    pub fn comm_count(&self) -> usize {
        let mut n = 0;
        self.for_each_item(&mut |it| {
            if matches!(it, NodeItem::Comm(_)) {
                n += 1;
            }
        });
        n
    }

    /// Count loop nests.
    pub fn nest_count(&self) -> usize {
        let mut n = 0;
        self.for_each_item(&mut |it| {
            if matches!(it, NodeItem::Nest(_)) {
                n += 1;
            }
        });
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instr_dst_and_sources() {
        let i = Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 1 };
        assert_eq!(i.dst(), Some(2));
        assert_eq!(i.sources(), vec![0, 1]);
        let s = Instr::Store { array: ArrayId(0), offsets: vec![0, 0], src: 3 };
        assert_eq!(s.dst(), None);
        assert_eq!(s.sources(), vec![3]);
    }

    #[test]
    fn instr_remap_and_shift() {
        let mut i = Instr::Load { dst: 1, array: ArrayId(0), offsets: vec![0, -1] };
        i.remap(&mut |r| r + 10);
        assert_eq!(i.dst(), Some(11));
        i.shift_dim(0, 2);
        match i {
            Instr::Load { offsets, .. } => assert_eq!(offsets, vec![2, -1]),
            _ => unreachable!(),
        }
    }

    #[test]
    fn nest_per_point_counts() {
        let nest = LoopNest {
            space: Section::new([(1, 4), (1, 4)]),
            order: vec![0, 1],
            body: vec![
                Instr::Load { dst: 0, array: ArrayId(0), offsets: vec![0, 0] },
                Instr::Load { dst: 1, array: ArrayId(0), offsets: vec![1, 0] },
                Instr::Bin { op: BinOp::Add, dst: 2, a: 0, b: 1 },
                Instr::Store { array: ArrayId(1), offsets: vec![0, 0], src: 2 },
            ],
            regs: 3,
            unroll: None,
        };
        assert_eq!(nest.loads_per_point(), 2);
        assert_eq!(nest.stores_per_point(), 1);
        assert_eq!(nest.flops_per_point(), 1);
    }

    #[test]
    fn program_counts() {
        let p = NodeProgram {
            symbols: SymbolTable::new(),
            live_arrays: vec![],
            items: vec![
                NodeItem::Comm(CommOp::Overlap {
                    array: ArrayId(0),
                    shift: 1,
                    dim: 0,
                    rsd: None,
                    kind: ShiftKind::Circular,
                }),
                NodeItem::TimeLoop {
                    iters: 3,
                    body: vec![NodeItem::Comm(CommOp::FullShift {
                        dst: ArrayId(1),
                        src: ArrayId(0),
                        shift: 1,
                        dim: 0,
                        kind: ShiftKind::Circular,
                    })],
                },
            ],
        };
        assert_eq!(p.comm_count(), 2);
        assert_eq!(p.nest_count(), 0);
    }
}
