//! Scalarization with loop fusion and SPMD bounds (paper §3.4, §4.5).
//!
//! Lowers the array-level IR to the node program: each communication
//! statement becomes a [`CommOp`]; each maximal run of adjacent, congruent,
//! legally fusible compute statements becomes a single subgrid
//! [`LoopNest`] whose body is a register-machine program. The iteration
//! space stays global — the executor intersects it with each PE's owned
//! region, which is the SPMD loop-bounds reduction.
//!
//! Fusion is only attempted across *adjacent* statements: context
//! partitioning is what makes congruent statements adjacent, so disabling
//! it degrades fusion exactly as in the paper's staged experiment.

use crate::loopir::{CommOp, Instr, LoopNest, NodeItem, NodeProgram, Reg};
use crate::partition::{classify, fusion_preventing};
use hpf_ir::{Expr, Program, Section, Stmt, SymbolTable};

/// Options for scalarization.
#[derive(Clone, Copy, Debug)]
pub struct ScalarizeOptions {
    /// Fuse adjacent congruent compute statements into one nest.
    pub fuse: bool,
    /// Emit loops in naive Fortran scalarization order (leftmost subscript
    /// innermost) instead of natural row-major order; the loop-permutation
    /// memory optimization then has real work to do.
    pub fortran_order: bool,
}

impl Default for ScalarizeOptions {
    fn default() -> Self {
        ScalarizeOptions { fuse: true, fortran_order: false }
    }
}

/// Statistics reported by scalarization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScalarizeStats {
    /// Loop nests emitted.
    pub nests: usize,
    /// Compute statements folded into those nests.
    pub statements: usize,
}

/// Pre-conditions scalarization assumes of its input IR, checked by the
/// pipeline when `CompileOptions::check_invariants` is set: the greedy
/// grouping this pass performs must be fusion-legal (FP001) — no group may
/// pair statements whose fusion would turn a loop-independent dependence
/// into a loop-carried one.
pub fn pre_conditions() -> &'static [hpf_analysis::Check] {
    use hpf_analysis::Check;
    &[Check::FusionLegal]
}

/// Lower a program to its node program.
pub fn run(program: &Program, opts: ScalarizeOptions) -> (NodeProgram, ScalarizeStats) {
    let mut stats = ScalarizeStats::default();
    let items = lower_block(&program.symbols, &program.body, opts, &mut stats);
    let node =
        NodeProgram { symbols: program.symbols.clone(), live_arrays: program.live_arrays(), items };
    (node, stats)
}

fn lower_block(
    symbols: &SymbolTable,
    block: &[Stmt],
    opts: ScalarizeOptions,
    stats: &mut ScalarizeStats,
) -> Vec<NodeItem> {
    let mut items = Vec::new();
    let mut i = 0usize;
    while i < block.len() {
        match &block[i] {
            Stmt::ShiftAssign { dst, src, shift, dim, kind } => {
                items.push(NodeItem::Comm(CommOp::FullShift {
                    dst: *dst,
                    src: *src,
                    shift: *shift,
                    dim: *dim,
                    kind: *kind,
                }));
                i += 1;
            }
            Stmt::OverlapShift { array, shift, dim, rsd, kind, src_offsets } => {
                // A leftover source annotation (unioning disabled) means this
                // shift reads lower-dimension ghost data; express that as an
                // RSD so the runtime transfers the right region.
                let rsd = match (rsd, src_offsets.is_zero()) {
                    (Some(r), _) => Some(r.clone()),
                    (None, true) => None,
                    (None, false) => {
                        let mut r = hpf_ir::Rsd::none(src_offsets.rank());
                        for (e, &o) in src_offsets.0.iter().enumerate() {
                            if e != *dim {
                                r.extend(e, o);
                            }
                        }
                        if r.is_trivial() {
                            None
                        } else {
                            Some(r)
                        }
                    }
                };
                items.push(NodeItem::Comm(CommOp::Overlap {
                    array: *array,
                    shift: *shift,
                    dim: *dim,
                    rsd,
                    kind: *kind,
                }));
                i += 1;
            }
            Stmt::TimeLoop { iters, body } => {
                let inner = lower_block(symbols, body, opts, stats);
                items.push(NodeItem::TimeLoop { iters: *iters, body: inner });
                i += 1;
            }
            Stmt::Compute { .. } | Stmt::Copy { .. } => {
                // Collect the maximal fusible run starting here.
                let mut run = vec![i];
                if opts.fuse {
                    let class = classify(symbols, &block[i]);
                    let mut j = i + 1;
                    while j < block.len() {
                        let next = &block[j];
                        if classify(symbols, next) != class {
                            break;
                        }
                        if run.iter().any(|&k| fusion_preventing(&block[k], next)) {
                            break;
                        }
                        run.push(j);
                        j += 1;
                    }
                }
                let nest = build_nest(symbols, block, &run, opts);
                stats.nests += 1;
                stats.statements += run.len();
                i = run.last().unwrap() + 1;
                items.push(NodeItem::Nest(nest));
            }
        }
    }
    items
}

fn build_nest(
    symbols: &SymbolTable,
    block: &[Stmt],
    run: &[usize],
    opts: ScalarizeOptions,
) -> LoopNest {
    let space = match &block[run[0]] {
        Stmt::Compute { space, .. } => space.clone(),
        Stmt::Copy { dst, .. } => Section::full(&symbols.array(*dst).shape),
        _ => unreachable!("runs contain compute/copy statements only"),
    };
    let rank = space.rank();
    let order: Vec<usize> =
        if opts.fortran_order { (0..rank).rev().collect() } else { (0..rank).collect() };
    let mut body = Vec::new();
    let mut next_reg: Reg = 0;
    for &idx in run {
        match &block[idx] {
            Stmt::Compute { lhs, rhs, .. } => {
                let r = emit_expr(rhs, &mut body, &mut next_reg, rank);
                body.push(Instr::Store { array: *lhs, offsets: vec![0; rank], src: r });
            }
            Stmt::Copy { dst, src } => {
                let r = next_reg;
                next_reg += 1;
                body.push(Instr::Load { dst: r, array: src.array, offsets: src.offsets.0.clone() });
                body.push(Instr::Store { array: *dst, offsets: vec![0; rank], src: r });
            }
            _ => unreachable!(),
        }
    }
    LoopNest { space, order, body, regs: next_reg as usize, unroll: None }
}

fn emit_expr(e: &Expr, body: &mut Vec<Instr>, next: &mut Reg, rank: usize) -> Reg {
    match e {
        Expr::Const(v) => {
            let r = *next;
            *next += 1;
            body.push(Instr::Const { dst: r, value: *v });
            r
        }
        Expr::Scalar(id) => {
            let r = *next;
            *next += 1;
            body.push(Instr::LoadScalar { dst: r, id: *id });
            r
        }
        Expr::Ref(op) => {
            let r = *next;
            *next += 1;
            let mut offsets = op.offsets.0.clone();
            offsets.resize(rank, 0);
            body.push(Instr::Load { dst: r, array: op.array, offsets });
            r
        }
        Expr::Bin(opk, a, b) => {
            let ra = emit_expr(a, body, next, rank);
            let rb = emit_expr(b, body, next, rank);
            let r = *next;
            *next += 1;
            body.push(Instr::Bin { op: *opk, dst: r, a: ra, b: rb });
            r
        }
        Expr::Neg(a) => {
            let ra = emit_expr(a, body, next, rank);
            let r = *next;
            *next += 1;
            body.push(Instr::Neg { dst: r, src: ra });
            r
        }
        Expr::Cmp(opk, a, b) => {
            let ra = emit_expr(a, body, next, rank);
            let rb = emit_expr(b, body, next, rank);
            let r = *next;
            *next += 1;
            body.push(Instr::Cmp { op: *opk, dst: r, a: ra, b: rb });
            r
        }
        Expr::Select(c, t, e) => {
            let rc = emit_expr(c, body, next, rank);
            let rt = emit_expr(t, body, next, rank);
            let re = emit_expr(e, body, next, rank);
            let r = *next;
            *next += 1;
            body.push(Instr::Select { dst: r, c: rc, t: rt, e: re });
            r
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, TempPolicy};
    use crate::{offset, partition, unioning};
    use hpf_frontend::compile_source;

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    fn full_pipeline(src: &str) -> NodeProgram {
        let checked = compile_source(src).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        partition::run(&mut p);
        unioning::run(&mut p);
        run(&p, ScalarizeOptions::default()).0
    }

    /// Figure 16: after the whole pipeline, Problem 9 is 4 communication
    /// operations plus a single fused loop nest.
    #[test]
    fn problem9_single_fused_nest() {
        let node = full_pipeline(PROBLEM9);
        assert_eq!(node.comm_count(), 4);
        assert_eq!(node.nest_count(), 1);
        // The fused nest computes all 7 statements: 7 stores before memopt.
        let mut stores = 0;
        node.for_each_item(&mut |it| {
            if let NodeItem::Nest(n) = it {
                stores = n.stores_per_point();
            }
        });
        assert_eq!(stores, 7);
    }

    #[test]
    fn no_fusion_without_partitioning() {
        let checked = compile_source(PROBLEM9).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        // Skip partitioning: comm statements separate the computes.
        let (node, stats) = run(&p, ScalarizeOptions::default());
        assert!(stats.nests > 1, "interleaved comm blocks fusion");
        assert_eq!(node.comm_count(), 8, "no unioning either");
    }

    #[test]
    fn fuse_toggle_off_gives_one_nest_per_statement() {
        let checked = compile_source(PROBLEM9).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        partition::run(&mut p);
        let (_, fused) = run(&p, ScalarizeOptions::default());
        let (_, unfused) = run(&p, ScalarizeOptions { fuse: false, fortran_order: false });
        assert_eq!(fused.nests, 1);
        assert_eq!(unfused.nests, 7);
    }

    #[test]
    fn fortran_order_reverses_loops() {
        let checked = compile_source("PARAM N = 8\nREAL A(N,N), B(N,N)\nA = B\n").unwrap();
        let (p, _) = normalize(&checked, TempPolicy::Reuse);
        let (node, _) = run(&p, ScalarizeOptions { fuse: true, fortran_order: true });
        node.for_each_item(&mut |it| {
            if let NodeItem::Nest(n) = it {
                assert_eq!(n.order, vec![1, 0]);
            }
        });
        let (node2, _) = run(&p, ScalarizeOptions::default());
        node2.for_each_item(&mut |it| {
            if let NodeItem::Nest(n) = it {
                assert_eq!(n.order, vec![0, 1]);
            }
        });
    }

    #[test]
    fn leftover_annotation_becomes_rsd() {
        // Offset arrays without unioning: multi-offset shifts keep their
        // annotations, which scalarization folds into RSDs for the runtime.
        let checked = compile_source(
            r#"
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
T = U + CSHIFT(RIP,SHIFT=-1,DIM=2)
"#,
        )
        .unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        let (node, _) = run(&p, ScalarizeOptions::default());
        let mut found_rsd = false;
        node.for_each_item(&mut |it| {
            if let NodeItem::Comm(CommOp::Overlap { dim: 1, rsd: Some(r), .. }) = it {
                assert_eq!(r.ext[0], (0, 1));
                found_rsd = true;
            }
        });
        assert!(found_rsd);
    }

    #[test]
    fn time_loops_lower_recursively() {
        let checked = compile_source(
            "PARAM N = 8\nREAL A(N,N), B(N,N)\nDO 5 TIMES\nA = CSHIFT(B,1,1)\nB = A\nENDDO\n",
        )
        .unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, 1);
        let (node, _) = run(&p, ScalarizeOptions::default());
        match &node.items[0] {
            NodeItem::TimeLoop { iters, body } => {
                assert_eq!(*iters, 5);
                assert!(!body.is_empty());
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn expression_codegen_shapes() {
        let checked =
            compile_source("REAL A(4,4), B(4,4)\nREAL C = 2.0\nA = -(C * B) + 1.5\n").unwrap();
        let (p, _) = normalize(&checked, TempPolicy::Reuse);
        let (node, _) = run(&p, ScalarizeOptions::default());
        let mut nest = None;
        node.for_each_item(&mut |it| {
            if let NodeItem::Nest(n) = it {
                nest = Some(n.clone());
            }
        });
        let n = nest.unwrap();
        assert_eq!(n.loads_per_point(), 1);
        assert_eq!(n.stores_per_point(), 1);
        // mul, neg, add.
        assert_eq!(n.flops_per_point(), 3);
        assert!(n.regs >= 5);
    }
}
