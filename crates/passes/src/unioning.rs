//! Communication unioning (paper §3.3).
//!
//! Within each maximal run of adjacent communication statements (which
//! context partitioning has made maximal), the overlap shifts of each base
//! array are reduced to at most one `OVERLAP_SHIFT` per direction per
//! dimension:
//!
//! * shifts commute, so multi-offset chains are canonicalized with lower
//!   dimensions shifted first;
//! * a shift of amount `j` subsumes a shift of amount `i` in the same
//!   dimension and direction when `|j| ≥ |i|`;
//! * multi-offset ("corner") requirements are satisfied by attaching an RSD
//!   that widens the transferred section into the overlap areas of lower
//!   dimensions, which earlier shifts have already filled — the paper's
//!   Figure 6/15.
//!
//! The requirement set is derived from the shifts themselves: every overlap
//! shift with source annotation `o` and shift `k` along `d` demands the
//! ghost data at total offset `o + k·e_d`. Emitting, per dimension in
//! ascending order and per direction, one shift of the maximal amount with
//! the union of the lower-dimension extensions provably covers every
//! requirement (tested by the coverage property test in `hpf-exec`).

use hpf_ir::{ArrayId, Offsets, Program, Rsd, ShiftKind, Stmt};

/// Statistics reported by the pass.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct UnioningStats {
    /// Overlap shifts before unioning.
    pub before: usize,
    /// Overlap shifts after unioning.
    pub after: usize,
    /// Emitted shifts carrying a non-trivial RSD.
    pub with_rsd: usize,
}

/// Key for grouping shifts that may legally union: same base array and same
/// shift semantics (end-off boundary values must match bit-for-bit).
#[derive(Clone, PartialEq, Debug)]
struct GroupKey {
    array: ArrayId,
    kind: ShiftKind,
}

/// Post-conditions of communication unioning, checked by the pipeline when
/// `CompileOptions::check_invariants` is set: structural validity, halo
/// safety (subsumption must not drop a fill any read depends on — the static
/// twin of the halo-poisoning property test), and minimality (no emitted
/// run still contains a subsumed shift, CU001).
pub fn post_conditions() -> &'static [hpf_analysis::Check] {
    use hpf_analysis::Check;
    &[Check::Validate, Check::HaloSafe, Check::NoSubsumedShifts]
}

/// Run communication unioning over every basic block.
pub fn run(program: &mut Program) -> UnioningStats {
    let mut stats = UnioningStats::default();
    program.for_each_block_mut(&mut |block, symbols| {
        let mut out: Vec<Stmt> = Vec::with_capacity(block.len());
        let mut run_buf: Vec<Stmt> = Vec::new();
        for s in block.drain(..) {
            if s.is_comm() {
                run_buf.push(s);
            } else {
                flush(&mut run_buf, &mut out, symbols, &mut stats);
                out.push(s);
            }
        }
        flush(&mut run_buf, &mut out, symbols, &mut stats);
        *block = out;
    });
    stats
}

fn flush(
    run_buf: &mut Vec<Stmt>,
    out: &mut Vec<Stmt>,
    symbols: &hpf_ir::SymbolTable,
    stats: &mut UnioningStats,
) {
    if run_buf.is_empty() {
        return;
    }
    // Full shifts (not converted to overlap form) pass through untouched, in
    // their original relative order, ahead of the unioned overlap shifts.
    let mut groups: Vec<(GroupKey, Vec<Offsets>)> = Vec::new();
    for s in run_buf.drain(..) {
        match s {
            Stmt::OverlapShift { array, src_offsets, shift, dim, kind, .. } => {
                stats.before += 1;
                let total = src_offsets.compose(&Offsets::unit(src_offsets.rank(), dim, shift));
                let key = GroupKey { array, kind };
                if let Some((_, v)) = groups.iter_mut().find(|(k, _)| *k == key) {
                    v.push(total);
                } else {
                    groups.push((key, vec![total]));
                }
            }
            other => out.push(other),
        }
    }
    for (key, requirements) in groups {
        let rank = symbols.array(key.array).rank();
        for stmt in emit_minimal_shifts(key.array, key.kind, rank, &requirements) {
            if let Stmt::OverlapShift { rsd: Some(r), .. } = &stmt {
                if !r.is_trivial() {
                    stats.with_rsd += 1;
                }
            }
            stats.after += 1;
            out.push(stmt);
        }
    }
}

/// Emit the minimal overlap-shift set covering a requirement set of total
/// offset vectors: per dimension (ascending) and direction, one shift of the
/// maximal amount, with an RSD unioning the lower-dimension extensions of
/// every requirement active in that direction.
pub fn emit_minimal_shifts(
    array: ArrayId,
    kind: ShiftKind,
    rank: usize,
    requirements: &[Offsets],
) -> Vec<Stmt> {
    let mut out = Vec::new();
    for d in 0..rank {
        for dir in [1i64, -1] {
            // Largest requirement magnitude along d in this direction.
            let amt = requirements
                .iter()
                .map(|v| {
                    let c = v.dim(d);
                    if c.signum() == dir {
                        c.abs()
                    } else {
                        0
                    }
                })
                .max()
                .unwrap_or(0);
            if amt == 0 {
                continue;
            }
            // RSD: lower dimensions must ride along for corner requirements.
            let mut rsd = Rsd::none(rank);
            for v in requirements {
                if v.dim(d).signum() != dir {
                    continue;
                }
                for e in 0..d {
                    rsd.extend(e, v.dim(e));
                }
            }
            let rsd = if rsd.is_trivial() { None } else { Some(rsd) };
            out.push(Stmt::OverlapShift {
                array,
                src_offsets: Offsets::zero(rank),
                shift: dir * amt,
                dim: d,
                rsd,
                kind,
            });
        }
    }
    out
}

/// The set of ghost offsets guaranteed available after executing a sequence
/// of overlap shifts in order — used by tests to prove coverage. Returns
/// true when every requirement vector is covered.
pub fn covers(shifts: &[Stmt], requirements: &[Offsets]) -> bool {
    requirements.iter().all(|req| covered_one(shifts, req))
}

fn covered_one(shifts: &[Stmt], req: &Offsets) -> bool {
    // A requirement v is covered if for every non-zero component v_d there
    // is a shift along d, direction sign(v_d), amount ≥ |v_d|, whose RSD (or
    // trivially, for v with a single non-zero component) extends over every
    // other non-zero component of v in lower dims, and components in higher
    // dims are zero… Rather than replicate the emission logic, walk the
    // shifts in order and track which offset vectors are materialized.
    let rank = req.rank();
    let mut have: Vec<Offsets> = vec![Offsets::zero(rank)];
    for s in shifts {
        if let Stmt::OverlapShift { shift, dim, rsd, .. } = s {
            let mut new: Vec<Offsets> = Vec::new();
            for base in &have {
                // The shift moves data whose other-dimension coordinates lie
                // within the RSD extension; `base` qualifies when every
                // non-shift component fits the RSD.
                let fits = (0..rank).all(|e| {
                    if e == *dim {
                        base.dim(e) == 0
                    } else {
                        let c = base.dim(e);
                        match rsd {
                            None => c == 0,
                            Some(r) => (-(r.ext[e].0 as i64)..=(r.ext[e].1 as i64)).contains(&c),
                        }
                    }
                });
                if fits {
                    for k in 1..=shift.abs() {
                        let mut v = base.clone();
                        v.0[*dim] = shift.signum() * k;
                        new.push(v);
                    }
                }
            }
            for v in new {
                if !have.contains(&v) {
                    have.push(v);
                }
            }
        }
    }
    have.contains(req)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::normalize::{normalize, TempPolicy};
    use crate::{offset, partition};
    use hpf_frontend::compile_source;
    use hpf_ir::pretty;

    fn pipeline_to_unioning(src: &str, halo: i64) -> (Program, UnioningStats) {
        let checked = compile_source(src).unwrap();
        let (mut p, _) = normalize(&checked, TempPolicy::Reuse);
        offset::run(&mut p, halo);
        partition::run(&mut p);
        let stats = run(&mut p);
        hpf_ir::validate::validate(&p, halo).unwrap();
        (p, stats)
    }

    const PROBLEM9: &str = r#"
PROGRAM p9
PARAM N = 8
REAL U(N,N), T(N,N), RIP(N,N), RIN(N,N)
RIP = CSHIFT(U,SHIFT=+1,DIM=1)
RIN = CSHIFT(U,SHIFT=-1,DIM=1)
T = U + RIP + RIN
T = T + CSHIFT(U,SHIFT=-1,DIM=2)
T = T + CSHIFT(U,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIP,SHIFT=+1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=-1,DIM=2)
T = T + CSHIFT(RIN,SHIFT=+1,DIM=2)
END
"#;

    /// The paper's Figure 14 → Figure 15 transformation: 8 overlap shifts
    /// reduce to 4, the two dim-2 shifts carrying RSDs.
    #[test]
    fn problem9_eight_shifts_become_four() {
        let (p, stats) = pipeline_to_unioning(PROBLEM9, 1);
        assert_eq!(stats.before, 8);
        assert_eq!(stats.after, 4);
        assert_eq!(stats.with_rsd, 2);
        let printed = pretty::program(&p);
        assert!(printed.contains("CALL OVERLAP_CSHIFT(U,SHIFT=+1,DIM=1)"), "{printed}");
        assert!(printed.contains("CALL OVERLAP_CSHIFT(U,SHIFT=-1,DIM=1)"), "{printed}");
        assert!(printed.contains("CALL OVERLAP_CSHIFT(U,SHIFT=-1,DIM=2,[1-1:n+1,*])"), "{printed}");
        assert!(printed.contains("CALL OVERLAP_CSHIFT(U,SHIFT=+1,DIM=2,[1-1:n+1,*])"), "{printed}");
    }

    /// The single-statement 9-point CSHIFT stencil (Figure 2) reaches the
    /// same 4 shifts — the generality claim of §5.
    #[test]
    fn nine_point_single_statement_same_result() {
        let src = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
REAL C1=1, C2=2, C3=3, C4=4, C5=5, C6=6, C7=7, C8=8, C9=9
DST = C1 * CSHIFT(CSHIFT(SRC,-1,1),-1,2) + C2 * CSHIFT(SRC,-1,1) &
    + C3 * CSHIFT(CSHIFT(SRC,-1,1),+1,2) + C4 * CSHIFT(SRC,-1,2) &
    + C5 * SRC + C6 * CSHIFT(SRC,+1,2) &
    + C7 * CSHIFT(CSHIFT(SRC,+1,1),-1,2) + C8 * CSHIFT(SRC,+1,1) &
    + C9 * CSHIFT(CSHIFT(SRC,+1,1),+1,2)
"#;
        let (_, stats) = pipeline_to_unioning(src, 1);
        assert_eq!(stats.before, 12);
        assert_eq!(stats.after, 4);
        assert_eq!(stats.with_rsd, 2);
    }

    /// Array-syntax 9-point stencil: same minimal communication again.
    #[test]
    fn nine_point_array_syntax_same_result() {
        let src = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
DST(2:N-1,2:N-1) = SRC(1:N-2,1:N-2) + SRC(1:N-2,2:N-1) + SRC(1:N-2,3:N) &
                 + SRC(2:N-1,1:N-2) + SRC(2:N-1,2:N-1) + SRC(2:N-1,3:N) &
                 + SRC(3:N,1:N-2) + SRC(3:N,2:N-1) + SRC(3:N,3:N)
"#;
        let (_, stats) = pipeline_to_unioning(src, 1);
        assert_eq!(stats.after, 4);
        assert_eq!(stats.with_rsd, 2);
    }

    #[test]
    fn subsumption_keeps_largest_amount() {
        let src = r#"
PARAM N = 16
REAL A(N,N), B(N,N)
B = CSHIFT(A,1,1) + CSHIFT(CSHIFT(A,1,1),1,1)
"#;
        let (p, stats) = pipeline_to_unioning(src, 2);
        assert_eq!(stats.after, 1, "{}", pretty::program(&p));
        let mut amt = 0;
        p.for_each_stmt(&mut |s| {
            if let Stmt::OverlapShift { shift, .. } = s {
                amt = *shift;
            }
        });
        assert_eq!(amt, 2, "amount 2 subsumes amount 1");
    }

    #[test]
    fn five_point_needs_four_shifts_no_rsd() {
        let src = r#"
PARAM N = 8
REAL SRC(N,N), DST(N,N)
DST(2:N-1,2:N-1) = SRC(1:N-2,2:N-1) + SRC(2:N-1,1:N-2) &
                 + SRC(2:N-1,2:N-1) + SRC(3:N,2:N-1) + SRC(2:N-1,3:N)
"#;
        let (_, stats) = pipeline_to_unioning(src, 1);
        assert_eq!(stats.after, 4);
        assert_eq!(stats.with_rsd, 0, "no corners in a 5-point stencil");
    }

    #[test]
    fn different_kinds_do_not_union() {
        // Different dimensions, so both shifts convert to overlap form (no
        // ghost-claim conflict), but their kinds keep them in separate
        // unioning groups.
        let src = r#"
PARAM N = 8
REAL A(N,N), B(N,N)
B = CSHIFT(A,1,1) + EOSHIFT(A,1,2) + A
"#;
        let (_, stats) = pipeline_to_unioning(src, 1);
        assert_eq!(stats.before, 2);
        assert_eq!(stats.after, 2, "circular and end-off must stay separate");
    }

    #[test]
    fn conflicting_kinds_on_same_ghost_region_block_conversion() {
        // CSHIFT and EOSHIFT along the same dimension and direction would
        // fill the same overlap area with different values; the offset pass
        // refuses the second conversion (kept as a full shift).
        let src = r#"
PARAM N = 8
REAL A(N,N), B(N,N)
B = CSHIFT(A,1,1) + EOSHIFT(A,1,1) + A
"#;
        let checked = hpf_frontend::compile_source(src).unwrap();
        let (mut p, _) = crate::normalize::normalize(&checked, crate::normalize::TempPolicy::Reuse);
        let stats = crate::offset::run(&mut p, 1);
        assert_eq!(stats.converted, 1);
        assert_eq!(stats.kept, 1);
    }

    #[test]
    fn different_arrays_do_not_union() {
        let src = r#"
PARAM N = 8
REAL A(N,N), B(N,N), C(N,N)
C = CSHIFT(A,1,1) + CSHIFT(B,1,1)
"#;
        let (_, stats) = pipeline_to_unioning(src, 1);
        assert_eq!(stats.after, 2);
    }

    #[test]
    fn emitted_shifts_cover_requirements() {
        // All 8 neighbour offsets of a 9-point stencil.
        let reqs: Vec<Offsets> =
            [[-1, -1], [-1, 0], [-1, 1], [0, -1], [0, 1], [1, -1], [1, 0], [1, 1]]
                .iter()
                .map(|v| Offsets::new(v.to_vec()))
                .collect();
        let shifts = emit_minimal_shifts(ArrayId(0), ShiftKind::Circular, 2, &reqs);
        assert_eq!(shifts.len(), 4);
        assert!(covers(&shifts, &reqs));
    }

    #[test]
    fn coverage_fails_without_rsd() {
        // Corner requirement but shifts lack RSDs: not covered.
        let reqs = vec![Offsets::new([1, 1])];
        let shifts = vec![
            Stmt::OverlapShift {
                array: ArrayId(0),
                src_offsets: Offsets::zero(2),
                shift: 1,
                dim: 0,
                rsd: None,
                kind: ShiftKind::Circular,
            },
            Stmt::OverlapShift {
                array: ArrayId(0),
                src_offsets: Offsets::zero(2),
                shift: 1,
                dim: 1,
                rsd: None,
                kind: ShiftKind::Circular,
            },
        ];
        assert!(!covers(&shifts, &reqs));
        // With the RSD it is covered.
        let mut rsd = Rsd::none(2);
        rsd.extend(0, 1);
        let shifts2 = vec![
            shifts[0].clone(),
            Stmt::OverlapShift {
                array: ArrayId(0),
                src_offsets: Offsets::zero(2),
                shift: 1,
                dim: 1,
                rsd: Some(rsd),
                kind: ShiftKind::Circular,
            },
        ];
        assert!(covers(&shifts2, &reqs));
    }

    #[test]
    fn asymmetric_amounts_per_direction() {
        let reqs = vec![Offsets::new([2, 0]), Offsets::new([-1, 0])];
        let shifts = emit_minimal_shifts(ArrayId(0), ShiftKind::Circular, 2, &reqs);
        assert_eq!(shifts.len(), 2);
        let amounts: Vec<i64> = shifts
            .iter()
            .map(|s| match s {
                Stmt::OverlapShift { shift, .. } => *shift,
                _ => unreachable!(),
            })
            .collect();
        assert!(amounts.contains(&2));
        assert!(amounts.contains(&-1));
        assert!(covers(&shifts, &reqs));
    }

    #[test]
    fn three_dimensional_corners() {
        // A 3-D diagonal requirement exercises cascading RSDs.
        let reqs = vec![Offsets::new([1, 1, 1])];
        let shifts = emit_minimal_shifts(ArrayId(0), ShiftKind::Circular, 3, &reqs);
        assert_eq!(shifts.len(), 3);
        assert!(covers(&shifts, &reqs));
        // The dim-2 shift's RSD extends both lower dims.
        match &shifts[2] {
            Stmt::OverlapShift { dim: 2, rsd: Some(r), .. } => {
                assert_eq!(r.ext[0], (0, 1));
                assert_eq!(r.ext[1], (0, 1));
            }
            other => panic!("{other:?}"),
        }
    }
}
